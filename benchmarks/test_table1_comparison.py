"""E1a — Table I: qualitative comparison with related work.

Regenerates the feature matrix from the structured registry and verifies
that every capability claimed in the HardSnap column is backed by a real
artefact of this library (imported and, where cheap, exercised).
"""

import importlib

from benchmarks.conftest import emit
from repro.analysis.table1 import (APPROACHES, hardsnap_capability_predicates,
                                   render)


def test_table1_regenerates(benchmark):
    text = benchmark(render)
    emit("table1_comparison", text)
    assert "HardSnap" in text
    # HardSnap is the only row with every capability affirmative.
    full = [a.name for a in APPROACHES
            if all(v in ("yes", "B/L/P", "n/a") for v in a.column())]
    assert full == ["HardSnap"]


def test_hardsnap_claims_are_backed(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for claim, path in hardsnap_capability_predicates().items():
        parts = path.split(".")
        obj = None
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            for attr in parts[split:]:
                obj = getattr(obj, attr)
            break
        assert obj is not None, f"{claim}: {path} unresolvable"
