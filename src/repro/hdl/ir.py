"""Elaborated RTL intermediate representation.

The elaborator lowers the parsed AST of a design into one flat
:class:`Design`: a set of nets (wires and registers), memories, and three
kinds of processes:

* :class:`CombBlock` — combinational logic (continuous assignments and
  ``always @(*)`` blocks), scheduled in dependency order each delta cycle,
* :class:`SeqBlock` — edge-triggered logic, executed at clock edges with
  non-blocking commit semantics,
* :class:`InitBlock` — ``initial`` blocks, executed once at time zero.

Expressions are width-resolved: every node carries the bit width its value
is masked to, following Verilog's context-determined width rules (the
elaborator widens operands of arithmetic/bitwise/ternary nodes to the
assignment context, so carry-out idioms like ``{c, s} = a + b`` behave as
in a standard simulator).

State elements (flip-flops and state memories) are *inferred*: a net or
memory written by any sequential process is state. The scan-chain
instrumentation pass and every snapshot method operate on exactly this
state set — it is the paper's definition of the hardware state S_hw.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


# ---------------------------------------------------------------------------
# Storage elements
# ---------------------------------------------------------------------------

@dataclass
class Net:
    """A scalar or vector signal with a fixed width."""

    name: str
    width: int
    kind: str = "wire"  # wire | reg | input | output
    initial: int = 0
    #: Source line of the declaration (0 when synthesised by a pass).
    line: int = 0
    #: True when the declaration carried an explicit initialiser.
    explicit_init: bool = False

    def __repr__(self) -> str:
        return f"Net({self.name}:{self.width})"

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass
class Memory:
    """A register file / RAM: ``depth`` words of ``width`` bits."""

    name: str
    width: int
    depth: int
    initial: Optional[List[int]] = None
    line: int = 0

    def __repr__(self) -> str:
        return f"Memory({self.name}:{self.width}x{self.depth})"

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def state_bits(self) -> int:
        return self.width * self.depth


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Expr:
    width: int = field(default=0, kw_only=True)


@dataclass(eq=False)
class Const(Expr):
    value: int


#: Interning cache for :func:`const`.  Elaboration and constant folding
#: produce the same small literals over and over; sharing one node per
#: (value, width) keeps IR memory flat.  Nodes are immutable by
#: convention — no pass rewrites a Const in place.
_CONST_CACHE: Dict[Tuple[int, int], "Const"] = {}
_CONST_CACHE_LIMIT = 65536


def const(value: int, width: int) -> "Const":
    """An interned constant node, masked to *width* bits."""
    value &= (1 << width) - 1
    key = (value, width)
    node = _CONST_CACHE.get(key)
    if node is None:
        node = Const(value, width=width)
        if len(_CONST_CACHE) < _CONST_CACHE_LIMIT:
            _CONST_CACHE[key] = node
    return node


@dataclass(eq=False)
class Ref(Expr):
    """Read of a net's current value."""

    net: Net


@dataclass(eq=False)
class MemRead(Expr):
    """Read ``memory[index]``; out-of-range indexes read as 0."""

    memory: Memory
    index: Expr


@dataclass(eq=False)
class Unary(Expr):
    op: str  # ~ ! - & | ^ ~& ~| ~^
    operand: Expr


@dataclass(eq=False)
class Binary(Expr):
    op: str  # + - * / % & | ^ << >> >>> < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass(eq=False)
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(eq=False)
class Concat(Expr):
    """First part is most significant, as in Verilog ``{a, b}``."""

    parts: List[Expr]


@dataclass(eq=False)
class Slice(Expr):
    """Constant part-select ``value[hi:lo]`` (LSB-based bit indices)."""

    value: Expr
    hi: int
    lo: int


@dataclass(eq=False)
class DynBit(Expr):
    """Dynamic bit-select ``value[index]`` with non-constant index."""

    value: Expr
    index: Expr


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class LValue:
    pass


@dataclass(eq=False)
class LNet(LValue):
    """Assignment to net bits [hi:lo]; full width when hi/lo are None."""

    net: Net
    hi: Optional[int] = None
    lo: Optional[int] = None

    @property
    def width(self) -> int:
        if self.hi is None:
            return self.net.width
        return self.hi - self.lo + 1


@dataclass(eq=False)
class LNetDyn(LValue):
    """Assignment to a single, dynamically selected bit of a net."""

    net: Net
    index: Expr

    @property
    def width(self) -> int:
        return 1


@dataclass(eq=False)
class LMem(LValue):
    memory: Memory
    index: Expr

    @property
    def width(self) -> int:
        return self.memory.width


@dataclass(eq=False)
class LConcat(LValue):
    """``{a, b} = ...`` — first part receives the most significant bits."""

    parts: List[LValue]

    @property
    def width(self) -> int:
        return sum(p.width for p in self.parts)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Stmt:
    pass


@dataclass(eq=False)
class SAssign(Stmt):
    target: LValue
    value: Expr
    blocking: bool = True
    line: int = 0


@dataclass(eq=False)
class SIf(Stmt):
    cond: Expr
    then: List[Stmt] = field(default_factory=list)
    other: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class SCaseItem:
    labels: List[Tuple[int, int]]  # (value, care_mask) pairs; casez wildcards
    body: List[Stmt] = field(default_factory=list)


@dataclass(eq=False)
class SCase(Stmt):
    subject: Expr
    items: List[SCaseItem] = field(default_factory=list)
    default: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------

@dataclass
class CombBlock:
    """Combinational process: continuous assign or ``always @(*)``."""

    stmts: List[Stmt]
    reads: frozenset = frozenset()   # net names read
    writes: frozenset = frozenset()  # net names written
    name: str = ""
    line: int = 0


@dataclass
class SeqBlock:
    """Edge-triggered process."""

    clock: Net
    clock_edge: str  # posedge | negedge
    stmts: List[Stmt]
    areset: Optional[Net] = None
    areset_edge: str = "posedge"
    name: str = ""
    line: int = 0


@dataclass
class InitBlock:
    stmts: List[Stmt]


# ---------------------------------------------------------------------------
# Design
# ---------------------------------------------------------------------------

@dataclass
class Design:
    """A fully elaborated, flattened design."""

    name: str
    nets: Dict[str, Net] = field(default_factory=dict)
    memories: Dict[str, Memory] = field(default_factory=dict)
    inputs: List[Net] = field(default_factory=list)
    outputs: List[Net] = field(default_factory=list)
    comb_blocks: List[CombBlock] = field(default_factory=list)
    seq_blocks: List[SeqBlock] = field(default_factory=list)
    init_blocks: List[InitBlock] = field(default_factory=list)

    # Filled by finalize(): names of nets that hold state (flip-flops) and
    # memories written sequentially.
    state_nets: List[Net] = field(default_factory=list)
    state_memories: List[Memory] = field(default_factory=list)

    #: Path of the Verilog source this design was elaborated from, when
    #: known — threaded into lint diagnostics alongside declaration lines.
    source_file: Optional[str] = None

    def finalize(self) -> None:
        """Infer state elements from sequential write sets."""
        written_nets: Dict[str, Net] = {}
        written_mems: Dict[str, Memory] = {}
        for block in self.seq_blocks:
            for stmt in _walk_stmts(block.stmts):
                if isinstance(stmt, SAssign):
                    for lv in _leaf_lvalues(stmt.target):
                        if isinstance(lv, (LNet, LNetDyn)):
                            written_nets[lv.net.name] = lv.net
                        elif isinstance(lv, LMem):
                            written_mems[lv.memory.name] = lv.memory
        self.state_nets = sorted(written_nets.values(), key=lambda n: n.name)
        self.state_memories = sorted(written_mems.values(), key=lambda m: m.name)

    @property
    def state_bit_count(self) -> int:
        """Total number of state bits — the scan-chain length."""
        bits = sum(n.width for n in self.state_nets)
        bits += sum(m.state_bits for m in self.state_memories)
        return bits

    def stats(self) -> Dict[str, int]:
        return {
            "nets": len(self.nets),
            "memories": len(self.memories),
            "flip_flops": sum(n.width for n in self.state_nets),
            "memory_bits": sum(m.state_bits for m in self.state_memories),
            "state_bits": self.state_bit_count,
            "comb_blocks": len(self.comb_blocks),
            "seq_blocks": len(self.seq_blocks),
        }


def _walk_stmts(stmts: Sequence[Stmt]):
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, SIf):
            yield from _walk_stmts(stmt.then)
            yield from _walk_stmts(stmt.other)
        elif isinstance(stmt, SCase):
            for item in stmt.items:
                yield from _walk_stmts(item.body)
            yield from _walk_stmts(stmt.default)


def _leaf_lvalues(lv: LValue):
    if isinstance(lv, LConcat):
        for part in lv.parts:
            yield from _leaf_lvalues(part)
    else:
        yield lv


def expr_reads(expr: Expr, into: set) -> set:
    """Collect names of nets and memories read by *expr* into *into*."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Ref):
            into.add(node.net.name)
        elif isinstance(node, MemRead):
            into.add(node.memory.name)
            stack.append(node.index)
        elif isinstance(node, Unary):
            stack.append(node.operand)
        elif isinstance(node, Binary):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Ternary):
            stack.extend((node.cond, node.then, node.other))
        elif isinstance(node, Concat):
            stack.extend(node.parts)
        elif isinstance(node, Slice):
            stack.append(node.value)
        elif isinstance(node, DynBit):
            stack.append(node.value)
            stack.append(node.index)
    return into


def stmt_reads_writes(stmts: Sequence[Stmt]) -> Tuple[set, set]:
    """Compute (reads, writes) name sets for a statement list.

    Condition/subject expressions count as reads; LHS index expressions
    count as reads too. Writes include nets and memories.
    """
    reads: set = set()
    writes: set = set()
    for stmt in _walk_stmts(stmts):
        if isinstance(stmt, SAssign):
            expr_reads(stmt.value, reads)
            for lv in _leaf_lvalues(stmt.target):
                if isinstance(lv, LNet):
                    writes.add(lv.net.name)
                    # Partial bit-range writes read-modify-write the net,
                    # but that implicit read is NOT a scheduling
                    # dependency: the merge preserves the other writers'
                    # bits regardless of execution order, and adding it
                    # would make two blocks driving disjoint ranges of one
                    # net look like a combinational loop.
                elif isinstance(lv, LNetDyn):
                    writes.add(lv.net.name)
                    expr_reads(lv.index, reads)
                elif isinstance(lv, LMem):
                    writes.add(lv.memory.name)
                    expr_reads(lv.index, reads)
        elif isinstance(stmt, SIf):
            expr_reads(stmt.cond, reads)
        elif isinstance(stmt, SCase):
            expr_reads(stmt.subject, reads)
    return reads, writes
