"""E10 — resilience overhead: fault-injection harness cost at rest and under fire.

The recovery machinery (snapshot sealing, CRC-verified scan shifts,
health checks) only arms itself when a :class:`FaultPlan` with at least
one active fault is attached.  This experiment measures the serial
fuzzing workload from E9 under a ladder of configurations:

* **baseline** — no plan attached (the fast path every existing
  experiment runs on),
* **empty plan** — ``--fault-plan seed=0`` with no rates: must stay on
  the fast path, with wall overhead under 5% nominal,
* **active plans** — scan-shift corruption at 1% / 5% / 20%: every
  fault is recovered transparently, the verdict stays byte-identical,
  and the retry latency is charged to the modelled clock.

Verdict identity against the baseline is asserted *unconditionally* at
every rung.  Emits ``benchmarks/out/BENCH_resilience.json``.
"""

import time

from benchmarks.conftest import emit, emit_json
from repro.analysis import format_table
from repro.core import SnapshotFuzzer
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.isa import assemble
from repro.peripherals import catalog
from repro.resilience import FaultPlan
from repro.targets import FpgaTarget

SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 31])]
EXECUTIONS = 300
BATCH = 32
FAULT_RATES = [0.01, 0.05, 0.2]
# 5% is the nominal budget for the disarmed harness; CI boxes are noisy
# enough that the hard assertion allows 30%.
NOMINAL_OVERHEAD = 0.05
CI_OVERHEAD = 0.30
QUIET_ROUNDS = 3  # best-of-N for the two fast configurations


def _run_once(plan):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    if plan is not None:
        target.attach_resilience(plan)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    report = fuzzer.run(executions=EXECUTIONS, batch_size=BATCH)
    elapsed = time.perf_counter() - start
    return report, elapsed, target.resilience.as_dict()


def _run(plan, rounds=1):
    best = None
    for _ in range(rounds):
        report, elapsed, stats = _run_once(plan)
        if best is None or elapsed < best[1]:
            best = (report, elapsed, stats)
    return best


def test_resilience_overhead():
    configs = [
        ("baseline", None, QUIET_ROUNDS),
        ("empty plan", FaultPlan(seed=0), QUIET_ROUNDS),
    ] + [(f"scan_corrupt={rate}", FaultPlan(seed=9, scan_corrupt_rate=rate), 1)
         for rate in FAULT_RATES]

    results = {}
    for name, plan, rounds in configs:
        results[name] = _run(plan, rounds=rounds)
    baseline_report, baseline_s, _ = results["baseline"]

    rows = []
    record = {}
    for name, (report, elapsed, stats) in results.items():
        identical = report.verdict_summary() == baseline_report.verdict_summary()
        overhead = elapsed / baseline_s - 1.0
        rows.append([name, f"{elapsed:.3f}", f"{overhead * 100:+.1f}%",
                     stats["link_retries"], f"{stats['backoff_s']:.4f}",
                     "identical" if identical else "DIVERGED"])
        record[name] = {
            "host_s": elapsed,
            "overhead": overhead,
            "link_retries": stats["link_retries"],
            "backoff_s": stats["backoff_s"],
            "verdict_identical": identical,
        }

    emit("resilience_overhead", format_table(
        ["config", "host s", "overhead", "link retries", "backoff s",
         "verdict vs baseline"],
        rows,
        title=f"E10: resilience overhead, {EXECUTIONS} executions "
              f"(batch {BATCH}, best of {QUIET_ROUNDS} for quiet configs)"))

    emit_json("BENCH_resilience.json", {
        "experiment": "resilience_overhead",
        "executions": EXECUTIONS,
        "batch_size": BATCH,
        "nominal_overhead_budget": NOMINAL_OVERHEAD,
        "configs": record,
    })

    # Recovery is transparent: every rung reproduces the baseline verdict.
    for name, entry in record.items():
        assert entry["verdict_identical"], f"{name} diverged from baseline"

    # The disarmed harness stays on the fast path.
    assert record["empty plan"]["link_retries"] == 0
    assert record["empty plan"]["overhead"] < CI_OVERHEAD, (
        f"empty-plan overhead {record['empty plan']['overhead'] * 100:.1f}% "
        f"exceeds the CI bound ({CI_OVERHEAD * 100:.0f}%; "
        f"nominal budget is {NOMINAL_OVERHEAD * 100:.0f}%)")

    # The armed harness actually exercised the retry path at the top rung.
    assert record[f"scan_corrupt={FAULT_RATES[-1]}"]["link_retries"] > 0
