"""Behavioural tests for every corpus peripheral, over AXI4-Lite."""

import hashlib
import struct

import pytest

from repro.bus import Axi4LiteMaster
from repro.hdl import elaborate
from repro.peripherals import (aes128, catalog, dma, gpio, intc, sha256,
                               timer, uart)
from repro.sim import CompiledSimulation


def _boot(design):
    sim = CompiledSimulation(design)
    sim.poke("rst", 1); sim.step(2); sim.poke("rst", 0); sim.step()
    return sim, Axi4LiteMaster(sim)


@pytest.fixture(scope="module")
def designs(request):
    return {spec.name: spec.elaborate() for spec in catalog.EXTENDED_CORPUS}


class TestGpio:
    def test_output_gated_by_direction(self, designs):
        sim, bus = _boot(designs["gpio"])
        bus.write(gpio.REGISTERS["OUT"], 0xFF)
        assert sim.peek("gpio_out") == 0  # DIR = 0
        bus.write(gpio.REGISTERS["DIR"], 0x0F)
        assert sim.peek("gpio_out") == 0x0F

    def test_input_synchroniser(self, designs):
        sim, bus = _boot(designs["gpio"])
        sim.poke("gpio_in", 0x3C)
        sim.step(2)
        data, _ = bus.read(gpio.REGISTERS["IN"])
        assert data == 0x3C

    def test_edge_irq_and_clear(self, designs):
        sim, bus = _boot(designs["gpio"])
        bus.write(gpio.REGISTERS["IRQ_EN"], 0x1)
        sim.poke("gpio_in", 1); sim.step(3)
        assert sim.peek("irq") == 1
        sim.poke("gpio_in", 0); sim.step(3)
        assert sim.peek("irq") == 1  # latched
        bus.write(gpio.REGISTERS["IRQ_ST"], 0x1)
        assert sim.peek("irq") == 0

    def test_masked_edge_no_irq(self, designs):
        sim, bus = _boot(designs["gpio"])
        sim.poke("gpio_in", 2); sim.step(3)
        assert sim.peek("irq") == 0


class TestTimer:
    def test_oneshot_expiry(self, designs):
        sim, bus = _boot(designs["timer"])
        bus.write(timer.REGISTERS["LOAD"], 5)
        bus.write(timer.REGISTERS["CTRL"], timer.CTRL_EN | timer.CTRL_IRQ_EN)
        sim.step(8)
        assert sim.peek("irq") == 1
        data, _ = bus.read(timer.REGISTERS["CTRL"])
        assert data & timer.CTRL_EN == 0  # one-shot disables itself

    def test_auto_reload(self, designs):
        sim, bus = _boot(designs["timer"])
        bus.write(timer.REGISTERS["LOAD"], 3)
        bus.write(timer.REGISTERS["CTRL"],
                  timer.CTRL_EN | timer.CTRL_AUTO_RELOAD)
        sim.step(5)
        st1, _ = bus.read(timer.REGISTERS["STATUS"])
        assert st1 & 1
        data, _ = bus.read(timer.REGISTERS["CTRL"])
        assert data & timer.CTRL_EN  # still enabled

    def test_prescaler_slows_count(self, designs):
        fast, fbus = _boot(designs["timer"])
        slow, sbus = _boot(designs["timer"])
        for b in (fbus, sbus):
            b.write(timer.REGISTERS["LOAD"], 6)
        sbus.write(timer.REGISTERS["PRESCALE"], 3)
        fbus.write(timer.REGISTERS["CTRL"], timer.CTRL_EN)
        sbus.write(timer.REGISTERS["CTRL"], timer.CTRL_EN)
        fast.step(10); slow.step(10)
        fst, _ = fbus.read(timer.REGISTERS["STATUS"])
        sst, _ = sbus.read(timer.REGISTERS["STATUS"])
        assert fst & 1 and not (sst & 1)

    def test_status_write_one_clear(self, designs):
        sim, bus = _boot(designs["timer"])
        bus.write(timer.REGISTERS["LOAD"], 2)
        bus.write(timer.REGISTERS["CTRL"], timer.CTRL_EN | timer.CTRL_IRQ_EN)
        sim.step(6)
        assert sim.peek("irq") == 1
        bus.write(timer.REGISTERS["STATUS"], 1)
        assert sim.peek("irq") == 0

    def test_value_readback_counts_down(self, designs):
        sim, bus = _boot(designs["timer"])
        bus.write(timer.REGISTERS["LOAD"], 100)
        bus.write(timer.REGISTERS["CTRL"], timer.CTRL_EN)
        v1, _ = bus.read(timer.REGISTERS["VALUE"])
        sim.step(10)
        v2, _ = bus.read(timer.REGISTERS["VALUE"])
        assert v2 < v1 <= 100


LOOP_WRAPPER = r"""
module uart_loop (
    input wire clk, input wire rst,
    input wire s_axi_awvalid, output wire s_axi_awready, input wire [7:0] s_axi_awaddr,
    input wire s_axi_wvalid, output wire s_axi_wready, input wire [31:0] s_axi_wdata,
    output wire s_axi_bvalid, input wire s_axi_bready,
    input wire s_axi_arvalid, output wire s_axi_arready, input wire [7:0] s_axi_araddr,
    output wire s_axi_rvalid, input wire s_axi_rready, output wire [31:0] s_axi_rdata,
    output wire irq
);
    wire serial;
    uart u (
        .clk(clk), .rst(rst),
        .s_axi_awvalid(s_axi_awvalid), .s_axi_awready(s_axi_awready), .s_axi_awaddr(s_axi_awaddr),
        .s_axi_wvalid(s_axi_wvalid), .s_axi_wready(s_axi_wready), .s_axi_wdata(s_axi_wdata),
        .s_axi_bvalid(s_axi_bvalid), .s_axi_bready(s_axi_bready),
        .s_axi_arvalid(s_axi_arvalid), .s_axi_arready(s_axi_arready), .s_axi_araddr(s_axi_araddr),
        .s_axi_rvalid(s_axi_rvalid), .s_axi_rready(s_axi_rready), .s_axi_rdata(s_axi_rdata),
        .rx(serial), .tx(serial), .irq(irq)
    );
endmodule
"""


@pytest.fixture(scope="module")
def uart_loop_design():
    return elaborate(uart.verilog() + LOOP_WRAPPER, "uart_loop")


class TestUart:
    def test_loopback_byte_sequence(self, uart_loop_design):
        sim, bus = _boot(uart_loop_design)
        bus.write(uart.REGISTERS["BAUDDIV"], 4)
        payload = [0x00, 0xFF, 0x5A, 0xA5]
        for b in payload:
            bus.write(uart.REGISTERS["TXDATA"], b)
        sim.step(4 * 10 * 4 + 80)
        got = []
        for _ in payload:
            data, _ = bus.read(uart.REGISTERS["RXDATA"])
            got.append(data & 0xFF)
        assert got == payload

    def test_status_flags_lifecycle(self, uart_loop_design):
        sim, bus = _boot(uart_loop_design)
        bus.write(uart.REGISTERS["BAUDDIV"], 4)
        st, _ = bus.read(uart.REGISTERS["STATUS"])
        assert st & uart.STATUS_TX_EMPTY
        assert not (st & uart.STATUS_RX_AVAIL)
        bus.write(uart.REGISTERS["TXDATA"], 0x42)
        st, _ = bus.read(uart.REGISTERS["STATUS"])
        assert st & uart.STATUS_TX_BUSY
        sim.step(120)
        st, _ = bus.read(uart.REGISTERS["STATUS"])
        assert st & uart.STATUS_RX_AVAIL

    def test_tx_fifo_fills(self, uart_loop_design):
        sim, bus = _boot(uart_loop_design)
        bus.write(uart.REGISTERS["BAUDDIV"], 16)  # slow: fifo backs up
        for i in range(9):
            bus.write(uart.REGISTERS["TXDATA"], i)
        st, _ = bus.read(uart.REGISTERS["STATUS"])
        assert st & uart.STATUS_TX_FULL

    def test_rx_irq(self, uart_loop_design):
        sim, bus = _boot(uart_loop_design)
        bus.write(uart.REGISTERS["BAUDDIV"], 4)
        bus.write(uart.REGISTERS["CTRL"], 1)  # RX irq enable
        assert sim.peek("irq") == 0
        bus.write(uart.REGISTERS["TXDATA"], 0x7E)
        sim.step(120)
        assert sim.peek("irq") == 1
        bus.read(uart.REGISTERS["RXDATA"])
        assert sim.peek("irq") == 0

    def test_minimum_bauddiv_enforced(self, uart_loop_design):
        sim, bus = _boot(uart_loop_design)
        bus.write(uart.REGISTERS["BAUDDIV"], 0)
        data, _ = bus.read(uart.REGISTERS["BAUDDIV"])
        assert data == 2


def _sha_pad(msg: bytes):
    ml = len(msg) * 8
    msg = msg + b"\x80"
    while (len(msg) % 64) != 56:
        msg += b"\x00"
    msg += struct.pack(">Q", ml)
    return [msg[i:i + 64] for i in range(0, len(msg), 64)]


class TestSha256:
    def _digest(self, sim, bus, msg: bytes) -> bytes:
        bus.write(sha256.REGISTERS["CTRL"], sha256.CTRL_INIT)
        for block in _sha_pad(msg):
            for i, word in enumerate(struct.unpack(">16I", block)):
                bus.write(sha256.REGISTERS["BLOCK"] + 4 * i, word)
            bus.write(sha256.REGISTERS["CTRL"], sha256.CTRL_NEXT)
            for _ in range(100):
                st, _ = bus.read(sha256.REGISTERS["STATUS"])
                if not (st & sha256.STATUS_BUSY):
                    break
        out = b""
        for i in range(8):
            w, _ = bus.read(sha256.REGISTERS["DIGEST"] + 4 * i)
            out += struct.pack(">I", w)
        return out

    @pytest.mark.parametrize("msg", [b"abc", b"", b"x" * 64, b"y" * 119])
    def test_against_hashlib(self, designs, msg):
        sim, bus = _boot(designs["sha256"])
        assert self._digest(sim, bus, msg) == hashlib.sha256(msg).digest()

    def test_done_flag_and_irq(self, designs):
        sim, bus = _boot(designs["sha256"])
        bus.write(sha256.REGISTERS["CTRL"],
                  sha256.CTRL_INIT | sha256.CTRL_IRQ_EN)
        for i, word in enumerate(struct.unpack(">16I", _sha_pad(b"abc")[0])):
            bus.write(sha256.REGISTERS["BLOCK"] + 4 * i, word)
        bus.write(sha256.REGISTERS["CTRL"],
                  sha256.CTRL_NEXT | sha256.CTRL_IRQ_EN)
        sim.step(70)
        assert sim.peek("irq") == 1
        bus.write(sha256.REGISTERS["STATUS"], sha256.STATUS_DONE)
        assert sim.peek("irq") == 0

    def test_busy_while_compressing(self, designs):
        sim, bus = _boot(designs["sha256"])
        bus.write(sha256.REGISTERS["CTRL"], sha256.CTRL_INIT)
        bus.write(sha256.REGISTERS["CTRL"], sha256.CTRL_NEXT)
        st, _ = bus.read(sha256.REGISTERS["STATUS"])
        assert st & sha256.STATUS_BUSY


class TestAes128:
    def _encrypt(self, bus, key: bytes, block: bytes) -> bytes:
        for i, w in enumerate(struct.unpack(">4I", key)):
            bus.write(aes128.REGISTERS["KEY"] + 4 * i, w)
        for i, w in enumerate(struct.unpack(">4I", block)):
            bus.write(aes128.REGISTERS["BLOCK"] + 4 * i, w)
        bus.write(aes128.REGISTERS["CTRL"], aes128.CTRL_START)
        for _ in range(40):
            st, _ = bus.read(aes128.REGISTERS["STATUS"])
            if not (st & aes128.STATUS_BUSY):
                break
        out = b""
        for i in range(4):
            w, _ = bus.read(aes128.REGISTERS["RESULT"] + 4 * i)
            out += struct.pack(">I", w)
        return out

    def test_fips197_appendix_b(self, designs):
        sim, bus = _boot(designs["aes128"])
        ct = self._encrypt(bus,
                           bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
                           bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct == bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

    def test_fips197_appendix_c1(self, designs):
        sim, bus = _boot(designs["aes128"])
        ct = self._encrypt(bus,
                           bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
                           bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct == bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_sbox_table_known_entries(self):
        table = aes128.sbox_table()
        assert table[0x00] == 0x63
        assert table[0x01] == 0x7C
        assert table[0x53] == 0xED
        assert table[0xFF] == 0x16
        assert len(set(table)) == 256  # a permutation

    def test_rekey_changes_ciphertext(self, designs):
        sim, bus = _boot(designs["aes128"])
        pt = bytes(16)
        c1 = self._encrypt(bus, bytes(16), pt)
        c2 = self._encrypt(bus, bytes([1] * 16), pt)
        assert c1 != c2


class TestIntc:
    def test_priority_claim_order(self, designs):
        sim, bus = _boot(designs["intc"])
        bus.write(intc.REGISTERS["ENABLE"], 0xFF)
        sim.poke("lines", 0b10100000); sim.step(3); sim.poke("lines", 0)
        got = []
        for _ in range(3):
            data, _ = bus.read(intc.REGISTERS["CLAIM"])
            got.append(data)
        assert got == [5, 7, 0xFF]

    def test_masked_lines_dont_claim(self, designs):
        sim, bus = _boot(designs["intc"])
        bus.write(intc.REGISTERS["ENABLE"], 0x01)
        sim.poke("lines", 0b10); sim.step(3); sim.poke("lines", 0)
        assert sim.peek("irq") == 0
        data, _ = bus.read(intc.REGISTERS["CLAIM"])
        assert data == 0xFF
        pend, _ = bus.read(intc.REGISTERS["PENDING"])
        assert pend == 0b10  # latched but masked

    def test_software_pend(self, designs):
        sim, bus = _boot(designs["intc"])
        bus.write(intc.REGISTERS["ENABLE"], 0xFF)
        bus.write(intc.REGISTERS["SWPEND"], 0x10)
        assert sim.peek("irq") == 1
        data, _ = bus.read(intc.REGISTERS["CLAIM"])
        assert data == 4

    def test_write_one_clear(self, designs):
        sim, bus = _boot(designs["intc"])
        bus.write(intc.REGISTERS["ENABLE"], 0xFF)
        bus.write(intc.REGISTERS["SWPEND"], 0b11)
        bus.write(intc.REGISTERS["PENDING"], 0b01)
        pend, _ = bus.read(intc.REGISTERS["PENDING"])
        assert pend == 0b10


class TestDma:
    def test_copy_within_scratchpad(self, designs):
        sim, bus = _boot(designs["dma"])
        for i in range(16):
            bus.write(dma.RAM_BASE + 4 * i, 0xA0 + i)
        bus.write(dma.REGISTERS["SRC"], 0)
        bus.write(dma.REGISTERS["DST"], 100)
        bus.write(dma.REGISTERS["LEN"], 16)
        bus.write(dma.REGISTERS["CTRL"], dma.CTRL_START)
        for _ in range(40):
            st, _ = bus.read(dma.REGISTERS["STATUS"])
            if not (st & dma.STATUS_BUSY):
                break
        assert st & dma.STATUS_DONE
        for i in range(16):
            data, _ = bus.read(dma.RAM_BASE + 4 * (100 + i))
            assert data == 0xA0 + i

    def test_zero_length_ignored(self, designs):
        sim, bus = _boot(designs["dma"])
        bus.write(dma.REGISTERS["LEN"], 0)
        bus.write(dma.REGISTERS["CTRL"], dma.CTRL_START)
        st, _ = bus.read(dma.REGISTERS["STATUS"])
        assert not (st & dma.STATUS_BUSY)

    def test_completion_irq(self, designs):
        sim, bus = _boot(designs["dma"])
        bus.write(dma.REGISTERS["SRC"], 0)
        bus.write(dma.REGISTERS["DST"], 8)
        bus.write(dma.REGISTERS["LEN"], 4)
        bus.write(dma.REGISTERS["CTRL"], dma.CTRL_START | dma.CTRL_IRQ_EN)
        sim.step(20)
        assert sim.peek("irq") == 1
        bus.write(dma.REGISTERS["STATUS"], dma.STATUS_DONE)
        assert sim.peek("irq") == 0


class TestCatalog:
    def test_corpus_is_the_papers_four(self):
        assert [s.name for s in catalog.CORPUS] == ["timer", "uart",
                                                    "aes128", "sha256"]

    def test_lookup(self):
        assert catalog.get("uart").addr_bits == 8
        with pytest.raises(KeyError):
            catalog.get("nonexistent")

    def test_complexity_spread(self, designs):
        """The corpus spans ~an order of magnitude in state bits."""
        bits = {name: d.state_bit_count for name, d in designs.items()}
        assert bits["sha256"] > 5 * bits["timer"]
        assert max(bits.values()) / min(bits.values()) > 8
