"""E1d — delta snapshot store: storage dedup and fork-depth scaling.

Snapshot-heavy workloads (DSE fork trees, fuzz loops) take *thousands*
of near-identical snapshots: sibling states differ in a handful of
registers. This experiment measures what the content-addressed delta
store does to that workload, and how save/restore cost scales with
design size and fork depth for all three snapshot methods:

* CRIU (simulator) — incremental dumps price only dirty state,
* scan chain (FPGA) — the shift always traverses the full chain
  (mechanism cost is size-bound), but *storage* dedups,
* readback (FPGA) — capture-only, frames priced by design size.

Expected shapes:
* a fork-depth-100 chain with small per-fork deltas stores >= 5x fewer
  bits than naive full images (the acceptance bar; in practice far more),
* stored bits grow O(changed registers) per fork while logical bits grow
  O(design), so the compression ratio *improves* with depth,
* mechanism costs per save are flat in fork depth for every method
  (depth must not creep into save latency),
* save cost vs design size: scan and readback grow with bits, CRIU is
  dominated by its fixed base.
"""

from benchmarks.conftest import PERIPH_BASE, emit, fpga_with, simulator_with
from repro.analysis import format_si_time, format_table
from repro.core.snapshot import SnapshotController
from repro.peripherals import catalog

GPIO_BASE = 0x4001_0000
GPIO_OUT = GPIO_BASE + 0x04
FORK_DEPTH = 100


def _workload_target(kind):
    """A multi-peripheral SoC-ish target: one small mutating peripheral
    (GPIO) next to two large mostly-idle ones (SHA256 + AES128)."""
    if kind == "simulator":
        target = simulator_with(catalog.SHA256)
    else:
        target = fpga_with(catalog.SHA256)
    target.add_peripheral(catalog.AES128, 0x4002_0000)
    target.add_peripheral(catalog.GPIO, GPIO_BASE)
    target.reset()
    return target


def _run_fork_chain(kind, depth=FORK_DEPTH):
    """Depth-`depth` fork chain: each fork flips one GPIO output bit
    (a small per-fork delta) and snapshots."""
    target = _workload_target(kind)
    controller = SnapshotController(target)
    costs = []
    for i in range(depth):
        target.write(GPIO_OUT, i & 0xFFFF_FFFF)
        snapshot = controller.save()
        costs.append(snapshot.modelled_cost_s)
    return controller, costs


def test_fork_depth_dedup(benchmark):
    controller, costs = benchmark.pedantic(
        lambda: _run_fork_chain("fpga"), rounds=1, iterations=1)
    stats = controller.store.stats

    rows = [
        ("fork depth", FORK_DEPTH),
        ("logical bits (naive)", stats.logical_bits),
        ("stored bits (delta)", stats.stored_bits),
        ("compression", f"{stats.compression_ratio:.1f}x"),
        ("dedup hit-rate", f"{stats.dedup_hit_rate:.1%}"),
        ("unique chunks", stats.chunks),
        ("max chain depth", stats.max_chain_depth),
        ("flattens", stats.flattens),
    ]
    emit("snapshot_store_dedup", format_table(
        ["metric", "value"], rows,
        title=f"E1d: delta store on a fork-depth-{FORK_DEPTH} workload "
              f"(GPIO mutating, SHA256+AES idle)"))

    # The acceptance bar: >= 5x fewer stored bits than naive full
    # images. Only the small GPIO chunk changes per fork, so the real
    # ratio is far higher.
    assert stats.compression_ratio >= 5.0
    # Storage grows O(changed registers): the SHA256 and AES captures
    # dedup every round (2 of 3 instances), only GPIO mints new chunks.
    assert stats.dedup_hit_rate > 0.6
    assert stats.chunks <= FORK_DEPTH + 3
    # The flatten threshold keeps restore chain walks bounded.
    assert stats.max_chain_depth < controller.store.flatten_threshold


def test_restore_is_bit_identical_at_any_depth():
    """Walking a deep delta chain reassembles exactly the image that was
    captured — checked at the chain's start, middle and end."""
    target = _workload_target("fpga")
    controller = SnapshotController(target)
    saved = []
    for i in range(FORK_DEPTH):
        target.write(GPIO_OUT, (i * 0x9E37) & 0xFFFF_FFFF)
        snapshot = controller.save()
        if i in (0, FORK_DEPTH // 2, FORK_DEPTH - 1):
            saved.append((snapshot, {name: (state["cycle"],
                                            dict(state["nets"]))
                                     for name, state in
                                     snapshot.states.items()}))
    for snapshot, expected in saved:
        controller.restore(snapshot)
        for name, (cycle, nets) in expected.items():
            instance = target.instances[name]
            live = instance.sim.save_state()
            assert live["cycle"] == cycle, name
            for net, value in nets.items():
                assert live["nets"].get(net, 0) == value, (name, net)


def test_save_cost_flat_in_fork_depth():
    """Per-save mechanism cost must not grow with chain depth for any
    method (the store's chain walk is storage-side, not mechanism-side)."""
    rows = []
    for kind in ("simulator", "fpga"):
        _, costs = _run_fork_chain(kind, depth=40)
        # Skip the first save (CRIU's initial full dump is expected to
        # be the expensive one); after that, early == late.
        early = sum(costs[1:6]) / 5
        late = sum(costs[-5:]) / 5
        rows.append([kind, format_si_time(early), format_si_time(late)])
        assert late <= early * 1.01, kind
    emit("snapshot_store_depth_cost", format_table(
        ["target", "save cost @ depth 1-5", "save cost @ depth 36-40"],
        rows, title="E1d: per-save mechanism cost vs fork depth"))


def test_save_cost_vs_design_size(corpus):
    """Save cost and stored bits per method across the corpus sizes."""
    rows = []
    for spec in corpus:
        sim = simulator_with(spec)
        sim_ctl = SnapshotController(sim)
        sim_ctl.save()
        sim.write(PERIPH_BASE, 1)
        incr = sim_ctl.save()

        fpga = fpga_with(spec)
        fpga_ctl = SnapshotController(fpga)
        first = fpga_ctl.save()
        fpga.write(PERIPH_BASE, 1)
        second = fpga_ctl.save()

        readback = fpga.readback_snapshot()

        rows.append([spec.name, first.bits,
                     format_si_time(incr.modelled_cost_s),
                     format_si_time(second.modelled_cost_s),
                     format_si_time(readback.modelled_cost_s),
                     second.record.stored_bits])
        # The scan shift still pays the full chain regardless of the
        # delta; the store's record shrinks instead.
        assert second.modelled_cost_s >= first.modelled_cost_s * 0.99
        assert second.record.stored_bits <= second.record.logical_bits
    emit("snapshot_store_size_cost", format_table(
        ["peripheral", "chain bits", "CRIU incr save", "scan save",
         "readback", "delta stored bits"],
        rows, title="E1d: save cost vs design size (second, delta save)"))


def test_sram_dedup_extends_residency():
    """With delta-aware SRAM occupancy the snapshot IP keeps many more
    snapshots resident before evicting to the host."""
    def evictions(sram_dedup):
        target = fpga_with(catalog.SHA256, sram_dedup=sram_dedup,
                           sram_bits=8 * 1024)
        target.add_peripheral(catalog.GPIO, GPIO_BASE)
        target.reset()
        controller = SnapshotController(target)
        controller.save()  # first snapshot: everything is dirty
        for i in range(30):
            target.write(GPIO_OUT, i)
            controller.save()
        return target.ip.stats.evictions

    naive, dedup = evictions(False), evictions(True)
    emit("snapshot_store_sram", format_table(
        ["mode", "evictions over 31 saves (8 Kbit SRAM)"],
        [["full occupancy", naive], ["delta occupancy", dedup]],
        title="E1d: snapshot-IP SRAM residency with delta occupancy"))
    assert dedup < naive
