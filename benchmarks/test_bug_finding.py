"""E3 — finding and diagnosing planted security issues.

The paper's third evaluation question: can the framework find and help
diagnose security issues in HW/SW co-designed systems? The synthetic
vulnerability suite plants three classes of bug (see
``repro.firmware.programs``):

* a driver buffer overflow (attacker-controlled length),
* peripheral misuse (consuming an accelerator result before DONE),
* an interrupt race (lost update in an unprotected critical section).

For each we record: found?, time to first finding, the concrete witness
(test case), and whether the report carries the complete hardware state
at the detection point — the diagnosis payload HardSnap exists for.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import (AES_BASE, TIMER_BASE, UART_BASE, WDT_BASE,
                            vuln_buffer_overflow, vuln_irq_race,
                            vuln_peripheral_misuse, vuln_wdt_starvation)
from repro.peripherals import catalog

SUITE = [
    ("buffer-overflow", vuln_buffer_overflow(),
     [(catalog.UART, UART_BASE)]),
    ("peripheral-misuse", vuln_peripheral_misuse(),
     [(catalog.AES128, AES_BASE)]),
    ("irq-race", vuln_irq_race(), [(catalog.TIMER, TIMER_BASE)]),
    ("wdt-starvation", vuln_wdt_starvation(),
     [(catalog.WDT, WDT_BASE)]),
]


def _hunt(firmware, peripherals):
    session = HardSnapSession(firmware, peripherals,
                              scan_mode="functional")
    report = session.run(max_instructions=500_000)
    return session, report


def test_bug_finding(benchmark):
    results = benchmark.pedantic(
        lambda: [(name, *_hunt(fw, p)) for name, fw, p in SUITE],
        rounds=1, iterations=1)

    rows = []
    for name, session, report in results:
        bugs = report.bugs
        first = bugs[0] if bugs else None
        witness = (", ".join(f"{k}=0x{v:x}"
                             for k, v in first.test_case.items())
                   if first else "-")
        rows.append([
            name,
            "yes" if bugs else "NO",
            len(bugs),
            format_si_time(report.modelled_time_s),
            f"{report.host_time_s:.2f}s",
            witness,
            "yes" if (first and first.hw_snapshot) else "-",
        ])
    emit("bug_finding", format_table(
        ["vulnerability", "found", "findings", "modelled time",
         "host time", "first witness", "HW state in report"],
        rows, title="E3: planted vulnerability suite under HardSnap"))

    for name, session, report in results:
        assert report.bugs, f"{name}: not found"
        bug = report.bugs[0]
        # Diagnosis payload: concrete test case + hardware snapshot +
        # control-flow tail.
        assert bug.test_case, name
        assert bug.hw_snapshot is not None, name
        assert bug.backtrace, name

    # Witness validity per class:
    overflow = results[0][2].bugs
    for bug in overflow:
        assert (list(bug.test_case.values())[0] & 0x3F) > 16
    race = results[2][2]
    assert race.halted_paths  # non-racy interleavings pass
    wdt_report = results[3][2]
    bad = {list(b.test_case.values())[0] & 0x1F for b in wdt_report.bugs}
    good = {list(p.test_case.values())[0] & 0x1F
            for p in wdt_report.halted_paths}
    assert min(bad) > max(good)  # a clean starvation threshold


def test_diagnosis_hardware_view(benchmark):
    """Root-cause analysis: the misuse bug's hardware snapshot must show
    the accelerator still busy — the condition the driver ignored."""
    def run():
        session = HardSnapSession(vuln_peripheral_misuse(),
                                  [(catalog.AES128, AES_BASE)],
                                  scan_mode="functional")
        return session.run(max_instructions=500_000, stop_after_bugs=1)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    bug = report.bugs[0]
    hw = bug.hw_snapshot.states["aes128"]["nets"]
    emit("bug_diagnosis",
         f"misuse bug at pc=0x{bug.pc:x}: witness={bug.test_case} "
         f"hardware: busy={hw['busy']} done={hw['done']} round={hw['round']}")
    assert hw["busy"] == 1  # caught red-handed: engine mid-encryption
    assert hw["done"] == 0
    assert 0 < hw["round"] <= 10
