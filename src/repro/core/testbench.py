"""Software-driven hardware testbench (paper §III).

    "[HardSnap] enables security analysts to write a software-based
    testbench, and it generates test cases thanks to the symbolic
    execution engine. HardSnap enables pre-production co-testing of
    hardware and firmware... an embedded software developer can test
    hardware drivers even if the full design is not available."

Two layers:

* :class:`HwTestbench` — a concrete, Python-driven bench over one
  peripheral instance: named-register access, stepping, IRQ waits and
  property checks. This is the "drive hardware components" interface.
* :func:`generate_test_vectors` — run a firmware harness (typically one
  that feeds ``sym`` values into the peripheral) through the symbolic
  engine and return the concrete test vector for every completed path:
  software-generated stimuli for hardware verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import AnalysisReport
from repro.core.hardsnap import HardSnapSession, PeripheralBinding
from repro.errors import TargetError
from repro.targets.base import HardwareTarget, PeripheralInstance


@dataclass
class PropertyFailure:
    name: str
    cycle: int
    detail: str


class HwTestbench:
    """Concrete testbench over one peripheral hosted on a target."""

    def __init__(self, target: HardwareTarget, instance_name: str):
        self.target = target
        self.instance = target.instances.get(instance_name)
        if self.instance is None:
            raise TargetError(f"no instance {instance_name!r} on target")
        self.base = self.instance.region.base
        self.registers = self.instance.spec.registers
        self.failures: List[PropertyFailure] = []
        self._properties: List[Tuple[str, Callable[["HwTestbench"], bool]]] = []

    # -- register access by name ------------------------------------------------

    def _addr(self, register: Union[str, int], offset: int = 0) -> int:
        if isinstance(register, str):
            if register not in self.registers:
                raise TargetError(
                    f"unknown register {register!r}; "
                    f"have {sorted(self.registers)}")
            return self.base + self.registers[register] + offset
        return self.base + register + offset

    def write(self, register: Union[str, int], value: int,
              offset: int = 0) -> None:
        self.target.write(self._addr(register, offset), value)

    def read(self, register: Union[str, int], offset: int = 0) -> int:
        return self.target.read(self._addr(register, offset))

    # -- time / interrupts ----------------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        self.target.step(cycles)
        self._check_properties()

    def wait_for_irq(self, timeout_cycles: int = 10_000,
                     chunk: int = 8) -> bool:
        """Step until the peripheral raises its interrupt line."""
        waited = 0
        while waited < timeout_cycles:
            if self.instance.irq():
                return True
            self.step(chunk)
            waited += chunk
        return False

    def wait_until(self, register: Union[str, int], mask: int,
                   value: Optional[int] = None,
                   timeout_polls: int = 1000) -> bool:
        """Poll ``register`` until ``reg & mask == value`` (default: != 0)."""
        for _ in range(timeout_polls):
            got = self.read(register) & mask
            if (got == value) if value is not None else got:
                return True
        return False

    # -- properties -------------------------------------------------------------------

    def add_property(self, name: str,
                     predicate: Callable[["HwTestbench"], bool]) -> None:
        """Register an invariant checked after every :meth:`step`."""
        self._properties.append((name, predicate))

    def _check_properties(self) -> None:
        for name, predicate in self._properties:
            try:
                ok = predicate(self)
            except Exception as exc:  # property code errors are failures
                ok = False
                detail = f"property raised {exc!r}"
            else:
                detail = "predicate returned False"
            if not ok:
                self.failures.append(PropertyFailure(
                    name, self.target.cycles, detail))

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class TestVector:
    """One software-generated hardware test stimulus."""

    path_id: int
    halt_code: Optional[int]
    assignments: Dict[str, int] = field(default_factory=dict)
    trace_marks: List[int] = field(default_factory=list)


def generate_test_vectors(firmware: str,
                          peripherals: Sequence[PeripheralBinding],
                          max_instructions: int = 500_000,
                          **session_kwargs) -> Tuple[List[TestVector],
                                                     AnalysisReport]:
    """Symbolically execute a firmware harness and emit one concrete test
    vector per completed path (§III: "HardSnap can be used to generate
    software test vectors to test hardware")."""
    session = HardSnapSession(firmware, peripherals, **session_kwargs)
    report = session.run(max_instructions=max_instructions)
    vectors = [TestVector(p.state_id, p.halt_code, dict(p.test_case),
                          list(p.trace_marks))
               for p in report.halted_paths]
    return vectors, report
