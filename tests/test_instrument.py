"""Scan-chain insertion, readback model, Verilog emission tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InstrumentationError
from repro.hdl import elaborate
from repro.instrument import (ReadbackModel, emit_verilog, insert_scan_chain,
                              overhead_row)
from repro.instrument.scan_chain import SCAN_ENABLE, SCAN_IN, SCAN_OUT
from repro.peripherals import catalog
from repro.sim import CompiledSimulation, Interpreter

SMALL = r"""
module small (input wire clk, input wire rst, input wire [7:0] d,
              input wire we, output wire [7:0] q);
    reg [7:0] r1;
    reg [3:0] r2;
    reg flag;
    reg [7:0] ram [0:3];
    always @(posedge clk) begin
        if (rst) begin r1 <= 0; r2 <= 0; flag <= 0; end
        else if (we) begin
            r1 <= d;
            r2 <= r2 + 1;
            flag <= ~flag;
            ram[r2[1:0]] <= d ^ r1;
        end
    end
    assign q = r1 ^ ram[0];
endmodule
"""


def _scan_pass(sim, stream_in, length):
    """Pre-edge-read scan protocol; returns the captured stream."""
    out = 0
    sim.poke(SCAN_ENABLE, 1)
    for k in range(length):
        out |= sim.peek(SCAN_OUT) << k
        sim.poke(SCAN_IN, (stream_in >> k) & 1)
        sim.step()
    sim.poke(SCAN_ENABLE, 0)
    return out


@pytest.fixture(scope="module")
def small_scan():
    design = elaborate(SMALL, "small")
    return design, insert_scan_chain(design)


class TestChainConstruction:
    def test_chain_covers_all_state(self, small_scan):
        design, result = small_scan
        assert result.chain_length == design.state_bit_count == 45

    def test_ports_added(self, small_scan):
        _, result = small_scan
        names = {n.name for n in result.design.inputs}
        assert {SCAN_ENABLE, SCAN_IN} <= names
        assert SCAN_OUT in {n.name for n in result.design.outputs}

    def test_reserved_name_collision_rejected(self):
        src = ("module m (input wire clk, input wire scan_in); "
               "reg r; always @(posedge clk) r <= scan_in; endmodule")
        with pytest.raises(InstrumentationError):
            insert_scan_chain(elaborate(src, "m"))

    def test_no_state_rejected(self):
        src = ("module m (input wire clk, input wire a, output wire o); "
               "assign o = ~a; endmodule")
        with pytest.raises(InstrumentationError):
            insert_scan_chain(elaborate(src, "m"))

    def test_original_design_untouched(self):
        design = elaborate(SMALL, "small")
        before = design.stats()
        insert_scan_chain(design)
        assert design.stats() == before
        assert SCAN_ENABLE not in design.nets

    def test_include_filter_limits_chain(self):
        src = """
        module leaf (input wire clk, input wire [3:0] d, output reg [3:0] q);
            always @(posedge clk) q <= d;
        endmodule
        module top (input wire clk, input wire [3:0] d, output wire [3:0] o);
            wire [3:0] mid;
            reg [7:0] local_reg;
            leaf a (.clk(clk), .d(d), .q(mid));
            leaf b (.clk(clk), .d(mid), .q(o));
            always @(posedge clk) local_reg <= {d, d};
        endmodule
        """
        design = elaborate(src, "top")
        result = insert_scan_chain(design, include=["a"])
        assert result.chain_length == 4
        assert all(e.name.startswith("a.") for e in result.elements)

    def test_memory_limit_exclusion(self):
        design = catalog.DMA.elaborate()  # 8192-bit RAM
        result = insert_scan_chain(design, memory_limit_bits=1024)
        assert "ram" in result.excluded_memories
        assert result.chain_length == design.state_bit_count - 8192


class TestPackUnpack:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_pack_unpack_roundtrip(self, small_scan, data):
        _, result = small_scan
        nets = {}
        mems = {}
        for element in result.elements:
            value = data.draw(st.integers(0, (1 << element.width) - 1))
            if element.kind == "net":
                nets[element.name] = value
            else:
                mems.setdefault(element.name, [0] * 4)[element.word] = value
        stream = result.pack(nets, mems)
        got_nets, got_mems = result.unpack(stream)
        assert got_nets == nets
        for name, words in mems.items():
            for i, w in enumerate(words):
                assert got_mems[name][i] == w

    def test_stream_width_bounded(self, small_scan):
        _, result = small_scan
        nets = {e.name: (1 << e.width) - 1 for e in result.elements
                if e.kind == "net"}
        mems = {"ram": [0xFF] * 4}
        stream = result.pack(nets, mems)
        assert stream < (1 << result.chain_length)


class TestShiftProtocol:
    @pytest.mark.parametrize("backend", [Interpreter, CompiledSimulation],
                             ids=["interp", "compiled"])
    def test_save_restore_by_shifting(self, backend, small_scan):
        _, result = small_scan
        sim = backend(result.design)
        rng = random.Random(9)
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        for _ in range(8):
            sim.poke_many({"d": rng.randrange(256), "we": 1})
            sim.step()
        sim.poke("we", 0)
        current_nets = {e.name: sim.peek(e.name)
                        for e in result.elements if e.kind == "net"}
        current_mems = {"ram": [sim.peek_memory("ram", i) for i in range(4)]}
        expect_out = result.pack(current_nets, current_mems)
        target_nets = {e.name: rng.randrange(1 << e.width)
                       for e in result.elements if e.kind == "net"}
        target_mems = {"ram": [rng.randrange(256) for _ in range(4)]}
        stream_in = result.pack(target_nets, target_mems)
        out = _scan_pass(sim, stream_in, result.chain_length)
        assert out == expect_out
        for name, value in target_nets.items():
            assert sim.peek(name) == value
        for i, value in enumerate(target_mems["ram"]):
            assert sim.peek_memory("ram", i) == value

    def test_circular_rotation_preserves_state(self, small_scan):
        _, result = small_scan
        sim = Interpreter(result.design)
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        sim.poke_many({"d": 0x5A, "we": 1}); sim.step(); sim.poke("we", 0)
        before = {e.name: sim.peek(e.name) for e in result.elements
                  if e.kind == "net"}
        # Rotate: feed each outgoing bit straight back in.
        sim.poke(SCAN_ENABLE, 1)
        for _ in range(result.chain_length):
            sim.poke(SCAN_IN, sim.peek(SCAN_OUT))
            sim.step()
        sim.poke(SCAN_ENABLE, 0)
        after = {e.name: sim.peek(e.name) for e in result.elements
                 if e.kind == "net"}
        assert before == after

    def test_functional_logic_gated_while_scanning(self, small_scan):
        _, result = small_scan
        sim = Interpreter(result.design)
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        sim.poke_many({"d": 0x11, "we": 1})
        r2_before = sim.peek("r2")
        sim.poke(SCAN_ENABLE, 1)
        sim.poke(SCAN_IN, sim.peek(SCAN_OUT))
        sim.step()  # would increment r2 if not gated... but shifts it
        sim.poke(SCAN_ENABLE, 0)
        # r2 was shifted (scan), not incremented (function): shifting one
        # bit means r2 != r2_before + 1 in general; specifically the
        # functional increment path must not have fired. Undo by shifting
        # the rest of the chain and compare.
        sim.poke(SCAN_ENABLE, 1)
        for _ in range(result.chain_length - 1):
            sim.poke(SCAN_IN, sim.peek(SCAN_OUT))
            sim.step()
        sim.poke(SCAN_ENABLE, 0)
        assert sim.peek("r2") == r2_before

    @pytest.mark.parametrize("spec", catalog.CORPUS, ids=lambda s: s.name)
    def test_corpus_chain_lengths(self, spec, corpus_designs):
        design = corpus_designs[spec.name]
        result = insert_scan_chain(design)
        assert result.chain_length == design.state_bit_count
        assert result.chain_length > 100


class TestEmitVerilog:
    @pytest.mark.parametrize("name", ["gpio", "timer", "uart", "intc",
                                      "aes128", "sha256", "dma"])
    def test_corpus_roundtrip_equivalence(self, name, corpus_designs):
        """emit -> reparse -> elaborate -> random co-simulation."""
        design = corpus_designs[name]
        text = emit_verilog(design)
        design2 = elaborate(text, name)
        s1, s2 = Interpreter(design), Interpreter(design2)
        rng = random.Random(13)
        inputs = [n.name for n in design.inputs if n.name != "clk"]
        for s in (s1, s2):
            s.poke("rst", 1); s.step(2); s.poke("rst", 0)
        for _ in range(60):
            pokes = {n: rng.randrange(1 << min(design.nets[n].width, 30))
                     for n in inputs if rng.random() < 0.3}
            for s in (s1, s2):
                if pokes:
                    s.poke_many(pokes)
                s.step()
            for out in design.outputs:
                assert s1.peek(out.name) == s2.peek(out.name), (name, out.name)

    def test_instrumented_design_emits(self, small_scan):
        _, result = small_scan
        text = emit_verilog(result.design)
        assert "scan_enable" in text
        design2 = elaborate(text, "small_scan")
        assert design2.state_bit_count >= result.chain_length


class TestOverheadAndReadback:
    def test_overhead_row_fields(self, small_scan):
        design, result = small_scan
        row = overhead_row(design, result=result)
        assert row.chain_length == 45
        assert row.added_muxes == 45
        assert row.verilog_lines_after > row.verilog_lines_before
        assert row.mux_overhead_pct == 100.0  # one mux per state bit

    def test_readback_latency_monotone_in_state(self):
        model = ReadbackModel()
        small = model.capture_latency_s(100)
        large = model.capture_latency_s(100_000)
        assert large > small > model.setup_s

    def test_readback_frames(self):
        model = ReadbackModel(frame_bits=1000, state_density=0.1)
        assert model.frames_for(100) == 1
        assert model.frames_for(101) == 2
        assert model.frames_for(1000) == 10

    def test_readback_design_summary(self, corpus_designs):
        model = ReadbackModel()
        out = model.capture_design(corpus_designs["aes128"])
        assert out["state_bits"] == corpus_designs["aes128"].state_bit_count
        assert out["latency_s"] > 0
