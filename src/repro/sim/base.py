"""Shared simulation state and API for both simulator backends.

A :class:`BaseSimulation` owns the value store of an elaborated design:
one integer per net, one integer list per memory. Subclasses implement
``_settle`` (evaluate combinational logic) and ``_clock_edge`` (execute
sequential blocks for one rising edge of the stepped clock).

The *hardware state* in the paper's sense — S_hw, the content a snapshot
must capture — is exactly the design's state nets and state memories plus
the primary inputs (the levels an external bus would be driving). Wires
are recomputed by settling after a restore.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.hdl.ir import Design, Memory, Net


class BaseSimulation:
    """Cycle-based simulation of one elaborated design."""

    #: Monotonic counter bumped by every operation that can change the
    #: design's *state* (pokes, clock steps, loads, resets). Targets use
    #: it for incremental snapshot capture: an instance whose version is
    #: unchanged since the last capture is bit-identical to that capture.
    state_version = 0

    def __init__(self, design: Design, clock: str = "clk"):
        self.design = design
        self.clock_name = clock
        if clock not in design.nets:
            raise SimulationError(f"design has no clock net {clock!r}")
        self.values: Dict[str, int] = {}
        self.memories: Dict[str, List[int]] = {}
        self.cycle = 0
        self._vcd = None
        self.reset_state()

    # -- lifecycle ----------------------------------------------------------

    def reset_state(self) -> None:
        """Power-on state: declared initial values, then initial blocks."""
        for name, net in self.design.nets.items():
            self.values[name] = net.initial & net.mask
        for name, mem in self.design.memories.items():
            if mem.initial is not None:
                words = list(mem.initial) + [0] * (mem.depth - len(mem.initial))
                self.memories[name] = [w & mem.mask for w in words[:mem.depth]]
            else:
                self.memories[name] = [0] * mem.depth
        self.cycle = 0
        self.state_version += 1
        self._run_init_blocks()
        self._settle()

    # -- I/O -------------------------------------------------------------------

    def poke(self, name: str, value: int) -> None:
        """Drive a primary input (or force any net) and settle."""
        net = self._net(name)
        self.values[name] = value & net.mask
        self.state_version += 1
        self._settle()

    def poke_many(self, assignments: Dict[str, int]) -> None:
        for name, value in assignments.items():
            net = self._net(name)
            self.values[name] = value & net.mask
        self.state_version += 1
        self._settle()

    def peek(self, name: str) -> int:
        if name not in self.values:
            raise SimulationError(f"unknown net {name!r}")
        return self.values[name]

    def peek_memory(self, name: str, index: int) -> int:
        mem = self._memory(name)
        if not (0 <= index < mem.depth):
            raise SimulationError(
                f"index {index} out of range for {name!r} (depth {mem.depth})")
        return self.memories[name][index]

    def poke_memory(self, name: str, index: int, value: int) -> None:
        mem = self._memory(name)
        if not (0 <= index < mem.depth):
            raise SimulationError(
                f"index {index} out of range for {name!r} (depth {mem.depth})")
        self.memories[name][index] = value & mem.mask
        self.state_version += 1

    def _net(self, name: str) -> Net:
        net = self.design.nets.get(name)
        if net is None:
            raise SimulationError(f"unknown net {name!r}")
        return net

    def _memory(self, name: str) -> Memory:
        mem = self.design.memories.get(name)
        if mem is None:
            raise SimulationError(f"unknown memory {name!r}")
        return mem

    # -- time ---------------------------------------------------------------------

    #: Set by backends that found negedge-triggered blocks in the design;
    #: enables the mid-cycle settle + falling-edge evaluation.
    _has_negedge = False

    def step(self, cycles: int = 1) -> None:
        """Advance *cycles* full clock periods (rising then falling edge)."""
        if cycles:
            self.state_version += 1
        if self._has_negedge:
            for _ in range(cycles):
                self.values[self.clock_name] = 1
                self._clock_edge()
                self._settle()
                self.values[self.clock_name] = 0
                self._clock_negedge()
                self._settle()
                self.cycle += 1
                if self._vcd is not None:
                    self._vcd.sample(self.cycle, self.values)
            return
        for _ in range(cycles):
            self.values[self.clock_name] = 1
            self._clock_edge()
            self.values[self.clock_name] = 0
            self._settle()
            self.cycle += 1
            if self._vcd is not None:
                self._vcd.sample(self.cycle, self.values)

    def _clock_negedge(self) -> None:  # pragma: no cover - overridden
        """Falling-edge hook; backends with negedge blocks override."""

    def settle(self) -> None:
        """Re-evaluate combinational logic without a clock edge."""
        self._settle()

    # -- state capture ----------------------------------------------------------------

    def save_state(self) -> Dict[str, object]:
        """Capture S_hw: state nets, state memories, primary input levels."""
        nets = {n.name: self.values[n.name] for n in self.design.state_nets}
        for n in self.design.inputs:
            nets[n.name] = self.values[n.name]
        mems = {m.name: list(self.memories[m.name])
                for m in self.design.state_memories}
        return {"cycle": self.cycle, "nets": nets, "memories": mems}

    def load_state(self, snapshot: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`save_state` and settle."""
        nets: Dict[str, int] = snapshot["nets"]  # type: ignore[assignment]
        mems: Dict[str, List[int]] = snapshot["memories"]  # type: ignore[assignment]
        for name, value in nets.items():
            net = self._net(name)
            self.values[name] = value & net.mask
        for name, words in mems.items():
            mem = self._memory(name)
            if len(words) != mem.depth:
                raise SimulationError(
                    f"snapshot for {name!r} has {len(words)} words, "
                    f"expected {mem.depth}")
            self.memories[name] = [w & mem.mask for w in words]
        self.cycle = int(snapshot.get("cycle", 0))  # type: ignore[arg-type]
        self.state_version += 1
        self._settle()

    # -- tracing ------------------------------------------------------------------------

    def attach_vcd(self, writer) -> None:
        """Attach a VCD writer; it is sampled after every clock cycle."""
        self._vcd = writer
        writer.declare(self.design)
        writer.sample(self.cycle, self.values)

    def detach_vcd(self) -> None:
        self._vcd = None

    # -- backend hooks ------------------------------------------------------------------

    def _settle(self) -> None:
        raise NotImplementedError

    def _clock_edge(self) -> None:
        raise NotImplementedError

    def _run_init_blocks(self) -> None:
        raise NotImplementedError
