"""Hardware snapshot diffing — the root-cause analysis aid.

Paper §III: "Snapshots can reduce the time to fix bugs by offering a
complete view of the peripheral state." In practice the first question
is *what changed*: between the last known-good snapshot and the state at
the failure, or between a passing and a failing path's hardware.

:func:`diff_snapshots` produces a structured, per-instance delta of net
values and memory words; :func:`format_diff` renders it for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.targets.base import HwSnapshot


@dataclass
class NetDelta:
    instance: str
    net: str
    before: int
    after: int


@dataclass
class MemoryDelta:
    instance: str
    memory: str
    word: int
    before: int
    after: int


@dataclass
class SnapshotDiff:
    nets: List[NetDelta] = field(default_factory=list)
    memories: List[MemoryDelta] = field(default_factory=list)
    #: Instances present in only one snapshot.
    only_before: List[str] = field(default_factory=list)
    only_after: List[str] = field(default_factory=list)

    @property
    def changed_count(self) -> int:
        return len(self.nets) + len(self.memories)

    @property
    def is_empty(self) -> bool:
        return (self.changed_count == 0 and not self.only_before
                and not self.only_after)


def diff_snapshots(before: HwSnapshot, after: HwSnapshot) -> SnapshotDiff:
    """Structured delta between two hardware snapshots."""
    diff = SnapshotDiff()
    before_names = set(before.states)
    after_names = set(after.states)
    diff.only_before = sorted(before_names - after_names)
    diff.only_after = sorted(after_names - before_names)
    for name in sorted(before_names & after_names):
        state_a = before.states[name]
        state_b = after.states[name]
        nets_a: Dict[str, int] = state_a.get("nets", {})
        nets_b: Dict[str, int] = state_b.get("nets", {})
        for net in sorted(set(nets_a) | set(nets_b)):
            va, vb = nets_a.get(net, 0), nets_b.get(net, 0)
            if va != vb:
                diff.nets.append(NetDelta(name, net, va, vb))
        mems_a = state_a.get("memories", {})
        mems_b = state_b.get("memories", {})
        for mem in sorted(set(mems_a) | set(mems_b)):
            words_a = mems_a.get(mem, [])
            words_b = mems_b.get(mem, [])
            depth = max(len(words_a), len(words_b))
            for i in range(depth):
                va = words_a[i] if i < len(words_a) else 0
                vb = words_b[i] if i < len(words_b) else 0
                if va != vb:
                    diff.memories.append(MemoryDelta(name, mem, i, va, vb))
    return diff


def format_diff(diff: SnapshotDiff, limit: int = 40) -> str:
    """Human-readable rendering of a snapshot delta."""
    if diff.is_empty:
        return "snapshots are identical"
    lines: List[str] = [f"{diff.changed_count} state element(s) differ"]
    for d in diff.nets[:limit]:
        lines.append(f"  {d.instance}.{d.net}: "
                     f"0x{d.before:x} -> 0x{d.after:x}")
    for d in diff.memories[:max(0, limit - len(diff.nets))]:
        lines.append(f"  {d.instance}.{d.memory}[{d.word}]: "
                     f"0x{d.before:x} -> 0x{d.after:x}")
    shown = min(diff.changed_count, limit)
    if shown < diff.changed_count:
        lines.append(f"  ... {diff.changed_count - shown} more")
    for name in diff.only_before:
        lines.append(f"  instance {name!r} only in the first snapshot")
    for name in diff.only_after:
        lines.append(f"  instance {name!r} only in the second snapshot")
    return "\n".join(lines)
