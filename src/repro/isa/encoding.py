"""The HS32 instruction set — the firmware substrate.

A compact 32-bit load/store ISA playing the role the ARM Cortex-M
firmware plays in Inception/HardSnap: small enough to execute both
concretely and symbolically, expressive enough for realistic drivers
(byte memory ops for buffers, interrupts, a link register for calls).

Formats (32-bit fixed width, opcode in bits [31:26]):

* **R**: ``op rd(4) rs1(4) rs2(4) pad(14)`` — register ALU
* **I**: ``op rd(4) rs1(4) imm18`` — immediates, loads (``rd <- [rs1+imm]``)
* **S**: ``op rv(4) rb(4) imm18`` — stores (``[rb+imm] <- rv``)
* **B**: ``op ra(4) rb(4) imm18`` — branches (PC-relative byte offset)
* **J**: ``op rd(4) imm22`` — jump-and-link

16 general registers; by convention ``r13`` is the stack pointer (``sp``)
and ``r14`` the link register (``lr``). ``r0`` is an ordinary register
(no hardwired zero); the assembler initialises it to 0 at reset.

The ``HS`` opcode hosts the testing intrinsics (KLEE-style): make a
register symbolic, assume/assert, interrupt control, coverage marks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AssemblerError

NUM_REGS = 16
REG_SP = 13
REG_LR = 14

# Opcodes ------------------------------------------------------------------

# R-type ALU
ADD, SUB, AND, OR, XOR = 0x01, 0x02, 0x03, 0x04, 0x05
SLL, SRL, SRA = 0x06, 0x07, 0x08
MUL, DIVU, REMU = 0x09, 0x0A, 0x0B
SLT, SLTU = 0x0C, 0x0D

# I-type ALU
ADDI, ANDI, ORI, XORI = 0x10, 0x11, 0x12, 0x13
SLLI, SRLI, SRAI = 0x14, 0x15, 0x16
LUI = 0x17

# Memory
LW, LB, LBU = 0x18, 0x19, 0x1A
SW, SB = 0x1C, 0x1D

# Branches (B-type)
BEQ, BNE, BLT, BGE, BLTU, BGEU = 0x20, 0x21, 0x22, 0x23, 0x24, 0x25

# Jumps
JAL, JALR = 0x28, 0x29

# System
HALT, HS, IRET = 0x30, 0x31, 0x32

#: HS intrinsic function codes (in the low bits of imm18).
HS_SYMBOLIC = 1    # rd <- fresh 32-bit symbolic value
HS_ASSUME = 2      # assume rs1 != 0
HS_ASSERT = 3      # assert rs1 != 0 (detector fires when falsifiable)
HS_SET_IVT = 4     # interrupt handler address <- rs1
HS_EI = 5          # enable interrupts
HS_DI = 6          # disable interrupts
HS_TRACE = 7       # emit trace/coverage mark with id rs1
HS_SYMBOLIC_BYTES = 8  # make rs1-pointed buffer of rd bytes symbolic

R_TYPE = frozenset({ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, MUL, DIVU, REMU,
                    SLT, SLTU})
I_ALU = frozenset({ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, LUI})
LOADS = frozenset({LW, LB, LBU})
STORES = frozenset({SW, SB})
BRANCHES = frozenset({BEQ, BNE, BLT, BGE, BLTU, BGEU})

OPCODE_NAMES: Dict[int, str] = {
    ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
    SLL: "sll", SRL: "srl", SRA: "sra", MUL: "mul", DIVU: "divu",
    REMU: "remu", SLT: "slt", SLTU: "sltu",
    ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
    SLLI: "slli", SRLI: "srli", SRAI: "srai", LUI: "lui",
    LW: "lw", LB: "lb", LBU: "lbu", SW: "sw", SB: "sb",
    BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
    BLTU: "bltu", BGEU: "bgeu",
    JAL: "jal", JALR: "jalr",
    HALT: "halt", HS: "hs", IRET: "iret",
}

_IMM18_MIN, _IMM18_MAX = -(1 << 17), (1 << 17) - 1
_IMM22_MIN, _IMM22_MAX = -(1 << 21), (1 << 21) - 1


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    opcode: int
    rd: int = 0     # also rv (stores) / ra (branches)
    rs1: int = 0    # also rb (stores, branches)
    rs2: int = 0
    imm: int = 0    # sign-extended

    @property
    def name(self) -> str:
        return OPCODE_NAMES.get(self.opcode, f"op{self.opcode:#x}")


def _check_reg(reg: int) -> int:
    if not (0 <= reg < NUM_REGS):
        raise AssemblerError(f"register index {reg} out of range")
    return reg


def encode_r(opcode: int, rd: int, rs1: int, rs2: int) -> int:
    return ((opcode & 0x3F) << 26 | _check_reg(rd) << 22
            | _check_reg(rs1) << 18 | _check_reg(rs2) << 14)


def encode_i(opcode: int, rd: int, rs1: int, imm: int) -> int:
    if not (_IMM18_MIN <= imm <= _IMM18_MAX):
        raise AssemblerError(f"immediate {imm} out of 18-bit signed range")
    return ((opcode & 0x3F) << 26 | _check_reg(rd) << 22
            | _check_reg(rs1) << 18 | (imm & 0x3FFFF))


def encode_j(opcode: int, rd: int, imm: int) -> int:
    if not (_IMM22_MIN <= imm <= _IMM22_MAX):
        raise AssemblerError(f"jump offset {imm} out of 22-bit signed range")
    return ((opcode & 0x3F) << 26 | _check_reg(rd) << 22 | (imm & 0x3FFFFF))


def decode(word: int) -> Instruction:
    """Decode a 32-bit instruction word."""
    opcode = (word >> 26) & 0x3F
    rd = (word >> 22) & 0xF
    rs1 = (word >> 18) & 0xF
    rs2 = (word >> 14) & 0xF
    if opcode in R_TYPE:
        return Instruction(opcode, rd, rs1, rs2)
    if opcode == JAL:
        imm = word & 0x3FFFFF
        if imm & 0x200000:
            imm -= 1 << 22
        return Instruction(opcode, rd, imm=imm)
    imm = word & 0x3FFFF
    if imm & 0x20000:
        imm -= 1 << 18
    return Instruction(opcode, rd, rs1, rs2, imm)


def is_valid_opcode(opcode: int) -> bool:
    return opcode in OPCODE_NAMES
