"""Unit tests for the bit-level dataflow framework (repro.opt).

The differential gate (``tests/test_opt_differential.py``) proves the
optimizer preserves semantics end to end; these tests pin down the
individual analyses — the lattice algebra, forward constant
propagation, backward liveness, cone extraction, wire fusion, and the
exact case-coverage check the latch rule depends on.
"""

import random

import pytest

from repro.hdl import elaborate, ir
from repro.lint.analysis import _labels_cover
from repro.opt import (BitsVal, comb_cone, constant_map, eval_expr,
                       flatten_cone, inline_single_use_wires, join,
                       live_masks, of_const, optimize, run_opt, top)


def _lookup(env):
    return lambda name: env[name]


class TestLattice:
    def test_const_roundtrip(self):
        v = of_const(0xAB, 8)
        assert v.is_const and v.value == 0xAB and v.known == 0xFF

    def test_top_knows_nothing(self):
        t = top(8)
        assert t.known == 0 and not t.is_const

    def test_join_keeps_agreeing_bits(self):
        a = of_const(0b1100, 4)
        b = of_const(0b1010, 4)
        j = join(a, b)
        # Bits 3 (both 1) and 0 (both 0) survive; 2 and 1 disagree.
        assert j.known == 0b1001
        assert j.value == 0b1000

    def test_join_with_top_is_top(self):
        assert join(of_const(5, 4), top(4)).known == 0

    def test_and_known_zeros_propagate(self):
        # x & 0xF0: low nibble is known 0 whatever x is.
        x = ir.Ref(ir.Net("x", 8), width=8)
        expr = ir.Binary("&", x, ir.const(0xF0, 8), width=8)
        bits = eval_expr(expr, _lookup({"x": top(8)}))
        assert bits.known & 0x0F == 0x0F
        assert bits.value & 0x0F == 0

    def test_or_known_ones_propagate(self):
        x = ir.Ref(ir.Net("x", 8), width=8)
        expr = ir.Binary("|", x, ir.const(0x81, 8), width=8)
        bits = eval_expr(expr, _lookup({"x": top(8)}))
        assert bits.known & 0x81 == 0x81
        assert bits.value & 0x81 == 0x81

    def test_add_trailing_known_run(self):
        # x + 4 with x's low two bits known 0: the low two result bits
        # are known (no carry can reach below the first unknown bit).
        x = BitsVal(8, known=0x03, value=0x00)
        xn = ir.Ref(ir.Net("x", 8), width=8)
        expr = ir.Binary("+", xn, ir.const(4, 8), width=8)
        bits = eval_expr(expr, _lookup({"x": x}))
        assert bits.known & 0x03 == 0x03
        assert bits.value & 0x03 == 0

    def test_eq_provably_unequal(self):
        # Known bits disagree -> comparison folds to 0.
        a = BitsVal(4, known=0b0001, value=0b0001)
        an = ir.Ref(ir.Net("a", 4), width=4)
        expr = ir.Binary("==", an, ir.const(0b0000, 4), width=1)
        bits = eval_expr(expr, _lookup({"a": a}))
        assert bits.is_const and bits.value == 0

    def test_division_by_known_zero(self):
        # Interpreter: x / 0 == all-ones mask.  The lattice folds a
        # division only when both operands are fully known.
        expr = ir.Binary("/", ir.const(5, 8), ir.const(0, 8), width=8)
        bits = eval_expr(expr, _lookup({}))
        assert bits.is_const and bits.value == 0xFF
        # An unknown dividend must stay unknown, never a wrong fold.
        xn = ir.Ref(ir.Net("x", 8), width=8)
        unk = eval_expr(ir.Binary("/", xn, ir.const(0, 8), width=8),
                        _lookup({"x": top(8)}))
        assert unk.known == 0

    def test_shift_by_large_constant(self):
        xn = ir.Ref(ir.Net("x", 8), width=8)
        expr = ir.Binary("<<", xn, ir.const(70, 8), width=8)
        bits = eval_expr(expr, _lookup({"x": top(8)}))
        assert bits.is_const and bits.value == 0

    def test_zext_makes_high_bits_known_zero(self):
        v = top(4).zext(8)
        assert v.known == 0xF0 and v.value == 0

    @pytest.mark.parametrize("op", ["+", "-", "*", "&", "|", "^", "<<",
                                    ">>", "==", "!=", "<", "<=", ">", ">="])
    def test_soundness_against_concrete(self, op):
        """Whatever the lattice claims as known must match the concrete
        evaluation for every concretization of the unknown bits."""
        rng = random.Random(hash(op) & 0xFFFF)
        width = 4
        out_width = 1 if op in ("==", "!=", "<", "<=", ">", ">=") else width
        an = ir.Ref(ir.Net("a", width), width=width)
        expr = ir.Binary(op, an, ir.const(rng.randrange(16), width),
                         width=out_width)
        for _ in range(20):
            known = rng.randrange(16)
            value = rng.randrange(16) & known
            bits = eval_expr(expr, _lookup({"a": BitsVal(width, known,
                                                         value)}))
            b = expr.right.value
            for a in range(16):
                if (a & known) != value:
                    continue  # not a concretization of the lattice value
                mask = (1 << out_width) - 1
                if op == "+":
                    concrete = (a + b) & mask
                elif op == "-":
                    concrete = (a - b) & mask
                elif op == "*":
                    concrete = (a * b) & mask
                elif op == "&":
                    concrete = a & b
                elif op == "|":
                    concrete = a | b
                elif op == "^":
                    concrete = a ^ b
                elif op == "<<":
                    concrete = (a << b) & mask if b < 64 else 0
                elif op == ">>":
                    concrete = a >> b if b < 64 else 0
                else:
                    concrete = int(eval(f"{a} {op} {b}"))  # noqa: S307
                assert concrete & bits.known == bits.value, (
                    f"{op}: a={a} b={b} lattice={bits}")


SIMPLE = """
module m (input wire clk, input wire a, output wire [7:0] y);
    reg [7:0] q;
    wire [7:0] k;
    assign k = 8'h0F & 8'hF0;
    always @(posedge clk) q <= q + {7'b0, a};
    assign y = q | k;
endmodule
"""


class TestConstantMap:
    def test_folds_constant_wire(self):
        env = constant_map(elaborate(SIMPLE, "m"))
        assert env["k"].is_const and env["k"].value == 0

    def test_inputs_are_unknown(self):
        env = constant_map(elaborate(SIMPLE, "m"))
        assert env["a"].known == 0

    def test_state_feedback_reaches_fixpoint(self):
        # q increments freely: must settle to unknown, not oscillate.
        env = constant_map(elaborate(SIMPLE, "m"))
        assert env["q"].known != 0xFF


DEAD = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    reg [7:0] hidden;
    always @(posedge clk) begin
        q <= a;
        hidden <= hidden + 1;
    end
    assign y = q;
endmodule
"""


class TestLiveness:
    def test_unobservable_state_is_dead(self):
        live = live_masks(elaborate(DEAD, "m"), include_state_sinks=False)
        assert live.net_masks.get("hidden", 0) == 0
        assert live.net_masks["q"] == 1

    def test_state_sinks_keep_state_live(self):
        live = live_masks(elaborate(DEAD, "m"), include_state_sinks=True)
        assert live.net_masks["hidden"] == 0xFF

    def test_extra_live_seeds_survive(self):
        live = live_masks(elaborate(DEAD, "m"),
                          include_state_sinks=False,
                          extra_live=("hidden",))
        assert live.net_masks["hidden"] == 0xFF


CONE = """
module m (input wire clk, input wire [3:0] a, input wire [3:0] b,
          output wire [3:0] y, output wire z);
    reg [3:0] q;
    wire [3:0] s;
    wire [3:0] t;
    assign s = a ^ b;
    assign t = s & q;
    assign z = a[0];
    always @(posedge clk) q <= t;
    assign y = t;
endmodule
"""


class TestCones:
    def test_cone_is_ordered_and_minimal(self):
        design = elaborate(CONE, "m")
        cone = comb_cone(design, ["t"])
        written = [name for block in cone for name in sorted(block.writes)]
        # s must come before t; z's driver is outside the cone.
        assert written.index("s") < written.index("t")
        assert "z" not in written

    def test_flatten_cone_expression(self):
        design = elaborate(CONE, "m")
        stmts = flatten_cone(comb_cone(design, ["t"]))
        reads, writes = ir.stmt_reads_writes(stmts)
        assert "t" in writes and "z" not in writes
        # External inputs of the cone: everything read but not produced
        # inside it.
        assert reads - writes == {"a", "b", "q"}

    def test_single_use_wire_fusion(self):
        design = elaborate(CONE, "m")
        protected = {n.name for n in design.inputs}
        protected |= {n.name for n in design.outputs}
        protected |= {n.name for n in design.state_nets}
        fused = inline_single_use_wires(design, protected)
        assert "s" in fused
        assert "s" not in design.nets


class TestTransform:
    def test_optimize_reports_and_preserves_state(self):
        design = elaborate(SIMPLE, "m")
        result = run_opt(design)
        assert result.report.total > 0
        assert [n.name for n in result.design.state_nets] == \
            [n.name for n in design.state_nets]

    def test_optimize_does_not_mutate_input(self):
        design = elaborate(SIMPLE, "m")
        nets_before = set(design.nets)
        optimize(design)
        assert set(design.nets) == nets_before

    def test_report_summary_mentions_folds(self):
        report = run_opt(elaborate(SIMPLE, "m")).report
        assert report.summary()


class TestLabelsCover:
    def test_brute_force_equivalence(self):
        """The set-cover check agrees with explicit enumeration for every
        random label set over a 4-bit space."""
        rng = random.Random(99)
        width, space = 4, 16
        for _ in range(300):
            labels = []
            for _ in range(rng.randint(1, 5)):
                care = rng.randrange(space)
                labels.append((rng.randrange(space) & care, care))
            covered = all(
                any((v & care) == match for match, care in labels)
                for v in range(space))
            assert _labels_cover(labels) == covered, labels

    def test_full_binary_cover(self):
        labels = [(v, 0b11) for v in range(4)]
        assert _labels_cover(labels)

    def test_wildcard_covers(self):
        assert _labels_cover([(0, 0)])

    def test_wide_case_is_cheap(self):
        """The pre-fix exponential enumeration would hang here: 2^64
        values, covered by two complementary casez cubes."""
        labels = [(0, 1), (1, 1)]  # bit0==0 or bit0==1 over 64 bits
        assert _labels_cover(labels)
        assert not _labels_cover([(0, 1)])

    def test_interned_consts_share_nodes(self):
        assert ir.const(5, 8) is ir.const(5, 8)
        assert ir.const(5, 8) is not ir.const(5, 9)
        assert ir.const(0x1FF, 8).value == 0xFF  # masked to width


class TestCaseFullWideSubject(object):
    def test_wide_full_case_detected(self):
        # 16-bit subject fully covered by casez cubes — enumeration
        # (65536 values) used to be the cost; the cover check is linear.
        src = """
module m (input wire clk, input wire [15:0] s, output wire y);
    reg q;
    reg v;
    always @(*) begin
        casez (s)
            16'b0???????????????: v = 1'b0;
            16'b1???????????????: v = 1'b1;
        endcase
    end
    always @(posedge clk) q <= v;
    assign y = q;
endmodule
"""
        from repro.lint import lint_source
        report = lint_source(src, "m")
        assert not any(d.rule == "latch" for d in report.diagnostics)
