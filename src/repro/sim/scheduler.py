"""Combinational scheduling: order comb blocks by data dependency.

A cycle-based simulator evaluates combinational logic once per delta in
dependency order (Verilator's approach) instead of re-triggering events.
This module computes that order: block ``A`` must run before block ``B``
when ``A`` writes a signal ``B`` reads. Self-dependencies (a block reading
bits of a net it partially writes) are ignored — they model latching /
read-modify-write inside one process, not an inter-block loop.

A strongly connected component of size > 1, or a true self-loop through
two blocks, means a combinational loop: rejected with
:class:`CombinationalLoopError`, as Verilator's UNOPTFLAT does.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Sequence

from repro.errors import CombinationalLoopError
from repro.hdl.ir import CombBlock, Design


def order_comb_blocks(design: Design) -> List[CombBlock]:
    """Topologically order the design's comb blocks; raise on loops."""
    blocks = design.comb_blocks
    writers: Dict[str, List[int]] = defaultdict(list)
    for i, block in enumerate(blocks):
        for name in block.writes:
            writers[name].append(i)
    # Edge i -> j when block i writes something block j reads.
    succ: Dict[int, set] = defaultdict(set)
    indegree = [0] * len(blocks)
    for j, block in enumerate(blocks):
        deps = set()
        for name in block.reads:
            for i in writers.get(name, ()):
                if i != j:
                    deps.add(i)
        for i in deps:
            if j not in succ[i]:
                succ[i].add(j)
                indegree[j] += 1
    queue = deque(i for i in range(len(blocks)) if indegree[i] == 0)
    order: List[int] = []
    while queue:
        i = queue.popleft()
        order.append(i)
        for j in succ[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                queue.append(j)
    if len(order) != len(blocks):
        stuck = [blocks[i].name for i in range(len(blocks))
                 if indegree[i] > 0][:8]
        raise CombinationalLoopError(
            f"combinational loop through blocks: {', '.join(stuck)}")
    return [blocks[i] for i in order]


def clock_domain(design: Design, clock_name: str) -> set:
    """Names of nets identical to *clock_name* through identity comb assigns.

    Hierarchical flattening connects a child's clock port to the parent
    clock with a glue assignment (``c0.clk = clk``). Sequential blocks deep
    in the hierarchy reference their local clock net; this closure lets the
    simulator recognise them as belonging to the stepped clock.
    """
    from repro.hdl.ir import LNet, Ref, SAssign

    aliases = {clock_name}
    changed = True
    while changed:
        changed = False
        for block in design.comb_blocks:
            if len(block.stmts) != 1:
                continue
            stmt = block.stmts[0]
            if not isinstance(stmt, SAssign):
                continue
            if not (isinstance(stmt.target, LNet) and stmt.target.hi is None):
                continue
            if not isinstance(stmt.value, Ref):
                continue
            src, dst = stmt.value.net.name, stmt.target.net.name
            if src in aliases and dst not in aliases:
                aliases.add(dst)
                changed = True
            elif dst in aliases and src not in aliases:
                aliases.add(src)
                changed = True
    return aliases


def comb_input_cone(design: Design) -> Dict[str, set]:
    """For each comb-written net, the set of state/input nets it depends on.

    Used by the instrumentation report and by tests asserting that the
    scan chain (state bits) plus primary inputs determine every wire.
    """
    ordered = order_comb_blocks(design)
    state_names = {n.name for n in design.state_nets}
    state_names |= {m.name for m in design.state_memories}
    state_names |= {n.name for n in design.inputs}
    cone: Dict[str, set] = {name: {name} for name in state_names}
    for block in ordered:
        acc: set = set()
        for name in block.reads:
            acc |= cone.get(name, {name} if name in state_names else set())
        for name in block.writes:
            existing = cone.get(name, set())
            cone[name] = existing | acc
    return cone
