"""Differential fuzzing of the symbolic executor against the concrete
reference core on randomly generated (fully concrete) programs.

The generator emits terminating straight-line-plus-bounded-loop programs
over the full ALU/memory subset; both engines must agree on every
register, the halt code, and RAM contents.
"""

import random

import pytest

from repro.isa import Cpu, assemble
from repro.isa import encoding as enc
from repro.vm import SymbolicExecutor

_ALU_R = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mul",
          "divu", "remu", "slt", "sltu"]
_ALU_I = ["addi", "andi", "ori", "xori", "slli", "srli", "srai"]


def _random_program(seed: int) -> str:
    """A random terminating program using registers r1..r9 and a small
    scratch region; r10 is the memory base, r11/r12 loop bookkeeping."""
    rng = random.Random(seed)
    lines = ["start:", "    movi r10, 0x2000"]
    for r in range(1, 10):
        lines.append(f"    movi r{r}, {rng.randrange(0, 1 << 16)}")
    for i in range(rng.randint(8, 30)):
        kind = rng.random()
        if kind < 0.45:
            op = rng.choice(_ALU_R)
            rd, rs1, rs2 = (rng.randint(1, 9) for _ in range(3))
            lines.append(f"    {op} r{rd}, r{rs1}, r{rs2}")
        elif kind < 0.7:
            op = rng.choice(_ALU_I)
            rd, rs1 = rng.randint(1, 9), rng.randint(1, 9)
            imm = (rng.randrange(0, 32) if op in ("slli", "srli", "srai")
                   else rng.randrange(-1000, 1000))
            lines.append(f"    {op} r{rd}, r{rs1}, {imm}")
        elif kind < 0.85:
            rs = rng.randint(1, 9)
            offset = 4 * rng.randrange(16)
            if rng.random() < 0.5:
                lines.append(f"    sw r{rs}, {offset}(r10)")
            else:
                lines.append(f"    lw r{rs}, {offset}(r10)")
        else:
            # Bounded count-down loop accumulating into a register.
            label = f"loop{i}"
            count = rng.randint(1, 6)
            acc, src = rng.randint(1, 9), rng.randint(1, 9)
            lines.append(f"    movi r11, {count}")
            lines.append(f"{label}:")
            lines.append(f"    add r{acc}, r{acc}, r{src}")
            lines.append("    dec r11")
            lines.append(f"    bne r11, r0, {label}")
    result = rng.randint(1, 9)
    lines.append(f"    halt r{result}")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("seed", range(25))
def test_random_program_differential(seed):
    src = _random_program(seed)
    program = assemble(src)

    cpu = Cpu(program)
    cpu_exit = cpu.run(max_steps=50_000)
    assert cpu_exit.reason == "halt"

    executor = SymbolicExecutor(program, bridge=None)
    state = executor.make_initial_state()
    while state.is_active and state.steps < 50_000:
        outcome = executor.step(state)
        assert not outcome.forks, "concrete program must not fork"
    assert state.status == "halted", state.error
    assert state.halt_code == cpu_exit.code

    # Full architectural state agreement.
    for i in range(enc.NUM_REGS):
        value = state.reg(i)
        assert isinstance(value, int)
        assert value == cpu.regs[i], f"r{i}"
    for offset in range(0, 64, 4):
        addr = 0x2000 + offset
        assert state.memory.read(addr, 4) == cpu.load(addr, 4), hex(addr)
