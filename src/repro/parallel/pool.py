"""The worker pool: process lifecycle and job plumbing.

One process per worker, each with a private job queue (so the
coordinator chooses *which* worker runs *which* lease — required for
chunk-channel bookkeeping, since delta encoding is per-peer) and one
shared result queue. Fork start method is preferred (workers inherit the
imported modules); spawn works too because every job payload and the
recipe are plain picklable data.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.errors import VmError
from repro.parallel.recipe import SessionRecipe
from repro.parallel.wire import WireStats
from repro.parallel.workers import STOP, _worker_main


class WorkerError(VmError):
    """A worker process raised; carries the remote traceback."""


@dataclass
class PoolStats:
    """Coordinator-side accounting for one parallel run (the CLI's
    ``--workers`` epilogue)."""

    workers: int = 0
    leases: int = 0
    batches: int = 0
    states_shipped: int = 0
    wire: WireStats = field(default_factory=WireStats)
    host_time_s: float = 0.0

    def summary(self) -> str:
        lines = [f"[pool] workers={self.workers} leases={self.leases} "
                 f"batches={self.batches} host={self.host_time_s:.3f}s"]
        if self.wire.snapshots_sent or self.wire.snapshots_received:
            lines.append(
                f"[pool] snapshots shipped={self.wire.snapshots_sent} "
                f"received={self.wire.snapshots_received} "
                f"chunk-hits={self.wire.chunk_hits} "
                f"misses={self.wire.chunk_misses} "
                f"logical={self.wire.logical_bits_sent}b "
                f"sent={self.wire.payload_bits_sent}b "
                f"(delta x{self.wire.delta_ratio:.1f})"
                if self.wire.delta_ratio != float("inf") else
                f"[pool] snapshots shipped={self.wire.snapshots_sent} "
                f"received={self.wire.snapshots_received} all by reference")
        return "\n".join(lines)


class WorkerPool:
    """N worker processes serving engine leases and fuzz batches."""

    def __init__(self, recipe: SessionRecipe, workers: int,
                 start_method: Optional[str] = None):
        if workers < 1:
            raise VmError(f"need at least one worker, got {workers}")
        if start_method is None:
            start_method = ("fork" if "fork" in mp.get_all_start_methods()
                            else "spawn")
        ctx = mp.get_context(start_method)
        self.workers = workers
        self.stats = PoolStats(workers=workers)
        self._jobs = [ctx.Queue() for _ in range(workers)]
        self._results = ctx.Queue()
        self._procs = [
            ctx.Process(target=_worker_main,
                        args=(i, recipe, self._jobs[i], self._results),
                        daemon=True, name=f"repro-worker-{i}")
            for i in range(workers)]
        for proc in self._procs:
            proc.start()
        self._closed = False

    # -- job plumbing -------------------------------------------------------

    def submit(self, worker_id: int, kind: str, payload: Any) -> None:
        self._jobs[worker_id].put((kind, payload))

    def next_result(self, timeout: Optional[float] = None
                    ) -> Tuple[str, int, Any]:
        """Blocking wait for the next worker result; re-raises worker
        failures (with the remote traceback) as :class:`WorkerError`."""
        kind, worker_id, payload = self._results.get(timeout=timeout)
        if kind == "error":
            raise WorkerError(
                f"worker {worker_id} failed:\n{payload}")
        return kind, worker_id, payload

    def broadcast(self, kind: str, payload: Any) -> None:
        for i in range(self.workers):
            self.submit(i, kind, payload)

    def warm(self, harness: str) -> None:
        """Pre-build every worker's harness (target elaboration is the
        expensive part) so benchmarks measure execution, not setup."""
        self.broadcast("warm", {"kind": harness})
        for _ in range(self.workers):
            kind, _, _ = self.next_result(timeout=120)
            assert kind == "warmed"

    # -- lifecycle ----------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        if self._closed:
            return
        self._closed = True
        for queue in self._jobs:
            try:
                queue.put(STOP)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(max(0.1, deadline - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
