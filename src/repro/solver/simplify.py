"""Rewrite-based simplification and substitution over BitVec DAGs.

The expression constructors in :mod:`repro.solver.expr` already fold
constants and apply cheap local identities; this module adds the
passes that need a full traversal:

* :func:`substitute` — replace variables (or arbitrary sub-expressions)
  and rebuild through the folding constructors, so a fully concrete
  assignment collapses an expression to a constant,
* :func:`simplify` — a bottom-up rebuild with a few non-local rules that
  help symbolic-execution workloads (comparison canonicalisation,
  ite-condition propagation).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import SolverError
from repro.solver import expr as E

# Builders dispatched by op during reconstruction.
_REBUILD = {
    E.ADD: lambda n, a: E.add(a[0], a[1]),
    E.SUB: lambda n, a: E.sub(a[0], a[1]),
    E.MUL: lambda n, a: E.mul(a[0], a[1]),
    E.UDIV: lambda n, a: E.udiv(a[0], a[1]),
    E.UREM: lambda n, a: E.urem(a[0], a[1]),
    E.AND: lambda n, a: E.and_(a[0], a[1]),
    E.OR: lambda n, a: E.or_(a[0], a[1]),
    E.XOR: lambda n, a: E.xor(a[0], a[1]),
    E.NOT: lambda n, a: E.not_(a[0]),
    E.NEG: lambda n, a: E.neg(a[0]),
    E.SHL: lambda n, a: E.shl(a[0], a[1]),
    E.LSHR: lambda n, a: E.lshr(a[0], a[1]),
    E.ASHR: lambda n, a: E.ashr(a[0], a[1]),
    E.CONCAT: lambda n, a: E.concat(*a),
    E.EXTRACT: lambda n, a: E.extract(a[0], n.value >> 16, n.value & 0xFFFF),
    E.ZEXT: lambda n, a: E.zext(a[0], n.width),
    E.SEXT: lambda n, a: E.sext(a[0], n.width),
    E.EQ: lambda n, a: E.eq(a[0], a[1]),
    E.ULT: lambda n, a: E.ult(a[0], a[1]),
    E.ULE: lambda n, a: E.ule(a[0], a[1]),
    E.SLT: lambda n, a: E.slt(a[0], a[1]),
    E.SLE: lambda n, a: E.sle(a[0], a[1]),
    E.ITE: lambda n, a: E.ite(a[0], a[1], a[2]),
}


def rebuild(node: E.BitVec, new_args) -> E.BitVec:
    """Reconstruct *node* with *new_args* through the folding constructors."""
    builder = _REBUILD.get(node.op)
    if builder is None:
        raise SolverError(f"rebuild: unsupported op {node.op!r}")
    return builder(node, list(new_args))


def substitute(node: E.BitVec, mapping: Mapping[E.BitVec, E.BitVec]) -> E.BitVec:
    """Replace occurrences of keys of *mapping* with their values.

    Keys are matched by node identity (hash-consing makes this structural).
    Reconstruction goes through the folding constructors, so substituting
    constants for all variables yields a constant node.
    """
    cache: Dict[E.BitVec, E.BitVec] = {}
    order = _postorder(node, stop=mapping)
    for cur in order:
        replacement = mapping.get(cur)
        if replacement is not None:
            if replacement.width != cur.width:
                raise SolverError(
                    f"substitute: width mismatch {replacement.width} vs {cur.width}")
            cache[cur] = replacement
        elif cur.op in (E.CONST, E.VAR):
            cache[cur] = cur
        else:
            new_args = tuple(cache[a] for a in cur.args)
            cache[cur] = cur if new_args == cur.args else rebuild(cur, new_args)
    return cache[node]


def concretize(node: E.BitVec, assignment: Mapping[E.BitVec, int]) -> E.BitVec:
    """Substitute integer values for variables and fold."""
    mapping = {v: E.const(val, v.width) for v, val in assignment.items()}
    return substitute(node, mapping)


def _postorder(node: E.BitVec, stop: Mapping = ()):  # type: ignore[assignment]
    order = []
    emitted = set()
    stack = [(node, False)]
    while stack:
        cur, ready = stack.pop()
        if ready:
            if cur not in emitted:
                emitted.add(cur)
                order.append(cur)
            continue
        if cur in emitted:
            continue
        stack.append((cur, True))
        if cur not in stop:
            for arg in cur.args:
                stack.append((arg, False))
    return order


def simplify(node: E.BitVec) -> E.BitVec:
    """Bottom-up simplification with non-local rules.

    Rules applied on top of constructor folding:

    * ``not(not(x))`` → ``x`` (constructor) and comparison negation:
      ``not(ult(a,b))`` → ``ule(b,a)`` etc., keeping path conditions in a
      canonical positive form,
    * ``eq(x, c)`` where ``x = ite(p, c1, c2)`` with constant arms →
      ``p`` / ``not p`` / ``false``,
    * ``eq(concat(a, b), c)`` → ``and(eq(a, c_hi), eq(b, c_lo))`` which
      splits wide equalities into independently solvable pieces.
    """
    cache: Dict[E.BitVec, E.BitVec] = {}
    for cur in _postorder(node):
        if cur.op in (E.CONST, E.VAR):
            cache[cur] = cur
            continue
        args = tuple(cache[a] for a in cur.args)
        rebuilt = cur if args == cur.args else rebuild(cur, args)
        cache[cur] = _apply_rules(rebuilt)
    return cache[node]


def _apply_rules(node: E.BitVec) -> E.BitVec:
    if node.op == E.NOT and node.width == 1:
        inner = node.args[0]
        flipped = _negate_comparison(inner)
        if flipped is not None:
            return flipped
    if node.op == E.EQ:
        a, b = node.args
        if b.is_const:
            folded = _eq_with_const(a, b)
            if folded is not None:
                return folded
        if a.is_const:
            folded = _eq_with_const(b, a)
            if folded is not None:
                return folded
    return node


def _negate_comparison(node: E.BitVec):
    if node.op == E.ULT:
        return E.ule(node.args[1], node.args[0])
    if node.op == E.ULE:
        return E.ult(node.args[1], node.args[0])
    if node.op == E.SLT:
        return E.sle(node.args[1], node.args[0])
    if node.op == E.SLE:
        return E.slt(node.args[1], node.args[0])
    return None


def _eq_with_const(a: E.BitVec, c: E.BitVec):
    if a.op == E.ITE:
        cond, then, other = a.args
        if then.is_const and other.is_const:
            then_hit = then.value == c.value
            other_hit = other.value == c.value
            if then_hit and other_hit:
                return E.true()
            if then_hit:
                return cond
            if other_hit:
                return E.not_(cond)
            return E.false()
    if a.op == E.CONCAT:
        conj = E.true()
        offset = 0
        for part in reversed(a.args):  # LSB part first
            part_const = E.const((c.value >> offset), part.width)  # type: ignore[operator]
            conj = E.and_(conj, E.eq(part, part_const))
            offset += part.width
        return conj
    if a.op == E.ZEXT:
        inner = a.args[0]
        high = c.value >> inner.width  # type: ignore[operator]
        if high != 0:
            return E.false()
        return E.eq(inner, E.const(c.value, inner.width))  # type: ignore[arg-type]
    return None
