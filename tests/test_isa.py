"""ISA tests: encoding round trips, assembler, disassembler, concrete CPU."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AssemblerError, FirmwarePanic
from repro.isa import Cpu, assemble, disassemble_word
from repro.isa import encoding as enc


def _run(src, **kw):
    cpu = Cpu(assemble(src), **kw)
    return cpu.run(max_steps=100_000), cpu


class TestEncoding:
    @given(op=st.sampled_from(sorted(enc.R_TYPE)),
           rd=st.integers(0, 15), rs1=st.integers(0, 15),
           rs2=st.integers(0, 15))
    def test_r_type_roundtrip(self, op, rd, rs1, rs2):
        word = enc.encode_r(op, rd, rs1, rs2)
        instr = enc.decode(word)
        assert (instr.opcode, instr.rd, instr.rs1, instr.rs2) == \
            (op, rd, rs1, rs2)

    @given(op=st.sampled_from(sorted(enc.I_ALU | enc.LOADS | enc.STORES)),
           rd=st.integers(0, 15), rs1=st.integers(0, 15),
           imm=st.integers(-(1 << 17), (1 << 17) - 1))
    def test_i_type_roundtrip(self, op, rd, rs1, imm):
        word = enc.encode_i(op, rd, rs1, imm)
        instr = enc.decode(word)
        assert (instr.opcode, instr.rd, instr.rs1, instr.imm) == \
            (op, rd, rs1, imm)

    @given(rd=st.integers(0, 15),
           imm=st.integers(-(1 << 21), (1 << 21) - 1))
    def test_j_type_roundtrip(self, rd, imm):
        instr = enc.decode(enc.encode_j(enc.JAL, rd, imm))
        assert (instr.opcode, instr.rd, instr.imm) == (enc.JAL, rd, imm)

    def test_imm_overflow_rejected(self):
        with pytest.raises(AssemblerError):
            enc.encode_i(enc.ADDI, 0, 0, 1 << 17)
        with pytest.raises(AssemblerError):
            enc.encode_r(enc.ADD, 16, 0, 0)


class TestAssembler:
    def test_labels_and_branches(self):
        exit_, _ = _run("""
        start:
            movi r1, 5
            movi r2, 0
        loop:
            add r2, r2, r1
            dec r1
            bne r1, r0, loop
            halt r2
        """)
        assert exit_.reason == "halt" and exit_.code == 15

    def test_equ_and_expressions(self):
        exit_, _ = _run("""
        .equ BASE, 0x100
        .equ SIZE, 4 * 8
        start:
            movi r1, BASE + SIZE - 2
            halt r1
        """)
        assert exit_.code == 0x11E

    def test_word_and_data_access(self):
        exit_, _ = _run("""
        start:
            movi r1, table
            lw r2, 4(r1)
            halt r2
        .align 4
        table:
            .word 0x11, 0x22, 0x33
        """)
        assert exit_.code == 0x22

    def test_asciz(self):
        exit_, cpu = _run("""
        start:
            movi r1, msg
            lbu r2, 0(r1)
            lbu r3, 4(r1)
            add r2, r2, r3
            halt r2
        msg:
            .asciz "hello"
        """)
        assert exit_.code == ord("h") + ord("o")

    def test_call_ret(self):
        exit_, _ = _run("""
        start:
            movi r1, 7
            call double
            halt r1
        double:
            add r1, r1, r1
            ret
        """)
        assert exit_.code == 14

    def test_push_pop(self):
        exit_, _ = _run("""
        start:
            movi r1, 0xAA
            push r1
            movi r1, 0
            pop r2
            halt r2
        """)
        assert exit_.code == 0xAA

    def test_movi_32bit(self):
        exit_, _ = _run("""
        start:
            movi r1, 0xDEADBEEF
            movi r2, 0xBEEF
            xor r1, r1, r2
            srli r1, r1, 16
            halt r1
        """)
        assert exit_.code == 0xDEAD

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a:\n nop\na:\n nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("start: j nowhere_at_all")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("start: frobnicate r1")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("start: mov r16, r0")

    def test_source_map_lines(self):
        prog = assemble("start:\n    nop\n    nop\n")
        assert set(prog.source_map.values()) == {2, 3}


class TestCpuSemantics:
    def test_signed_unsigned_comparisons(self):
        exit_, _ = _run("""
        start:
            movi r1, 0xFFFFFFFF     ; -1 signed, max unsigned
            movi r2, 1
            slt r3, r1, r2          ; signed: -1 < 1 -> 1
            sltu r4, r1, r2         ; unsigned: max < 1 -> 0
            slli r3, r3, 1
            or r3, r3, r4
            halt r3
        """)
        assert exit_.code == 0b10

    def test_sra_vs_srl(self):
        exit_, _ = _run("""
        start:
            movi r1, 0x80000000
            srai r2, r1, 31          ; -> all ones
            srli r3, r1, 31          ; -> 1
            sub r4, r2, r3           ; all-ones - 1 = 0xFFFFFFFE
            halt r4
        """)
        assert exit_.code == 0xFFFFFFFE

    def test_divu_remu_by_zero(self):
        exit_, _ = _run("""
        start:
            movi r1, 42
            movi r2, 0
            divu r3, r1, r2
            remu r4, r1, r2
            sub r5, r4, r1          ; remainder == dividend
            add r5, r5, r3          ; + all-ones
            halt r5
        """)
        assert exit_.code == 0xFFFFFFFF

    def test_byte_store_load_sign(self):
        exit_, _ = _run("""
        start:
            movi r1, 0x900
            movi r2, 0x80
            sb r2, 0(r1)
            lb r3, 0(r1)            ; sign-extended
            lbu r4, 0(r1)           ; zero-extended
            sub r5, r4, r3          ; 0x80 - 0xFFFFFF80
            halt r5
        """)
        assert exit_.code == (0x80 - 0xFFFFFF80) & 0xFFFFFFFF

    def test_oob_load_panics(self):
        with pytest.raises(FirmwarePanic):
            _run("""
            start:
                movi r1, 0x3FFFFFFC
                lw r2, 0(r1)
                halt r0
            """)

    def test_mmio_handlers_called(self):
        log = []
        def mmio_read(addr):
            log.append(("r", addr))
            return 0x1234
        def mmio_write(addr, value):
            log.append(("w", addr, value))
        exit_, _ = _run("""
        start:
            movi r1, 0x40000000
            movi r2, 0x77
            sw r2, 8(r1)
            lw r3, 8(r1)
            halt r3
        """, mmio_read=mmio_read, mmio_write=mmio_write)
        assert exit_.code == 0x1234
        assert log == [("w", 0x40000008, 0x77), ("r", 0x40000008)]

    def test_assume_assert_concrete(self):
        with pytest.raises(FirmwarePanic):
            _run("start:\n movi r1, 0\n assert r1\n halt r0")
        exit_, _ = _run("start:\n movi r1, 1\n assert r1\n halt r0")
        assert exit_.reason == "halt"

    def test_trace_marks_recorded(self):
        _, cpu = _run("""
        start:
            movi r1, 3
            trace r1
            movi r1, 9
            trace r1
            halt r0
        """)
        assert cpu.trace_marks == [3, 9]

    def test_step_limit(self):
        exit_, _ = _run("start: j start")
        assert exit_.reason == "limit"

    def test_iret_outside_irq_panics(self):
        with pytest.raises(FirmwarePanic):
            _run("start: iret")


class TestDisassembler:
    @pytest.mark.parametrize("src,expected", [
        ("add r1, r2, r3", "add r1, r2, r3"),
        ("addi r1, r2, -5", "addi r1, r2, -5"),
        ("lw r4, 8(r5)", "lw r4, 8(r5)"),
        ("sw r4, -4(sp)", "sw r4, -4(r13)"),
        ("halt r2", "halt r2"),
        ("iret", "iret"),
        ("ei", "ei"),
        ("sym r3", "sym r3"),
    ])
    def test_simple_instructions(self, src, expected):
        prog = assemble(f"start: {src}\n")
        word = prog.words[0]
        assert disassemble_word(word, 0) == expected

    def test_branch_target_resolved(self):
        prog = assemble("start: beq r1, r2, start\n")
        assert "0x0" in disassemble_word(prog.words[0], 0)

    def test_ret_recognised(self):
        prog = assemble("start: ret\n")
        assert disassemble_word(prog.words[0], 0) == "ret"
