#!/usr/bin/env python3
"""The paper's Fig. 1, live: three ways to co-test two firmware paths
that share one hardware peripheral.

Two execution paths (REQ A / REQ B) program the same timer with
different task lengths and wait for its interrupt. Explored
*concurrently*, the hardware must be context-switched per path — or
corruption follows.

Run:  python examples/fig1_consistency.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro import HardSnapSession
from repro.firmware import TIMER_BASE, fig1_two_paths
from repro.peripherals import catalog

STRATEGIES = {
    "hardsnap": "HardSnap (per-state hardware snapshots)",
    "naive-consistent": "naive-and-consistent (reboot + replay per switch)",
    "naive-inconsistent": "naive-and-inconsistent (shared hardware)",
}


def main() -> None:
    print("Fig. 1: two firmware paths, one timer peripheral, concurrent")
    print("exploration (round-robin scheduling).")
    print("Ground truth: path A halts 0xA, path B halts 0xB.\n")

    for strategy, description in STRATEGIES.items():
        session = HardSnapSession(
            fig1_two_paths(),
            [(catalog.TIMER, TIMER_BASE)],
            strategy=strategy,
            searcher="round-robin",
            scan_mode="functional",
        )
        report = session.run(max_instructions=30_000)
        verdicts = {hex(k): v for k, v in report.halt_codes().items()}
        ok = report.halt_codes() == {0xA: 1, 0xB: 1} and not report.bugs
        print(f"== {description}")
        print(f"   verdicts: {verdicts or 'NONE (paths never completed)'}"
              f"   correct: {'yes' if ok else 'NO'}")
        print(f"   snapshot ops: {report.snapshot_saves + report.snapshot_restores}"
              f"   reboots: {report.reboots}"
              f"   modelled time: {report.modelled_time_s * 1e3:.2f} ms")
        if strategy == "naive-inconsistent" and not ok:
            print("   -> REQ A's task was clobbered by REQ B reprogramming")
            print("      the shared timer; its interrupt never matched and")
            print("      the path starved — exactly the Fig. 1 scenario.")
        print()


if __name__ == "__main__":
    main()
