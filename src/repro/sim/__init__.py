"""Cycle-accurate RTL simulation of elaborated designs.

Two backends share one API (:class:`~repro.sim.base.BaseSimulation`):

* :class:`~repro.sim.interpreter.Interpreter` — tree-walking, slow, fully
  introspectable, VCD-traceable: HardSnap's *simulator target* substrate,
* :class:`~repro.sim.compiler.CompiledSimulation` — Python code generation,
  roughly an order of magnitude faster: the *FPGA target* substrate.

Both produce bit-identical behaviour for the supported Verilog subset
(property-tested in ``tests/test_sim_equivalence.py``).
"""

from repro.sim.base import BaseSimulation
from repro.sim.compiler import CompiledSimulation
from repro.sim.interpreter import Interpreter
from repro.sim.scheduler import clock_domain, comb_input_cone, order_comb_blocks
from repro.sim.vcd import VcdWriter

__all__ = [
    "BaseSimulation", "CompiledSimulation", "Interpreter", "VcdWriter",
    "clock_domain", "comb_input_cone", "order_comb_blocks",
]
