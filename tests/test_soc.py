"""SoC composition tests: the AXI interconnect, whole-design
snapshotting, and subsystem-scoped instrumentation."""

import pytest

from repro import HardSnapSession
from repro.errors import ElaborationError
from repro.instrument import insert_scan_chain
from repro.peripherals import catalog
from repro.peripherals.soc import WINDOW_SIZE, SocSpec, build_soc
from repro.targets import FpgaTarget, SimulatorTarget

BASE = 0x4000_0000


@pytest.fixture(scope="module")
def soc_spec():
    return SocSpec([catalog.TIMER, catalog.GPIO, catalog.UART], name="soc3")


def _hosted(soc_spec, cls=FpgaTarget):
    target = cls(scan_mode="functional") if cls is FpgaTarget else cls()
    instance = target.add_peripheral(soc_spec, BASE)
    target.reset()
    return target, instance


class TestInterconnect:
    def test_register_map_aggregated(self, soc_spec):
        assert soc_spec.registers["p0_CTRL"] == 0x00000
        assert soc_spec.registers["p1_DIR"] == 0x10000
        assert soc_spec.registers["p2_BAUDDIV"] == 0x20010

    @pytest.mark.parametrize("cls", [FpgaTarget, SimulatorTarget])
    def test_window_routing(self, soc_spec, cls):
        target, _ = _hosted(soc_spec, cls)
        target.write(BASE + 0x00004, 77)     # timer LOAD
        target.write(BASE + 0x10004, 0xA5)   # gpio OUT
        target.write(BASE + 0x20010, 9)      # uart BAUDDIV
        assert target.read(BASE + 0x00004) == 77
        assert target.read(BASE + 0x10004) == 0xA5
        assert target.read(BASE + 0x20010) == 9

    def test_interleaved_cross_window_traffic(self, soc_spec):
        target, _ = _hosted(soc_spec)
        for i in range(12):
            target.write(BASE + (i % 3) * WINDOW_SIZE + 4, i)
        # Last writes per window survive.
        assert target.read(BASE + 0x00004) == 9
        assert target.read(BASE + 0x10004) == 10
        # UART window register 4 is RXDATA (read-only); no crash expected.
        target.read(BASE + 0x20004)

    def test_irq_vector_and_aggregate(self, soc_spec):
        target, instance = _hosted(soc_spec)
        target.write(BASE + 0x00004, 8)       # timer LOAD
        target.write(BASE + 0x00000, 0b11)    # EN | IRQ_EN
        target.step(12)
        assert target.irq_lines()["soc3"] is True
        assert instance.sim.peek("irqs") & 0b001
        target.write(BASE + 0x0000C, 1)       # clear
        assert target.irq_lines()["soc3"] is False

    def test_unknown_window_reads_zero(self, soc_spec):
        target, _ = _hosted(soc_spec)
        # Window 3+ has no slave; decoder falls through to zero data.
        assert target.read(BASE + 3 * WINDOW_SIZE + 0) == 0

    def test_build_rejects_wishbone_and_overflow(self):
        with pytest.raises(ElaborationError):
            build_soc([catalog.GPIO_WB])
        with pytest.raises(ElaborationError):
            build_soc([catalog.TIMER] * 9)
        with pytest.raises(ElaborationError):
            build_soc([])

    def test_duplicate_peripheral_instances(self):
        soc = SocSpec([catalog.TIMER, catalog.TIMER], name="twin")
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(soc, BASE)
        target.reset()
        target.write(BASE + 0x00004, 5)
        target.write(BASE + 0x10004, 9)
        assert target.read(BASE + 0x00004) == 5
        assert target.read(BASE + 0x10004) == 9


class TestIntcRouting:
    """An on-SoC interrupt controller gets sibling irq lines wired in RTL."""

    @pytest.fixture(scope="class")
    def intc_soc(self):
        spec = SocSpec([catalog.TIMER, catalog.GPIO, catalog.INTC],
                       name="soci")
        target = FpgaTarget(scan_mode="functional")
        instance = target.add_peripheral(spec, BASE)
        target.reset()
        return target, instance

    def test_timer_irq_routes_through_intc(self, intc_soc):
        target, instance = intc_soc
        target.write(BASE + 0x20000, 0xFF)    # INTC.ENABLE all
        target.write(BASE + 0x00004, 8)       # TIMER.LOAD
        target.write(BASE + 0x00000, 0b11)    # EN | IRQ_EN
        target.step(15)
        # The SoC-level irq is the controller's output.
        assert target.irq_lines()["soci"] is True
        claim = target.read(BASE + 0x20008)   # INTC.CLAIM
        assert claim == 0                     # line 0 = slave 0 = timer
        # Level semantics: the line is still high, so pending relatches —
        # clear the SOURCE first, then re-claim.
        target.write(BASE + 0x0000C, 1)       # clear TIMER.STATUS
        target.read(BASE + 0x20008)           # claim the relatched line
        assert target.irq_lines()["soci"] is False

    def test_intc_lines_pin_not_exposed(self, intc_soc):
        _, instance = intc_soc
        # `lines` is wired internally, not a top-level port.
        top_inputs = {n.name for n in instance.design.inputs}
        assert not any("lines" in name for name in top_inputs)


class TestWholeDesignSnapshots:
    def test_single_chain_covers_all_peripherals(self, soc_spec):
        design = soc_spec.elaborate()
        scan = insert_scan_chain(design)
        names = {e.name.split(".")[0] for e in scan.elements}
        assert {"p0", "p1", "p2"} <= names

    def test_soc_snapshot_roundtrip(self, soc_spec):
        target, _ = _hosted(soc_spec)
        target.write(BASE + 0x10000, 0xFF)   # gpio DIR
        target.write(BASE + 0x10004, 0x3C)   # gpio OUT
        target.write(BASE + 0x00004, 40)     # timer LOAD
        target.write(BASE + 0x00000, 1)      # EN
        target.step(10)
        snap = target.save_snapshot()
        mid_value = target.read(BASE + 0x00008)
        target.step(50)
        target.write(BASE + 0x10004, 0)
        target.restore_snapshot(snap)
        assert target.read(BASE + 0x10004) == 0x3C
        restored = target.read(BASE + 0x00008)
        # VALUE resumes near the snapshot point (bus reads cost cycles).
        assert abs(restored - mid_value) <= 8

    def test_subsystem_instrumentation(self, soc_spec):
        """§IV-A: 'User-defined parameters allow to limit the
        instrumentation to a sub-component of the entire design.'"""
        design = soc_spec.elaborate()
        whole = insert_scan_chain(design)
        subsystem = insert_scan_chain(design, include=["p0"])
        assert subsystem.chain_length < whole.chain_length / 2
        assert all(e.name.startswith("p0.")
                   for e in subsystem.elements)
        # The subsystem chain is exactly the timer's own state size.
        timer_alone = catalog.TIMER.elaborate()
        assert subsystem.chain_length == timer_alone.state_bit_count


class TestSocUnderVm:
    def test_firmware_drives_two_peripherals_through_one_port(self, soc_spec):
        src = f"""
        .equ SOC, 0x{BASE:x}
        start:
            movi r1, SOC
            movi r2, 0xFF
            sw r2, 0x10000(r1)      ; gpio DIR (window 1)
            sym r3
            andi r3, r3, 1
            beq r3, r0, low
            movi r4, 0x80
            j drive
        low:
            movi r4, 0x01
        drive:
            sw r4, 0x10004(r1)      ; gpio OUT
            movi r5, 6
            sw r5, 4(r1)            ; timer LOAD (window 0)
            movi r5, 1
            sw r5, 0(r1)            ; timer EN
        poll:
            lw r6, 12(r1)
            beq r6, r0, poll
            lw r7, 0x10004(r1)      ; read gpio back
            sub r8, r7, r4
            movi r9, 1
            beq r8, r0, ok
            movi r9, 0
        ok:
            assert r9
            halt r4
        """
        session = HardSnapSession(src, [(soc_spec, BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=100_000)
        assert not report.bugs
        assert sorted(report.halt_codes()) == [0x01, 0x80]
