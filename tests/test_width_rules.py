"""Property tests for Verilog width semantics against a Python model.

Random expressions over two inputs are rendered both as Verilog (run
through the full elaborate+simulate pipeline) and as a Python reference
implementing the documented width rules. The two must agree for every
input vector — pinning down the context-determined widening behaviour.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hdl import elaborate
from repro.sim import Interpreter

WA, WB, WOUT = 8, 8, 12
MASK_OUT = (1 << WOUT) - 1


def _sim_for(expr_text: str) -> Interpreter:
    src = f"""
    module m (input wire clk, input wire [{WA - 1}:0] a,
              input wire [{WB - 1}:0] b, output wire [{WOUT - 1}:0] y);
        assign y = {expr_text};
    endmodule
    """
    return Interpreter(elaborate(src, "m"))


CASES = [
    # (verilog expr, python reference at the 12-bit context width)
    ("a + b", lambda a, b: (a + b) & MASK_OUT),
    ("a - b", lambda a, b: (a - b) & MASK_OUT),
    ("a * b", lambda a, b: (a * b) & MASK_OUT),
    ("~a", lambda a, b: ~a & MASK_OUT),               # widen THEN invert
    ("-a", lambda a, b: -a & MASK_OUT),
    ("~a + b", lambda a, b: ((~a & MASK_OUT) + b) & MASK_OUT),
    ("a & ~b", lambda a, b: a & (~b & MASK_OUT)),
    ("(a == b)", lambda a, b: int(a == b)),           # self-determined
    ("(a < b) + (a > b)", lambda a, b: int(a < b) + int(a > b)),
    ("{a, 4'h0}", lambda a, b: (a << 4) & MASK_OUT),  # concat: self-det
    ("a >> 2", lambda a, b: a >> 2),
    ("(a + b) >> 1", lambda a, b: ((a + b) & MASK_OUT) >> 1),
    ("a / (b + 1)", lambda a, b: (a // (b + 1)) & MASK_OUT),
    ("a % (b + 1)", lambda a, b: (a % (b + 1)) & MASK_OUT),
    ("(a > b) ? a : b", lambda a, b: a if a > b else b),
    ("&a", lambda a, b: int(a == 0xFF)),
    ("^b", lambda a, b: bin(b).count("1") & 1),
]


@pytest.mark.parametrize("expr_text,reference", CASES,
                         ids=[c[0] for c in CASES])
@settings(max_examples=25, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_width_rule(expr_text, reference, a, b):
    sim = _sim_for(expr_text)
    sim.poke_many({"a": a, "b": b})
    assert sim.peek("y") == reference(a, b), expr_text


@settings(max_examples=30, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_carry_capture_is_exact(a, b):
    """`{c, s} = a + b` — the idiom the width rules must get right."""
    src = """
    module m (input wire clk, input wire [7:0] a, input wire [7:0] b,
              output wire [7:0] s, output wire c);
        assign {c, s} = a + b;
    endmodule
    """
    sim = Interpreter(elaborate(src, "m"))
    sim.poke_many({"a": a, "b": b})
    total = a + b
    assert sim.peek("s") == total & 0xFF
    assert sim.peek("c") == total >> 8
