"""Predecoded firmware images — the shared front end of every HS32
interpreter.

A firmware image is static: the assembler fixes every instruction word
before execution begins. Decoding the same words again on every fetch
(and worse, re-materialising the RAM image for every fuzzing execution)
is pure per-instruction overhead. :class:`DecodedImage` does that work
exactly once per program:

* ``itab`` — pc -> :class:`~repro.isa.encoding.Instruction` for every
  word-aligned, *valid-opcode* word of the image. Data words and
  out-of-image addresses are deliberately absent so executors fall back
  to the byte-accurate fetch path (which raises the same faults the
  un-predecoded interpreter would).
* ``digest`` — a content digest of the image bytes. Executors compare
  it against the digest stamped on a state's memory to prove the
  predecode table matches what that memory actually contains (states
  built from a different image, or never image-loaded at all, miss the
  fast path instead of silently executing the wrong program).
* ``ram_image(size)`` — a prototype RAM buffer, built once and then
  copied per execution with one C-level ``bytearray`` copy.

The fast path is guarded against self-modifying code by the executors:
any store below ``code_limit`` clears their ``code clean`` flag and all
subsequent fetches take the slow byte-accurate path.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Dict, Optional, Tuple

from repro.isa import encoding as enc
from repro.isa.assembler import Program


def image_digest(image: Dict[int, int]) -> bytes:
    """Content digest of a byte-addressed concrete image."""
    h = hashlib.blake2b(digest_size=8)
    for addr in sorted(image):
        h.update(addr.to_bytes(4, "little"))
        h.update(bytes((image[addr] & 0xFF,)))
    return h.digest()


class DecodedImage:
    """One program's image, decoded once and shared by every interpreter."""

    def __init__(self, program: Program):
        self.entry = program.entry
        #: Byte-addressed concrete image (what ``load_image`` consumes).
        self.image: Dict[int, int] = program.as_bytes()
        #: First address above the image; stores below it invalidate
        #: predecoded fetches (self-modifying code guard).
        self.code_limit = (max(self.image) + 1) if self.image else 0
        self.digest = image_digest(self.image)
        #: pc -> decoded instruction, valid opcodes only.
        self.itab: Dict[int, enc.Instruction] = {}
        for addr, word in program.words.items():
            if addr % 4 == 0 and enc.is_valid_opcode((word >> 26) & 0x3F):
                self.itab[addr] = enc.decode(word)
        self._ram_protos: Dict[int, bytes] = {}

    def ram_image(self, ram_size: int) -> bytearray:
        """A fresh RAM buffer with the image loaded (one memcpy)."""
        proto = self._ram_protos.get(ram_size)
        if proto is None:
            ram = bytearray(ram_size)
            for addr, byte in self.image.items():
                if addr < ram_size:
                    ram[addr] = byte
            proto = bytes(ram)
            self._ram_protos[ram_size] = proto
        return bytearray(proto)


#: id(program) -> (weakref to the program, its decoded image). Keyed by
#: identity because Program is a mutable (unhashable) dataclass; the
#: weakref check guards against id reuse after collection.
_CACHE: Dict[int, Tuple[weakref.ref, DecodedImage]] = {}


def decoded_image(program: Program) -> DecodedImage:
    """The (cached) :class:`DecodedImage` for *program*."""
    key = id(program)
    hit = _CACHE.get(key)
    if hit is not None and hit[0]() is program:
        return hit[1]
    image = DecodedImage(program)
    try:
        ref = weakref.ref(program, lambda _ref, _key=key: _CACHE.pop(_key, None))
    except TypeError:  # pragma: no cover - Program is weakrefable today
        return image
    _CACHE[key] = (ref, image)
    return image
