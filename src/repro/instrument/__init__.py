"""HardSnap's Peripheral Snapshotting Mechanism: the instrumentation
toolchain that makes hardware state observable and controllable.

* :func:`~repro.instrument.scan_chain.insert_scan_chain` — RTL-to-RTL
  scan-chain insertion (paper §IV-A, path B.1),
* :class:`~repro.instrument.readback.ReadbackModel` — vendor
  configuration-readback latency model (the comparison point in §V),
* :func:`~repro.instrument.emit_verilog.emit_verilog` — IR -> Verilog
  printer, used to keep the instrumented design toolchain-independent,
* :mod:`~repro.instrument.report` — overhead accounting (experiment E6).
"""

from repro.instrument.emit_verilog import emit_verilog
from repro.instrument.readback import ReadbackModel
from repro.instrument.report import (OverheadRow, format_overhead_table,
                                     machine_report, overhead_row,
                                     overhead_table)
from repro.instrument.scan_chain import (SCAN_ENABLE, SCAN_IN, SCAN_OUT,
                                         ChainElement, ExcludedElement,
                                         ScanChainResult, insert_scan_chain,
                                         preflight_lint)

__all__ = [
    "insert_scan_chain", "preflight_lint",
    "ScanChainResult", "ChainElement", "ExcludedElement",
    "SCAN_ENABLE", "SCAN_IN", "SCAN_OUT",
    "ReadbackModel", "emit_verilog",
    "OverheadRow", "overhead_row", "overhead_table", "format_overhead_table",
    "machine_report",
]
