"""Negative-edge clocking support and concolic test-case replay."""

import pytest

from repro import HardSnapSession
from repro.firmware import TIMER_BASE
from repro.hdl import elaborate
from repro.isa import Cpu, assemble
from repro.peripherals import catalog
from repro.sim import CompiledSimulation, Interpreter
from repro.targets import FpgaTarget

NEGEDGE_DESIGN = r"""
module ddrish (
    input wire clk, input wire rst, input wire [7:0] d,
    output wire [7:0] qp, output wire [7:0] qn, output wire [8:0] total
);
    reg [7:0] pos_count;
    reg [7:0] neg_count;
    always @(posedge clk) begin
        if (rst) pos_count <= 0;
        else pos_count <= pos_count + d;
    end
    always @(negedge clk) begin
        if (rst) neg_count <= 0;
        else neg_count <= neg_count + pos_count;
    end
    assign qp = pos_count;
    assign qn = neg_count;
    assign total = {1'b0, qp} + {1'b0, qn};
endmodule
"""


class TestNegedgeClocking:
    @pytest.mark.parametrize("backend", [Interpreter, CompiledSimulation],
                             ids=["interp", "compiled"])
    def test_negedge_sees_same_cycle_posedge_result(self, backend):
        """The falling edge happens half a period after the rising edge:
        the negedge block observes the value the posedge block just
        committed."""
        sim = backend(elaborate(NEGEDGE_DESIGN, "ddrish"))
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        sim.poke("d", 1)
        sim.step()   # pos: 0->1 ; neg: 0 + 1 = 1
        assert sim.peek("qp") == 1
        assert sim.peek("qn") == 1
        sim.step()   # pos: 1->2 ; neg: 1 + 2 = 3
        assert sim.peek("qp") == 2
        assert sim.peek("qn") == 3

    def test_backends_agree_on_negedge_design(self):
        import random
        design = elaborate(NEGEDGE_DESIGN, "ddrish")
        sims = [Interpreter(design), CompiledSimulation(design)]
        rng = random.Random(11)
        for s in sims:
            s.poke("rst", 1); s.step(); s.poke("rst", 0)
        for _ in range(50):
            d = rng.randrange(256)
            for s in sims:
                s.poke("d", d)
                s.step()
            assert sims[0].values == sims[1].values

    def test_posedge_only_designs_unaffected(self, rich_design):
        """The fast path (no mid-cycle settle) is kept for designs
        without negedge blocks."""
        sim = Interpreter(rich_design)
        assert sim._has_negedge is False


class TestConcolicReplay:
    def test_cpu_replays_sym_values(self):
        src = """
        start:
            sym r1
            sym r2
            add r3, r1, r2
            halt r3
        """
        cpu = Cpu(assemble(src), sym_values=[30, 12])
        exit_ = cpu.run()
        assert exit_.code == 42

    def test_exhausted_sym_values_default_zero(self):
        cpu = Cpu(assemble("start:\n sym r1\n sym r2\n halt r2\n"),
                  sym_values=[5])
        assert cpu.run().code == 0

    def test_every_symbolic_path_replays_concretely(self):
        """End-to-end concolic soundness: each test case the symbolic
        engine emits, replayed on the concrete core against the same
        peripheral, reaches exactly the same halt code."""
        src = f"""
        .equ TIMER, 0x{TIMER_BASE:x}
        start:
            movi r1, TIMER
            sym r2
            andi r2, r2, 7
            addi r2, r2, 2          ; LOAD in [2, 9]
            sw r2, 4(r1)
            movi r3, 1
            sw r3, 0(r1)
        poll:
            lw r4, 12(r1)
            beq r4, r0, poll
            movi r5, 4
            bltu r2, r5, small
            movi r6, 0x20
            add r6, r6, r2
            halt r6
        small:
            movi r6, 0x10
            add r6, r6, r2
            halt r6
        """
        session = HardSnapSession(src, [(catalog.TIMER, TIMER_BASE)],
                                  scan_mode="functional",
                                  concretization="completeness",
                                  concretization_limit=16)
        report = session.run(max_instructions=300_000)
        assert len(report.halted_paths) >= 2
        for path in report.halted_paths:
            values = [v for _, v in sorted(path.test_case.items())]
            target = FpgaTarget(scan_mode="functional")
            target.add_peripheral(catalog.TIMER, TIMER_BASE)
            target.reset()
            cpu = Cpu(assemble(src), mmio_read=target.read,
                      mmio_write=target.write, sym_values=values)
            exit_ = cpu.run(max_steps=100_000)
            assert exit_.reason == "halt"
            assert exit_.code == path.halt_code, \
                f"replay diverged for {path.test_case}"
