"""The Wishbone GPIO variant: the modular-bus-abstraction extension.

The same GPIO core body is wrapped in a Wishbone slave instead of
AXI4-Lite; the target layer selects the matching BFM transparently, and
everything above (VM forwarding, snapshots, scan chain) is bus-agnostic.
"""

import pytest

from repro import HardSnapSession
from repro.peripherals import catalog, gpio
from repro.targets import FpgaTarget, SimulatorTarget

BASE = 0x4004_0000


def _target(cls=FpgaTarget, **kw):
    kw.setdefault("scan_mode", "functional") if cls is FpgaTarget else None
    t = cls(**kw) if cls is not FpgaTarget else cls(scan_mode="functional")
    t.add_peripheral(catalog.GPIO_WB, BASE)
    t.reset()
    return t


class TestWishboneHosting:
    def test_spec_declares_wishbone(self):
        assert catalog.GPIO_WB.bus == "wishbone"
        assert catalog.GPIO.bus == "axi"

    @pytest.mark.parametrize("cls", [FpgaTarget, SimulatorTarget])
    def test_mmio_roundtrip(self, cls):
        t = _target(cls)
        t.write(BASE + gpio.REGISTERS["DIR"], 0xFF)
        t.write(BASE + gpio.REGISTERS["OUT"], 0x5A)
        assert t.read(BASE + gpio.REGISTERS["OUT"]) == 0x5A
        assert t.instances["gpio_wb"].sim.peek("gpio_out") == 0x5A

    def test_same_core_same_behaviour_as_axi(self):
        """Byte-for-byte behavioural parity between the two bus wrappers
        of the identical core."""
        wb = FpgaTarget(name="wb", scan_mode="functional")
        wb.add_peripheral(catalog.GPIO_WB, BASE)
        axi = FpgaTarget(name="axi", scan_mode="functional")
        axi.add_peripheral(catalog.GPIO, BASE)
        for t in (wb, axi):
            t.reset()
        for t, name in ((wb, "gpio_wb"), (axi, "gpio")):
            t.write(BASE + gpio.REGISTERS["IRQ_EN"], 0b100)
            t.instances[name].sim.poke("gpio_in", 0b100)
            t.step(3)
        assert wb.irq_lines()["gpio_wb"] == axi.irq_lines()["gpio"] is True
        assert wb.read(BASE + gpio.REGISTERS["IRQ_ST"]) == \
            axi.read(BASE + gpio.REGISTERS["IRQ_ST"])

    def test_scan_snapshot_bus_agnostic(self):
        t = _target()
        t.write(BASE + gpio.REGISTERS["OUT"], 0x77)
        snap = t.save_snapshot()
        t.write(BASE + gpio.REGISTERS["OUT"], 0x00)
        t.restore_snapshot(snap)
        assert t.read(BASE + gpio.REGISTERS["OUT"]) == 0x77

    def test_vm_session_over_wishbone(self):
        src = f"""
        .equ GPIO, 0x{BASE:x}
        start:
            movi r1, GPIO
            movi r2, 0xFF
            sw r2, 0(r1)        ; DIR
            sym r3
            andi r3, r3, 0xF
            sw r3, 4(r1)        ; OUT = symbolic nibble
            lw r4, 4(r1)
            sub r5, r4, r3
            movi r8, 1
            beq r5, r0, ok
            movi r8, 0
        ok:
            assert r8
            halt r4
        """
        session = HardSnapSession(src, [(catalog.GPIO_WB, BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=100_000)
        assert not report.bugs
        assert len(report.halted_paths) == 1
