"""Concrete reference core for HS32.

Executes assembled programs directly with integer state — the oracle the
symbolic executor's concrete paths are differentially tested against, and
a handy way to run firmware without any symbolic machinery.

MMIO is pluggable: addresses inside registered windows are forwarded to
``mmio_read``/``mmio_write`` callbacks (usually a hardware target).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import FirmwarePanic, VmError
from repro.isa import encoding as enc
from repro.isa.assembler import Program
from repro.isa.predecode import decoded_image

MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


@dataclass
class CpuExit:
    reason: str  # halt | limit | fault
    code: int = 0
    pc: int = 0
    steps: int = 0


class Cpu:
    """Concrete HS32 interpreter."""

    def __init__(self, program: Program, ram_size: int = 64 * 1024,
                 mmio_base: int = 0x4000_0000,
                 mmio_read: Optional[Callable[[int], int]] = None,
                 mmio_write: Optional[Callable[[int, int], None]] = None,
                 irq_poll: Optional[Callable[[], bool]] = None,
                 sym_values: Optional[List[int]] = None):
        self.ram_size = ram_size
        image = decoded_image(program)
        self.ram = image.ram_image(ram_size)
        # Predecoded dispatch: instruction words come from the shared
        # per-program table while no store has touched the code region.
        self._itab = image.itab
        self._code_limit = min(image.code_limit, ram_size)
        self._code_clean = True
        self.regs: List[int] = [0] * enc.NUM_REGS
        self.regs[enc.REG_SP] = ram_size - 16
        self.pc = program.entry
        self.mmio_base = mmio_base
        self.mmio_read = mmio_read
        self.mmio_write = mmio_write
        self.irq_poll = irq_poll
        self.irq_enabled = False
        self.irq_handler: Optional[int] = None
        self.in_irq = False
        self._irq_return_pc = 0
        self.steps = 0
        self.trace_marks: List[int] = []
        # Concrete replay of symbolic test cases: values consumed by
        # successive `sym` intrinsics (defaults to 0 when exhausted).
        self.sym_values: List[int] = list(sym_values or [])
        self._sym_index = 0

    # -- memory -------------------------------------------------------------

    def _is_mmio(self, addr: int) -> bool:
        return addr >= self.mmio_base

    def load(self, addr: int, size: int) -> int:
        if self._is_mmio(addr):
            if self.mmio_read is None:
                raise VmError(f"MMIO read at 0x{addr:08x} with no handler")
            word = self.mmio_read(addr & ~3)
            if size == 4:
                return word & MASK32
            shift = (addr & 3) * 8
            return (word >> shift) & ((1 << (8 * size)) - 1)
        if addr + size > self.ram_size or addr < 0:
            raise FirmwarePanic(
                f"out-of-bounds load at 0x{addr:08x} (pc=0x{self.pc:08x})")
        return int.from_bytes(self.ram[addr:addr + size], "little")

    def store(self, addr: int, value: int, size: int) -> None:
        if self._is_mmio(addr):
            if self.mmio_write is None:
                raise VmError(f"MMIO write at 0x{addr:08x} with no handler")
            self.mmio_write(addr & ~3, value & MASK32)
            return
        if addr + size > self.ram_size or addr < 0:
            raise FirmwarePanic(
                f"out-of-bounds store at 0x{addr:08x} (pc=0x{self.pc:08x})")
        if addr < self._code_limit:
            self._code_clean = False  # self-modifying code: stop predecoding
        self.ram[addr:addr + size] = (value & ((1 << (8 * size)) - 1)) \
            .to_bytes(size, "little")

    # -- execution -------------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> CpuExit:
        while self.steps < max_steps:
            exit_ = self.step()
            if exit_ is not None:
                exit_.steps = self.steps
                return exit_
        return CpuExit("limit", pc=self.pc, steps=self.steps)

    def step(self) -> Optional[CpuExit]:
        self._maybe_interrupt()
        instr = self._itab.get(self.pc) if self._code_clean else None
        if instr is None:
            # Slow path: data words, modified code, out-of-image pcs —
            # byte-accurate fetch with the usual bounds faults.
            word = self.load(self.pc, 4)
            instr = enc.decode(word)
        self.steps += 1
        return self._execute(instr)

    def _maybe_interrupt(self) -> None:
        if (self.irq_enabled and not self.in_irq
                and self.irq_handler is not None
                and self.irq_poll is not None and self.irq_poll()):
            # Hardware-style entry: only the return PC is banked; the
            # handler preserves any registers it clobbers (push/pop).
            self._irq_return_pc = self.pc
            self.in_irq = True
            self.pc = self.irq_handler

    def _execute(self, instr: enc.Instruction) -> Optional[CpuExit]:
        op = instr.opcode
        regs = self.regs
        next_pc = self.pc + 4
        if op in enc.R_TYPE:
            a, b = regs[instr.rs1], regs[instr.rs2]
            regs[instr.rd] = _alu_r(op, a, b, self.pc)
        elif op in enc.I_ALU:
            regs[instr.rd] = _alu_i(op, regs[instr.rs1], instr.imm,
                                    regs[instr.rd])
        elif op in enc.LOADS:
            addr = (regs[instr.rs1] + instr.imm) & MASK32
            if op == enc.LW:
                regs[instr.rd] = self.load(addr, 4)
            elif op == enc.LB:
                regs[instr.rd] = _signed_byte(self.load(addr, 1))
            else:
                regs[instr.rd] = self.load(addr, 1)
        elif op in enc.STORES:
            addr = (regs[instr.rs1] + instr.imm) & MASK32
            self.store(addr, regs[instr.rd], 4 if op == enc.SW else 1)
        elif op in enc.BRANCHES:
            if _branch_taken(op, regs[instr.rd], regs[instr.rs1]):
                next_pc = (self.pc + instr.imm) & MASK32
        elif op == enc.JAL:
            if instr.rd:
                regs[instr.rd] = next_pc
            next_pc = (self.pc + instr.imm) & MASK32
        elif op == enc.JALR:
            target = (regs[instr.rs1] + instr.imm) & MASK32
            if instr.rd:
                regs[instr.rd] = next_pc
            next_pc = target
        elif op == enc.HALT:
            return CpuExit("halt", code=regs[instr.rs1], pc=self.pc)
        elif op == enc.IRET:
            if not self.in_irq:
                raise FirmwarePanic(f"iret outside interrupt at 0x{self.pc:08x}")
            self.in_irq = False
            self.pc = self._irq_return_pc
            return None
        elif op == enc.HS:
            self._intrinsic(instr)
        else:
            raise FirmwarePanic(
                f"illegal instruction 0x{instr.opcode:02x} at 0x{self.pc:08x}")
        self.pc = next_pc
        return None

    def _intrinsic(self, instr: enc.Instruction) -> None:
        func = instr.imm & 0xFF
        if func == enc.HS_SYMBOLIC:
            # Concrete core: consume the next replay value (KLEE-style
            # .ktest replay), or zero when none was provided.
            if self._sym_index < len(self.sym_values):
                self.regs[instr.rd] = self.sym_values[self._sym_index] & MASK32
                self._sym_index += 1
            else:
                self.regs[instr.rd] = 0
        elif func == enc.HS_SYMBOLIC_BYTES:
            pass  # buffer keeps its concrete contents
        elif func == enc.HS_ASSUME:
            if self.regs[instr.rs1] == 0:
                raise FirmwarePanic(f"assume failed at 0x{self.pc:08x}")
        elif func == enc.HS_ASSERT:
            if self.regs[instr.rs1] == 0:
                raise FirmwarePanic(f"assertion failed at 0x{self.pc:08x}")
        elif func == enc.HS_SET_IVT:
            self.irq_handler = self.regs[instr.rs1] & MASK32
        elif func == enc.HS_EI:
            self.irq_enabled = True
        elif func == enc.HS_DI:
            self.irq_enabled = False
        elif func == enc.HS_TRACE:
            self.trace_marks.append(self.regs[instr.rs1])
        else:
            raise FirmwarePanic(f"unknown intrinsic {func} at 0x{self.pc:08x}")


def _alu_r(op: int, a: int, b: int, pc: int) -> int:
    if op == enc.ADD:
        return (a + b) & MASK32
    if op == enc.SUB:
        return (a - b) & MASK32
    if op == enc.AND:
        return a & b
    if op == enc.OR:
        return a | b
    if op == enc.XOR:
        return a ^ b
    if op == enc.SLL:
        return (a << (b & 31)) & MASK32
    if op == enc.SRL:
        return a >> (b & 31)
    if op == enc.SRA:
        return (_signed(a) >> (b & 31)) & MASK32
    if op == enc.MUL:
        return (a * b) & MASK32
    if op == enc.DIVU:
        return MASK32 if b == 0 else (a // b) & MASK32
    if op == enc.REMU:
        return a if b == 0 else a % b
    if op == enc.SLT:
        return int(_signed(a) < _signed(b))
    if op == enc.SLTU:
        return int(a < b)
    raise VmError(f"not an R-type op {op:#x}")


def _alu_i(op: int, a: int, imm: int, old_rd: int) -> int:
    if op == enc.ADDI:
        return (a + imm) & MASK32
    if op == enc.ANDI:
        return a & (imm & MASK32)
    if op == enc.ORI:
        return a | (imm & MASK32)
    if op == enc.XORI:
        return a ^ (imm & MASK32)
    if op == enc.SLLI:
        return (a << (imm & 31)) & MASK32
    if op == enc.SRLI:
        return a >> (imm & 31)
    if op == enc.SRAI:
        return (_signed(a) >> (imm & 31)) & MASK32
    if op == enc.LUI:
        return (imm & 0xFFFF) << 16
    raise VmError(f"not an I-type op {op:#x}")


def _branch_taken(op: int, a: int, b: int) -> bool:
    if op == enc.BEQ:
        return a == b
    if op == enc.BNE:
        return a != b
    if op == enc.BLT:
        return _signed(a) < _signed(b)
    if op == enc.BGE:
        return _signed(a) >= _signed(b)
    if op == enc.BLTU:
        return a < b
    if op == enc.BGEU:
        return a >= b
    raise VmError(f"not a branch op {op:#x}")


def _signed_byte(value: int) -> int:
    return (value - 256 if value & 0x80 else value) & MASK32


# ---------------------------------------------------------------------------
# Per-opcode concrete semantics tables. One dict lookup replaces the
# if-chains above on hot paths (the symbolic executor's concrete fast
# path dispatches through these).
# ---------------------------------------------------------------------------

ALU_R_OPS: Dict[int, Callable[[int, int], int]] = {
    enc.ADD: lambda a, b: (a + b) & MASK32,
    enc.SUB: lambda a, b: (a - b) & MASK32,
    enc.AND: lambda a, b: a & b,
    enc.OR: lambda a, b: a | b,
    enc.XOR: lambda a, b: a ^ b,
    enc.SLL: lambda a, b: (a << (b & 31)) & MASK32,
    enc.SRL: lambda a, b: a >> (b & 31),
    enc.SRA: lambda a, b: (_signed(a) >> (b & 31)) & MASK32,
    enc.MUL: lambda a, b: (a * b) & MASK32,
    enc.DIVU: lambda a, b: MASK32 if b == 0 else (a // b) & MASK32,
    enc.REMU: lambda a, b: a if b == 0 else a % b,
    enc.SLT: lambda a, b: int(_signed(a) < _signed(b)),
    enc.SLTU: lambda a, b: int(a < b),
}

ALU_I_OPS: Dict[int, Callable[[int, int], int]] = {
    enc.ADDI: lambda a, imm: (a + imm) & MASK32,
    enc.ANDI: lambda a, imm: a & (imm & MASK32),
    enc.ORI: lambda a, imm: a | (imm & MASK32),
    enc.XORI: lambda a, imm: a ^ (imm & MASK32),
    enc.SLLI: lambda a, imm: (a << (imm & 31)) & MASK32,
    enc.SRLI: lambda a, imm: a >> (imm & 31),
    enc.SRAI: lambda a, imm: (_signed(a) >> (imm & 31)) & MASK32,
    enc.LUI: lambda a, imm: (imm & 0xFFFF) << 16,
}

BRANCH_OPS: Dict[int, Callable[[int, int], bool]] = {
    enc.BEQ: lambda a, b: a == b,
    enc.BNE: lambda a, b: a != b,
    enc.BLT: lambda a, b: _signed(a) < _signed(b),
    enc.BGE: lambda a, b: _signed(a) >= _signed(b),
    enc.BLTU: lambda a, b: a < b,
    enc.BGEU: lambda a, b: a >= b,
}
