"""Tests for repro.parallel: wire format, recipes, lease execution, and
the headline property — parallel verdicts are byte-identical to serial
ones, whatever the worker count."""

import pickle

import pytest

from repro.core import HardSnapSession, SnapshotController, SnapshotFuzzer
from repro.core.persistence import snapshot_from_wire, snapshot_to_wire
from repro.core.store import chunk_digest
from repro.errors import SnapshotError, TargetError, VmError
from repro.firmware import (TIMER_BASE, UART_BASE, dispatcher,
                            fuzz_packet_parser, vuln_buffer_overflow)
from repro.isa import assemble
from repro.parallel import (ChunkChannel, ParallelAnalysisEngine,
                            ParallelFuzzer, SessionRecipe, TargetRecipe,
                            WorkerPool)
from repro.parallel.pool import WorkerError
from repro.peripherals import catalog
from repro.solver import expr as E
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
UART = [(catalog.UART, UART_BASE)]
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]


def _timer_target():
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    target.reset()
    return target


class TestSnapshotWire:
    def test_round_trip(self):
        target = _timer_target()
        controller = SnapshotController(target)
        target.step(7)
        snap = controller.save()
        wire = snapshot_to_wire(snap)
        pool = {digest: body for digest, (body, _) in wire.chunks.items()}
        back = snapshot_from_wire(wire, pool)
        assert back.states == snap.states
        assert back.method == snap.method
        assert back.bits == snap.bits
        assert back.record is None  # foreign: next save is a full record

    def test_known_digests_omit_payloads(self):
        target = _timer_target()
        snap = SnapshotController(target).save()
        digests = {chunk_digest(s) for s in snap.states.values()}
        wire = snapshot_to_wire(snap, known=digests)
        assert wire.chunks == {}
        assert wire.refs  # references still present
        assert wire.payload_bits == 0

    def test_missing_chunk_raises(self):
        target = _timer_target()
        snap = SnapshotController(target).save()
        wire = snapshot_to_wire(snap)
        with pytest.raises(SnapshotError):
            snapshot_from_wire(wire, pool={})

    def test_wire_is_picklable(self):
        target = _timer_target()
        snap = SnapshotController(target).save()
        wire = snapshot_to_wire(snap)
        clone = pickle.loads(pickle.dumps(wire))
        assert clone.refs == wire.refs
        assert clone.chunks == wire.chunks


class TestChunkChannel:
    def test_second_send_is_delta(self):
        """Resending an unchanged snapshot ships references only —
        the cross-process analogue of TransferRecord.delta_bits."""
        target = _timer_target()
        controller = SnapshotController(target)
        sender, receiver = ChunkChannel(), ChunkChannel()
        bits = {name: inst.state_bits
                for name, inst in target.instances.items()}

        first = sender.encode(controller.save(), peer="w0", bits_of=bits)
        receiver.absorb(first, peer="coord")
        assert first.payload_bits == first.logical_bits > 0

        second = sender.encode(controller.save(), peer="w0", bits_of=bits)
        assert second.payload_bits == 0
        assert second.logical_bits > 0
        assert snapshot_from_wire(second, receiver.pool).states == \
            controller.save().states

    def test_changed_state_ships_only_new_chunks(self):
        target = _timer_target()
        controller = SnapshotController(target)
        channel = ChunkChannel()
        channel.encode(controller.save(), peer="w0")
        target.write(TIMER_BASE, 0x1)  # program the timer: real state change
        target.step(5)
        wire = channel.encode(controller.save(), peer="w0")
        assert 0 < len(wire.chunks) <= len(wire.refs)

    def test_reencode_fills_payloads_per_peer(self):
        """A wire received from one worker re-addresses to another with
        payloads only for chunks the new peer lacks."""
        target = _timer_target()
        controller = SnapshotController(target)
        worker, coord = ChunkChannel(), ChunkChannel()
        wire = worker.encode(controller.save(), peer="coord")
        coord.absorb(wire, peer=0)
        resend_w0 = coord.reencode(wire, peer=0)
        assert resend_w0.chunks == {}  # worker 0 produced it
        resend_w1 = coord.reencode(wire, peer=1)
        assert set(resend_w1.chunks) == \
            {d for d, _, _ in wire.refs.values()}
        assert snapshot_from_wire(resend_w1, coord.pool).states == \
            controller.save().states

    def test_stats_account_logical_vs_payload(self):
        target = _timer_target()
        controller = SnapshotController(target)
        channel = ChunkChannel()
        bits = {name: inst.state_bits
                for name, inst in target.instances.items()}
        channel.encode(controller.save(), peer="w0", bits_of=bits)
        channel.encode(controller.save(), peer="w0", bits_of=bits)
        stats = channel.stats
        assert stats.snapshots_sent == 2
        assert stats.logical_bits_sent == 2 * stats.payload_bits_sent
        assert stats.delta_ratio == 2.0


class TestRecipes:
    def test_target_recipe_round_trip(self):
        original = _timer_target()
        recipe = TargetRecipe.from_target(original)
        rebuilt = pickle.loads(pickle.dumps(recipe)).build()
        rebuilt.reset()
        assert type(rebuilt) is type(original)
        assert rebuilt.instances.keys() == original.instances.keys()
        s0 = SnapshotController(original).save()
        s1 = SnapshotController(rebuilt).save()
        assert s0.states == s1.states

    def test_non_catalog_peripheral_rejected(self):
        class FakeSpec:
            name = "not-in-catalog"
        with pytest.raises(TargetError):
            SessionRecipe.create(dispatcher(2), [(FakeSpec(), 0x4000_0000)])

    def test_non_hardsnap_strategy_rejected(self):
        with pytest.raises(VmError):
            SessionRecipe.create(dispatcher(2), TIMER,
                                 strategy="naive-consistent")

    def test_session_recipe_rebuilds_equivalent_session(self):
        recipe = SessionRecipe.create(dispatcher(3, work_cycles=8), TIMER,
                                      scan_mode="functional")
        recipe = pickle.loads(pickle.dumps(recipe))
        report = recipe.build_session().run(max_instructions=100_000)
        serial = HardSnapSession(dispatcher(3, work_cycles=8), TIMER,
                                 scan_mode="functional").run(
            max_instructions=100_000)
        assert report.verdict_summary() == serial.verdict_summary()


class TestExprPickling:
    def test_unpickled_expressions_reintern(self):
        """Hash-consing identity (== is `is`) must survive a process
        boundary; otherwise shipped constraints stop comparing equal."""
        a = E.add(E.var("x", 32), E.const(7, 32))
        b = pickle.loads(pickle.dumps(a))
        assert b is a
        pair = pickle.loads(pickle.dumps((a, E.add(a, a))))
        assert pair[0] is a and pair[1].args[0] is a


class TestRunLease:
    """In-process lease-driven exploration equals the serial loop."""

    def test_lease_exploration_matches_serial(self):
        serial = HardSnapSession(dispatcher(4, work_cycles=8), TIMER,
                                 scan_mode="functional").run(
            max_instructions=100_000)

        session = HardSnapSession(dispatcher(4, work_cycles=8), TIMER,
                                  scan_mode="functional")
        from repro.core.engine import AnalysisReport
        report = AnalysisReport(strategy="hardsnap")
        session.engine.strategy.on_start(None)
        pending = [session.make_initial_state()]
        while pending:
            outcome = session.engine.run_lease(pending.pop())
            report.instructions += outcome.executed
            report.forks += len(outcome.forks)
            if outcome.completed is not None:
                report.paths.append(outcome.completed)
            if outcome.state.is_active:
                pending.append(outcome.state)
            pending.extend(outcome.forks)
        report.coverage = len(session.executor.coverage)
        assert report.verdict_summary() == serial.verdict_summary()

    def test_lease_budget_pauses_and_resumes(self):
        session = HardSnapSession(dispatcher(2, work_cycles=8), TIMER,
                                  scan_mode="functional")
        session.engine.strategy.on_start(None)
        state = session.make_initial_state()
        outcome = session.engine.run_lease(state, max_instructions=3)
        assert outcome.paused and outcome.executed == 3
        assert state.is_active and state.hw_snapshot is not None
        # Resume: the paused state continues to its natural end.
        total = outcome.executed
        pending = [state]
        while pending:
            out = session.engine.run_lease(pending.pop())
            total += out.executed
            if out.state.is_active:
                pending.append(out.state)
            pending.extend(out.forks)
        assert total > 3


class TestPool:
    def test_worker_errors_propagate(self):
        recipe = SessionRecipe.create(dispatcher(2), TIMER,
                                      scan_mode="functional")
        with WorkerPool(recipe, workers=1) as pool:
            pool.submit(0, "no-such-job", {})
            with pytest.raises(WorkerError, match="no-such-job"):
                pool.next_result(timeout=60)

    def test_warm_builds_all_workers(self):
        recipe = SessionRecipe.create(dispatcher(2), TIMER,
                                      scan_mode="functional")
        with WorkerPool(recipe, workers=2) as pool:
            pool.warm("fuzz")  # completes without error


class TestEngineDeterminism:
    """Satellite 3: merged DSE verdicts are byte-identical to serial for
    workers = 1, 2, 4 (dispatcher-N and the buffer-overflow workload)."""

    @pytest.fixture(scope="class")
    def dispatcher_serial(self):
        return HardSnapSession(dispatcher(5, work_cycles=8), TIMER,
                               scan_mode="functional").run(
            max_instructions=100_000).verdict_summary()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_dispatcher_matches_serial(self, workers, dispatcher_serial):
        with ParallelAnalysisEngine(dispatcher(5, work_cycles=8), TIMER,
                                    workers=workers,
                                    scan_mode="functional") as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == dispatcher_serial
        assert report.stop_reason == "exhausted"

    def test_bug_workload_matches_serial(self):
        serial = HardSnapSession(vuln_buffer_overflow(), UART,
                                 scan_mode="functional").run(
            max_instructions=500_000)
        with ParallelAnalysisEngine(vuln_buffer_overflow(), UART,
                                    workers=2,
                                    scan_mode="functional") as engine:
            report = engine.run(max_instructions=500_000)
        assert report.verdict_summary() == serial.verdict_summary()
        # Bug state ids are remapped onto the renumbered paths.
        by_id = {p.state_id: p for p in report.paths}
        for bug in report.bugs:
            assert by_id[bug.state_id].status == "error"

    def test_stop_after_bugs(self):
        with ParallelAnalysisEngine(vuln_buffer_overflow(), UART,
                                    workers=2,
                                    scan_mode="functional") as engine:
            report = engine.run(max_instructions=500_000,
                                stop_after_bugs=1)
        assert report.stop_reason == "bug-budget"
        assert len(report.bugs) >= 1

    def test_pool_stats_show_delta_transfer(self):
        with ParallelAnalysisEngine(dispatcher(4, work_cycles=8), TIMER,
                                    workers=2,
                                    scan_mode="functional") as engine:
            engine.run(max_instructions=100_000)
            stats = engine.pool_stats
        assert stats.leases > 0
        assert stats.wire.snapshots_sent > 0
        assert stats.wire.payload_bits_sent < stats.wire.logical_bits_sent
        assert "workers=2" in stats.summary()


class TestFuzzerDeterminism:
    """Satellite 3: merged fuzzing coverage/crashes are byte-identical
    to a serial run with the same batch size (E7 workload)."""

    @pytest.fixture(scope="class")
    def serial_verdict(self):
        fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()),
                                _timer_target(), seeds=SEEDS, seed=3)
        return fuzzer.run(executions=120, batch_size=16).verdict_summary()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, workers, serial_verdict):
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=workers, batch_size=16,
                            seed=3) as fuzzer:
            report = fuzzer.run(executions=120)
        assert report.verdict_summary() == serial_verdict
        assert report.resets == 120

    def test_workers_share_identical_boot_state(self):
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3) as fuzzer:
            digests = fuzzer.boot_digests()
        assert len(digests) == 2
        first, second = digests.values()
        assert first == second

    def test_serial_batch_size_invariant(self):
        """The serial fuzzer's own results do not depend on how its
        schedule is batched relative to execution — the property that
        makes input sharding sound in the first place."""
        def run(batch_size):
            fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()),
                                    _timer_target(), seeds=SEEDS, seed=5)
            return fuzzer.run(executions=60, batch_size=batch_size)
        a, b = run(1), run(1)
        assert a.verdict_summary() == b.verdict_summary()
