"""Scratchpad DMA engine.

A memory-to-memory copy engine over a 256-word internal scratchpad RAM,
one word per cycle — the corpus' large-memory design point: most of its
state lives in RAM rather than flip-flops, which stresses the memory
handling of the scan chain and the snapshot size accounting.

Register map (12-bit address space):

============ ========= ==============================================
0x000        SRC       source word index
0x004        DST       destination word index
0x008        LEN       number of words to copy
0x00C        CTRL      bit0 START, bit1 IRQ_EN
0x010        STATUS    bit0 BUSY, bit1 DONE (write 1 to bit1 to clear)
0x800-0xBFC  RAM       scratchpad window (word at (addr-0x800)/4)
============ ========= ==============================================
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "dma"
ADDR_BITS = 12
IRQ = True
RAM_WORDS = 256
RAM_BASE = 0x800

REGISTERS = {
    "SRC": 0x000,
    "DST": 0x004,
    "LEN": 0x008,
    "CTRL": 0x00C,
    "STATUS": 0x010,
    "RAM": RAM_BASE,
}

CTRL_START = 1 << 0
CTRL_IRQ_EN = 1 << 1
STATUS_BUSY = 1 << 0
STATUS_DONE = 1 << 1

_CORE = """
    reg [31:0] ram [0:255];
    reg [7:0] src;
    reg [7:0] dst;
    reg [8:0] len;
    reg [8:0] remaining;
    reg [7:0] src_ptr;
    reg [7:0] dst_ptr;
    reg busy;
    reg done;
    reg irq_en;

    always @(posedge clk) begin
        if (rst) begin
            src <= 0;
            dst <= 0;
            len <= 0;
            remaining <= 0;
            src_ptr <= 0;
            dst_ptr <= 0;
            busy <= 0;
            done <= 0;
            irq_en <= 0;
        end else begin
            if (bus_wr) begin
                if (bus_waddr[11]) begin
                    ram[bus_waddr[9:2]] <= bus_wdata;
                end else begin
                    case (bus_waddr)
                        12'h000: src <= bus_wdata[7:0];
                        12'h004: dst <= bus_wdata[7:0];
                        12'h008: len <= bus_wdata[8:0];
                        12'h00C: begin
                            if (bus_wdata[0] && (len != 0)) begin
                                busy <= 1'b1;
                                done <= 1'b0;
                                remaining <= len;
                                src_ptr <= src;
                                dst_ptr <= dst;
                            end
                            irq_en <= bus_wdata[1];
                        end
                        12'h010: begin
                            if (bus_wdata[1])
                                done <= 1'b0;
                        end
                        default: begin end
                    endcase
                end
            end
            if (busy) begin
                ram[dst_ptr] <= ram[src_ptr];
                src_ptr <= src_ptr + 1;
                dst_ptr <= dst_ptr + 1;
                remaining <= remaining - 1;
                if (remaining == 9'd1) begin
                    busy <= 1'b0;
                    done <= 1'b1;
                end
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        if (bus_raddr[11]) begin
            rd_data = ram[bus_raddr[9:2]];
        end else begin
            case (bus_raddr)
                12'h000: rd_data = {24'h0, src};
                12'h004: rd_data = {24'h0, dst};
                12'h008: rd_data = {23'h0, len};
                12'h00C: rd_data = {30'h0, irq_en, 1'b0};
                12'h010: rd_data = {30'h0, done, busy};
                default: rd_data = 32'h0;
            endcase
        end
    end

    assign irq = done && irq_en;
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS,
                      extra_ports=("output wire irq",))
