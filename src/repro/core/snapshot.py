"""The snapshotting controller (paper §III-C).

    "This controller is in charge of saving/restoring snapshots that are
    identified by a unique identifier. ... The core of the snapshotting
    controller is part of the virtual machine and it communicates with
    target-specific snapshot controllers."

:class:`SnapshotController` is that core: it assigns snapshot ids, calls
into the target-specific mechanisms (CRIU on the simulator target, the
scan-chain IP on the FPGA target), keeps accounting, and implements
Algorithm 1's ``UpdateState``/``RestoreState`` pair.

Storage goes through the content-addressed
:class:`~repro.core.store.SnapshotStore`: each save interns the
canonical per-instance states as deduplicated chunks and records a delta
against the snapshot the live hardware descended from, so a child
snapshot costs O(changed registers) in stored bits. Restores reassemble
the image by walking the delta chain (bounded by the store's flatten
threshold). The *mechanism* cost is still the target's: a scan chain
shifts its full length; only the simulator's CRIU model prices dirty
state incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core.store import (DEFAULT_FLATTEN_THRESHOLD, SnapshotStore,
                              StoreStats)
from repro.targets.base import HardwareTarget, HwSnapshot
from repro.vm.state import ExecState


@dataclass
class SnapshotStats:
    saves: int = 0
    restores: int = 0
    resets: int = 0
    bits_saved: int = 0
    bits_restored: int = 0
    #: Bits actually written to storage (after chunk dedup + deltas);
    #: compare against ``bits_saved`` for the naive full-image cost.
    bits_stored: int = 0
    modelled_save_s: float = 0.0
    modelled_restore_s: float = 0.0


class SnapshotController:
    """VM-side snapshot management over one hardware target."""

    def __init__(self, target: HardwareTarget,
                 store: Optional[SnapshotStore] = None,
                 flatten_threshold: int = DEFAULT_FLATTEN_THRESHOLD):
        self.target = target
        self.store = store if store is not None \
            else SnapshotStore(flatten_threshold)
        self.stats = SnapshotStats()
        #: Store id the live hardware state descends from (the delta
        #: parent of the next save); None after a reset.
        self._live_parent: Optional[int] = None
        #: Target capture epoch at our last save/restore; a mismatch
        #: means someone snapshotted the target behind our back and the
        #: dirty sets can no longer be trusted against _live_parent.
        self._live_epoch = target.capture_epoch

    # -- primitive operations ---------------------------------------------------

    def save(self) -> HwSnapshot:
        """Suspend the target, capture its state, resume; assign an id
        and intern the image into the delta store."""
        epoch_before = self.target.capture_epoch
        before_s = self.target.timer.total_s
        snapshot = self.target.save_snapshot()
        store_id = self.store.next_id()
        if snapshot.snapshot_id is None:  # 0 is a valid target-assigned id
            snapshot.snapshot_id = store_id
        snapshot.parent_id = self._live_parent
        lineage_intact = epoch_before == self._live_epoch
        unchanged = self._unchanged_instances(snapshot, lineage_intact)
        record = self.store.put(
            store_id, snapshot.states,
            bits_of=self._instance_bits(snapshot.states),
            parent_id=self._live_parent, method=snapshot.method,
            unchanged=unchanged)
        snapshot.record = record
        # Hand out the store's interned (immutable, shared) payloads so
        # per-fork clones are O(instances) instead of O(design).
        snapshot.states = self.store.resolve(store_id)
        self._live_parent = store_id
        self._live_epoch = self.target.capture_epoch
        self.stats.saves += 1
        self.stats.bits_saved += snapshot.bits
        self.stats.bits_stored += record.stored_bits
        self.stats.modelled_save_s += self.target.timer.total_s - before_s
        return snapshot

    def restore(self, snapshot: HwSnapshot) -> None:
        before_s = self.target.timer.total_s
        record = snapshot.record
        if record is not None and record.snapshot_id in self.store:
            # Reassemble the image by walking the delta chain (flatten
            # threshold keeps this O(1)-ish).
            snapshot.states = self.store.resolve(record.snapshot_id)
            self._live_parent = record.snapshot_id
        else:
            # Foreign snapshot (loaded from disk, raw target image):
            # lineage unknown, the next save must be a full record.
            self._live_parent = None
        self.target.restore_snapshot(snapshot)
        self._live_epoch = self.target.capture_epoch
        self.stats.restores += 1
        self.stats.bits_restored += snapshot.bits
        self.stats.modelled_restore_s += self.target.timer.total_s - before_s

    def reset(self) -> None:
        """Full power-on reset (the 'reboot' the baselines pay for)."""
        self.target.reset()
        self._live_parent = None
        self.stats.resets += 1

    # -- store plumbing -------------------------------------------------------

    def _instance_bits(self, states: Mapping[str, dict]) -> Dict[str, int]:
        return {name: self.target.instances[name].state_bits
                for name in states if name in self.target.instances}

    def _unchanged_instances(self, snapshot: HwSnapshot,
                             lineage_intact: bool) -> frozenset:
        """Instances safe to inherit the parent's chunk digest without
        re-hashing: only when the target reported a dirty set AND no
        out-of-band capture broke the lineage since our last operation."""
        if not lineage_intact or snapshot.dirty is None \
                or self._live_parent is None:
            return frozenset()
        return frozenset(set(snapshot.states) - set(snapshot.dirty))

    # -- Algorithm 1 lines 6-7 -------------------------------------------------------

    def update_state(self, state: ExecState) -> None:
        """``UpdateState(S_prev)``: re-snapshot the live hardware into the
        outgoing state (its old snapshot is superseded)."""
        state.hw_snapshot = self.save()

    def restore_state(self, state: ExecState) -> None:
        """``RestoreState(S)``: make the live hardware match the incoming
        state. A state that never owned hardware gets a fresh reset."""
        if state.hw_snapshot is None:
            self.reset()
            state.hw_snapshot = self.save()
        else:
            self.restore(state.hw_snapshot)

    # -- reporting -------------------------------------------------------------

    @property
    def store_stats(self) -> StoreStats:
        return self.store.stats

    def stats_table(self) -> str:
        """Paper-style accounting table for the snapshot subsystem."""
        from repro.analysis.tables import format_snapshot_stats
        return format_snapshot_stats(self.stats, self.store.stats)
