"""Snapshot persistence and crash-pack export/replay."""

import json

import pytest

from repro import HardSnapSession
from repro.core.persistence import (export_crash_pack, load_snapshot,
                                    replay_crash, save_snapshot,
                                    snapshot_from_dict)
from repro.errors import FirmwarePanic, SnapshotError
from repro.firmware import TIMER_BASE, UART_BASE, vuln_buffer_overflow
from repro.peripherals import catalog, timer
from repro.targets import FpgaTarget


class TestSnapshotFiles:
    def test_json_roundtrip_restores_hardware(self, tmp_path):
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        target.write(TIMER_BASE + timer.REGISTERS["LOAD"], 123)
        snap = target.save_snapshot()
        path = tmp_path / "state.json"
        save_snapshot(snap, path)
        # Fresh process simulation: a new target loads the file.
        other = FpgaTarget(scan_mode="functional")
        other.add_peripheral(catalog.TIMER, TIMER_BASE)
        other.reset()
        loaded = load_snapshot(path)
        other.restore_snapshot(loaded)
        assert other.read(TIMER_BASE + timer.REGISTERS["LOAD"]) == 123

    def test_file_is_human_readable_json(self, tmp_path):
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        path = tmp_path / "state.json"
        save_snapshot(target.save_snapshot(), path)
        data = json.loads(path.read_text())
        assert "timer" in data["states"]
        assert "load" in data["states"]["timer"]["nets"]

    def test_bad_format_rejected(self):
        with pytest.raises(SnapshotError):
            snapshot_from_dict({"format": 99, "states": {}})


class TestCrashPacks:
    @pytest.fixture(scope="class")
    def hunted(self):
        session = HardSnapSession(vuln_buffer_overflow(),
                                  [(catalog.UART, UART_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=300_000, stop_after_bugs=2)
        return session, report

    def test_export_layout(self, hunted, tmp_path):
        session, report = hunted
        dirs = export_crash_pack(report, tmp_path / "pack",
                                 program=session.program)
        assert len(dirs) == len(report.bugs)
        manifest = json.loads((tmp_path / "pack" / "manifest.json").read_text())
        assert manifest["findings"] == len(report.bugs)
        finding = json.loads((dirs[0] / "report.json").read_text())
        assert finding["kind"] == "assertion-failure"
        assert finding["test_case"]
        # Disassembly included in the backtrace.
        assert any("asm" in entry for entry in finding["backtrace"])
        assert (dirs[0] / "hardware.json").exists()

    def test_replay_reproduces_the_crash(self, hunted, tmp_path):
        session, report = hunted
        dirs = export_crash_pack(report, tmp_path / "pack2",
                                 program=session.program)
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.UART, UART_BASE)
        with pytest.raises(FirmwarePanic):
            replay_crash(dirs[0], session.program, target)

    def test_safe_input_does_not_crash(self, hunted, tmp_path):
        """Control: replaying a PASSING path's test case exits cleanly."""
        session, report = hunted
        good = next(p for p in report.halted_paths if p.test_case)
        from repro.isa.cpu import Cpu
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.UART, UART_BASE)
        target.reset()
        values = [v for _, v in sorted(good.test_case.items())]
        cpu = Cpu(session.program, mmio_read=target.read,
                  mmio_write=target.write, sym_values=values)
        exit_ = cpu.run(max_steps=200_000)
        assert exit_.reason == "halt"
