"""E11 — netlist optimizer throughput: optimized vs stock compiled backend.

The dataflow framework (``repro.opt``) folds constants, strips dead
logic and fuses single-use wires before the compiled simulator
generates code; the fast code generator then hoists the whole net map
into Python locals across multi-cycle runs. This experiment measures
what that buys on the E9 workload's hardware (the scan-instrumented
TIMER) and proves the optimizer changes *nothing observable*:

* **raw RTL throughput** — cycles/second through ``step(n)`` on the
  instrumented TIMER, optimized vs unoptimized. CI requires >= 1.5x.
* **fuzzing verdict identity** — the E9 serial fuzz (packet-parser
  firmware + TIMER) with an optimized vs unoptimized target: same
  crashes, same edges, byte-identical verdict summary.
* **differential gate** — a snapshot-equality spot check mirroring
  ``tests/test_opt_differential.py``; its outcome is recorded in
  ``benchmarks/out/BENCH_opt.json`` and CI fails if it did not run.
"""

import random
import time

from benchmarks.conftest import emit, emit_json
from repro.analysis import format_table
from repro.core import SnapshotFuzzer
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.instrument import insert_scan_chain
from repro.isa import assemble
from repro.peripherals import catalog
from repro.sim.compiler import CompiledSimulation
from repro.sim.interpreter import Interpreter
from repro.targets import FpgaTarget

SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]
EXECUTIONS = 300
MEASURE_CYCLES = 120_000
MIN_SPEEDUP = 1.5  # asserted on raw RTL throughput


def _instrumented_timer():
    return insert_scan_chain(catalog.TIMER.elaborate()).design


def _cycles_per_second(opt):
    sim = CompiledSimulation(_instrumented_timer(), opt=opt)
    sim.step(1_000)  # warm-up outside the timed region
    start = time.perf_counter()
    sim.step(MEASURE_CYCLES)
    elapsed = time.perf_counter() - start
    return MEASURE_CYCLES / elapsed, sim


def _fuzz(opt):
    target = FpgaTarget(scan_mode="functional", opt=opt)
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    report = fuzzer.run(executions=EXECUTIONS)
    return report, time.perf_counter() - start


def _differential_spot_check():
    """Optimized compiled vs unoptimized interpreter on the benchmark's
    own hardware: randomized stimulus, then byte-identical snapshots.
    The full gate lives in tests/test_opt_differential.py; this records
    in the artifact that equivalence held for *this* measurement."""
    ref = Interpreter(_instrumented_timer())
    opt = CompiledSimulation(_instrumented_timer(), opt=True)
    rng = random.Random(11)
    for _ in range(150):
        stim = {n.name: rng.getrandbits(n.width)
                for n in ref.design.inputs if n.name != "clk"}
        ref.poke_many(stim)
        opt.poke_many(dict(stim))
        ref.step()
        opt.step()
    ref.step(100)
    opt.step(100)
    return ref.save_state() == opt.save_state()


def test_opt_throughput(benchmark):
    (base_cps, base_sim), (opt_cps, opt_sim) = benchmark.pedantic(
        lambda: (_cycles_per_second(opt=False),
                 _cycles_per_second(opt=True)),
        rounds=1, iterations=1)
    speedup = opt_cps / base_cps

    fuzz_base, fuzz_base_s = _fuzz(opt=False)
    fuzz_opt, fuzz_opt_s = _fuzz(opt=True)
    verdict_identical = (fuzz_opt.verdict_summary()
                         == fuzz_base.verdict_summary())

    gate_ok = _differential_spot_check()

    rows = [
        ["step(n), no-opt", f"{base_cps:,.0f} cyc/s", "1.00x", "reference"],
        ["step(n), opt", f"{opt_cps:,.0f} cyc/s", f"{speedup:.2f}x",
         opt_sim.opt_report.summary()],
        ["serial fuzz, no-opt", f"{fuzz_base_s:.3f} s", "1.00x",
         f"{len(fuzz_base.crashes)} crashes, "
         f"{fuzz_base.edges_covered} edges"],
        ["serial fuzz, opt", f"{fuzz_opt_s:.3f} s",
         f"{fuzz_base_s / fuzz_opt_s:.2f}x",
         "identical verdict" if verdict_identical else "DIVERGED"],
    ]
    emit("opt_throughput", format_table(
        ["configuration", "result", "speedup", "notes"], rows,
        title=f"E11: netlist optimizer on the instrumented TIMER "
              f"({MEASURE_CYCLES} measured cycles, "
              f"{EXECUTIONS} fuzz executions)"))

    emit_json("BENCH_opt.json", {
        "experiment": "opt_throughput",
        "workload": "scan-instrumented TIMER (E9 hardware)",
        "measure_cycles": MEASURE_CYCLES,
        "cycles_per_s": {"no_opt": base_cps, "opt": opt_cps},
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "opt_report": opt_sim.opt_report.summary(),
        "fuzz": {
            "executions": EXECUTIONS,
            "host_s": {"no_opt": fuzz_base_s, "opt": fuzz_opt_s},
            "crashes": len(fuzz_opt.crashes),
            "edges": fuzz_opt.edges_covered,
            "verdict_identical": verdict_identical,
        },
        "differential_gate": {"ran": True, "passed": gate_ok},
    })

    assert gate_ok, "differential spot check failed: snapshots diverged"
    assert verdict_identical, "fuzzing verdicts diverged under opt"
    assert base_sim.opt_report is None and opt_sim.opt_report is not None
    assert speedup >= MIN_SPEEDUP, (
        f"optimizer speedup {speedup:.2f}x below the {MIN_SPEEDUP}x gate")
