"""Lint framework: diagnostics, the rule registry and severity policy.

A *rule* is a pure function over a :class:`~repro.lint.analysis.LintContext`
that yields :class:`Diagnostic` objects. Rules register themselves with the
:func:`rule` decorator under a stable id (``comb-loop``, ``multi-driver``,
...) and a default severity; a :class:`LintConfig` can disable rules or
override severities without touching the rule code.

Severities follow the usual compiler convention:

* ``error``   — the design is wrong or un-snapshottable; ``repro lint``
  exits non-zero and the scan-chain pre-flight refuses to instrument,
* ``warning`` — suspicious but simulatable (latches, truncation, ...),
* ``info``    — accounting the user should know about (e.g. a memory that
  will be captured by configuration readback rather than the scan chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Sort/filter order; lower rank is more severe.
SEVERITY_RANK: Dict[str, int] = {ERROR: 0, WARNING: 1, INFO: 2}


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, tied to a rule and (when known) a source line."""

    rule: str
    severity: str
    message: str
    subject: str = ""          # net / memory / process the finding is about
    design: str = ""
    source_file: Optional[str] = None
    line: Optional[int] = None

    @property
    def location(self) -> str:
        base = self.source_file or f"<{self.design or 'design'}>"
        if self.line:
            return f"{base}:{self.line}"
        return base

    def format(self) -> str:
        subject = f" [{self.subject}]" if self.subject else ""
        return (f"{self.location}: {self.severity}: "
                f"{self.rule}: {self.message}{subject}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "design": self.design,
            "file": self.source_file,
            "line": self.line,
        }


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    id: str
    severity: str          # default severity of its diagnostics
    title: str
    rationale: str
    check: Callable        # LintContext -> Iterable[Diagnostic]


REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, severity: str, title: str,
         rationale: str) -> Callable:
    """Decorator registering a check function under *rule_id*."""
    if severity not in SEVERITY_RANK:
        raise ValueError(f"unknown severity {severity!r}")

    def wrap(fn: Callable) -> Callable:
        if rule_id in REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        REGISTRY[rule_id] = Rule(rule_id, severity, title, rationale, fn)
        return fn

    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule, in stable (id-sorted) order."""
    return [REGISTRY[k] for k in sorted(REGISTRY)]


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LintConfig:
    """Lint policy plus the snapshot-coverage parameters.

    The coverage parameters mirror :func:`insert_scan_chain`'s signature so
    the ``snapshot-completeness`` rule checks exactly the instrumentation
    the user is about to perform.
    """

    disabled: frozenset = frozenset()
    severity_overrides: Dict[str, str] = field(default_factory=dict)

    # -- snapshot coverage model ------------------------------------------------
    clock: str = "clk"
    include: Optional[Tuple[str, ...]] = None
    memory_limit_bits: int = 16384  # DEFAULT_MEMORY_LIMIT_BITS
    #: Whether the target offers configuration readback for memories that
    #: are too large to thread on the chain (capture-only).
    readback: bool = True

    def severity_for(self, rule_id: str, default: str) -> str:
        return self.severity_overrides.get(rule_id, default)


def apply_policy(diags: Iterable[Diagnostic],
                 config: LintConfig) -> List[Diagnostic]:
    """Apply severity overrides and sort by severity, then location."""
    out: List[Diagnostic] = []
    for diag in diags:
        sev = config.severity_for(diag.rule, diag.severity)
        if sev != diag.severity:
            diag = replace(diag, severity=sev)
        out.append(diag)
    out.sort(key=lambda d: (SEVERITY_RANK.get(d.severity, 3),
                            d.source_file or "", d.line or 0,
                            d.rule, d.subject))
    return out


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

@dataclass
class LintReport:
    """All diagnostics for one design plus render helpers."""

    design: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    source_file: Optional[str] = None

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> int:
        return self.count(ERROR)

    @property
    def warnings(self) -> int:
        return self.count(WARNING)

    @property
    def infos(self) -> int:
        return self.count(INFO)

    @property
    def ok(self) -> bool:
        """True when the design has no error-severity findings."""
        return self.errors == 0

    @property
    def clean(self) -> bool:
        """True when the design has no findings at all."""
        return not self.diagnostics

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.rule] = counts.get(diag.rule, 0) + 1
        return counts

    def summary(self) -> str:
        return (f"{self.design}: {self.errors} error(s), "
                f"{self.warnings} warning(s), {self.infos} info(s)")

    def render_text(self) -> str:
        lines = [d.format() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "design": self.design,
            "file": self.source_file,
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
            "by_rule": self.by_rule(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def render_json(reports: Sequence[LintReport]) -> str:
    """Machine-readable rendering of one or more lint reports."""
    import json

    payload = {
        "reports": [r.to_dict() for r in reports],
        "total_errors": sum(r.errors for r in reports),
        "total_warnings": sum(r.warnings for r in reports),
        "total_infos": sum(r.infos for r in reports),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
