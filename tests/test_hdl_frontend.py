"""Tests for the Verilog lexer and parser."""

import pytest

from repro.errors import LexError, ParseError
from repro.hdl import ast_nodes as A
from repro.hdl.lexer import tokenize
from repro.hdl.parser import parse


class TestLexer:
    def test_identifiers_and_keywords(self):
        toks = tokenize("module foo_1 endmodule")
        assert [t.kind for t in toks[:-1]] == ["keyword", "id", "keyword"]

    def test_sized_literals(self):
        tok = tokenize("8'hFF")[0]
        assert tok.kind == "number" and tok.value == 0xFF and tok.width == 8

    def test_binary_with_underscores(self):
        tok = tokenize("8'b1010_1010")[0]
        assert tok.value == 0xAA

    def test_unsized_decimal(self):
        tok = tokenize("1234")[0]
        assert tok.value == 1234 and tok.width is None

    def test_xz_digits_value_and_mask(self):
        tok = tokenize("4'b1?0z")[0]
        assert tok.value == 0b1000
        assert tok.xmask == 0b0101

    def test_hex_x_covers_four_bits(self):
        tok = tokenize("8'hx5")[0]
        assert tok.value == 0x05 and tok.xmask == 0xF0

    def test_comments_skipped(self):
        toks = tokenize("a // line\n /* block\nstill */ b")
        assert [t.text for t in toks if t.kind == "id"] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_directives_skipped(self):
        toks = tokenize("`timescale 1ns/1ps\nwire")
        assert toks[0].text == "wire"

    def test_operators_longest_match(self):
        toks = tokenize("a <<< b <= c == d")
        ops = [t.text for t in toks if t.kind == "op"]
        assert ops == ["<<<", "<=", "=="]

    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        lines = [t.line for t in toks if t.kind == "id"]
        assert lines == [1, 2, 4]

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("wire \\escaped")


class TestParser:
    def test_module_header_with_params(self):
        src = """
        module m #(parameter W = 8, parameter D = W * 2) (
            input wire [W-1:0] a, output reg [D-1:0] b
        );
        endmodule
        """
        mod = parse(src).module("m")
        assert [p.name for p in mod.params] == ["W", "D"]
        assert [p.name for p in mod.ports] == ["a", "b"]
        assert mod.ports[1].kind == "reg"

    def test_non_ansi_ports(self):
        src = """
        module m (a, b);
            input wire [3:0] a;
            output reg b;
        endmodule
        """
        mod = parse(src).module("m")
        assert mod.ports[0].direction == "input"
        assert mod.ports[1].direction == "output"
        assert mod.ports[1].kind == "reg"

    def test_net_declarations(self):
        src = """
        module m ();
            wire [7:0] w1, w2;
            reg r = 1'b1;
            reg [3:0] mem [0:15];
            integer i;
        endmodule
        """
        mod = parse(src).module("m")
        decls = [i for i in mod.items if isinstance(i, A.NetDecl)]
        assert len(decls) == 5
        assert decls[2].init is not None
        assert decls[3].array is not None
        assert decls[4].kind == "integer"

    def test_continuous_assign_list(self):
        src = "module m (); wire a, b; assign a = 1'b0, b = 1'b1; endmodule"
        mod = parse(src).module("m")
        assigns = [i for i in mod.items if isinstance(i, A.ContinuousAssign)]
        assert len(assigns) == 2

    def test_always_comb_star_forms(self):
        for form in ("@(*)", "@*"):
            src = f"module m (); reg a; always {form} a = 1'b0; endmodule"
            mod = parse(src).module("m")
            block = [i for i in mod.items if isinstance(i, A.AlwaysBlock)][0]
            assert block.is_combinational

    def test_always_edge_sensitivity(self):
        src = """
        module m (input wire clk, input wire rst_n);
            reg q;
            always @(posedge clk or negedge rst_n) q <= 1'b0;
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        assert block.sensitivity[0].edge == "posedge"
        assert block.sensitivity[1].edge == "negedge"
        assert block.sensitivity[1].signal == "rst_n"

    def test_if_else_chain(self):
        src = """
        module m (input wire [1:0] s);
            reg [3:0] r;
            always @(*) begin
                if (s == 2'd0) r = 4'd1;
                else if (s == 2'd1) r = 4'd2;
                else r = 4'd3;
            end
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        stmt = block.body[0]
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.other[0], A.If)

    def test_case_with_multiple_labels_and_default(self):
        src = """
        module m (input wire [1:0] s);
            reg r;
            always @(*) begin
                case (s)
                    2'd0, 2'd1: r = 1'b0;
                    default: r = 1'b1;
                endcase
            end
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        case = block.body[0]
        assert isinstance(case, A.Case)
        assert len(case.items[0].labels) == 2
        assert case.items[1].labels == []

    def test_for_loop(self):
        src = """
        module m ();
            integer i;
            reg [7:0] acc;
            always @(*) begin
                acc = 0;
                for (i = 0; i < 4; i = i + 1)
                    acc = acc + i;
            end
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        assert isinstance(block.body[1], A.For)

    def test_instance_named_connections(self):
        src = """
        module m (input wire clk);
            sub #(.W(4)) u0 (.clk(clk), .q(), .d(1'b0));
        endmodule
        """
        inst = [i for i in parse(src).module("m").items
                if isinstance(i, A.Instance)][0]
        assert inst.module == "sub" and inst.name == "u0"
        assert inst.params[0][0] == "W"
        names = [c[0] for c in inst.connections]
        assert names == ["clk", "q", "d"]
        assert inst.connections[1][1] is None  # explicitly unconnected

    def test_expression_precedence(self):
        src = "module m (); wire [7:0] x; assign x = 1 + 2 * 3; endmodule"
        assign = [i for i in parse(src).module("m").items
                  if isinstance(i, A.ContinuousAssign)][0]
        assert isinstance(assign.value, A.Binary)
        assert assign.value.op == "+"
        assert assign.value.right.op == "*"

    def test_ternary_right_associative(self):
        src = ("module m (input wire a, input wire b); wire [1:0] x; "
               "assign x = a ? 1 : b ? 2 : 3; endmodule")
        assign = [i for i in parse(src).module("m").items
                  if isinstance(i, A.ContinuousAssign)][0]
        assert isinstance(assign.value.other, A.Ternary)

    def test_concat_and_replication(self):
        src = ("module m (input wire [3:0] a); wire [11:0] x; "
               "assign x = {a, {2{a}}}; endmodule")
        assign = [i for i in parse(src).module("m").items
                  if isinstance(i, A.ContinuousAssign)][0]
        assert isinstance(assign.value, A.Concat)
        assert isinstance(assign.value.parts[1], A.Repeat)

    def test_selects_chain(self):
        src = ("module m (input wire [7:0] a); wire x; "
               "assign x = a[3]; endmodule")
        assign = [i for i in parse(src).module("m").items
                  if isinstance(i, A.ContinuousAssign)][0]
        assert isinstance(assign.value, A.BitSelect)

    def test_nonblocking_vs_blocking(self):
        src = """
        module m (input wire clk);
            reg a, b;
            always @(posedge clk) begin
                a <= 1'b1;
                b = 1'b0;
            end
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        assert block.body[0].blocking is False
        assert block.body[1].blocking is True

    def test_system_tasks_ignored(self):
        src = """
        module m (input wire clk);
            reg a;
            always @(posedge clk) begin
                $display("hello %d", a);
                a <= 1'b1;
            end
        endmodule
        """
        block = [i for i in parse(src).module("m").items
                 if isinstance(i, A.AlwaysBlock)][0]
        assert len(block.body) == 1  # $display dropped

    def test_error_reports_line(self):
        with pytest.raises(ParseError) as err:
            parse("module m ();\n  wire;\nendmodule")
        assert "line 2" in str(err.value)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("module m () wire a; endmodule")

    def test_multiple_modules(self):
        src = "module a (); endmodule module b (); endmodule"
        sf = parse(src)
        assert {m.name for m in sf.modules} == {"a", "b"}
        with pytest.raises(KeyError):
            sf.module("c")
