"""Bulk scan capture/load ("shift") vs the per-bit reference oracle
("shift-perbit").

The bulk path models the whole chain rotation in one step — identical
modelled cost (chain_length cycles through the scan ports), identical
canonical state, identical post-restore behavior — it just skips the
O(L) per-bit Python loop. These tests pin the equivalence over every
catalog peripheral."""

import pytest

from repro.errors import TargetError
from repro.peripherals import catalog
from repro.targets import FpgaTarget

BASE = 0x4000_0000


def _target(spec, mode):
    target = FpgaTarget(scan_mode=mode)
    target.add_peripheral(spec, BASE)
    target.reset()
    return target


def _stimulate(target):
    """Deterministic activity: program a few window registers, run."""
    target.step(3)
    for offset in (0x0, 0x4, 0x8):
        target.write(BASE + offset, 0xA5A5_0000 | offset)
    target.step(5)
    target.read(BASE + 0x0)
    target.step(2)


def _observable(target):
    """Everything the canonical state covers, read per instance."""
    out = {}
    for name, instance in target.instances.items():
        sim = instance.sim
        out[name] = ({k: v for k, v in sim.values.items()
                      if not k.startswith("scan_")},
                     {k: list(v) for k, v in sim.memories.items()
                      if not k.startswith("scan_")},
                     sim.cycle)
    return out


@pytest.mark.parametrize("spec", catalog.CORPUS, ids=lambda s: s.name)
class TestBulkScanEquivalence:
    def test_capture_matches_perbit(self, spec):
        bulk, perbit = _target(spec, "shift"), _target(spec, "shift-perbit")
        _stimulate(bulk)
        _stimulate(perbit)
        s_bulk, s_perbit = bulk.save_snapshot(), perbit.save_snapshot()
        # Same canonical state, bit for bit...
        assert s_bulk.states == s_perbit.states
        # ...same modelled cost (same chain rotation, same scan ports)...
        assert s_bulk.bits == s_perbit.bits
        assert s_bulk.modelled_cost_s == s_perbit.modelled_cost_s
        assert s_bulk.method == s_perbit.method == "scan"
        # ...and both paid the scan-out cycles on the live hardware.
        assert _observable(bulk) == _observable(perbit)

    def test_restore_matches_perbit(self, spec):
        bulk, perbit = _target(spec, "shift"), _target(spec, "shift-perbit")
        _stimulate(bulk)
        _stimulate(perbit)
        snapshot = bulk.save_snapshot()
        # Diverge both targets, then restore the same snapshot each way.
        for target in (bulk, perbit):
            target.write(BASE + 0x0, 0xDEAD_BEEF)
            target.step(9)
        bulk.restore_snapshot(snapshot)
        perbit.restore_snapshot(snapshot.clone())
        assert _observable(bulk) == _observable(perbit)
        assert bulk.irq_lines() == perbit.irq_lines()

    def test_post_restore_behavior_identical(self, spec):
        bulk, perbit = _target(spec, "shift"), _target(spec, "shift-perbit")
        _stimulate(bulk)
        _stimulate(perbit)
        snap_b, snap_p = bulk.save_snapshot(), perbit.save_snapshot()
        bulk.restore_snapshot(snap_b)
        perbit.restore_snapshot(snap_p)
        # The restored machines must run on identically.
        for target in (bulk, perbit):
            target.step(4)
            target.write(BASE + 0x4, 0x1234)
            target.step(4)
        assert _observable(bulk) == _observable(perbit)
        assert [bulk.read(BASE + o) for o in (0x0, 0x4, 0x8)] == \
            [perbit.read(BASE + o) for o in (0x0, 0x4, 0x8)]


def test_unknown_scan_mode_rejected():
    with pytest.raises(TargetError):
        FpgaTarget(scan_mode="warp")


def test_bulk_is_default():
    assert FpgaTarget().scan_mode == "shift"
