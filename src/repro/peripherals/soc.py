"""SoC composition: an AXI4-Lite interconnect in RTL.

The paper evaluates "a synthetic design composed of open-source hardware
peripherals" and stresses that HardSnap "can be either used for testing
the whole design or only a subsystem" (§I). This module builds that
whole design *in RTL*: a generated top module with

* one AXI4-Lite slave port (driven by the VM's memory forwarding),
* an address decoder giving each peripheral a 64 KiB window
  (``slave i`` at offset ``i * 0x10000``; address bits [19:16] select),
* per-channel response routing with latched write/read selects (the
  master may be waiting on slave A's response while addressing B next),
* an aggregated ``irq`` output (OR of all peripheral lines) plus the
  per-peripheral ``irqs`` vector.

Because the result is a single elaborated design, a single scan chain
threads *every* peripheral — and the instrumentation's ``include``
filter carves out subsystems (see ``tests/test_soc.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import ElaborationError
from repro.hdl import elaborate
from repro.hdl.ir import Design
from repro.peripherals.catalog import PeripheralSpec

WINDOW_BITS = 16
WINDOW_SIZE = 1 << WINDOW_BITS
MAX_SLAVES = 8

#: Ports a hosted peripheral may expose beyond clk/rst/AXI; mapped to the
#: SoC top level with an instance prefix.
_EXTERNAL_PORTS: Dict[str, Sequence[Tuple[str, str, int]]] = {
    # name -> (direction, port, width)
    "gpio": (("input", "gpio_in", 32), ("output", "gpio_out", 32)),
    "uart": (("input", "rx", 1), ("output", "tx", 1)),
    "intc": (("input", "lines", 8),),
}


@dataclass
class SocInfo:
    """Metadata for a generated SoC."""

    name: str
    slaves: List[Tuple[str, PeripheralSpec, int]] = field(default_factory=list)
    #: instance name -> base offset within the SoC window
    bases: Dict[str, int] = field(default_factory=dict)

    @property
    def window_size(self) -> int:
        return WINDOW_SIZE * max(1, len(self.slaves))

    def base_of(self, instance: str) -> int:
        return self.bases[instance]


def build_soc(specs: Sequence[PeripheralSpec],
              name: str = "soc") -> Tuple[str, SocInfo]:
    """Generate the Verilog for a SoC hosting *specs* behind one AXI port.

    Returns ``(verilog_text, info)``. Instance ``i`` is named ``p<i>``
    and decodes addresses ``[i * 0x10000, (i+1) * 0x10000)``.
    """
    if not specs:
        raise ElaborationError("soc needs at least one peripheral")
    if len(specs) > MAX_SLAVES:
        raise ElaborationError(f"soc supports at most {MAX_SLAVES} slaves")
    for spec in specs:
        if spec.bus != "axi":
            raise ElaborationError(
                f"soc interconnect is AXI4-Lite; {spec.name!r} is "
                f"{spec.bus}")

    info = SocInfo(name=name)
    sources: List[str] = []
    seen_modules = set()
    for i, spec in enumerate(specs):
        inst = f"p{i}"
        info.slaves.append((inst, spec, i * WINDOW_SIZE))
        info.bases[inst] = i * WINDOW_SIZE
        if spec.name not in seen_modules:
            seen_modules.add(spec.name)
            sources.append(spec.verilog())

    n = len(specs)
    sel_bits = 3  # addr[18:16] (MAX_SLAVES = 8)

    ports = [
        "input wire clk",
        "input wire rst",
        "input wire s_axi_awvalid",
        "output wire s_axi_awready",
        "input wire [19:0] s_axi_awaddr",
        "input wire s_axi_wvalid",
        "output wire s_axi_wready",
        "input wire [31:0] s_axi_wdata",
        "output wire s_axi_bvalid",
        "input wire s_axi_bready",
        "input wire s_axi_arvalid",
        "output wire s_axi_arready",
        "input wire [19:0] s_axi_araddr",
        "output wire s_axi_rvalid",
        "input wire s_axi_rready",
        "output wire [31:0] s_axi_rdata",
        "output wire irq",
        f"output wire [{max(n - 1, 0)}:0] irqs",
    ]
    body: List[str] = []
    # An on-SoC interrupt controller gets the other peripherals' irq
    # lines wired to its `lines` input in RTL (line i = slave i, the
    # intc's own position reads 0); no external pin is emitted for it.
    intc_index = next((i for i, s in enumerate(specs) if s.name == "intc"),
                      None)
    for i, spec in enumerate(specs):
        for direction, port, width in _EXTERNAL_PORTS.get(spec.name, ()):
            if spec.name == "intc" and port == "lines":
                continue  # wired internally below
            rng = f"[{width - 1}:0] " if width > 1 else ""
            ports.append(f"{direction} wire {rng}p{i}_{port}")

    body.append(f"    wire [{sel_bits - 1}:0] wsel_now;")
    body.append(f"    assign wsel_now = s_axi_awaddr[18:16];")
    body.append(f"    wire [{sel_bits - 1}:0] rsel_now;")
    body.append(f"    assign rsel_now = s_axi_araddr[18:16];")
    # Latched selects for the response phases.
    body.append(f"    reg [{sel_bits - 1}:0] wsel;")
    body.append(f"    reg [{sel_bits - 1}:0] rsel;")
    body.append("    always @(posedge clk) begin")
    body.append("        if (rst) begin")
    body.append("            wsel <= 0;")
    body.append("            rsel <= 0;")
    body.append("        end else begin")
    body.append("            if (s_axi_awvalid && s_axi_awready)")
    body.append("                wsel <= wsel_now;")
    body.append("            if (s_axi_arvalid && s_axi_arready)")
    body.append("                rsel <= rsel_now;")
    body.append("        end")
    body.append("    end")

    # Per-slave wires + instances.
    for i, spec in enumerate(specs):
        a = spec.addr_bits
        body.append(f"    wire aw{i};")
        body.append(f"    assign aw{i} = s_axi_awvalid && "
                    f"(wsel_now == {sel_bits}'d{i});")
        body.append(f"    wire ar{i};")
        body.append(f"    assign ar{i} = s_axi_arvalid && "
                    f"(rsel_now == {sel_bits}'d{i});")
        body.append(f"    wire w{i};")
        body.append(f"    assign w{i} = s_axi_wvalid && "
                    f"(wsel_now == {sel_bits}'d{i});")
        for sig in ("awready", "wready", "bvalid", "arready", "rvalid"):
            body.append(f"    wire {sig}{i};")
        body.append(f"    wire [31:0] rdata{i};")
        conns = [
            ".clk(clk)", ".rst(rst)",
            f".s_axi_awvalid(aw{i})", f".s_axi_awready(awready{i})",
            f".s_axi_awaddr(s_axi_awaddr[{a - 1}:0])",
            f".s_axi_wvalid(w{i})", f".s_axi_wready(wready{i})",
            ".s_axi_wdata(s_axi_wdata)",
            f".s_axi_bvalid(bvalid{i})",
            f".s_axi_bready(s_axi_bready && (wsel == {sel_bits}'d{i}))",
            f".s_axi_arvalid(ar{i})", f".s_axi_arready(arready{i})",
            f".s_axi_araddr(s_axi_araddr[{a - 1}:0])",
            f".s_axi_rvalid(rvalid{i})",
            f".s_axi_rready(s_axi_rready && (rsel == {sel_bits}'d{i}))",
            f".s_axi_rdata(rdata{i})",
        ]
        if spec.has_irq:
            body.append(f"    wire irq{i};")
            conns.append(f".irq(irq{i})")
        for direction, port, width in _EXTERNAL_PORTS.get(spec.name, ()):
            if spec.name == "intc" and port == "lines":
                conns.append(".lines(intc_lines)")
            else:
                conns.append(f".{port}(p{i}_{port})")
        body.append(f"    {spec.name} p{i} (")
        body.append("        " + ",\n        ".join(conns))
        body.append("    );")

    # Default slave: addresses in windows without a peripheral get an
    # immediate OKAY-with-zero response instead of hanging the bus.
    body.append("    reg dflt_bvalid;")
    body.append("    reg dflt_rvalid;")
    body.append("    always @(posedge clk) begin")
    body.append("        if (rst) begin")
    body.append("            dflt_bvalid <= 1'b0;")
    body.append("            dflt_rvalid <= 1'b0;")
    body.append("        end else begin")
    body.append(f"            if (s_axi_awvalid && s_axi_wvalid && "
                f"(wsel_now >= {sel_bits}'d{n}) && !dflt_bvalid)")
    body.append("                dflt_bvalid <= 1'b1;")
    body.append("            if (dflt_bvalid && s_axi_bready)")
    body.append("                dflt_bvalid <= 1'b0;")
    body.append(f"            if (s_axi_arvalid && "
                f"(rsel_now >= {sel_bits}'d{n}) && !dflt_rvalid)")
    body.append("                dflt_rvalid <= 1'b1;")
    body.append("            if (dflt_rvalid && s_axi_rready)")
    body.append("                dflt_rvalid <= 1'b0;")
    body.append("        end")
    body.append("    end")

    def _mux(sel: str, fmt: str, default: str) -> str:
        expr = default
        for i in range(n - 1, -1, -1):
            expr = (f"(({sel} == {sel_bits}'d{i}) ? {fmt.format(i=i)} "
                    f": {expr})")
        return expr

    body.append("    assign s_axi_awready = "
                + _mux("wsel_now", "awready{i}", "1'b1") + ";")
    body.append("    assign s_axi_wready = "
                + _mux("wsel_now", "wready{i}", "1'b1") + ";")
    body.append("    assign s_axi_bvalid = "
                + _mux("wsel", "bvalid{i}", "dflt_bvalid") + ";")
    body.append("    assign s_axi_arready = "
                + _mux("rsel_now", "arready{i}", "1'b1") + ";")
    body.append("    assign s_axi_rvalid = "
                + _mux("rsel", "rvalid{i}", "dflt_rvalid") + ";")
    body.append("    assign s_axi_rdata = "
                + _mux("rsel", "rdata{i}", "32'h0") + ";")

    irq_terms = [f"irq{i}" if spec.has_irq else "1'b0"
                 for i, spec in enumerate(specs)]
    body.append("    assign irqs = {" + ", ".join(reversed(irq_terms))
                + "};")
    if intc_index is not None:
        # Route the other slaves' irq lines into the controller; its own
        # slot reads 0. The aggregated CPU interrupt is then the intc's.
        lines = list(irq_terms)
        lines[intc_index] = "1'b0"
        pad = ["1'b0"] * (8 - n)
        body.append("    wire [7:0] intc_lines;")
        body.append("    assign intc_lines = {"
                    + ", ".join(pad + list(reversed(lines))) + "};")
        body.append(f"    assign irq = irq{intc_index};")
    else:
        body.append("    assign irq = |irqs;")

    ports_text = ",\n    ".join(ports)
    top = (f"module {name} (\n    {ports_text}\n);\n"
           + "\n".join(body) + "\nendmodule\n")
    return "\n".join(sources) + "\n" + top, info


class SocSpec:
    """Duck-typed :class:`PeripheralSpec` for a generated SoC, so targets
    host the whole design as one instance (one scan chain)."""

    bus = "axi"
    has_irq = True

    def __init__(self, specs: Sequence[PeripheralSpec], name: str = "soc"):
        self._source, self.info = build_soc(specs, name)
        self.name = name
        self.addr_bits = 20
        self.registers: Dict[str, int] = {
            f"p{i}_{reg}": info_base + offset
            for i, (inst, spec, info_base) in enumerate(self.info.slaves)
            for reg, offset in spec.registers.items()
        }

    @property
    def window_size(self) -> int:
        return 1 << self.addr_bits

    def verilog(self) -> str:
        return self._source

    def elaborate(self) -> Design:
        return elaborate(self._source, self.name)
