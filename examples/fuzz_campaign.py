#!/usr/bin/env python3
"""Snapshot-based fuzzing campaign against a packet-parser firmware.

The paper's §II motivation (citing Muench et al.): fuzzing embedded
systems needs a clean hardware state per input, and rebooting the device
for every input is extremely slow. HardSnap's answer: capture the
post-boot hardware state once, restore it per input.

This campaign fuzzes a firmware with a planted signed-length-check bug
(a 'negative' length byte bypasses the bounds check) and compares
executions/second between snapshot-restore and reboot-per-input.

Run:  python examples/fuzz_campaign.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro.core import SnapshotFuzzer
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.isa import assemble
from repro.peripherals import catalog
from repro.targets import FpgaTarget

SEEDS = [
    bytes([0x01, 0x04, 0x41, 0x42, 0x43, 0x44]),  # cmd 1: copy 4 bytes
    bytes([0x02, 0x07]),                          # cmd 2: timer task
]


def campaign(reset: str, executions: int = 300):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, reset=reset, seed=3)
    return fuzzer.run(executions=executions)


def main() -> None:
    print("fuzzing the packet parser (planted bug: signed length check)\n")
    snap = campaign("snapshot")
    print(f"snapshot reset : {snap.summary()}")
    reboot = campaign("reboot")
    print(f"reboot reset   : {reboot.summary()}")
    print(f"\nspeedup from hardware snapshotting: "
          f"{reboot.modelled_time_s / snap.modelled_time_s:.0f}x "
          f"(same coverage: {snap.edges_covered} edges both ways)")

    print(f"\ncrashing inputs ({len(snap.crashes)}):")
    for crash in snap.crashes[:5]:
        cmd, length = crash.input_bytes[0], crash.input_bytes[1]
        print(f"  cmd={cmd} len=0x{length:02x} ({length - 256} as signed "
              f"byte) -> {crash.reason.split(' at ')[0]}")
    print("\nroot cause: the length check uses a signed comparison;"
          "\nbytes >= 0x80 read as negative, pass `n <= 16`, and the copy"
          "\nloop smashes the buffer canary.")
    assert snap.crashes and all(c.input_bytes[1] >= 0x80
                                for c in snap.crashes)


if __name__ == "__main__":
    main()
