"""Wishbone (classic) slave scaffold.

The paper stresses that HardSnap's memory-bus abstraction is modular
("a simulated memory bus (i.e., AXI, Wishbone)"). This scaffold exposes
the *same* core contract as :mod:`~repro.peripherals.axi_skeleton` —
``bus_wr``/``bus_waddr``/``bus_wdata``, ``bus_rd``/``bus_raddr`` and the
combinational ``rd_data`` mux — so any peripheral core body drops into
either bus unchanged (see :mod:`~repro.peripherals.gpio_wb`).
"""

from __future__ import annotations

from typing import Optional, Sequence


def wishbone_module(name: str, core_body: str, addr_bits: int = 8,
                    extra_ports: Sequence[str] = (),
                    params: Optional[str] = None) -> str:
    """Assemble a Wishbone classic slave module around *core_body*."""
    ports = [
        "input wire clk",
        "input wire rst",
        "input wire wb_cyc",
        "input wire wb_stb",
        "input wire wb_we",
        f"input wire [{addr_bits - 1}:0] wb_adr",
        "input wire [31:0] wb_dat_w",
        "output reg wb_ack",
        "output reg [31:0] wb_dat_r",
    ]
    ports.extend(extra_ports)
    port_text = ",\n    ".join(ports)
    param_text = f" #(\n    {params}\n)" if params else ""
    return f"""
module {name}{param_text} (
    {port_text}
);
    // ---- Wishbone handshake: single-beat, one wait state ----
    wire bus_req;
    assign bus_req = wb_cyc && wb_stb && !wb_ack;
    wire bus_wr;
    wire bus_rd;
    wire [{addr_bits - 1}:0] bus_waddr;
    wire [31:0] bus_wdata;
    wire [{addr_bits - 1}:0] bus_raddr;
    assign bus_wr = bus_req && wb_we;
    assign bus_rd = bus_req && !wb_we;
    assign bus_waddr = wb_adr;
    assign bus_wdata = wb_dat_w;
    assign bus_raddr = wb_adr;

    always @(posedge clk) begin
        if (rst) begin
            wb_ack <= 1'b0;
            wb_dat_r <= 0;
        end else begin
            wb_ack <= 1'b0;
            if (bus_req)
                wb_ack <= 1'b1;
            if (bus_rd)
                wb_dat_r <= rd_data;
        end
    end

    // ---- peripheral core (bus-agnostic) ----
{core_body}
endmodule
"""
