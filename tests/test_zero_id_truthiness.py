"""Regression tests for the snapshot-id-0 truthiness bug class.

Snapshot ids, content digests, and interrupt vectors are all values
where ``0`` (or an empty container) is legal but falsy — any
``if value:`` guard silently treats them as absent. These tests pin the
``is not None`` semantics at every spot the audit covered:
``vm/state.py`` (``hw_snapshot`` forking, ``irq_handler`` at address 0),
``core/store.py``/``core/snapshot.py`` (id 0 records), and the
parallel wire format (id 0 survives ship/materialise).
"""

from repro.core.snapshot import SnapshotController
from repro.core.store import SnapshotStore
from repro.instrument import insert_scan_chain  # noqa: F401 (target dep)
from repro.peripherals import catalog
from repro.solver import Solver
from repro.targets.base import HwSnapshot
from repro.targets.fpga import FpgaTarget
from repro.vm.executor import SymbolicExecutor
from repro.vm.forwarding import MmioBridge
from repro.vm.memory import SymbolicMemory
from repro.vm.state import ExecState


def _empty_state() -> ExecState:
    return ExecState(memory=SymbolicMemory(4096))


def test_fork_clones_falsy_looking_snapshot():
    # Empty states dict + id 0: every field of this snapshot is falsy.
    snap = HwSnapshot(states={}, snapshot_id=0)
    parent = _empty_state()
    parent.hw_snapshot = snap
    child = parent.fork()
    assert child.hw_snapshot is not None
    assert child.hw_snapshot is not snap  # cloned, not shared
    assert child.hw_snapshot.snapshot_id == 0


def test_fork_without_snapshot_stays_none():
    child = _empty_state().fork()
    assert child.hw_snapshot is None


def test_irq_handler_at_address_zero_is_deliverable():
    program_src = "start:\n    halt\n"
    from repro.isa.assembler import assemble
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, 0x4000_0000)
    bridge = MmioBridge(target, Solver())
    executor = SymbolicExecutor(assemble(program_src), bridge, Solver())
    state = executor.make_initial_state()
    state.irq_enabled = True
    state.irq_handler = 0  # handler vector at address 0 is legal
    assert executor.maybe_interrupt(state, pending=True)
    assert state.in_irq and state.pc == 0


def test_store_id_zero_roundtrip():
    # Store-allocated ids start at 1, but id 0 arrives from outside (an
    # FPGA SRAM slot number) and must behave like any other key.
    store = SnapshotStore()
    store.put(0, {"u0": {"nets": {"q": 1}, "cycle": 3}}, bits_of={"u0": 8})
    assert 0 in store
    assert store.resolve(0)["u0"]["nets"]["q"] == 1
    assert store.chain_depth(0) == 0
    store.forget(0)
    assert 0 not in store


def test_controller_preserves_target_assigned_id_zero():
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, 0x4000_0000)
    controller = SnapshotController(target)
    controller.reset()
    # A target that hands out its own ids may legitimately assign slot 0;
    # the controller must not mistake it for "unassigned" and overwrite.
    original_save = target.save_snapshot

    def save_with_slot_zero():
        snap = original_save()
        snap.snapshot_id = 0
        return snap

    target.save_snapshot = save_with_slot_zero
    snap = controller.save()
    assert snap.snapshot_id == 0
    target.step(10)
    controller.restore(snap)
    again = controller.save()
    assert again.states == snap.states
