"""HardSnap-specific lint rules: snapshot consistency, statically.

The paper's guarantee is that S_hw — every inferred state element — is
observable and controllable through the scan chain (or at least captured
by configuration readback). These rules prove that property *before*
instrumentation and simulation, instead of discovering inconsistent
snapshots as silently diverging path exploration later.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hdl import ir
from repro.instrument.scan_chain import SCAN_ENABLE, SCAN_IN, SCAN_OUT
from repro.lint.analysis import BlockInfo, LintContext
from repro.lint.framework import ERROR, INFO, WARNING, Diagnostic, rule

SNAPSHOT_COMPLETENESS = "snapshot-completeness"
SCAN_PORT_COLLISION = "scan-port-collision"
SCAN_GATING = "scan-gating"

#: Internal nets the scan pass synthesises; a colliding user net would be
#: silently clobbered by the insertion.
_RESERVED_INTERNAL = re.compile(r"^(scan_p|scan_tap|scan_t\d+)$")


def _selected(name: str, include: Optional[Sequence[str]]) -> bool:
    """Mirror of the scan pass's ``include`` prefix filter."""
    if include is None:
        return True
    return any(name == p or name.startswith(p + ".") for p in include)


@rule(SNAPSHOT_COMPLETENESS, ERROR, "Snapshot completeness",
      "Every inferred state element (S_hw) must be threaded on the scan "
      "chain or captured by readback; uncovered state makes snapshots "
      "inconsistent — the paper's naive-and-inconsistent regime.")
def check_snapshot_completeness(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.design
    cfg = ctx.config
    if cfg.clock not in design.nets:
        yield ctx.diag(
            SNAPSHOT_COMPLETENESS, ERROR,
            f"design has no clock net {cfg.clock!r}; the scan chain "
            f"cannot be inserted",
            subject=cfg.clock)
        return
    if not design.state_nets and not design.state_memories:
        yield ctx.diag(
            SNAPSHOT_COMPLETENESS, ERROR,
            "design has no state elements to snapshot")
        return
    covered_bits = 0
    for net in design.state_nets:
        if not _selected(net.name, cfg.include):
            yield ctx.diag(
                SNAPSHOT_COMPLETENESS, ERROR,
                f"state register {net.name!r} ({net.width} bits) is "
                f"excluded from the scan chain by the include filter; its "
                f"value survives across restores and corrupts replays",
                subject=net.name)
        else:
            covered_bits += net.width
    for mem in design.state_memories:
        if not _selected(mem.name, cfg.include):
            yield ctx.diag(
                SNAPSHOT_COMPLETENESS, ERROR,
                f"state memory {mem.name!r} ({mem.state_bits} bits) is "
                f"excluded from the scan chain by the include filter",
                subject=mem.name)
        elif mem.state_bits > cfg.memory_limit_bits:
            if cfg.readback:
                yield ctx.diag(
                    SNAPSHOT_COMPLETENESS, INFO,
                    f"state memory {mem.name!r} ({mem.state_bits} bits) "
                    f"exceeds the chain limit "
                    f"({cfg.memory_limit_bits} bits); it is captured via "
                    f"configuration readback (capture-only)",
                    subject=mem.name)
            else:
                yield ctx.diag(
                    SNAPSHOT_COMPLETENESS, ERROR,
                    f"state memory {mem.name!r} ({mem.state_bits} bits) "
                    f"exceeds the chain limit "
                    f"({cfg.memory_limit_bits} bits) and the target has "
                    f"no readback path; its contents are unsnapshottable",
                    subject=mem.name)
        else:
            covered_bits += mem.state_bits
    if cfg.include is not None and covered_bits == 0:
        yield ctx.diag(
            SNAPSHOT_COMPLETENESS, ERROR,
            f"include filter {list(cfg.include)!r} matches no state "
            f"element; the chain would be empty")


def _looks_instrumented(design: ir.Design) -> bool:
    """True when the design already carries a well-formed scan interface."""
    enable = design.nets.get(SCAN_ENABLE)
    sin = design.nets.get(SCAN_IN)
    sout = design.nets.get(SCAN_OUT)
    return (enable is not None and enable.kind == "input"
            and enable.width == 1
            and sin is not None and sin.kind == "input" and sin.width == 1
            and sout is not None and sout.kind == "output"
            and sout.width == 1)


@rule(SCAN_PORT_COLLISION, ERROR, "Scan port name collision",
      "The scan pass adds scan_enable/scan_in/scan_out ports and internal "
      "shift nets; a user net with one of those names would be rejected "
      "or silently clobbered during insertion.")
def check_scan_port_collision(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.design
    if _looks_instrumented(design):
        return  # an already-instrumented design owns these names
    for name in (SCAN_ENABLE, SCAN_IN, SCAN_OUT):
        if name in design.nets or name in design.memories:
            yield ctx.diag(
                SCAN_PORT_COLLISION, ERROR,
                f"net {name!r} collides with a reserved scan port name",
                subject=name)
    for name in sorted(design.nets) + sorted(design.memories):
        local = name.split(".")[-1]
        if _RESERVED_INTERNAL.match(local):
            yield ctx.diag(
                SCAN_PORT_COLLISION, ERROR,
                f"net {name!r} collides with a scan-chain internal net "
                f"name and would be clobbered by insertion",
                subject=name)


@rule(SCAN_GATING, ERROR, "Un-gated writer of scanned state",
      "In an instrumented design every functional writer of chain state "
      "must be gated off while scan_enable is high; an un-gated writer "
      "races the shift path and corrupts the snapshot as it streams.")
def check_scan_gating(ctx: LintContext) -> Iterable[Diagnostic]:
    design = ctx.design
    enable = design.nets.get(SCAN_ENABLE)
    if enable is None or enable.width != 1:
        return  # not an instrumented design
    shift_writers: Dict[str, List[BlockInfo]] = {}
    ungated: Dict[str, List[BlockInfo]] = {}
    for info in ctx.seq:
        if info.gate == (SCAN_ENABLE, True):
            bucket = shift_writers
        elif info.gate == (SCAN_ENABLE, False):
            continue  # properly gated functional process
        else:
            bucket = ungated
        for name in list(info.write_masks) + list(info.mem_writes):
            bucket.setdefault(name, []).append(info)
    for name in sorted(set(shift_writers) & set(ungated)):
        culprit = ungated[name][0]
        yield ctx.diag(
            SCAN_GATING, ERROR,
            f"state element {name!r} is written by the scan shift path "
            f"({shift_writers[name][0].label}) and by un-gated process "
            f"{culprit.label}; shifting would race functional updates",
            subject=name, line=culprit.line or None)
