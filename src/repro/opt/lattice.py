"""Three-valued per-bit constant lattice.

Every bit of a signal is ``0``, ``1`` or ``unknown``.  A :class:`BitsVal`
packs a vector of such bits into two integers: ``known`` marks the bit
positions whose value is statically determined and ``value`` carries the
determined bits (bits outside ``known`` are kept at zero).  ``join``
moves *up* the lattice: a bit stays known only when both sides know it
and agree.

:func:`eval_expr` abstractly evaluates an :class:`repro.hdl.ir.Expr`
over this lattice.  Its transfer functions mirror the concrete
interpreter semantics exactly — including the quirky corners (division
by zero yields the all-ones mask, shifts by 64+ yield zero, out-of-range
dynamic bit selects read zero) — so that anything the analysis proves
constant really is constant on both simulation backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.hdl import ir


def _low_mask(bits: int) -> int:
    return (1 << bits) - 1 if bits > 0 else 0


def _trailing_ones(value: int) -> int:
    """Number of consecutive set bits starting at bit 0."""
    count = 0
    while value & 1:
        value >>= 1
        count += 1
    return count


@dataclass(frozen=True)
class BitsVal:
    """A width-bounded vector of three-valued bits."""

    width: int
    known: int  # bit set => that bit's value is statically determined
    value: int  # determined bits; zero wherever not known

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def is_const(self) -> bool:
        return self.known == self.mask

    @property
    def known_zero(self) -> bool:
        return self.is_const and self.value == 0

    @property
    def known_nonzero(self) -> bool:
        """True when at least one bit is known to be 1."""
        return self.value != 0

    def zext(self, width: int) -> "BitsVal":
        """Zero-extend (or truncate) to *width*; new high bits are known 0."""
        if width == self.width:
            return self
        mask = (1 << width) - 1
        if width < self.width:
            return BitsVal(width, self.known & mask, self.value & mask)
        return BitsVal(width, self.known | (mask & ~self.mask), self.value)


def top(width: int) -> BitsVal:
    return BitsVal(width, 0, 0)


def of_const(value: int, width: int) -> BitsVal:
    mask = (1 << width) - 1
    return BitsVal(width, mask, value & mask)


def join(a: BitsVal, b: BitsVal) -> BitsVal:
    """Least upper bound: bits known in both sides and agreeing survive."""
    if a.width != b.width:
        width = max(a.width, b.width)
        a, b = a.zext(width), b.zext(width)
    known = a.known & b.known & ~(a.value ^ b.value)
    return BitsVal(a.width, known, a.value & known)


# ---------------------------------------------------------------------------
# Abstract expression evaluation
# ---------------------------------------------------------------------------

Lookup = Callable[[str], BitsVal]


def eval_expr(expr: ir.Expr, lookup: Lookup) -> BitsVal:
    """Evaluate *expr* over the lattice; ``lookup`` maps net names to
    their current abstract values (memories are always unknown)."""
    kind = type(expr)
    if kind is ir.Const:
        return of_const(expr.value, expr.width)
    if kind is ir.Ref:
        return lookup(expr.net.name).zext(expr.width)
    if kind is ir.Binary:
        return _eval_binary(expr, lookup)
    if kind is ir.Slice:
        inner = eval_expr(expr.value, lookup).zext(expr.hi + 1)
        mask = (1 << expr.width) - 1
        known = (inner.known >> expr.lo) & mask
        return BitsVal(expr.width, known, (inner.value >> expr.lo) & known)
    if kind is ir.Ternary:
        cond = eval_expr(expr.cond, lookup)
        if cond.known_nonzero:
            return eval_expr(expr.then, lookup).zext(expr.width)
        if cond.known_zero:
            return eval_expr(expr.other, lookup).zext(expr.width)
        return join(eval_expr(expr.then, lookup).zext(expr.width),
                    eval_expr(expr.other, lookup).zext(expr.width))
    if kind is ir.Unary:
        return _eval_unary(expr, lookup)
    if kind is ir.Concat:
        known = value = 0
        for part in expr.parts:
            pv = eval_expr(part, lookup)
            known = (known << part.width) | pv.known
            value = (value << part.width) | pv.value
        return BitsVal(expr.width, known, value).zext(expr.width)
    if kind is ir.MemRead:
        return top(expr.width)
    if kind is ir.DynBit:
        value = eval_expr(expr.value, lookup)
        index = eval_expr(expr.index, lookup)
        if index.is_const:
            i = index.value
            if not 0 <= i < expr.value.width:
                return of_const(0, expr.width)
            known = (value.known >> i) & 1
            return BitsVal(1, known, (value.value >> i) & known).zext(expr.width)
        if value.known_zero:
            # Every in-range bit is 0 and out-of-range selects read 0.
            return of_const(0, expr.width)
        return top(expr.width)
    raise TypeError(f"unknown expression {expr!r}")


def _eval_binary(expr: ir.Binary, lookup: Lookup) -> BitsVal:
    op = expr.op
    width = expr.width
    mask = (1 << width) - 1
    a = eval_expr(expr.left, lookup)
    b = eval_expr(expr.right, lookup)

    if op == "&&":
        if a.known_zero or b.known_zero:
            return of_const(0, width)
        if a.known_nonzero and b.known_nonzero:
            return of_const(1, width)
        return top(width)
    if op == "||":
        if a.known_nonzero or b.known_nonzero:
            return of_const(1, width)
        if a.known_zero and b.known_zero:
            return of_const(0, width)
        return top(width)

    if op in ("==", "!="):
        wide = max(a.width, b.width)
        za, zb = a.zext(wide), b.zext(wide)
        if za.is_const and zb.is_const:
            eq = za.value == zb.value
            return of_const(int(eq if op == "==" else not eq), width)
        if za.known & zb.known & (za.value ^ zb.value):
            # Some bit is known on both sides and differs: provably unequal.
            return of_const(int(op == "!="), width)
        return top(width)
    if op in ("<", "<=", ">", ">="):
        if a.is_const and b.is_const:
            result = {"<": a.value < b.value, "<=": a.value <= b.value,
                      ">": a.value > b.value, ">=": a.value >= b.value}[op]
            return of_const(int(result), width)
        return top(width)

    if op in ("<<", ">>", ">>>"):
        za = a.zext(width)
        if b.is_const:
            sh = b.value
            if sh >= 64:
                return of_const(0, width)
            if op == "<<":
                known = ((za.known << sh) | _low_mask(min(sh, width))) & mask
                return BitsVal(width, known, (za.value << sh) & known)
            known = ((za.known >> sh) | (mask & ~(mask >> sh))) & mask
            return BitsVal(width, known, (za.value >> sh) & known)
        if za.known_zero:
            return of_const(0, width)
        return top(width)

    za, zb = a.zext(width), b.zext(width)
    if op == "&":
        ones = (za.known & za.value) & (zb.known & zb.value)
        zeros = (za.known & ~za.value) | (zb.known & ~zb.value)
        return BitsVal(width, (ones | zeros) & mask, ones)
    if op == "|":
        ones = (za.known & za.value) | (zb.known & zb.value)
        zeros = (za.known & ~za.value) & (zb.known & ~zb.value)
        return BitsVal(width, (ones | zeros) & mask, ones)
    if op == "^":
        known = za.known & zb.known
        return BitsVal(width, known, (za.value ^ zb.value) & known)

    if op in ("+", "-", "*"):
        if op == "*" and (za.known_zero or zb.known_zero):
            return of_const(0, width)
        run = _trailing_ones(za.known & zb.known & mask)
        run = min(run, width)
        if run == 0:
            return top(width)
        low = _low_mask(run)
        if op == "+":
            raw = za.value + zb.value
        elif op == "-":
            raw = za.value - zb.value
        else:
            raw = za.value * zb.value
        # Carries/borrows propagate upward only: the low ``run`` bits of
        # the result depend only on the low ``run`` bits of the operands.
        return BitsVal(width, low, raw & low)

    if op in ("/", "%"):
        if za.is_const and zb.is_const:
            va, vb = za.value, zb.value
            if op == "/":
                return of_const((va // vb) & mask if vb else mask, width)
            return of_const((va % vb) & mask if vb else va & mask, width)
        return top(width)

    raise TypeError(f"unknown binary op {op!r}")


def _eval_unary(expr: ir.Unary, lookup: Lookup) -> BitsVal:
    op = expr.op
    width = expr.width
    operand = eval_expr(expr.operand, lookup)
    operand_mask = operand.mask
    if op == "~":
        za = operand.zext(width)
        return BitsVal(width, za.known, ~za.value & za.known & za.mask)
    if op == "-":
        za = operand.zext(width)
        run = min(_trailing_ones(za.known & za.mask), width)
        if run == 0:
            return top(width)
        low = _low_mask(run)
        return BitsVal(width, low, -za.value & low)
    if op == "!":
        if operand.known_nonzero:
            return of_const(0, width)
        if operand.known_zero:
            return of_const(1, width)
        return top(width)
    if op in ("&", "~&"):
        all_ones = operand.is_const and operand.value == operand_mask
        some_zero = bool(operand.known & ~operand.value & operand_mask)
        if all_ones:
            return of_const(int(op == "&"), width)
        if some_zero:
            return of_const(int(op == "~&"), width)
        return top(width)
    if op in ("|", "~|"):
        if operand.known_nonzero:
            return of_const(int(op == "|"), width)
        if operand.known_zero:
            return of_const(int(op == "~|"), width)
        return top(width)
    if op in ("^", "~^"):
        if operand.is_const:
            parity = bin(operand.value).count("1") & 1
            return of_const(parity if op == "^" else parity ^ 1, width)
        return top(width)
    raise TypeError(f"unknown unary op {op!r}")


def const_of(bits: Optional[BitsVal]) -> Optional[int]:
    """The concrete value when *bits* is fully known, else ``None``."""
    if bits is not None and bits.is_const:
        return bits.value
    return None
