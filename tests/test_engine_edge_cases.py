"""Engine edge cases: replay with read side effects, budgets, interrupt
atomicity at engine level, state caps."""

import pytest

from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE, UART_BASE, dispatcher
from repro.peripherals import catalog

UART = [(catalog.UART, UART_BASE)]
TIMER = [(catalog.TIMER, TIMER_BASE)]

# Firmware whose path prefix performs a *side-effecting read*: popping the
# UART RX FIFO. Replay must re-trigger the pop to rebuild hardware state.
SIDE_EFFECT_READ = f"""
.equ UART, 0x{UART_BASE:x}
start:
    movi r1, UART
    movi r2, 4
    sw   r2, 16(r1)         ; BAUDDIV = 4
    movi r2, 0x5A
    sw   r2, 0(r1)          ; TX a byte (loopback wired in the test)
rx_wait:
    lw   r3, 8(r1)
    andi r3, r3, 4          ; RX_AVAIL
    beq  r3, r0, rx_wait
    lw   r4, 4(r1)          ; POP the fifo — side-effecting read
    ; fork AFTER the pop: both paths' replays must reproduce the pop
    sym  r5
    andi r5, r5, 1
    beq  r5, r0, path_a
path_b:
    lw   r6, 8(r1)
    andi r6, r6, 4          ; fifo must now be EMPTY
    movi r8, 1
    beq  r6, r0, ok_b
    movi r8, 0
ok_b:
    assert r8
    movi r2, 0xB
    halt r2
path_a:
    lw   r6, 8(r1)
    andi r6, r6, 4
    movi r8, 1
    beq  r6, r0, ok_a
    movi r8, 0
ok_a:
    assert r8
    movi r2, 0xA
    halt r2
"""


def _loopback(target):
    instance = target.instances["uart"]
    sim = instance.sim
    original_step = sim.step

    def looped(cycles=1):
        for _ in range(cycles):
            sim.poke("rx", sim.peek("tx"))
            original_step(1)

    sim.step = looped


class TestReplayWithSideEffects:
    @pytest.mark.parametrize("strategy", ["hardsnap", "naive-consistent"])
    def test_fifo_pop_reproduced(self, strategy):
        """Both consistency mechanisms must reproduce the RX-FIFO pop for
        every path: the status read after the fork sees an empty FIFO."""
        from repro.core import SessionConfig, make_target
        config = SessionConfig(strategy=strategy, searcher="round-robin",
                               scan_mode="functional")
        target = make_target(config)
        target.add_peripheral(catalog.UART, UART_BASE)
        _loopback(target)
        session = HardSnapSession(SIDE_EFFECT_READ, [], config=config,
                                  target=target)
        report = session.run(max_instructions=60_000)
        assert sorted(report.halt_codes()) == [0xA, 0xB], report.summary()
        assert not report.bugs


class TestBudgets:
    def test_max_states_caps_frontier(self):
        session = HardSnapSession(dispatcher(16, work_cycles=6), TIMER,
                                  scan_mode="functional")
        report = session.run(max_instructions=100_000, max_states=4)
        assert report.max_live_states <= 4

    def test_host_time_limit(self):
        # An unbounded-looking workload with a tiny wall-clock budget.
        session = HardSnapSession(dispatcher(16, work_cycles=200), TIMER,
                                  scan_mode="functional")
        report = session.run(max_instructions=10_000_000,
                             host_time_limit_s=0.2)
        assert report.stop_reason in ("host-timeout", "exhausted")

    def test_zero_instruction_budget(self):
        session = HardSnapSession(dispatcher(2, work_cycles=6), TIMER,
                                  scan_mode="functional")
        report = session.run(max_instructions=0)
        assert report.instructions == 0
        assert report.stop_reason == "instruction-budget"


class TestEngineInterrupts:
    def test_handler_not_preempted_by_searcher(self):
        """Once a state enters its IRQ handler, the engine keeps
        scheduling it to completion (Inception's atomic interrupts) even
        under round-robin scheduling with a competing state."""
        src = f"""
        .equ TIMER, 0x{TIMER_BASE:x}
        start:
            movi r1, TIMER
            movi r2, handler
            setivt r2
            movi r9, 0
            ei
            movi r2, 6
            sw   r2, 4(r1)
            movi r2, 3
            sw   r2, 0(r1)
            ; fork into two states competing for scheduling
            sym  r4
            andi r4, r4, 1
            beq  r4, r0, second
        first:
            beq  r9, r0, first
            movi r2, 1
            halt r2
        second:
            beq  r9, r0, second
            movi r2, 2
            halt r2
        handler:
            push r2
            ; multi-instruction handler: must run atomically
            movi r9, 1
            movi r2, 1
            sw   r2, 12(r1)
            pop  r2
            iret
        """
        session = HardSnapSession(src, TIMER, searcher="round-robin",
                                  scan_mode="functional")
        report = session.run(max_instructions=100_000)
        assert sorted(report.halt_codes()) == [1, 2]
        assert not report.bugs
