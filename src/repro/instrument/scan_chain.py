"""Scan-chain insertion — the core of HardSnap's Peripheral Snapshotting
Mechanism (paper §III-A, §IV-A).

The pass threads every state element of a design (flip-flops, and state
memories up to a configurable size) into one shift register:

* three ports are added: ``scan_enable``, ``scan_in``, ``scan_out``,
* every original sequential block is gated with ``if (!scan_enable)``,
* one new sequential block implements the shift path: with
  ``scan_enable`` high, each state element shifts one bit per clock,
  LSB-first, receiving the LSB of its predecessor (the first element
  receives ``scan_in``); ``scan_out`` is the LSB of the last element.

Shifting for ``chain_length`` cycles therefore streams the complete
hardware state out of ``scan_out`` while simultaneously loading a new
state from ``scan_in`` — save and restore in one pass, exactly how silicon
scan chains are operated. The transformation is RTL-to-RTL: the result is
an ordinary :class:`~repro.hdl.ir.Design` that can be re-emitted as
Verilog, simulated by either backend, or "synthesised" to the FPGA target.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import InstrumentationError, ScanCoverageError
from repro.hdl import ir

SCAN_ENABLE = "scan_enable"
SCAN_IN = "scan_in"
SCAN_OUT = "scan_out"

#: Internal nets the pass synthesises; user nets with these names would
#: be clobbered, so insertion rejects them up front.
_RESERVED_INTERNAL = re.compile(r"^(scan_p|scan_tap|scan_t\d+)$")

#: Memories larger than this many bits are left out of the chain by
#: default (real scan insertion excludes SRAM macros; they are captured
#: via readback or dedicated BIST ports instead).
DEFAULT_MEMORY_LIMIT_BITS = 16384


@dataclass
class ChainElement:
    """One state element on the chain, in shift order."""

    kind: str  # "net" | "mem"
    name: str
    width: int
    word: Optional[int] = None  # memory word index for kind == "mem"

    @property
    def bits(self) -> int:
        return self.width


@dataclass
class ExcludedElement:
    """A state element the chain does not thread, and why.

    ``reason`` is ``"memory-limit"`` (bigger than *memory_limit_bits*;
    captured via readback instead) or ``"include-filter"`` (outside the
    user's sub-component selection).
    """

    kind: str  # "net" | "mem"
    name: str
    bits: int
    reason: str

    def as_tuple(self) -> Tuple[str, str, int, str]:
        return (self.kind, self.name, self.bits, self.reason)


@dataclass
class ScanChainResult:
    """Instrumented design plus the chain map needed to (de)serialise state."""

    design: ir.Design
    elements: List[ChainElement] = field(default_factory=list)
    excluded: List[ExcludedElement] = field(default_factory=list)

    @property
    def excluded_memories(self) -> List[str]:
        """Memories left off the chain by the size limit (readback path)."""
        return [e.name for e in self.excluded
                if e.kind == "mem" and e.reason == "memory-limit"]

    @property
    def chain_length(self) -> int:
        return sum(e.bits for e in self.elements)

    # -- state <-> bitstream -----------------------------------------------------
    #
    # Shift-order convention: on each scan edge a bit enters the FIRST
    # element's MSB and a bit leaves the LAST element's LSB. Feeding the
    # stream bit 0 first for `chain_length` edges loads the packed state,
    # while the packed *old* state appears bit 0 first on scan_out. Hence
    # bit 0 of the stream is the LSB of the LAST element, and offsets walk
    # each element LSB→MSB going backwards through the chain.

    def pack(self, net_values, memory_values) -> int:
        """Pack a state (name->int, name->list[int]) into a scan stream."""
        bitstream = 0
        offset = 0
        for element in reversed(self.elements):
            if element.kind == "net":
                value = net_values[element.name]
            else:
                value = memory_values[element.name][element.word]
            bitstream |= (value & ((1 << element.width) - 1)) << offset
            offset += element.width
        return bitstream

    def unpack(self, bitstream: int) -> Tuple[dict, dict]:
        """Inverse of :meth:`pack`: scan stream -> (nets, memories) dicts."""
        nets: dict = {}
        mems: dict = {}
        offset = 0
        for element in reversed(self.elements):
            value = (bitstream >> offset) & ((1 << element.width) - 1)
            offset += element.width
            if element.kind == "net":
                nets[element.name] = value
            else:
                mems.setdefault(element.name, {})[element.word] = value
        return nets, mems

    def overhead_report(self, original: ir.Design) -> dict:
        """Instrumentation cost accounting (experiment E6)."""
        orig_stats = original.stats()
        new_stats = self.design.stats()
        # Each scanned bit gains a 2:1 mux in front of its D input; the
        # scan gating adds one enable term per sequential block.
        mux_count = self.chain_length
        return {
            "design": original.name,
            "chain_length_bits": self.chain_length,
            "flip_flops_before": orig_stats["flip_flops"],
            "state_bits_before": orig_stats["state_bits"],
            "added_ports": 3,
            "added_muxes": mux_count,
            "added_seq_blocks": new_stats["seq_blocks"] - orig_stats["seq_blocks"],
            "excluded_memories": list(self.excluded_memories),
        }


def preflight_lint(design: ir.Design, clock: str = "clk",
                   memory_limit_bits: int = DEFAULT_MEMORY_LIMIT_BITS,
                   include: Optional[Sequence[str]] = None,
                   readback: bool = True) -> None:
    """Run the static analyzer before instrumenting *design*.

    Raises :class:`InstrumentationError` with the lint diagnostics
    attached when any error-severity finding (combinational loop,
    multiple driver, uncovered state, scan-name collision, ...) would
    make the instrumented design wrong or the snapshot inconsistent.
    """
    from repro.lint import LintConfig, lint_design  # local: avoid cycle

    config = LintConfig(
        clock=clock,
        include=tuple(include) if include is not None else None,
        memory_limit_bits=memory_limit_bits,
        readback=readback)
    report = lint_design(design, config)
    if not report.ok:
        errors = [d for d in report.diagnostics if d.severity == "error"]
        raise InstrumentationError(
            f"design {design.name!r} failed pre-flight lint with "
            f"{len(errors)} error(s); refusing to instrument",
            diagnostics=errors)


def insert_scan_chain(design: ir.Design, clock: str = "clk",
                      memory_limit_bits: int = DEFAULT_MEMORY_LIMIT_BITS,
                      include: Optional[Sequence[str]] = None,
                      on_excluded: str = "record",
                      preflight: bool = False) -> ScanChainResult:
    """Return a scan-instrumented deep copy of *design*.

    ``include`` optionally restricts instrumentation to a sub-component:
    only state elements whose name starts with one of the given prefixes
    are placed on the chain (paper §IV-A: "User-defined parameters allow
    to limit the instrumentation to a sub-component of the entire
    design"). Others keep functioning but are not snapshottable.

    Every element left off the chain — whether by the ``include`` filter
    or by the memory size limit — is recorded in the result's
    ``excluded`` list with its reason. With ``on_excluded="error"`` the
    pass instead raises :class:`ScanCoverageError` naming each offending
    element, for callers that need the full-coverage guarantee.

    ``preflight=True`` runs the static analyzer first and refuses to
    instrument a design with error-severity lint findings (see
    :func:`preflight_lint`). An explicit ``include`` filter is treated
    as deliberate scoping here: coverage gaps it creates are governed by
    ``on_excluded``, not the completeness rule — call
    :func:`preflight_lint` directly with ``include`` for the strict
    full-coverage proof.
    """
    if on_excluded not in ("record", "error"):
        raise ValueError(f"on_excluded must be 'record' or 'error', "
                         f"got {on_excluded!r}")
    if preflight:
        preflight_lint(design, clock, memory_limit_bits, include=None)
    if clock not in design.nets:
        raise InstrumentationError(f"design has no clock net {clock!r}")
    for reserved in (SCAN_ENABLE, SCAN_IN, SCAN_OUT):
        if reserved in design.nets:
            raise InstrumentationError(
                f"design already has a net named {reserved!r}")
    for name in list(design.nets) + list(design.memories):
        if _RESERVED_INTERNAL.match(name.split(".")[-1]):
            raise InstrumentationError(
                f"design already has a net named {name!r}, which collides "
                f"with a scan-chain internal net")
    new_design = copy.deepcopy(design)
    new_design.name = design.name + "_scan"

    def _selected(name: str) -> bool:
        if include is None:
            return True
        return any(name == p or name.startswith(p + ".") for p in include)

    # Scan control ports.
    scan_enable = ir.Net(SCAN_ENABLE, 1, "input")
    scan_in = ir.Net(SCAN_IN, 1, "input")
    scan_out = ir.Net(SCAN_OUT, 1, "output")
    for net in (scan_enable, scan_in, scan_out):
        new_design.nets[net.name] = net
    new_design.inputs.extend([scan_enable, scan_in])
    new_design.outputs.append(scan_out)

    # Gate every original sequential block.
    not_scan = ir.Unary("!", ir.Ref(scan_enable, width=1), width=1)
    for block in new_design.seq_blocks:
        block.stmts = [ir.SIf(not_scan, block.stmts, [])]

    # Build the chain in deterministic order, recording every element the
    # chain does not thread (and why) instead of silently skipping it.
    elements: List[ChainElement] = []
    excluded: List[ExcludedElement] = []
    for net in new_design.state_nets:
        if _selected(net.name):
            elements.append(ChainElement("net", net.name, net.width))
        else:
            excluded.append(ExcludedElement(
                "net", net.name, net.width, "include-filter"))
    for mem in new_design.state_memories:
        if not _selected(mem.name):
            excluded.append(ExcludedElement(
                "mem", mem.name, mem.state_bits, "include-filter"))
            continue
        if mem.state_bits > memory_limit_bits:
            excluded.append(ExcludedElement(
                "mem", mem.name, mem.state_bits, "memory-limit"))
            continue
        for word in range(mem.depth):
            elements.append(ChainElement("mem", mem.name, mem.width, word))
    if not elements:
        raise ScanCoverageError(
            f"design {design.name!r} has no state elements to scan",
            elements=[e.as_tuple() for e in excluded])
    if on_excluded == "error" and excluded:
        raise ScanCoverageError(
            f"scan chain for {design.name!r} cannot thread "
            f"{len(excluded)} state element(s)",
            elements=[e.as_tuple() for e in excluded])

    # Shift statements. A 1-bit blocking temporary `scan_p` carries the bit
    # travelling between adjacent elements on one edge; per-memory blocking
    # temporaries hold the word being shifted so its old bits can be read
    # after the (deferred) non-blocking write is issued. This stays inside
    # the Verilog subset: the instrumented design re-emits, re-parses and
    # re-simulates.
    scan_p = ir.Net("scan_p", 1, "reg")
    new_design.nets[scan_p.name] = scan_p
    mem_temps: dict = {}
    for element in elements:
        if element.kind == "mem" and element.name not in mem_temps:
            mem = new_design.memories[element.name]
            temp = ir.Net(f"scan_t{len(mem_temps)}", mem.width, "reg")
            new_design.nets[temp.name] = temp
            mem_temps[element.name] = temp

    shift_stmts: List[ir.Stmt] = [
        ir.SAssign(ir.LNet(scan_p), ir.Ref(scan_in, width=1), blocking=True)]
    p_ref = ir.Ref(scan_p, width=1)
    for element in elements:
        if element.kind == "net":
            net = new_design.nets[element.name]
            current: ir.Expr = ir.Ref(net, width=net.width)
            target: ir.LValue = ir.LNet(net)
        else:
            mem = new_design.memories[element.name]
            temp = mem_temps[element.name]
            index = ir.const(element.word, max(1, _clog2(mem.depth)))
            # temp = mem[word]  (blocking: reads the pre-edge word)
            shift_stmts.append(ir.SAssign(
                ir.LNet(temp), ir.MemRead(mem, index, width=mem.width),
                blocking=True))
            current = ir.Ref(temp, width=temp.width)
            target = ir.LMem(mem, index)
        if element.width == 1:
            new_value: ir.Expr = p_ref
        else:
            upper = ir.Slice(current, element.width - 1, 1,
                             width=element.width - 1)
            new_value = ir.Concat([p_ref, upper], width=element.width)
        # element <= {scan_p, element[w-1:1]}  (non-blocking shift)
        shift_stmts.append(ir.SAssign(target, new_value, blocking=False))
        # scan_p = element[0]  (blocking: old LSB rides to the next element)
        shift_stmts.append(ir.SAssign(
            ir.LNet(scan_p), ir.Slice(current, 0, 0, width=1), blocking=True))

    scan_block = ir.SeqBlock(
        clock=new_design.nets[clock],
        clock_edge="posedge",
        stmts=[ir.SIf(ir.Ref(scan_enable, width=1), shift_stmts, [])],
        name="scan_chain_shift",
    )
    new_design.seq_blocks.append(scan_block)

    # scan_out is combinational: it presents the bit that will leave the
    # chain on the NEXT shift edge (the LSB of the last element). Reading
    # it before each edge and feeding the value back into scan_in rotates
    # the chain in place — the standard circular-scan save protocol.
    last = elements[-1]
    if last.kind == "net":
        last_lsb: ir.Expr = ir.Slice(
            ir.Ref(new_design.nets[last.name],
                   width=new_design.nets[last.name].width), 0, 0, width=1)
    else:
        mem = new_design.memories[last.name]
        tap = ir.Net("scan_tap", mem.width, "wire")
        new_design.nets[tap.name] = tap
        index = ir.const(last.word, max(1, _clog2(mem.depth)))
        tap_stmt = ir.SAssign(ir.LNet(tap),
                              ir.MemRead(mem, index, width=mem.width),
                              blocking=True)
        reads, writes = ir.stmt_reads_writes([tap_stmt])
        new_design.comb_blocks.append(ir.CombBlock(
            [tap_stmt], frozenset(reads), frozenset(writes), name="scan_tap"))
        last_lsb = ir.Slice(ir.Ref(tap, width=tap.width), 0, 0, width=1)
    out_stmt = ir.SAssign(ir.LNet(scan_out), last_lsb, blocking=True)
    reads, writes = ir.stmt_reads_writes([out_stmt])
    new_design.comb_blocks.append(ir.CombBlock(
        [out_stmt], frozenset(reads), frozenset(writes), name="scan_out"))

    new_design.finalize()
    return ScanChainResult(new_design, elements, excluded)


def _clog2(value: int) -> int:
    return max(1, (value - 1).bit_length())
