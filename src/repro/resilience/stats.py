"""Resilience accounting: what the recovery machinery actually did.

One mergeable record, kept per target (link-layer events) and per pool
(worker-lifecycle events), then rolled up into
:class:`~repro.core.engine.AnalysisReport` /
:class:`~repro.core.fuzzer.FuzzReport`. Deliberately *excluded* from
``verdict_summary()`` — how many retries a run needed is
schedule-dependent; what it concluded is not.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping, Union


@dataclass
class ResilienceStats:
    """Counts of recovery events (sum-mergeable; ``degraded`` ORs)."""

    #: Scan-shift retransmits after CRC mismatch / drop / stall.
    link_retries: int = 0
    #: MMIO accesses retransmitted after a lost response.
    mmio_retries: int = 0
    #: Cross-target transfer retries after a timeout.
    transfer_retries: int = 0
    #: Link stalls detected (a subset of the retries above).
    stalls: int = 0
    #: Pre-operation link health checks performed.
    health_checks: int = 0
    #: Link reconnects (health check found the link down).
    reconnects: int = 0
    #: Snapshot integrity digests verified on restore/load.
    integrity_checks: int = 0
    #: Modelled backoff time charged by all retry loops.
    backoff_s: float = 0.0
    #: Worker processes respawned after a crash.
    worker_respawns: int = 0
    #: Jobs re-issued (after a worker death or a missed deadline).
    lease_reissues: int = 0
    #: Duplicate result messages discarded by the coordinator.
    duplicate_results: int = 0
    #: True once the pool was exhausted and the run fell back to
    #: in-process execution.
    degraded: bool = False

    @property
    def any(self) -> bool:
        """True when any recovery event occurred."""
        return self.degraded or any(
            getattr(self, f.name) for f in fields(self)
            if f.name != "degraded")

    def as_dict(self) -> Dict[str, Union[int, float, bool]]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: Union["ResilienceStats", Mapping]) -> None:
        data = other if isinstance(other, Mapping) else other.as_dict()
        for f in fields(self):
            value = data.get(f.name, 0)
            if f.name == "degraded":
                self.degraded = self.degraded or bool(value)
            else:
                setattr(self, f.name, getattr(self, f.name) + value)

    def delta(self, baseline: Mapping) -> Dict[str, Union[int, float, bool]]:
        """This record minus a previous :meth:`as_dict` snapshot —
        workers ship per-lease deltas, not lifetime totals."""
        out: Dict[str, Union[int, float, bool]] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "degraded":
                out[f.name] = bool(value)
            else:
                out[f.name] = value - baseline.get(f.name, 0)
        return out

    def summary(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name)}" for f in fields(self)
                 if f.name not in ("backoff_s", "degraded")
                 and getattr(self, f.name)]
        if self.backoff_s:
            parts.append(f"backoff={self.backoff_s:.2e}s")
        if self.degraded:
            parts.append("DEGRADED")
        return "[resilience] " + (" ".join(parts) if parts else "clean")
