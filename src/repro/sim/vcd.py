"""Value Change Dump (VCD) trace writer.

Full execution tracing is the distinguishing capability of the simulator
target: HardSnap's multi-target orchestration exists precisely to move a
hardware state from the fast, opaque FPGA target onto the simulator when a
full trace of a window of interest is needed.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO

from repro.hdl.ir import Design

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier code for signal *index*."""
    out = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out.append(_ID_CHARS[rem])
    return "".join(out)


class VcdWriter:
    """Streams net value changes in VCD format.

    Usage::

        writer = VcdWriter(open("trace.vcd", "w"))
        sim.attach_vcd(writer)   # calls declare() + initial sample
        sim.step(100)            # sampled once per cycle
        writer.close()
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 timescale: str = "1 ns", signals: Optional[List[str]] = None):
        self.stream = stream if stream is not None else io.StringIO()
        self.timescale = timescale
        self._filter = set(signals) if signals is not None else None
        self._ids: Dict[str, str] = {}
        self._widths: Dict[str, int] = {}
        self._last: Dict[str, Optional[int]] = {}
        self._declared = False
        self.changes = 0

    def declare(self, design: Design) -> None:
        """Write the VCD header for all (or the filtered) nets."""
        if self._declared:
            return
        self._declared = True
        write = self.stream.write
        write(f"$timescale {self.timescale} $end\n")
        write(f"$scope module {design.name} $end\n")
        index = 0
        for name, net in sorted(design.nets.items()):
            if self._filter is not None and name not in self._filter:
                continue
            ident = _identifier(index)
            index += 1
            self._ids[name] = ident
            self._widths[name] = net.width
            self._last[name] = None
            safe = name.replace(".", "__")
            write(f"$var wire {net.width} {ident} {safe} $end\n")
        write("$upscope $end\n$enddefinitions $end\n")

    def sample(self, cycle: int, values: Dict[str, int]) -> None:
        """Record changed values at *cycle* (one timestamp per cycle)."""
        pending: List[str] = []
        for name, ident in self._ids.items():
            value = values.get(name, 0)
            if self._last[name] == value:
                continue
            self._last[name] = value
            width = self._widths[name]
            if width == 1:
                pending.append(f"{value}{ident}")
            else:
                pending.append(f"b{value:b} {ident}")
            self.changes += 1
        if pending:
            self.stream.write(f"#{cycle}\n")
            self.stream.write("\n".join(pending) + "\n")

    def close(self) -> None:
        if hasattr(self.stream, "close") and not isinstance(self.stream, io.StringIO):
            self.stream.close()

    def getvalue(self) -> str:
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise ValueError("getvalue() only available for in-memory traces")
