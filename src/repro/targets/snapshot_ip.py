"""The on-FPGA snapshot controller IP (paper §III-C).

    "On the FPGA-based hardware platform, an internal hardware block
    ('IP') manages hardware snapshots... It saves and restores the
    peripherals state, by driving the scan chain previously inserted...
    For performance reasons, the scanning IP saves peripherals snapshots
    in an SRAM memory."

This class models that block: it owns the scan-chain shift operation
(cycle cost = chain length, plus a small command overhead) and an SRAM
snapshot store with finite capacity. Snapshots that fit stay on-board
(cheap to restore); once the SRAM is full the oldest snapshots are
evicted to the host over the debugger link and must be streamed back
before a restore (priced at the transport's bulk bandwidth).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bus.transport import Transport

#: On-board snapshot SRAM (a typical BRAM budget carved out for the IP).
DEFAULT_SRAM_BITS = 4 * 1024 * 1024
#: Fixed command overhead per save/restore operation, cycles.
COMMAND_OVERHEAD_CYCLES = 12


@dataclass
class IpStats:
    saves: int = 0
    restores: int = 0
    sram_hits: int = 0
    host_round_trips: int = 0
    evictions: int = 0


class SnapshotIp:
    """SRAM-backed scan-chain snapshot controller."""

    def __init__(self, clock_hz: float, transport: Transport,
                 sram_bits: int = DEFAULT_SRAM_BITS):
        self.clock_hz = clock_hz
        self.transport = transport
        self.sram_bits = sram_bits
        self._next_slot = 1
        # slot id -> bits, insertion-ordered for FIFO eviction.
        self._resident: "OrderedDict[int, int]" = OrderedDict()
        self._evicted: Dict[int, int] = {}
        self.stats = IpStats()

    # -- cost helpers -----------------------------------------------------------

    def shift_cost_s(self, chain_bits: int) -> float:
        """Modelled time of one full scan rotation at the FPGA clock."""
        return (chain_bits + COMMAND_OVERHEAD_CYCLES) / self.clock_hz

    # -- save --------------------------------------------------------------------

    def save(self, chain_bits: int,
             stored_bits: Optional[int] = None) -> Tuple[int, float]:
        """Account one snapshot save; returns ``(slot_id, modelled_s)``.

        The scan shift streams the state into SRAM; if the SRAM is full,
        the oldest resident snapshot is evicted to the host first. The
        shift always traverses — and is priced at — the full
        ``chain_bits``; ``stored_bits`` (delta/dedup-compressed targets)
        overrides only the SRAM *occupancy*, letting more snapshots stay
        resident.
        """
        self.stats.saves += 1
        cost = self.shift_cost_s(chain_bits)
        occupancy = chain_bits if stored_bits is None else stored_bits
        while self._resident_bits() + occupancy > self.sram_bits and self._resident:
            old_slot, old_bits = self._resident.popitem(last=False)
            self._evicted[old_slot] = old_bits
            self.stats.evictions += 1
            cost += self.transport.bulk_latency_s(old_bits)
        slot = self._next_slot
        self._next_slot += 1
        if occupancy <= self.sram_bits:
            self._resident[slot] = occupancy
        else:
            # Pathological: one snapshot larger than the SRAM goes straight
            # to the host.
            self._evicted[slot] = occupancy
            cost += self.transport.bulk_latency_s(occupancy)
            self.stats.host_round_trips += 1
        return slot, cost

    # -- restore ------------------------------------------------------------------

    def restore(self, slot: Optional[int], chain_bits: int) -> float:
        """Account one snapshot restore; returns the modelled time."""
        self.stats.restores += 1
        cost = self.shift_cost_s(chain_bits)
        if slot is not None and slot in self._resident:
            self.stats.sram_hits += 1
            self._resident.move_to_end(slot)
        else:
            # Stream the image back from the host before shifting it in;
            # an evicted delta snapshot only streams its stored bits.
            self.stats.host_round_trips += 1
            stream_bits = self._evicted.get(slot, chain_bits) \
                if slot is not None else chain_bits
            cost += self.transport.bulk_latency_s(stream_bits)
        return cost

    def forget(self, slot: int) -> None:
        """Free a slot (snapshot no longer needed)."""
        self._resident.pop(slot, None)
        self._evicted.pop(slot, None)

    def _resident_bits(self) -> int:
        return sum(self._resident.values())

    @property
    def resident_count(self) -> int:
        return len(self._resident)
