"""Subsystem-scoped snapshotting at the target level (paper §IV-A)."""

import pytest

from repro.peripherals import catalog
from repro.peripherals.soc import SocSpec
from repro.targets import FpgaTarget

BASE = 0x4000_0000


@pytest.fixture(scope="module")
def soc_spec():
    return SocSpec([catalog.TIMER, catalog.GPIO], name="soc2")


def _scoped(soc_spec, mode):
    target = FpgaTarget(scan_mode=mode, scan_include=("p0",))
    instance = target.add_peripheral(soc_spec, BASE)
    target.reset()
    return target, instance


class TestScopedTarget:
    @pytest.mark.parametrize("mode", ["shift", "functional"])
    def test_scoped_snapshot_covers_only_subsystem(self, soc_spec, mode):
        target, instance = _scoped(soc_spec, mode)
        scan = instance.extra["scan"]
        assert all(e.name.startswith("p0.") for e in scan.elements)
        # Drive both subsystems.
        target.write(BASE + 0x00004, 30)     # timer LOAD (p0, in scope)
        target.write(BASE + 0x10004, 0x5A)   # gpio OUT (p1, out of scope)
        target.write(BASE + 0x10000, 0xFF)   # gpio DIR
        snap = target.save_snapshot()
        # Clobber both, restore: only the scoped subsystem comes back.
        target.write(BASE + 0x00004, 1)
        target.write(BASE + 0x10004, 0)
        target.restore_snapshot(snap)
        assert target.read(BASE + 0x00004) == 30       # restored
        assert target.read(BASE + 0x10004) == 0        # NOT restored

    def test_scoped_modes_capture_identically(self, soc_spec):
        captures = {}
        for mode in ("shift", "functional"):
            target, _ = _scoped(soc_spec, mode)
            target.write(BASE + 0x00004, 17)
            target.write(BASE + 0x00000, 1)
            target.step(5)
            snap = target.save_snapshot()
            captures[mode] = {
                "nets": {k: v for k, v in
                         snap.states["soc2"]["nets"].items()
                         if k.startswith("p0.")},
                "bits": snap.bits,
            }
        assert captures["shift"] == captures["functional"]

    def test_scoped_chain_is_shorter(self, soc_spec):
        scoped_target, scoped_inst = _scoped(soc_spec, "functional")
        full_target = FpgaTarget(scan_mode="functional")
        full_inst = full_target.add_peripheral(soc_spec, BASE)
        scoped_len = scoped_inst.extra["scan"].chain_length
        full_len = full_inst.extra["scan"].chain_length
        assert scoped_len < full_len / 2
        # and scoped snapshotting is proportionally cheaper
        scoped_target.reset()
        full_target.reset()
        s1 = scoped_target.save_snapshot()
        s2 = full_target.save_snapshot()
        assert s1.modelled_cost_s < s2.modelled_cost_s
