"""System memory map: address decoding for MMIO forwarding.

The selective symbolic VM forwards loads/stores that fall into peripheral
address windows to the hardware target hosting that peripheral. A
:class:`MemoryMap` owns the set of windows and resolves an address to
``(region, offset)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import BusError


@dataclass(frozen=True)
class Region:
    """One MMIO window: ``[base, base + size)`` mapped to a peripheral."""

    name: str
    base: int
    size: int

    def __post_init__(self):
        if self.size <= 0 or self.base < 0:
            raise BusError(f"bad region {self.name}: base=0x{self.base:x} "
                           f"size={self.size}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class MemoryMap:
    """Ordered, non-overlapping collection of MMIO regions."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add(self, name: str, base: int, size: int) -> Region:
        region = Region(name, base, size)
        for existing in self._regions:
            if existing.overlaps(region):
                raise BusError(
                    f"region {name!r} [0x{region.base:x}, 0x{region.end:x}) "
                    f"overlaps {existing.name!r}")
            if existing.name == name:
                raise BusError(f"duplicate region name {name!r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def resolve(self, addr: int) -> Optional[Tuple[Region, int]]:
        """Return ``(region, offset)`` for *addr*, or None if unmapped."""
        for region in self._regions:
            if region.contains(addr):
                return region, addr - region.base
        return None

    def region(self, name: str) -> Region:
        for region in self._regions:
            if region.name == name:
                return region
        raise BusError(f"unknown region {name!r}")

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
