"""Compiled-artifact cache regression tests (the opt fuzz-bench fix).

Constructing a CompiledSimulation used to re-run the optimizer and code
generator every time, even for a design already compiled this session —
which made ``opt=True`` benchmark sessions pay run_opt+codegen per
variant and showed up as the opt fuzz throughput regression. These tests
pin the fix: the second construction of a content-identical design must
reuse the cached artifact and behave byte-identically.
"""

import pytest

from repro.instrument import insert_scan_chain
from repro.peripherals import catalog
from repro.sim.compiler import (
    CompiledSimulation,
    clear_compile_cache,
    compile_cache_stats,
    design_fingerprint,
)


def _design():
    return insert_scan_chain(catalog.TIMER.elaborate()).design


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def test_second_build_reuses_cache():
    CompiledSimulation(_design(), opt=True)
    stats = compile_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    CompiledSimulation(_design(), opt=True)
    stats = compile_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 1


def test_opt_and_no_opt_are_distinct_entries():
    CompiledSimulation(_design(), opt=False)
    CompiledSimulation(_design(), opt=True)
    stats = compile_cache_stats()
    assert stats["misses"] == 2 and stats["entries"] == 2


def test_warm_build_behaves_identically():
    cold = CompiledSimulation(_design(), opt=True)
    warm = CompiledSimulation(_design(), opt=True)
    assert compile_cache_stats()["hits"] == 1
    cold.step(200)
    warm.step(200)
    assert cold.values == warm.values
    assert cold.memories == warm.memories
    assert warm.source == cold.source


def test_warm_instances_do_not_share_runtime_state():
    a = CompiledSimulation(_design(), opt=True)
    b = CompiledSimulation(_design(), opt=True)
    a.step(37)
    assert a.cycle == 37 and b.cycle == 0
    assert a.values is not b.values


def test_fingerprint_ignores_identity_but_not_content():
    d1, d2 = _design(), _design()
    assert d1 is not d2
    assert design_fingerprint(d1) == design_fingerprint(d2)
    d2.nets[next(iter(d2.nets))].width += 1
    assert design_fingerprint(d1) != design_fingerprint(d2)


def test_content_change_misses_cache():
    CompiledSimulation(_design(), opt=False)
    changed = _design()
    changed.name = "other"
    CompiledSimulation(changed, opt=False)
    assert compile_cache_stats()["misses"] == 2
