"""AES-128 encryption accelerator — the largest corpus peripheral.

One AES round per cycle with on-the-fly key expansion (11 cycles per
block), S-box as a 256-entry ROM, the classic iterative architecture of
open-source AES IPs. The S-box and round-constant values are derived
algorithmically at generation time (GF(2^8) inversion + affine map).

Register map:

=========== ======== ================================================
0x00        CTRL     bit0 START, bit1 IRQ_EN
0x04        STATUS   bit0 BUSY, bit1 DONE (write 1 to bit1 to clear)
0x10-0x1C   KEY      cipher key, 4 big-endian words
0x20-0x2C   BLOCK    plaintext block, 4 big-endian words
0x30-0x3C   RESULT   ciphertext block (read-only)
=========== ======== ================================================

Byte order follows FIPS-197: byte 0 of the block is the most significant
byte of word 0; AES state column ``c`` is word ``c``.
"""

from __future__ import annotations

from typing import List

from repro.peripherals.axi_skeleton import axi_module

NAME = "aes128"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "CTRL": 0x00,
    "STATUS": 0x04,
    "KEY": 0x10,     # 4 words
    "BLOCK": 0x20,   # 4 words
    "RESULT": 0x30,  # 4 words
}

CTRL_START = 1 << 0
CTRL_IRQ_EN = 1 << 1
STATUS_BUSY = 1 << 0
STATUS_DONE = 1 << 1


def sbox_table() -> List[int]:
    """The AES S-box, computed from first principles.

    Multiplicative inverse in GF(2^8) (via 3 as generator of the
    multiplicative group) followed by the affine transformation.
    """

    def rotl8(x: int, n: int) -> int:
        return ((x << n) | (x >> (8 - n))) & 0xFF

    sbox = [0] * 256
    p = 1
    q = 1
    while True:
        # p := p * 3 in GF(2^8)
        p = (p ^ ((p << 1) & 0xFF) ^ (0x1B if p & 0x80 else 0)) & 0xFF
        # q := q / 3 (multiply by the inverse of 3, i.e. 0xF6)
        q ^= (q << 1) & 0xFF
        q ^= (q << 2) & 0xFF
        q ^= (q << 4) & 0xFF
        if q & 0x80:
            q ^= 0x09
        q &= 0xFF
        sbox[p] = (q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3)
                   ^ rotl8(q, 4) ^ 0x63) & 0xFF
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


def _byte(reg: str, i: int) -> str:
    """Bit-slice of byte *i* (0 = most significant) of a 128-bit reg."""
    hi = 127 - 8 * i
    return f"{reg}[{hi}:{hi - 7}]"


def _word_byte(reg: str, i: int) -> str:
    """Byte *i* (0 = MSB) of a 32-bit wire/reg."""
    hi = 31 - 8 * i
    return f"{reg}[{hi}:{hi - 7}]"


def _core_body() -> str:
    sbox = sbox_table()
    sbox_init = "\n".join(
        f"        sbox[{i}] = 8'h{v:02x};" for i, v in enumerate(sbox))

    lines: List[str] = []
    # SubBytes + ShiftRows taps, per output column.
    for c in range(4):
        for r in range(4):
            src = 4 * ((c + r) % 4) + r
            lines.append(f"    wire [7:0] a_{c}_{r};")
            lines.append(f"    assign a_{c}_{r} = sbox[{_byte('st', src)}];")
    # xtime of each substituted byte.
    for c in range(4):
        for r in range(4):
            a = f"a_{c}_{r}"
            lines.append(f"    wire [7:0] x_{c}_{r};")
            lines.append(
                f"    assign x_{c}_{r} = {{{a}[6:0], 1'b0}} ^ "
                f"({a}[7] ? 8'h1b : 8'h00);")
    # MixColumns per column: standard 02/03/01/01 circulant.
    for c in range(4):
        a = [f"a_{c}_{r}" for r in range(4)]
        x = [f"x_{c}_{r}" for r in range(4)]
        m = [
            f"{x[0]} ^ ({x[1]} ^ {a[1]}) ^ {a[2]} ^ {a[3]}",
            f"{a[0]} ^ {x[1]} ^ ({x[2]} ^ {a[2]}) ^ {a[3]}",
            f"{a[0]} ^ {a[1]} ^ {x[2]} ^ ({x[3]} ^ {a[3]})",
            f"({x[0]} ^ {a[0]}) ^ {a[1]} ^ {a[2]} ^ {x[3]}",
        ]
        for r in range(4):
            lines.append(f"    wire [7:0] m_{c}_{r};")
            lines.append(f"    assign m_{c}_{r} = {m[r]};")
        lines.append(f"    wire [31:0] colm_{c};")
        lines.append(
            f"    assign colm_{c} = {{m_{c}_0, m_{c}_1, m_{c}_2, m_{c}_3}};")
        lines.append(f"    wire [31:0] coln_{c};")
        lines.append(
            f"    assign coln_{c} = {{a_{c}_0, a_{c}_1, a_{c}_2, a_{c}_3}};")
    mix_taps = "\n".join(lines)

    # On-the-fly key schedule.
    key_lines: List[str] = []
    key_lines.append("    wire [31:0] rotw;")
    key_lines.append("    assign rotw = {k3[23:0], k3[31:24]};")
    for j in range(4):
        key_lines.append(f"    wire [7:0] sw_{j};")
        key_lines.append(f"    assign sw_{j} = sbox[{_word_byte('rotw', j)}];")
    key_lines.append("    wire [31:0] nk0;")
    key_lines.append("    assign nk0 = k0 ^ {sw_0, sw_1, sw_2, sw_3} ^ "
                     "{rcon, 24'h0};")
    key_lines.append("    wire [31:0] nk1;")
    key_lines.append("    assign nk1 = k1 ^ nk0;")
    key_lines.append("    wire [31:0] nk2;")
    key_lines.append("    assign nk2 = k2 ^ nk1;")
    key_lines.append("    wire [31:0] nk3;")
    key_lines.append("    assign nk3 = k3 ^ nk2;")
    key_schedule = "\n".join(key_lines)

    return f"""
    reg [7:0] sbox [0:255];
    initial begin
{sbox_init}
    end

    reg [127:0] st;
    reg [31:0] k0;
    reg [31:0] k1;
    reg [31:0] k2;
    reg [31:0] k3;
    reg [31:0] kh0;
    reg [31:0] kh1;
    reg [31:0] kh2;
    reg [31:0] kh3;
    reg [31:0] b0;
    reg [31:0] b1;
    reg [31:0] b2;
    reg [31:0] b3;
    reg [7:0] rcon;
    reg [3:0] round;
    reg busy;
    reg done;
    reg irq_en;

{mix_taps}

{key_schedule}

    always @(posedge clk) begin
        if (rst) begin
            st <= 0;
            k0 <= 0; k1 <= 0; k2 <= 0; k3 <= 0;
            kh0 <= 0; kh1 <= 0; kh2 <= 0; kh3 <= 0;
            b0 <= 0; b1 <= 0; b2 <= 0; b3 <= 0;
            rcon <= 0;
            round <= 0;
            busy <= 0;
            done <= 0;
            irq_en <= 0;
        end else begin
            if (bus_wr) begin
                case (bus_waddr)
                    8'h00: begin
                        if (bus_wdata[0]) begin
                            st <= {{b0 ^ kh0, b1 ^ kh1, b2 ^ kh2, b3 ^ kh3}};
                            k0 <= kh0; k1 <= kh1; k2 <= kh2; k3 <= kh3;
                            rcon <= 8'h01;
                            round <= 4'd1;
                            busy <= 1'b1;
                            done <= 1'b0;
                        end
                        irq_en <= bus_wdata[1];
                    end
                    8'h04: begin
                        if (bus_wdata[1])
                            done <= 1'b0;
                    end
                    8'h10: kh0 <= bus_wdata;
                    8'h14: kh1 <= bus_wdata;
                    8'h18: kh2 <= bus_wdata;
                    8'h1c: kh3 <= bus_wdata;
                    8'h20: b0 <= bus_wdata;
                    8'h24: b1 <= bus_wdata;
                    8'h28: b2 <= bus_wdata;
                    8'h2c: b3 <= bus_wdata;
                    default: begin end
                endcase
            end
            if (busy) begin
                if (round == 4'd10) begin
                    st <= {{coln_0 ^ nk0, coln_1 ^ nk1, coln_2 ^ nk2,
                           coln_3 ^ nk3}};
                    busy <= 1'b0;
                    done <= 1'b1;
                end else begin
                    st <= {{colm_0 ^ nk0, colm_1 ^ nk1, colm_2 ^ nk2,
                           colm_3 ^ nk3}};
                end
                k0 <= nk0;
                k1 <= nk1;
                k2 <= nk2;
                k3 <= nk3;
                rcon <= {{rcon[6:0], 1'b0}} ^ (rcon[7] ? 8'h1b : 8'h00);
                round <= round + 1;
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h00: rd_data = {{30'h0, irq_en, 1'b0}};
            8'h04: rd_data = {{30'h0, done, busy}};
            8'h10: rd_data = kh0;
            8'h14: rd_data = kh1;
            8'h18: rd_data = kh2;
            8'h1c: rd_data = kh3;
            8'h30: rd_data = st[127:96];
            8'h34: rd_data = st[95:64];
            8'h38: rd_data = st[63:32];
            8'h3c: rd_data = st[31:0];
            default: rd_data = 32'h0;
        endcase
    end

    assign irq = done && irq_en;
"""


def verilog() -> str:
    return axi_module(NAME, _core_body(), ADDR_BITS,
                      extra_ports=("output wire irq",))
