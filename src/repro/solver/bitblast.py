"""Bit-blasting of bitvector expressions to CNF.

Each :class:`~repro.solver.expr.BitVec` node is lowered to a list of SAT
literals, least-significant bit first. Gates are encoded with the Tseitin
transformation; the builders fold constants so that concrete sub-expressions
never touch the SAT solver.

The encoder is incremental: one :class:`BitBlaster` owns one
:class:`~repro.solver.sat.SatSolver` and a node cache, so a symbolic
executor can push its path condition once per query set and reuse the
encoding across queries via SAT assumptions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SolverError
from repro.solver import expr as E
from repro.solver.sat import SatSolver, lit

# Sentinel literal values for folded constants. Real SAT literals are >= 4
# (variable 1 is reserved as the constant-true variable), so 0/1 are free.
TRUE_LIT = "T"
FALSE_LIT = "F"

Lit = object  # int SAT literal, or TRUE_LIT/FALSE_LIT sentinels


class BitBlaster:
    """Lowers BitVec DAGs onto a CDCL SAT solver."""

    def __init__(self):
        self.sat = SatSolver()
        self._const_var = self.sat.new_var()  # variable 1: constant true
        self.sat.add_clause([lit(self._const_var, True)])
        self._cache: Dict[E.BitVec, List[Lit]] = {}
        self._var_bits: Dict[E.BitVec, List[int]] = {}

    # -- literal helpers -----------------------------------------------------

    def _fresh(self) -> int:
        return lit(self.sat.new_var(), True)

    def _neg(self, a: Lit) -> Lit:
        if a is TRUE_LIT:
            return FALSE_LIT
        if a is FALSE_LIT:
            return TRUE_LIT
        return a ^ 1  # type: ignore[operator]

    def _clause(self, lits: List[Lit]) -> None:
        out: List[int] = []
        for l in lits:
            if l is TRUE_LIT:
                return  # satisfied clause
            if l is FALSE_LIT:
                continue
            out.append(l)  # type: ignore[arg-type]
        if not out:
            # Empty clause: encode explicit falsum via the constant variable.
            self.sat.add_clause([lit(self._const_var, False)])
            return
        self.sat.add_clause(out)

    def _and(self, a: Lit, b: Lit) -> Lit:
        if a is FALSE_LIT or b is FALSE_LIT:
            return FALSE_LIT
        if a is TRUE_LIT:
            return b
        if b is TRUE_LIT:
            return a
        if a == b:
            return a
        if a == self._neg(b):
            return FALSE_LIT
        z = self._fresh()
        self._clause([self._neg(z), a])
        self._clause([self._neg(z), b])
        self._clause([z, self._neg(a), self._neg(b)])
        return z

    def _or(self, a: Lit, b: Lit) -> Lit:
        return self._neg(self._and(self._neg(a), self._neg(b)))

    def _xor(self, a: Lit, b: Lit) -> Lit:
        if a is FALSE_LIT:
            return b
        if b is FALSE_LIT:
            return a
        if a is TRUE_LIT:
            return self._neg(b)
        if b is TRUE_LIT:
            return self._neg(a)
        if a == b:
            return FALSE_LIT
        if a == self._neg(b):
            return TRUE_LIT
        z = self._fresh()
        self._clause([self._neg(z), a, b])
        self._clause([self._neg(z), self._neg(a), self._neg(b)])
        self._clause([z, self._neg(a), b])
        self._clause([z, a, self._neg(b)])
        return z

    def _mux(self, sel: Lit, then: Lit, other: Lit) -> Lit:
        """sel ? then : other."""
        if sel is TRUE_LIT:
            return then
        if sel is FALSE_LIT:
            return other
        if then == other:
            return then
        z = self._fresh()
        self._clause([self._neg(sel), self._neg(then), z])
        self._clause([self._neg(sel), then, self._neg(z)])
        self._clause([sel, self._neg(other), z])
        self._clause([sel, other, self._neg(z)])
        return z

    def _full_adder(self, a: Lit, b: Lit, cin: Lit) -> tuple[Lit, Lit]:
        s = self._xor(self._xor(a, b), cin)
        carry = self._or(self._and(a, b), self._and(cin, self._xor(a, b)))
        return s, carry

    # -- word-level builders -------------------------------------------------

    def _add_words(self, a: List[Lit], b: List[Lit]) -> List[Lit]:
        out: List[Lit] = []
        carry: Lit = FALSE_LIT
        for ai, bi in zip(a, b):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out

    def _negate_word(self, a: List[Lit]) -> List[Lit]:
        inverted = [self._neg(x) for x in a]
        one = [TRUE_LIT] + [FALSE_LIT] * (len(a) - 1)
        return self._add_words(inverted, one)

    def _sub_words(self, a: List[Lit], b: List[Lit]) -> List[Lit]:
        # a - b == a + ~b + 1
        inverted = [self._neg(x) for x in b]
        out: List[Lit] = []
        carry: Lit = TRUE_LIT
        for ai, bi in zip(a, inverted):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out

    def _mul_words(self, a: List[Lit], b: List[Lit]) -> List[Lit]:
        width = len(a)
        acc: List[Lit] = [FALSE_LIT] * width
        for i in range(width):
            if b[i] is FALSE_LIT:
                continue
            shifted = [FALSE_LIT] * i + a[: width - i]
            partial = [self._and(b[i], x) for x in shifted]
            acc = self._add_words(acc, partial)
        return acc

    def _ult_words(self, a: List[Lit], b: List[Lit]) -> Lit:
        # Ripple from LSB: lt = (~a_i & b_i) | (a_i == b_i) & lt_prev
        lt: Lit = FALSE_LIT
        for ai, bi in zip(a, b):
            eq_bit = self._neg(self._xor(ai, bi))
            lt = self._or(self._and(self._neg(ai), bi), self._and(eq_bit, lt))
        return lt

    def _eq_words(self, a: List[Lit], b: List[Lit]) -> Lit:
        acc: Lit = TRUE_LIT
        for ai, bi in zip(a, b):
            acc = self._and(acc, self._neg(self._xor(ai, bi)))
        return acc

    def _shift_words(self, a: List[Lit], b: List[Lit], kind: str) -> List[Lit]:
        """Barrel shifter; kind in {'shl', 'lshr', 'ashr'}."""
        width = len(a)
        result = list(a)
        fill: Lit = a[-1] if kind == "ashr" else FALSE_LIT
        stage = 0
        while (1 << stage) < width and stage < len(b):
            sel = b[stage]
            amount = 1 << stage
            shifted: List[Lit] = [FALSE_LIT] * width
            if kind == "shl":
                for i in range(width):
                    shifted[i] = result[i - amount] if i >= amount else FALSE_LIT
            else:
                for i in range(width):
                    shifted[i] = result[i + amount] if i + amount < width else fill
            result = [self._mux(sel, s, r) for s, r in zip(shifted, result)]
            stage += 1
        # Shift amounts >= width produce 0 (or sign fill for ashr).
        overflow: Lit = FALSE_LIT
        for i in range(stage, len(b)):
            overflow = self._or(overflow, b[i])
        if kind != "ashr":
            result = [self._mux(overflow, FALSE_LIT, r) for r in result]
        else:
            result = [self._mux(overflow, fill, r) for r in result]
        return result

    def _udivrem_words(self, a: List[Lit], b: List[Lit]) -> tuple[List[Lit], List[Lit]]:
        """Restoring division. Division by zero yields (all-ones, a), the
        same convention as :func:`repro.solver.expr._eval_op`."""
        width = len(a)
        quotient: List[Lit] = [FALSE_LIT] * width
        remainder: List[Lit] = [FALSE_LIT] * width
        for i in range(width - 1, -1, -1):
            # remainder = (remainder << 1) | a[i]
            remainder = [a[i]] + remainder[:-1]
            # if remainder >= b: remainder -= b; q[i] = 1
            ge = self._neg(self._ult_words(remainder, b))
            diff = self._sub_words(remainder, b)
            remainder = [self._mux(ge, d, r) for d, r in zip(diff, remainder)]
            quotient[i] = ge
        b_is_zero = self._eq_words(b, [FALSE_LIT] * width)
        quotient = [self._mux(b_is_zero, TRUE_LIT, q) for q in quotient]
        remainder = [self._mux(b_is_zero, x, r) for x, r in zip(a, remainder)]
        return quotient, remainder

    # -- expression lowering ----------------------------------------------------

    def blast(self, node: E.BitVec) -> List[Lit]:
        """Lower *node* and return its bit literals, LSB first."""
        cached = self._cache.get(node)
        if cached is not None:
            return cached
        # Iterative lowering to avoid recursion limits on deep DAGs.
        order: List[E.BitVec] = []
        seen = set()
        stack = [(node, False)]
        while stack:
            cur, ready = stack.pop()
            if cur in self._cache:
                continue
            if ready:
                order.append(cur)
                continue
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            stack.append((cur, True))
            for arg in cur.args:
                stack.append((arg, False))
        for cur in order:
            if cur not in self._cache:
                self._cache[cur] = self._blast_node(cur)
        return self._cache[node]

    def _blast_node(self, node: E.BitVec) -> List[Lit]:
        op = node.op
        if op == E.CONST:
            return [TRUE_LIT if (node.value >> i) & 1 else FALSE_LIT
                    for i in range(node.width)]
        if op == E.VAR:
            bits = self._var_bits.get(node)
            if bits is None:
                bits = [self._fresh() for _ in range(node.width)]
                self._var_bits[node] = bits
            return list(bits)
        args = [self._cache[a] for a in node.args]
        if op == E.ADD:
            return self._add_words(args[0], args[1])
        if op == E.SUB:
            return self._sub_words(args[0], args[1])
        if op == E.MUL:
            return self._mul_words(args[0], args[1])
        if op == E.NEG:
            return self._negate_word(args[0])
        if op == E.UDIV:
            return self._udivrem_words(args[0], args[1])[0]
        if op == E.UREM:
            return self._udivrem_words(args[0], args[1])[1]
        if op == E.AND:
            return [self._and(a, b) for a, b in zip(args[0], args[1])]
        if op == E.OR:
            return [self._or(a, b) for a, b in zip(args[0], args[1])]
        if op == E.XOR:
            return [self._xor(a, b) for a, b in zip(args[0], args[1])]
        if op == E.NOT:
            return [self._neg(a) for a in args[0]]
        if op in (E.SHL, E.LSHR, E.ASHR):
            return self._shift_words(args[0], args[1], op)
        if op == E.CONCAT:
            out: List[Lit] = []
            for arg_bits in reversed(args):  # last arg is least significant
                out.extend(arg_bits)
            return out
        if op == E.EXTRACT:
            hi = node.value >> 16  # type: ignore[operator]
            lo = node.value & 0xFFFF  # type: ignore[operator]
            return args[0][lo:hi + 1]
        if op == E.ZEXT:
            pad = node.width - node.args[0].width
            return args[0] + [FALSE_LIT] * pad
        if op == E.SEXT:
            pad = node.width - node.args[0].width
            return args[0] + [args[0][-1]] * pad
        if op == E.EQ:
            return [self._eq_words(args[0], args[1])]
        if op == E.ULT:
            return [self._ult_words(args[0], args[1])]
        if op == E.ULE:
            return [self._neg(self._ult_words(args[1], args[0]))]
        if op in (E.SLT, E.SLE):
            # Signed comparison: flip sign bits and compare unsigned.
            a = list(args[0])
            b = list(args[1])
            a[-1] = self._neg(a[-1])
            b[-1] = self._neg(b[-1])
            if op == E.SLT:
                return [self._ult_words(a, b)]
            return [self._neg(self._ult_words(b, a))]
        if op == E.ITE:
            sel = args[0][0]
            return [self._mux(sel, t, o) for t, o in zip(args[1], args[2])]
        raise SolverError(f"bitblast: unsupported op {op!r}")

    # -- assertion / model interface ----------------------------------------------

    def assert_true(self, node: E.BitVec) -> None:
        """Permanently constrain a 1-bit expression to be true."""
        if node.width != 1:
            raise SolverError("assert_true expects a boolean (1-bit) expression")
        bits = self.blast(node)
        self._clause([bits[0]])

    def literal_for(self, node: E.BitVec) -> Lit:
        """Return a single literal equivalent to a boolean expression."""
        if node.width != 1:
            raise SolverError("literal_for expects a boolean (1-bit) expression")
        return self.blast(node)[0]

    def model_value(self, node: E.BitVec) -> int:
        """Read back *node*'s value from the last SAT model."""
        bits = self._cache.get(node)
        if bits is None:
            raise SolverError("expression was never blasted")
        value = 0
        for i, b in enumerate(bits):
            if b is TRUE_LIT:
                bit = 1
            elif b is FALSE_LIT:
                bit = 0
            else:
                v = b >> 1  # type: ignore[operator]
                bit = int(self.sat.model_value(v) == (b & 1 == 0))  # type: ignore[operator]
            value |= bit << i
        return value
