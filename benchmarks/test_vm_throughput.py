"""E12 — VM dispatch throughput: predecoded/batched tiers vs the legacy
stepper.

After PR 6 made the RTL simulator ~4x faster, the fuzz/DSE loop became
dominated by the symbolic VM's per-instruction dispatch (ROADMAP item
1). This experiment measures what the predecoded instruction table,
per-opcode handler dispatch, and batched ``step_block`` entry buy on a
fully concrete workload — the configuration the fuzzer and the concrete
stretches of DSE paths run in:

* **legacy** — original fetch → decode → if/elif chain (``dispatch="legacy"``),
* **fast, per-step** — predecoded table + handler dispatch, one
  ``step()`` call per instruction,
* **fast, batched** — the same tier through ``step_block`` bursts (the
  engine's lane entry).

CI gates on batched ≥ 2x legacy (instructions/second). The concrete
``Cpu`` core (the fuzzer's executor) is measured in the same shape:
predecoded fetch vs forced byte-accurate fetch. All tiers must agree on
the halt code — verdict identity is recorded in ``BENCH_vm.json``.
"""

import os
import time

from benchmarks.conftest import emit, emit_json
from repro.analysis import format_table
from repro.isa import Cpu, assemble
from repro.vm import SymbolicExecutor

LOOP_COUNT = 12_000
MIN_SPEEDUP = 2.0  # batched fast tier vs legacy stepper, instructions/s

CHECKSUM_SRC = f"""
start:
    movi r1, 0          ; checksum accumulator
    movi r2, 0x2000     ; data pointer
    movi r3, {LOOP_COUNT}
loop:
    lw   r4, 0(r2)
    add  r1, r1, r4
    xor  r1, r1, r3
    addi r2, r2, 4
    dec  r3
    bne  r3, r0, loop
    halt r1
"""

MAX_STEPS = LOOP_COUNT * 8 + 64


def _program():
    return assemble(CHECKSUM_SRC)


def _run_stepped(dispatch):
    """Instructions/s driving the executor one step() at a time."""
    executor = SymbolicExecutor(_program(), bridge=None, dispatch=dispatch)
    state = executor.make_initial_state()
    start = time.perf_counter()
    while state.is_active and state.steps < MAX_STEPS:
        executor.step(state)
    elapsed = time.perf_counter() - start
    assert state.status == "halted"
    return state.steps / elapsed, state


def _run_batched():
    """Instructions/s through step_block bursts (the lane entry)."""
    executor = SymbolicExecutor(_program(), bridge=None)
    state = executor.make_initial_state()
    start = time.perf_counter()
    while state.is_active and state.steps < MAX_STEPS:
        executor.step_block(state, 1_000_000)
    elapsed = time.perf_counter() - start
    assert state.status == "halted"
    return state.steps / elapsed, state


def _run_cpu(predecoded):
    """The concrete fuzzing core, predecoded vs forced slow fetch."""
    cpu = Cpu(_program())
    if not predecoded:
        cpu._code_clean = False
    start = time.perf_counter()
    exit_ = None
    while exit_ is None and cpu.steps < MAX_STEPS:
        exit_ = cpu.step()
    elapsed = time.perf_counter() - start
    assert exit_ is not None
    return cpu.steps / elapsed, exit_


def test_vm_throughput(benchmark):
    (legacy_ips, legacy_state), (fast_ips, fast_state), \
        (batched_ips, batched_state) = benchmark.pedantic(
            lambda: (_run_stepped("legacy"), _run_stepped("fast"),
                     _run_batched()),
            rounds=1, iterations=1)

    cpu_slow_ips, cpu_slow_exit = _run_cpu(predecoded=False)
    cpu_fast_ips, cpu_fast_exit = _run_cpu(predecoded=True)

    verdict_identical = (
        legacy_state.halt_code == fast_state.halt_code
        == batched_state.halt_code
        and legacy_state.regs == fast_state.regs == batched_state.regs
        and cpu_slow_exit.code == cpu_fast_exit.code
        == legacy_state.halt_code)
    step_speedup = fast_ips / legacy_ips
    batch_speedup = batched_ips / legacy_ips
    cpu_speedup = cpu_fast_ips / cpu_slow_ips

    rows = [
        ["executor, legacy step", f"{legacy_ips:,.0f} instr/s", "1.00x",
         "reference"],
        ["executor, fast step", f"{fast_ips:,.0f} instr/s",
         f"{step_speedup:.2f}x", "predecode + handler table"],
        ["executor, fast batched", f"{batched_ips:,.0f} instr/s",
         f"{batch_speedup:.2f}x", "step_block lane entry"],
        ["cpu core, slow fetch", f"{cpu_slow_ips:,.0f} instr/s", "1.00x",
         "byte-accurate fetch"],
        ["cpu core, predecoded", f"{cpu_fast_ips:,.0f} instr/s",
         f"{cpu_speedup:.2f}x",
         "identical verdict" if verdict_identical else "DIVERGED"],
    ]
    emit("vm_throughput", format_table(
        ["configuration", "throughput", "speedup", "notes"], rows,
        title=f"E12: VM dispatch tiers on the concrete checksum loop "
              f"({LOOP_COUNT} iterations)"))

    emit_json("BENCH_vm.json", {
        "experiment": "vm_throughput",
        "workload": f"concrete checksum loop, {LOOP_COUNT} iterations",
        "host_cores": os.cpu_count(),
        "instructions_per_s": {
            "executor_legacy": legacy_ips,
            "executor_fast_step": fast_ips,
            "executor_fast_batched": batched_ips,
            "cpu_slow_fetch": cpu_slow_ips,
            "cpu_predecoded": cpu_fast_ips,
        },
        "speedup": {
            "fast_step": step_speedup,
            "fast_batched": batch_speedup,
            "cpu_predecoded": cpu_speedup,
        },
        "min_speedup": MIN_SPEEDUP,
        "verdict_identical": verdict_identical,
    })

    assert verdict_identical, "dispatch tiers diverged on the workload"
    assert batch_speedup >= MIN_SPEEDUP, (
        f"batched fast tier {batch_speedup:.2f}x below the "
        f"{MIN_SPEEDUP}x instructions/s gate")
