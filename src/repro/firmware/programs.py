"""Synthetic firmware corpus (paper §V: "synthetic firmware" over
open-source peripherals).

Each entry is an assembly source (HS32) parameterised where useful.
Address-space conventions: RAM at 0, peripherals per the bases passed to
the builders. Every program uses the ``sym``/``assert`` intrinsics the
way KLEE-style harnesses use ``klee_make_symbolic``/``klee_assert``.
"""

from __future__ import annotations

from typing import List

TIMER_BASE = 0x4000_0000
UART_BASE = 0x4001_0000
AES_BASE = 0x4002_0000
SHA_BASE = 0x4003_0000
GPIO_BASE = 0x4004_0000
DMA_BASE = 0x4005_0000


def fig1_two_paths(timer_base: int = TIMER_BASE) -> str:
    """The motivation example (Fig. 1): INIT, then two execution paths
    'REQ A' / 'REQ B' that program the same peripheral differently and
    wait for its interrupt.

    Path A asks the timer for a short task (LOAD=8), path B for a longer
    one (LOAD=24). The IRQ handler records when the task completed; each
    path asserts it observed *its own* task duration. Under shared
    hardware (naive-and-inconsistent) path A's request is clobbered when
    path B runs concurrently — exactly the 'Task A aborted' scenario.

    Halt codes: path A -> 0xA, path B -> 0xB.
    """
    return f"""
.equ TIMER, 0x{timer_base:x}
start:
    ; ---- INIT sequence (shared prefix) ----
    movi r1, TIMER
    movi r2, handler
    setivt r2
    movi r9, 0              ; IRQ-seen flag
    movi r2, 0
    sw   r2, 16(r1)         ; PRESCALE = 0
    ei
    ; ---- fork: symbolic command selects the request ----
    sym  r4
    andi r4, r4, 1
    beq  r4, r0, req_b
req_a:
    movi r5, 8
    sw   r5, 4(r1)          ; LOAD = 8  (task A)
    movi r2, 3
    sw   r2, 0(r1)          ; CTRL = EN|IRQ_EN
wait_a:
    beq  r9, r0, wait_a
    ; the peripheral must have run OUR task: LOAD still 8
    lw   r6, 4(r1)
    movi r7, 8
    sub  r6, r6, r7
    movi r8, 1
    beq  r6, r0, ok_a
    movi r8, 0
ok_a:
    assert r8
    movi r2, 0xA
    halt r2
req_b:
    movi r5, 24
    sw   r5, 4(r1)          ; LOAD = 24 (task B)
    movi r2, 3
    sw   r2, 0(r1)
wait_b:
    beq  r9, r0, wait_b
    lw   r6, 4(r1)
    movi r7, 24
    sub  r6, r6, r7
    movi r8, 1
    beq  r6, r0, ok_b
    movi r8, 0
ok_b:
    assert r8
    movi r2, 0xB
    halt r2
handler:
    push r2
    movi r9, 1
    movi r2, 1
    sw   r2, 12(r1)         ; clear STATUS.EXPIRED
    pop  r2
    iret
"""


def dispatcher(n_paths: int, work_cycles: int = 40,
               timer_base: int = TIMER_BASE) -> str:
    """N-way dispatcher: a symbolic command selects one of *n_paths*
    handlers; each handler programs the timer with its own duration and
    polls for expiry. The workload of experiment E2a — path count scales
    while the per-path work stays constant.

    Halt code of path i is ``0x100 + i``.
    """
    if not (2 <= n_paths <= 256):
        raise ValueError("n_paths must be in [2, 256]")
    cases: List[str] = []
    for i in range(n_paths):
        cases.append(f"""
case_{i}:
    movi r5, {work_cycles + i}
    sw   r5, 4(r1)          ; LOAD
    movi r2, 1
    sw   r2, 0(r1)          ; CTRL = EN
poll_{i}:
    lw   r3, 12(r1)         ; STATUS
    beq  r3, r0, poll_{i}
    movi r2, 1
    sw   r2, 12(r1)         ; clear
    movi r2, 0x100 + {i}
    halt r2
""")
    compare = []
    for i in range(n_paths - 1):
        compare.append(f"""
    movi r3, {i}
    beq  r4, r3, case_{i}""")
    return f"""
.equ TIMER, 0x{timer_base:x}
start:
    movi r1, TIMER
    movi r2, 0
    sw   r2, 16(r1)         ; PRESCALE = 0
    sym  r4
    movi r3, {n_paths}
    remu r4, r4, r3         ; command in [0, n)
{''.join(compare)}
    j case_{n_paths - 1}
{''.join(cases)}
"""


def init_heavy(init_writes: int = 200, n_paths: int = 4,
               uart_base: int = UART_BASE,
               timer_base: int = TIMER_BASE) -> str:
    """Driver with a long INIT sequence (experiment E2b).

    Mimics Talebi et al.'s observation (8800 I/O operations to initialise
    one camera driver): INIT performs *init_writes* MMIO writes before
    any interesting branching happens. Re-executing this prefix is what
    makes reboot-per-path expensive; HardSnap snapshots past it once.
    """
    body = []
    for i in range(init_writes):
        reg = [0x10, 0x0C][i % 2]  # BAUDDIV / CTRL, harmless config churn
        body.append(f"""
    movi r3, {(i * 7) & 0xFF}
    sw   r3, {reg}(r1)""")
    cases = []
    for i in range(n_paths):
        cases.append(f"""
path_{i}:
    movi r5, {16 + i}
    sw   r5, 4(r2)
    movi r3, 1
    sw   r3, 0(r2)
wait_{i}:
    lw   r3, 12(r2)
    beq  r3, r0, wait_{i}
    movi r3, 0x200 + {i}
    halt r3
""")
    compare = []
    for i in range(n_paths - 1):
        compare.append(f"""
    movi r3, {i}
    beq  r4, r3, path_{i}""")
    return f"""
.equ UART, 0x{uart_base:x}
.equ TIMER, 0x{timer_base:x}
start:
    movi r1, UART
    movi r2, TIMER
    movi r3, 0
    sw   r3, 16(r2)         ; PRESCALE = 0
    ; ---- long INIT: {init_writes} configuration writes ----
{''.join(body)}
    ; ---- branch on symbolic command ----
    sym  r4
    movi r3, {n_paths}
    remu r4, r4, r3
{''.join(compare)}
    j path_{n_paths - 1}
{''.join(cases)}
"""


def vuln_buffer_overflow(uart_base: int = UART_BASE) -> str:
    """Planted bug 1: classic driver RX buffer overflow.

    The firmware copies a "packet" into a 16-byte stack buffer using an
    attacker-controlled length byte without validation. A length > 16
    smashes adjacent memory; the symbolic engine finds the overflowing
    length and the OOB-write detector fires with a concrete witness.
    """
    return f"""
.equ UART, 0x{uart_base:x}
.equ BUF, 0x8000            ; 16-byte buffer in RAM
.equ GUARD, 0x8010          ; canary word right after it
start:
    movi r1, UART
    movi r2, GUARD
    movi r3, 0x51a4d5       ; canary value
    sw   r3, 0(r2)
    ; length byte comes from the radio packet (symbolic)
    sym  r4
    andi r4, r4, 0x3f       ; length in [0, 63] — still unchecked vs 16!
    movi r5, BUF
    movi r6, 0              ; index
copy:
    beq  r6, r4, done
    add  r7, r5, r6
    movi r8, 0x41
    sb   r8, 0(r7)          ; buf[i] = 'A'
    inc  r6
    j    copy
done:
    ; integrity check: canary must be intact
    movi r2, GUARD
    lw   r3, 0(r2)
    movi r7, 0x51a4d5
    sub  r3, r3, r7
    movi r8, 1
    beq  r3, r0, intact
    movi r8, 0
intact:
    assert r8
    halt r0
"""


def vuln_peripheral_misuse(aes_base: int = AES_BASE) -> str:
    """Planted bug 2: peripheral-misuse — reading the AES RESULT window
    while the engine is still busy returns a partially encrypted state
    (key material leakage pattern). The assertion encodes the security
    property "result must only be consumed when DONE"; a symbolic delay
    decides how long the driver waits, and the engine finds the
    too-short wait.
    """
    return f"""
.equ AES, 0x{aes_base:x}
start:
    movi r1, AES
    ; program key + block (fixed vectors)
    movi r2, 0x00010203
    sw   r2, 16(r1)
    movi r2, 0x04050607
    sw   r2, 20(r1)
    movi r2, 0x08090a0b
    sw   r2, 24(r1)
    movi r2, 0x0c0d0e0f
    sw   r2, 28(r1)
    movi r2, 0x00112233
    sw   r2, 32(r1)
    movi r2, 0x44556677
    sw   r2, 36(r1)
    movi r2, 0x8899aabb
    sw   r2, 40(r1)
    movi r2, 0xccddeeff
    sw   r2, 44(r1)
    movi r2, 1
    sw   r2, 0(r1)          ; START
    ; symbolic wait: the driver author guessed a delay instead of
    ; polling STATUS.DONE
    sym  r4
    andi r4, r4, 0x1f       ; wait 0..31 loop iterations
delay:
    beq  r4, r0, consume
    dec  r4
    j    delay
consume:
    ; property: DONE must be set when the result is consumed
    lw   r5, 4(r1)          ; STATUS
    andi r5, r5, 2          ; DONE bit
    movi r8, 1
    bne  r5, r0, okflag
    movi r8, 0
okflag:
    lw   r6, 48(r1)         ; read RESULT[0] (the "consumption")
    assert r8
    halt r0
"""


def vuln_irq_race(timer_base: int = TIMER_BASE) -> str:
    """Planted bug 3: interrupt race — a lost update on a shared counter.

    The main flow performs an unprotected read-modify-write of ``count``
    (no DI/EI around the critical section) while the timer IRQ handler
    also updates it. A symbolic delay shifts where the interrupt lands;
    when it hits *inside* the read-modify-write window the handler's
    update is overwritten ("lost update"). The property — after both
    updates, ``count`` must equal ``1 - 1 - 2 = -2`` — fails exactly for
    the racy interleavings, so the engine's counterexample pins the
    vulnerable window. A hardware-dependent control-flow bug: finding it
    requires accurate interrupt timing from the peripheral.
    """
    return f"""
.equ TIMER, 0x{timer_base:x}
.equ COUNT, 0x7000
.equ FLAG, 0x7004
start:
    movi r1, TIMER
    movi r2, handler
    setivt r2
    movi r2, COUNT
    movi r3, 1
    sw   r3, 0(r2)          ; count = 1
    movi r2, FLAG
    sw   r0, 0(r2)          ; handler-ran flag = 0
    ei
    movi r3, 8
    sw   r3, 4(r1)          ; LOAD = 8
    movi r3, 3
    sw   r3, 0(r1)          ; EN | IRQ_EN
    ; symbolic delay: shifts where the whole critical section sits
    ; relative to the timer expiry
    sym  r6
    andi r6, r6, 31
spin:
    beq  r6, r0, contin
    dec  r6
    j    spin
contin:
    ; ---- unprotected read-modify-write of count ----
    movi r2, COUNT
    lw   r4, 0(r2)          ; read count
    dec  r4                 ; count - 1 (stale if the IRQ hit in between)
    sw   r4, 0(r2)          ; write back
    ; ---- wait until the handler has definitely run ----
    movi r2, FLAG
waitflag:
    lw   r5, 0(r2)
    beq  r5, r0, waitflag
    ; ---- property: both updates applied => count == -2 ----
    movi r2, COUNT
    lw   r5, 0(r2)
    movi r7, 0 - 2
    sub  r5, r5, r7
    movi r8, 1
    beq  r5, r0, fine
    movi r8, 0
fine:
    assert r8
    di
    halt r0
handler:
    push r3
    push r4
    movi r4, COUNT
    lw   r3, 0(r4)
    dec  r3
    dec  r3                 ; handler consumes two credits
    sw   r3, 0(r4)
    movi r4, FLAG
    movi r3, 1
    sw   r3, 0(r4)          ; flag = 1
    movi r3, 1
    sw   r3, 12(r1)         ; clear STATUS.EXPIRED
    pop  r4
    pop  r3
    iret
"""


def fuzz_packet_parser(timer_base: int = TIMER_BASE) -> str:
    """Fuzzing harness firmware (see :mod:`repro.core.fuzzer`).

    Reads an input packet from the fuzzer's buffer at 0xF000
    (``[len32][bytes...]``) and parses it as ``[cmd][n][payload...]``:

    * cmd 0x01 — copy ``n`` payload bytes into a 16-byte buffer. The
      length check uses a signed comparison on purpose: n >= 0x80 is
      "negative", passes the check, and smashes the canary — the planted
      crash the fuzzer must find,
    * cmd 0x02 — program the timer with the first payload byte and wait
      for expiry (exercises MMIO + hardware time per execution),
    * anything else — clean exit.
    """
    return f"""
.equ TIMER, 0x{timer_base:x}
.equ INPUT, 0xF000
.equ BUF, 0xE000
.equ GUARD, 0xE010
start:
    movi r1, INPUT
    lw   r2, 0(r1)          ; input length
    movi r3, 2
    bltu r2, r3, done       ; need at least cmd+len
    lbu  r4, 4(r1)          ; cmd
    lb   r5, 5(r1)          ; n — sign-extended byte: the root cause
    movi r3, 1
    beq  r4, r3, cmd_copy
    movi r3, 2
    beq  r4, r3, cmd_timer
done:
    halt r0

cmd_copy:
    ; canary guards the 16-byte buffer
    movi r6, GUARD
    movi r7, 0x600D
    sw   r7, 0(r6)
    ; BUG: signed length check — a "negative" n (byte >= 0x80) passes
    movi r3, 16
    slt  r8, r3, r5         ; signed: 16 < n ?
    bne  r8, r0, done       ; reject "large" n
    andi r5, r5, 0xFF       ; ...but the copy uses the raw byte
    movi r6, BUF
    movi r9, 0
copy:
    beq  r9, r5, copied
    add  r10, r1, r9
    lbu  r11, 6(r10)        ; payload byte
    add  r12, r6, r9
    sb   r11, 0(r12)
    inc  r9
    j    copy
copied:
    movi r6, GUARD
    lw   r7, 0(r6)
    movi r3, 0x600D
    sub  r7, r7, r3
    movi r8, 1
    beq  r7, r0, intact
    movi r8, 0
intact:
    assert r8               ; canary intact?
    halt r0

cmd_timer:
    movi r6, TIMER
    movi r3, 0
    sw   r3, 16(r6)         ; PRESCALE = 0
    andi r5, r5, 0x1F
    addi r5, r5, 1
    sw   r5, 4(r6)          ; LOAD
    movi r3, 1
    sw   r3, 0(r6)          ; EN
wait_t:
    lw   r3, 12(r6)
    beq  r3, r0, wait_t
    movi r3, 1
    sw   r3, 12(r6)
    halt r0
"""


WDT_BASE = 0x4006_0000


def vuln_wdt_starvation(wdt_base: int = WDT_BASE) -> str:
    """Planted bug 4: watchdog starvation on a data-dependent slow path.

    The firmware locks and arms the watchdog (production style: LOCK is
    write-once), then processes a "packet" whose symbolic length drives a
    per-byte work loop. The developer sized the watchdog for typical
    packets; the maximum length starves the feed and the dog barks.
    The property asserts the watchdog never fired; the engine's
    counterexample is the minimal starving length.
    """
    return f"""
.equ WDT, 0x{wdt_base:x}
start:
    movi r1, WDT
    movi r2, 120
    sw   r2, 4(r1)          ; LOAD = 120 cycles ("plenty", thought the dev)
    movi r2, 3
    sw   r2, 0(r1)          ; EN | LOCK — cannot be disabled any more
    ; feed once before processing
    movi r2, 0x5C
    sw   r2, 12(r1)
    ; process a packet of symbolic length (0..31 units of work)
    sym  r4
    andi r4, r4, 0x1F
work:
    beq  r4, r0, done_work
    ; each unit of work is ~8 instructions of "parsing"
    movi r5, 3
inner:
    dec  r5
    bne  r5, r0, inner
    dec  r4
    j    work
done_work:
    ; feed again after processing
    movi r2, 0x5C
    sw   r2, 12(r1)
    ; property: the watchdog never fired
    lw   r6, 16(r1)         ; STATUS
    andi r6, r6, 1          ; BARKED
    movi r8, 1
    beq  r6, r0, fine
    movi r8, 0
fine:
    assert r8
    halt r4
"""


def uart_echo(uart_base: int = UART_BASE, count: int = 4) -> str:
    """Benign workload: echo *count* looped-back bytes, used by the I/O
    forwarding benchmarks and the quickstart example."""
    return f"""
.equ UART, 0x{uart_base:x}
start:
    movi r1, UART
    movi r2, 4
    sw   r2, 16(r1)         ; BAUDDIV = 4
    movi r6, 0              ; byte counter
loop:
    movi r3, 0x30
    add  r3, r3, r6
    sw   r3, 0(r1)          ; TX byte
rx_wait:
    lw   r4, 8(r1)          ; STATUS
    andi r4, r4, 4          ; RX_AVAIL
    beq  r4, r0, rx_wait
    lw   r5, 4(r1)          ; RX byte
    sub  r5, r5, r3
    movi r8, 1
    beq  r5, r0, match
    movi r8, 0
match:
    assert r8
    inc  r6
    movi r7, {count}
    bne  r6, r7, loop
    halt r6
"""
