"""Bus functional models, memory map and transport latency models."""

from repro.bus.axi4lite import Axi4LiteMaster, BusStats
from repro.bus.memory_map import MemoryMap, Region
from repro.bus.transport import (ALL_TRANSPORTS, JTAG, SHARED_MEMORY, USB3,
                                 ModelledTimer, Transport)
from repro.bus.wishbone import WishboneMaster

__all__ = [
    "Axi4LiteMaster", "WishboneMaster", "BusStats", "MemoryMap", "Region",
    "Transport", "ModelledTimer", "SHARED_MEMORY", "USB3", "JTAG",
    "ALL_TRANSPORTS",
]
