"""Coverage accounting over firmware programs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.isa.assembler import Program
from repro.isa.disassembler import disassemble_word


@dataclass
class CoverageReport:
    covered: Set[int]
    total_instructions: int

    @property
    def covered_count(self) -> int:
        return len(self.covered)

    @property
    def percent(self) -> float:
        if not self.total_instructions:
            return 0.0
        return 100.0 * len(self.covered) / self.total_instructions


def coverage_report(program: Program, covered_pcs: Set[int]) -> CoverageReport:
    """Intersect executed pcs with the program's instruction addresses."""
    addrs = set(program.words)
    return CoverageReport(covered=covered_pcs & addrs,
                          total_instructions=len(addrs))


def uncovered_listing(program: Program, covered_pcs: Set[int],
                      limit: int = 50) -> List[str]:
    """Disassembly of instructions never executed (analysis aid)."""
    out: List[str] = []
    for addr in sorted(set(program.words) - covered_pcs):
        word = program.words[addr]
        out.append(f"{addr:08x}:  {disassemble_word(word, addr)}")
        if len(out) >= limit:
            break
    return out


def source_line_coverage(program: Program,
                         covered_pcs: Set[int]) -> Dict[int, bool]:
    """Assembly-source-line coverage via the program's source map."""
    out: Dict[int, bool] = {}
    for addr, line in program.source_map.items():
        out[line] = out.get(line, False) or addr in covered_pcs
    return out
