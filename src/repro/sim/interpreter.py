"""Tree-walking RTL simulator backend.

This backend evaluates the IR directly. It is the *simulator target* of
HardSnap: slower than the compiled backend (which plays the FPGA role)
but with full visibility — every net value is inspectable at any time and
a VCD trace can be attached.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.hdl import ir
from repro.sim.base import BaseSimulation
from repro.sim.scheduler import clock_domain, order_comb_blocks


class Interpreter(BaseSimulation):
    """Cycle-based tree-walking simulation of an elaborated design."""

    def __init__(self, design: ir.Design, clock: str = "clk",
                 opt: bool = False):
        self.opt = opt
        self.opt_report = None
        if opt:
            from repro.opt import run_opt
            result = run_opt(design, clock)
            design = result.design
            self.opt_report = result.report
        self._ordered_comb = order_comb_blocks(design)
        domain = clock_domain(design, clock)
        in_domain = [b for b in design.seq_blocks if b.clock.name in domain]
        self._seq_blocks = [b for b in in_domain
                            if b.clock_edge == "posedge"]
        self._seq_blocks_neg = [b for b in in_domain
                                if b.clock_edge == "negedge"]
        self._has_negedge = bool(self._seq_blocks_neg)
        super().__init__(design, clock)

    # -- backend hooks ------------------------------------------------------

    def _run_init_blocks(self) -> None:
        for block in self.design.init_blocks:
            self._exec_stmts(block.stmts, None, None)

    def _settle(self) -> None:
        for block in self._ordered_comb:
            self._exec_stmts(block.stmts, None, None)

    def _clock_edge(self) -> None:
        self._run_edge(self._seq_blocks)

    def _clock_negedge(self) -> None:
        self._run_edge(self._seq_blocks_neg)

    def _run_edge(self, blocks: List[ir.SeqBlock]) -> None:
        # Evaluate every sequential block against pre-edge values, then
        # commit all non-blocking updates at once.
        pending: List[Tuple] = []
        for block in blocks:
            overlay: Dict[str, int] = {}
            self._exec_stmts(block.stmts, overlay, pending)
            # Blocking writes within a seq block stay in its overlay during
            # the edge (so sibling blocks still read pre-edge values) and
            # commit together with the non-blocking updates.
            for name, value in overlay.items():
                pending.append(("net", self.design.nets[name], None, None, value))
        self._commit(pending)

    # -- statement execution ----------------------------------------------------

    def _exec_stmts(self, stmts: List[ir.Stmt],
                    overlay: Optional[Dict[str, int]],
                    pending: Optional[List[Tuple]]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ir.SAssign):
                value = self._eval(stmt.value, overlay)
                if pending is None or stmt.blocking:
                    self._write_now(stmt.target, value, overlay)
                else:
                    self._write_later(stmt.target, value, overlay, pending)
            elif isinstance(stmt, ir.SIf):
                if self._eval(stmt.cond, overlay):
                    self._exec_stmts(stmt.then, overlay, pending)
                else:
                    self._exec_stmts(stmt.other, overlay, pending)
            elif isinstance(stmt, ir.SCase):
                subject = self._eval(stmt.subject, overlay)
                body = stmt.default
                for item in stmt.items:
                    if any((subject & care) == value for value, care in item.labels):
                        body = item.body
                        break
                self._exec_stmts(body, overlay, pending)
            else:
                raise SimulationError(f"unknown statement {stmt!r}")

    # -- writes ------------------------------------------------------------------

    def _read(self, name: str, overlay: Optional[Dict[str, int]]) -> int:
        if overlay is not None and name in overlay:
            return overlay[name]
        return self.values[name]

    def _store(self, name: str, value: int,
               overlay: Optional[Dict[str, int]]) -> None:
        if overlay is not None:
            overlay[name] = value
        else:
            self.values[name] = value

    def _write_now(self, target: ir.LValue, value: int,
                   overlay: Optional[Dict[str, int]]) -> None:
        """Blocking write: visible to subsequent statements immediately.

        Inside sequential blocks the write lands in the overlay *and* is
        committed at the end of the edge (standard blocking-in-seq
        semantics for cycle simulation). In comb context it writes the
        value store directly.
        """
        if isinstance(target, ir.LNet):
            if target.hi is None:
                self._store(target.net.name, value & target.net.mask, overlay)
            else:
                width = target.hi - target.lo + 1
                mask = ((1 << width) - 1) << target.lo
                old = self._read(target.net.name, overlay)
                new = (old & ~mask) | ((value << target.lo) & mask)
                self._store(target.net.name, new & target.net.mask, overlay)
        elif isinstance(target, ir.LNetDyn):
            index = self._eval(target.index, overlay)
            if 0 <= index < target.net.width:
                old = self._read(target.net.name, overlay)
                new = (old & ~(1 << index)) | ((value & 1) << index)
                self._store(target.net.name, new, overlay)
        elif isinstance(target, ir.LMem):
            index = self._eval(target.index, overlay)
            words = self.memories[target.memory.name]
            if 0 <= index < target.memory.depth:
                words[index] = value & target.memory.mask
        elif isinstance(target, ir.LConcat):
            self._scatter_concat(target, value, overlay, pending=None)
        else:
            raise SimulationError(f"unknown lvalue {target!r}")

    def _write_later(self, target: ir.LValue, value: int,
                     overlay: Optional[Dict[str, int]],
                     pending: List[Tuple]) -> None:
        """Non-blocking write: record for commit after all seq blocks ran.

        Dynamic indexes are evaluated *now* (Verilog evaluates the LHS
        index at assignment time, only the commit is deferred).
        """
        if isinstance(target, ir.LNet):
            pending.append(("net", target.net, target.hi, target.lo, value))
        elif isinstance(target, ir.LNetDyn):
            index = self._eval(target.index, overlay)
            if 0 <= index < target.net.width:
                pending.append(("net", target.net, index, index, value))
        elif isinstance(target, ir.LMem):
            index = self._eval(target.index, overlay)
            pending.append(("mem", target.memory, index, value))
        elif isinstance(target, ir.LConcat):
            self._scatter_concat(target, value, overlay, pending)
        else:
            raise SimulationError(f"unknown lvalue {target!r}")

    def _scatter_concat(self, target: ir.LConcat, value: int,
                        overlay: Optional[Dict[str, int]],
                        pending: Optional[List[Tuple]]) -> None:
        offset = 0
        for part in reversed(target.parts):  # last part gets the low bits
            piece = (value >> offset) & ((1 << part.width) - 1)
            if pending is None:
                self._write_now(part, piece, overlay)
            else:
                self._write_later(part, piece, overlay, pending)
            offset += part.width

    def _commit(self, pending: List[Tuple]) -> None:
        for entry in pending:
            if entry[0] == "net":
                _, net, hi, lo, value = entry
                if hi is None:
                    self.values[net.name] = value & net.mask
                else:
                    width = hi - lo + 1
                    mask = ((1 << width) - 1) << lo
                    old = self.values[net.name]
                    self.values[net.name] = \
                        ((old & ~mask) | ((value << lo) & mask)) & net.mask
            else:
                _, mem, index, value = entry
                if 0 <= index < mem.depth:
                    self.memories[mem.name][index] = value & mem.mask

    # -- expression evaluation -------------------------------------------------------

    def _eval(self, expr: ir.Expr, overlay: Optional[Dict[str, int]]) -> int:
        kind = type(expr)
        if kind is ir.Const:
            return expr.value
        if kind is ir.Ref:
            return self._read(expr.net.name, overlay)
        if kind is ir.Binary:
            return self._eval_binary(expr, overlay)
        if kind is ir.Slice:
            value = self._eval(expr.value, overlay)
            return (value >> expr.lo) & ((1 << expr.width) - 1)
        if kind is ir.Ternary:
            if self._eval(expr.cond, overlay):
                return self._eval(expr.then, overlay)
            return self._eval(expr.other, overlay)
        if kind is ir.Unary:
            return self._eval_unary(expr, overlay)
        if kind is ir.Concat:
            acc = 0
            for part in expr.parts:
                acc = (acc << part.width) | self._eval(part, overlay)
            return acc
        if kind is ir.MemRead:
            index = self._eval(expr.index, overlay)
            if 0 <= index < expr.memory.depth:
                return self.memories[expr.memory.name][index]
            return 0
        if kind is ir.DynBit:
            value = self._eval(expr.value, overlay)
            index = self._eval(expr.index, overlay)
            if 0 <= index < expr.value.width:
                return (value >> index) & 1
            return 0
        raise SimulationError(f"unknown expression {expr!r}")

    def _eval_binary(self, expr: ir.Binary,
                     overlay: Optional[Dict[str, int]]) -> int:
        op = expr.op
        a = self._eval(expr.left, overlay)
        mask = (1 << expr.width) - 1
        # Short-circuit logical operators.
        if op == "&&":
            return int(bool(a) and bool(self._eval(expr.right, overlay)))
        if op == "||":
            return int(bool(a) or bool(self._eval(expr.right, overlay)))
        b = self._eval(expr.right, overlay)
        if op == "+":
            return (a + b) & mask
        if op == "-":
            return (a - b) & mask
        if op == "*":
            return (a * b) & mask
        if op == "/":
            return (a // b) & mask if b else mask
        if op == "%":
            return (a % b) & mask if b else a & mask
        if op == "&":
            return a & b
        if op == "|":
            return a | b
        if op == "^":
            return a ^ b
        if op == "<<":
            return (a << b) & mask if b < 64 else 0
        if op in (">>", ">>>"):
            return a >> b if b < 64 else 0
        if op == "==":
            return int(a == b)
        if op == "!=":
            return int(a != b)
        if op == "<":
            return int(a < b)
        if op == "<=":
            return int(a <= b)
        if op == ">":
            return int(a > b)
        if op == ">=":
            return int(a >= b)
        raise SimulationError(f"unknown binary op {op!r}")

    def _eval_unary(self, expr: ir.Unary,
                    overlay: Optional[Dict[str, int]]) -> int:
        value = self._eval(expr.operand, overlay)
        op = expr.op
        operand_mask = (1 << expr.operand.width) - 1
        if op == "~":
            return ~value & ((1 << expr.width) - 1)
        if op == "-":
            return -value & ((1 << expr.width) - 1)
        if op == "!":
            return int(value == 0)
        if op == "&":
            return int(value == operand_mask)
        if op == "|":
            return int(value != 0)
        if op == "^":
            return bin(value).count("1") & 1
        if op == "~&":
            return int(value != operand_mask)
        if op == "~|":
            return int(value == 0)
        if op == "~^":
            return (bin(value).count("1") + 1) & 1
        raise SimulationError(f"unknown unary op {op!r}")
