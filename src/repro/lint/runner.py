"""Lint driver: run every registered rule over an elaborated design."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.hdl import elaborate, ir
from repro.lint import (rules_dataflow, rules_snapshot,  # noqa: F401 (register)
                        rules_structural)
from repro.lint.framework import (Diagnostic, LintConfig, LintReport,
                                  all_rules, apply_policy)
from repro.lint.analysis import LintContext


def lint_design(design: ir.Design,
                config: Optional[LintConfig] = None) -> LintReport:
    """Run all enabled rules over *design* and return the report."""
    config = config or LintConfig()
    ctx = LintContext.build(design, config)
    diags: List[Diagnostic] = []
    for rule in all_rules():
        if rule.id in config.disabled:
            continue
        diags.extend(rule.check(ctx))
    return LintReport(design.name, apply_policy(diags, config),
                      source_file=design.source_file)


def lint_source(source: str, top: str,
                config: Optional[LintConfig] = None,
                source_file: Optional[str] = None) -> LintReport:
    """Elaborate Verilog *source* and lint the result."""
    design = elaborate(source, top, source_file=source_file)
    return lint_design(design, config)


def lint_catalog(specs: Optional[Sequence] = None,
                 config: Optional[LintConfig] = None) -> List[LintReport]:
    """Lint every peripheral of the corpus (default: EXTENDED_CORPUS)."""
    from repro.peripherals import catalog

    reports = []
    for spec in (specs if specs is not None else catalog.EXTENDED_CORPUS):
        design = spec.elaborate()
        reports.append(lint_design(design, config))
    return reports
