"""Hardware target abstraction.

A *target* hosts a set of peripherals behind a memory map and exposes the
four capabilities HardSnap's virtual machine needs:

* MMIO access (``read``/``write``) — the Inception-style memory
  forwarding path, priced by the target's transport,
* time (``step``) — peripherals advance in lockstep on a shared clock,
* interrupt lines (``irq_lines``),
* hardware snapshotting (``save_snapshot``/``restore_snapshot``), each
  target with its own method and cost model.

Every operation accounts *modelled* time on the target's
:class:`~repro.bus.transport.ModelledTimer`: executed cycles divided by
the target's effective clock rate plus transport latencies. See
DESIGN.md's substitution ledger for how these stand in for the paper's
wall-clock measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bus.axi4lite import Axi4LiteMaster
from repro.bus.memory_map import MemoryMap, Region
from repro.bus.wishbone import WishboneMaster
from repro.bus.transport import ModelledTimer, Transport
from repro.errors import LinkError, SnapshotIntegrityError, TargetError
from repro.resilience import FaultInjector, FaultPlan, ResilienceStats, RetryPolicy
from repro.hdl.ir import Design
from repro.peripherals.catalog import PeripheralSpec
from repro.sim.base import BaseSimulation


@dataclass
class HwSnapshot:
    """A complete hardware state image.

    ``states`` maps instance name -> the canonical state dict produced by
    :meth:`BaseSimulation.save_state` (state nets, state memories, input
    pin levels, cycle counter). The canonical form is target-independent,
    which is what makes multi-target state transfer possible.

    When a snapshot has been interned into a
    :class:`~repro.core.store.SnapshotStore` (``record`` is set), its
    per-instance state dicts are the store's shared immutable chunks:
    cloning then shares them instead of deep-copying, which is what makes
    fork-heavy exploration O(changed state) instead of O(design).
    """

    states: Dict[str, dict]
    method: str = "direct"
    bits: int = 0
    modelled_cost_s: float = 0.0
    snapshot_id: Optional[int] = None
    #: Snapshot the live hardware descended from when this was captured
    #: (the delta-chain parent); set by the snapshot controller.
    parent_id: Optional[int] = None
    #: Instances whose sim state version changed since the previous
    #: capture/restore on the producing target; None = unknown (all).
    dirty: Optional[frozenset] = None
    #: The store's :class:`~repro.core.store.SnapshotRecord`, once interned.
    record: Optional[object] = None
    #: Integrity digest over the canonical state bodies (cycle counters
    #: excluded — they are transport metadata, not state). None until
    #: :meth:`seal` runs; verified by :meth:`verify` before a restore.
    digest: Optional[str] = None

    def clone(self) -> "HwSnapshot":
        if self.record is not None:
            # Store-backed states are immutable shared chunks: a shallow
            # copy of the instance map is a safe, O(instances) clone.
            return HwSnapshot(dict(self.states), self.method, self.bits,
                              self.modelled_cost_s, self.snapshot_id,
                              self.parent_id, self.dirty, self.record,
                              self.digest)
        import copy
        return HwSnapshot(copy.deepcopy(self.states), self.method, self.bits,
                          self.modelled_cost_s, self.snapshot_id,
                          self.parent_id, self.dirty, digest=self.digest)

    # -- integrity ----------------------------------------------------------

    def compute_digest(self) -> str:
        """blake2b over every instance's canonical (cycle-less) body,
        in name order — the per-chunk content addresses the snapshot
        store deduplicates on, combined into one image digest."""
        import hashlib

        from repro.core.store import chunk_digest  # lazy: avoids a cycle
        h = hashlib.blake2b(digest_size=16)
        for name in sorted(self.states):
            h.update(name.encode("utf-8"))
            h.update(chunk_digest(self.states[name]).encode("ascii"))
        return h.hexdigest()

    def seal(self) -> "HwSnapshot":
        """Stamp the integrity digest (idempotent on unchanged content)."""
        self.digest = self.compute_digest()
        return self

    def verify(self) -> None:
        """Check the content against the sealed digest.

        No-op for unsealed snapshots; raises
        :class:`~repro.errors.SnapshotIntegrityError` on mismatch so
        corrupt state is rejected instead of silently loaded.
        """
        if self.digest is None:
            return
        actual = self.compute_digest()
        if actual != self.digest:
            raise SnapshotIntegrityError(
                f"snapshot integrity digest mismatch: sealed "
                f"{self.digest}, content hashes to {actual}")


@dataclass
class PeripheralInstance:
    """One hosted peripheral: spec + elaborated design + live simulation."""

    name: str
    spec: PeripheralSpec
    design: Design
    sim: BaseSimulation
    bus: object  # Axi4LiteMaster or WishboneMaster (same read/write API)
    region: Region
    extra: dict = field(default_factory=dict)  # target-specific (scan map…)

    @property
    def state_bits(self) -> int:
        return self.design.state_bit_count

    def irq(self) -> bool:
        if not self.spec.has_irq:
            return False
        return bool(self.sim.peek("irq"))


@dataclass
class _CachedCapture:
    """Last canonical capture of one instance + the sim version it had."""

    version: int
    state: dict


class HardwareTarget:
    """Base class for the simulator and FPGA targets."""

    #: "full" (every net inspectable) or "pins" (ports only).
    visibility = "full"

    def __init__(self, name: str, clock_hz: float, transport: Transport):
        self.name = name
        self.clock_hz = clock_hz
        self.transport = transport
        self.timer = ModelledTimer()
        self.memory_map = MemoryMap()
        self.instances: Dict[str, PeripheralInstance] = {}
        self.cycles = 0
        #: name -> last canonical capture, keyed by the sim's state
        #: version (the incremental-capture cache).
        self._capture_cache: Dict[str, _CachedCapture] = {}
        #: Bumped on every capture/restore; lets the snapshot controller
        #: detect out-of-band save/restore calls and distrust dirty sets.
        self.capture_epoch = 0
        #: Recovery accounting for this target's link (always present;
        #: stays zero without an attached fault plan).
        self.resilience = ResilienceStats()
        self._injector: Optional[FaultInjector] = None
        self._retry_policy = RetryPolicy()
        #: Last snapshot whose save/restore completed verification — the
        #: image a reconnect re-syncs the board to (link state after a
        #: drop is untrusted).
        self._last_verified: Optional[HwSnapshot] = None

    # -- resilience ---------------------------------------------------------

    def attach_resilience(self, plan: Optional[FaultPlan],
                          policy: Optional[RetryPolicy] = None) -> None:
        """Arm fault injection + recovery on this target's link. With a
        plan attached, snapshots are sealed with integrity digests and
        every link operation runs under the retry policy; ``None``
        detaches (the infallible-hardware fast path)."""
        # An empty plan can never fire: stay on the fast path (no
        # sealing, no health checks) so a blanket --fault-plan default
        # costs nothing.
        self._injector = (FaultInjector(plan, scope=self.name)
                          if plan is not None and not plan.is_empty
                          else None)
        if policy is not None:
            self._retry_policy = policy

    def health_check(self) -> bool:
        """Probe the link; reconnect if it dropped. Returns True when a
        reconnect was needed."""
        inj = self._injector
        if inj is None:
            return False
        self.resilience.health_checks += 1
        if inj.roll("link_down", inj.plan.link_down_rate):
            self._reconnect(resync=True)
            return True
        return False

    def _check_link(self, operation: str) -> None:
        """Pre-operation health check: a dropped link is re-established
        before the snapshot operation proceeds. Before a *restore* the
        board is also re-synced to the last verified image (the restore
        overwrites it anyway, but the scan logic must be in a known
        state); before a *save* the board kept its live state — only the
        link is re-established."""
        inj = self._injector
        if inj is None:
            return
        self.resilience.health_checks += 1
        if inj.roll("link_down", inj.plan.link_down_rate):
            self._reconnect(resync=(operation == "restore"))

    def _reconnect(self, resync: bool) -> None:
        self.resilience.reconnects += 1
        self.timer.add_fixed(self._retry_policy.reconnect_cost_s)
        if resync and self._last_verified is not None:
            for name, state in self._last_verified.states.items():
                instance = self.instances.get(name)
                if instance is not None:
                    self._load_instance(instance, state)
            self._note_restored(self._last_verified)

    def _load_instance(self, instance: "PeripheralInstance",
                       state: dict) -> None:
        """Load one instance's canonical state (reconnect re-sync path);
        targets with a non-trivial mechanism override this."""
        instance.sim.load_state(state)

    def _verify_integrity(self, snapshot: "HwSnapshot") -> None:
        if snapshot.digest is not None:
            snapshot.verify()
            self.resilience.integrity_checks += 1

    def _mark_verified(self, snapshot: "HwSnapshot") -> None:
        if self._injector is not None:
            self._last_verified = snapshot

    # -- construction ------------------------------------------------------

    def add_peripheral(self, spec: PeripheralSpec, base: int,
                       instance_name: Optional[str] = None) -> PeripheralInstance:
        name = instance_name or spec.name
        if name in self.instances:
            raise TargetError(f"duplicate instance name {name!r}")
        region = self.memory_map.add(name, base, spec.window_size)
        design, extra = self._prepare_design(spec)
        sim = self._make_sim(design)
        # The memory-bus abstraction is modular (paper §IV-A): pick the
        # BFM matching the peripheral's interface.
        if spec.bus == "wishbone":
            bus = WishboneMaster(sim)
        else:
            bus = Axi4LiteMaster(sim)
        instance = PeripheralInstance(name, spec, design, sim, bus, region,
                                      extra)
        self.instances[name] = instance
        return instance

    def _prepare_design(self, spec: PeripheralSpec) -> Tuple[Design, dict]:
        """Elaborate (and possibly instrument) the peripheral design."""
        return spec.elaborate(), {}

    def _make_sim(self, design: Design) -> BaseSimulation:
        raise NotImplementedError

    # -- reset / time ------------------------------------------------------------

    def reset(self) -> None:
        """Power-on reset of every hosted peripheral (a 'reboot')."""
        for instance in self.instances.values():
            instance.sim.reset_state()
            instance.sim.poke("rst", 1)
            instance.sim.step(2)
            instance.sim.poke("rst", 0)
            instance.sim.step(1)
        self.cycles += 3
        self.timer.add_cycles(3, self.clock_hz)

    def step(self, cycles: int = 1) -> None:
        """Advance all peripherals by *cycles* clock cycles."""
        for instance in self.instances.values():
            instance.sim.step(cycles)
        self.cycles += cycles
        self.timer.add_cycles(cycles, self.clock_hz)

    # -- MMIO ----------------------------------------------------------------------

    def _route(self, addr: int) -> Tuple[PeripheralInstance, int]:
        hit = self.memory_map.resolve(addr)
        if hit is None:
            raise TargetError(f"unmapped MMIO address 0x{addr:08x}")
        region, offset = hit
        return self.instances[region.name], offset

    def read(self, addr: int) -> int:
        """MMIO read, forwarded over the target's transport."""
        instance, offset = self._route(addr)
        value, cycles = instance.bus.read(offset)
        self._after_access(instance, cycles)
        return value

    def write(self, addr: int, value: int) -> None:
        """MMIO write, forwarded over the target's transport."""
        instance, offset = self._route(addr)
        cycles = instance.bus.write(offset, value)
        self._after_access(instance, cycles)

    def _after_access(self, accessed: PeripheralInstance, cycles: int) -> None:
        # Keep all peripherals in lockstep: the bus transaction consumed
        # `cycles` on the accessed peripheral; advance the others too.
        for instance in self.instances.values():
            if instance is not accessed:
                instance.sim.step(cycles)
        self.cycles += cycles
        self.timer.add_cycles(cycles, self.clock_hz)
        self.timer.add_transport(self.transport.access_latency_s(1))
        if self._injector is not None:
            self._mmio_retransmit(accessed)

    def _mmio_retransmit(self, accessed: PeripheralInstance) -> None:
        """Recover a lost MMIO response: the bus transaction completed on
        the peripheral (the access is not re-executed — that would
        double its side effects); only the *response* crosses the link
        again, priced at one transport access plus backoff."""
        inj = self._injector
        policy = self._retry_policy
        site = f"mmio_drop:{accessed.name}"
        attempt = 0
        while inj.roll(site, inj.plan.mmio_drop_rate):
            if attempt >= policy.max_link_retries:
                raise LinkError(
                    f"{self.name}: MMIO response from {accessed.name!r} "
                    f"lost; {attempt} retransmits exhausted")
            backoff = policy.backoff_s(attempt)
            attempt += 1
            self.timer.add_transport(self.transport.access_latency_s(1))
            self.timer.add_fixed(backoff)
            self.resilience.mmio_retries += 1
            self.resilience.backoff_s += backoff

    # -- interrupts -------------------------------------------------------------------

    def irq_lines(self) -> Dict[str, bool]:
        """Current level of each peripheral's irq output pin."""
        return {name: inst.irq() for name, inst in self.instances.items()}

    # -- introspection ------------------------------------------------------------------

    def peek(self, instance_name: str, net: str) -> int:
        """Inspect a net; targets restrict this to their visibility level."""
        instance = self._instance(instance_name)
        self._check_visibility(instance, net)
        return instance.sim.peek(net)

    def _instance(self, name: str) -> PeripheralInstance:
        instance = self.instances.get(name)
        if instance is None:
            raise TargetError(f"unknown instance {name!r}")
        return instance

    def _check_visibility(self, instance: PeripheralInstance, net: str) -> None:
        if self.visibility == "full":
            return
        design = instance.design
        port_names = {n.name for n in design.inputs}
        port_names |= {n.name for n in design.outputs}
        if net not in port_names:
            raise TargetError(
                f"{self.name}: net {net!r} is internal; the FPGA target "
                f"only exposes pins — use the scan chain or readback")

    # -- snapshotting ------------------------------------------------------------------

    def _capture_instance(self, instance: PeripheralInstance) -> dict:
        """Produce one instance's canonical state dict. Targets with a
        non-trivial mechanism (scan chains) override this."""
        instance.sim.settle()
        return instance.sim.save_state()

    def capture_states(self, force_capture: bool = False
                       ) -> Tuple[Dict[str, dict], frozenset]:
        """Incremental capture hook: canonical states for every instance,
        plus the set of instances that were actually *dirty* (their sim
        state version changed since the previous capture/restore).

        Clean instances reuse the cached canonical dict — capture costs
        O(dirty state) in host time. ``force_capture`` re-runs the
        capture mechanism on clean instances too (the FPGA shift mode
        does, since a daisy-chained scan rotation physically traverses
        every chain) without marking them dirty.
        """
        states: Dict[str, dict] = {}
        dirty = set()
        for name, instance in self.instances.items():
            cached = self._capture_cache.get(name)
            version = instance.sim.state_version
            clean = cached is not None and cached.version == version
            if clean and not force_capture:
                states[name] = cached.state
                continue
            state = self._capture_instance(instance)
            states[name] = state
            if not clean:
                dirty.add(name)
            # The capture itself may advance the version (scan shifting);
            # record the post-capture version so the next save sees an
            # untouched instance as clean.
            self._capture_cache[name] = _CachedCapture(
                instance.sim.state_version, state)
        self.capture_epoch += 1
        return states, frozenset(dirty)

    def _note_restored(self, snapshot: HwSnapshot) -> None:
        """Sync the capture cache after a restore: the live state now
        equals the snapshot's canonical states."""
        for name, state in snapshot.states.items():
            instance = self.instances.get(name)
            if instance is not None:
                self._capture_cache[name] = _CachedCapture(
                    instance.sim.state_version, state)
        self.capture_epoch += 1

    def save_snapshot(self) -> HwSnapshot:
        raise NotImplementedError

    def restore_snapshot(self, snapshot: HwSnapshot) -> None:
        raise NotImplementedError

    @property
    def total_state_bits(self) -> int:
        return sum(inst.state_bits for inst in self.instances.values())
