"""Abstract syntax tree for the supported Verilog subset.

The subset is the synthesisable register-transfer-level core that the
HardSnap peripheral corpus uses: module declarations with ANSI port lists
and parameters, ``wire``/``reg`` declarations (including memories),
continuous assignments, ``always`` blocks (edge-sensitive and
combinational), ``if``/``case``/``for``, blocking and non-blocking
assignments, module instantiation, and the usual expression operators
including concatenation, replication, bit and part selects.

All nodes carry the source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = field(default=0, kw_only=True)


@dataclass
class Number(Expr):
    """A literal. ``width`` is None for unsized decimals; ``xmask`` marks
    bits written as x/z/? (value bits are 0 there, casez treats them as
    wildcards)."""

    value: int
    width: Optional[int] = None
    xmask: int = 0


@dataclass
class Identifier(Expr):
    name: str


@dataclass
class BitSelect(Expr):
    """``base[index]`` — index may be non-constant (memory read/bit pick)."""

    base: Expr
    index: Expr


@dataclass
class PartSelect(Expr):
    """``base[msb:lsb]`` with constant bounds."""

    base: Expr
    msb: Expr
    lsb: Expr


@dataclass
class Unary(Expr):
    op: str  # ~ ! - + & | ^ ~& ~| ~^
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # + - * / % & | ^ << >> >>> < <= > >= == != && ||
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Concat(Expr):
    parts: List[Expr]


@dataclass
class Repeat(Expr):
    """``{count{value}}`` with constant count."""

    count: Expr
    value: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = field(default=0, kw_only=True)


@dataclass
class Assign(Stmt):
    """Procedural assignment; ``blocking`` selects ``=`` vs ``<=``."""

    target: Expr  # Identifier / BitSelect / PartSelect / Concat of those
    value: Expr
    blocking: bool = True


@dataclass
class If(Stmt):
    cond: Expr
    then: List[Stmt] = field(default_factory=list)
    other: List[Stmt] = field(default_factory=list)


@dataclass
class CaseItem:
    labels: List[Expr]  # empty list means `default`
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Case(Stmt):
    subject: Expr
    items: List[CaseItem] = field(default_factory=list)
    kind: str = "case"  # case / casez / casex (z/x bits not modelled)


@dataclass
class For(Stmt):
    """``for (i = a; i < b; i = i + 1)`` — unrolled during elaboration."""

    var: str
    init: Expr
    cond: Expr
    step: Expr  # the full RHS of the update assignment
    body: List[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Module items
# ---------------------------------------------------------------------------

@dataclass
class Range:
    """A ``[msb:lsb]`` vector range (expressions, resolved at elaboration)."""

    msb: Expr
    lsb: Expr


@dataclass
class NetDecl:
    """wire/reg/integer declaration; ``array`` is the memory range if any."""

    kind: str  # wire | reg | integer
    name: str
    range: Optional[Range] = None
    array: Optional[Range] = None
    init: Optional[Expr] = None  # `reg [7:0] r = 0;`
    line: int = 0


@dataclass
class Port:
    direction: str  # input | output | inout
    kind: str  # wire | reg
    name: str
    range: Optional[Range] = None
    line: int = 0


@dataclass
class ParamDecl:
    name: str
    value: Expr
    local: bool = False
    line: int = 0


@dataclass
class ContinuousAssign:
    target: Expr
    value: Expr
    line: int = 0


@dataclass
class EdgeEvent:
    """One item of a sensitivity list: ``posedge clk`` / ``negedge rst`` /
    a plain signal (level sensitivity, only meaningful for comb blocks)."""

    edge: Optional[str]  # posedge | negedge | None
    signal: str


@dataclass
class AlwaysBlock:
    sensitivity: List[EdgeEvent]  # empty means @(*)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0

    @property
    def is_combinational(self) -> bool:
        return all(e.edge is None for e in self.sensitivity)


@dataclass
class InitialBlock:
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Instance:
    module: str
    name: str
    params: List[Tuple[Optional[str], Expr]] = field(default_factory=list)
    connections: List[Tuple[Optional[str], Optional[Expr]]] = field(default_factory=list)
    line: int = 0


ModuleItem = Union[NetDecl, ParamDecl, ContinuousAssign, AlwaysBlock,
                   InitialBlock, Instance]


@dataclass
class Module:
    name: str
    ports: List[Port] = field(default_factory=list)
    params: List[ParamDecl] = field(default_factory=list)  # header parameters
    items: List[ModuleItem] = field(default_factory=list)
    line: int = 0


@dataclass
class SourceFile:
    modules: List[Module] = field(default_factory=list)

    def module(self, name: str) -> Module:
        for m in self.modules:
            if m.name == name:
                return m
        raise KeyError(name)
