"""Event-sourced campaign journal: crash-safe exploration state.

Exploration state used to live only in coordinator memory — PR 5's
respawn/reissue/degrade ladder survives *worker* death, but a
coordinator crash, OOM-kill or Ctrl-C lost the whole campaign. This
module is the durability tier underneath the parallel coordinators: an
append-only event log recording every campaign-level transition, with
the content-addressed blob store as the payload layer (the log holds
digests, never bodies).

Layout::

    <journal>/events.log      framed, per-record-checksummed event log
    <journal>/blobs/<digest>  content-addressed pickles (checkpoints,
                              shard results, the campaign recipe)

**Record framing.** Each record is ``4-byte LE payload length ·
16-byte blake2b(payload) checksum · payload`` where the payload is
canonical JSON (sorted keys). Appends go through one buffered file,
flushed per record (so a SIGKILL'd coordinator loses nothing the OS
already has) and fsync'd every ``fsync_every`` records — checkpoints,
campaign open and seal always fsync, so a power cut can only cost
events *after* the last checkpoint, which resume re-executes anyway.
Blob *bodies* ride a background writer thread (checkpoint blobs write
through synchronously): the log's ordering and flush guarantees never
depend on blob durability, because a referenced-but-missing or torn
blob is detected at read time and resume falls back to re-execution.

**Recovery semantics** (:meth:`Journal.open`):

* the file ends mid-record (torn tail — the classic crash-during-append
  shape), or the *final* record's checksum fails: the tail is truncated
  to the last intact record and recovery proceeds from there. Never
  silently — the truncation is recorded both on
  :attr:`Journal.recovery` and, for writable opens, as a
  ``tail-recovered`` event in the log itself;
* an *interior* record fails its checksum (bit rot, tampering — records
  follow it, so this was never an interrupted append):
  :class:`~repro.errors.JournalCorruptError` naming the byte offset.
  Resume refuses to guess what a damaged history meant.

**Checkpoint + event suffix.** Coordinators write periodic ``checkpoint``
records whose blob holds the full resumable state (DSE frontier /
fuzzing scheduler); finer-grained events (``lease-issued``,
``envelope-merged``, ``state-forked``, ``bug-found``,
``fuzz-shard-completed``, ``snapshot-sealed``) both narrate the campaign
and, where they carry result blobs, let resume re-apply completed work
after the last checkpoint instead of re-executing it (see
``ParallelFuzzer``). Everything else after the checkpoint simply
re-executes — sound because lease and shard outcomes are deterministic
and schedule-independent, the PR-4/5 invariant this module extends
across process lifetimes.

**Deterministic crash injection.** ``REPRO_JOURNAL_KILL_AFTER=<n>``
SIGKILLs the process after the *n*-th appended record (the record
itself is flushed first). The resilience suite uses it to die at seeded
points mid-campaign and assert that ``repro resume`` reaches a verdict
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import queue
import signal
import struct
import threading
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.core.store import FileBlobStore, blob_digest
from repro.errors import JournalCorruptError, JournalError

PathLike = Union[str, pathlib.Path]

#: events.log frame header: 4-byte LE payload length + 16-byte checksum.
_LEN = struct.Struct("<I")
_DIGEST_SIZE = 16
_HEADER_SIZE = _LEN.size + _DIGEST_SIZE

#: Journal format version, carried by the first record of every log.
FORMAT_VERSION = 1

#: Default append→fsync batching (checkpoints always fsync).
DEFAULT_FSYNC_EVERY = 16

#: Env hook: SIGKILL this process after appending record #n.
KILL_AFTER_ENV = "REPRO_JOURNAL_KILL_AFTER"


def config_fingerprint(config: Any) -> str:
    """Short digest of a session config (any stable-``repr`` object),
    recorded at campaign open so a resume against drifted settings is
    detectable in the journal."""
    return hashlib.blake2b(repr(config).encode("utf-8"),
                           digest_size=8).hexdigest()


def _checksum(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).digest()


def _frame(payload: bytes) -> bytes:
    return _LEN.pack(len(payload)) + _checksum(payload) + payload


def read_frames(data: bytes) -> Iterator[tuple]:
    """Parse ``events.log`` bytes into ``(offset, payload)`` frames.

    Raises :class:`JournalCorruptError` for interior checksum damage;
    yields a final ``(offset, None)`` marker instead of a frame when the
    tail is torn (truncated mid-record, or the last record's checksum
    fails) — callers truncate there.
    """
    offset, size = 0, len(data)
    while offset < size:
        if size - offset < _HEADER_SIZE:
            yield offset, None  # torn: partial header
            return
        (length,) = _LEN.unpack_from(data, offset)
        digest = data[offset + _LEN.size:offset + _HEADER_SIZE]
        end = offset + _HEADER_SIZE + length
        if end > size:
            yield offset, None  # torn: partial payload
            return
        payload = data[offset + _HEADER_SIZE:end]
        if _checksum(payload) != digest:
            if end == size:
                yield offset, None  # damaged final record: torn tail
                return
            raise JournalCorruptError(
                f"journal record at byte offset {offset} fails its "
                f"checksum (interior damage, not a torn tail)",
                offset=offset)
        yield offset, payload
        offset = end


class Journal:
    """One campaign's append-only, checksummed event log + blob store."""

    def __init__(self, directory: PathLike, fsync_every: int =
                 DEFAULT_FSYNC_EVERY, readonly: bool = False):
        self.directory = pathlib.Path(directory)
        self.path = self.directory / "events.log"
        self.blobs = FileBlobStore(self.directory / "blobs")
        self.fsync_every = max(1, fsync_every)
        self.readonly = readonly
        self.records: List[Dict[str, Any]] = []
        #: Torn-tail recovery info from :meth:`open` (``None`` when the
        #: log was intact): ``{"truncated_at": offset, "dropped": n}``.
        self.recovery: Optional[Dict[str, int]] = None
        self._fh = None
        self._seq = 0
        self._unsynced = 0
        self._appended = 0
        # Background blob writer (started lazily by the first relaxed
        # put_blob). The event log stays synchronous — ordering and the
        # SIGKILL flush guarantee live there — but blob bodies are
        # content-addressed with a verified-or-fallback read path, so
        # their file I/O can ride a side thread off the coordinator's
        # merge loop. A blob lost to a crash before the thread drained
        # it means resume re-executes that shard: sound, never silent.
        self._blob_queue: Optional[queue.Queue] = None
        self._blob_thread: Optional[threading.Thread] = None
        self._blob_error: Optional[Exception] = None
        kill_after = os.environ.get(KILL_AFTER_ENV, "")
        self._kill_after = int(kill_after) if kill_after else 0

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, directory: PathLike,
               fsync_every: int = DEFAULT_FSYNC_EVERY) -> "Journal":
        """Start a fresh journal. Refuses to reuse an existing one —
        an interrupted campaign is resumed, never overwritten."""
        journal = cls(directory, fsync_every=fsync_every)
        if journal.path.exists():
            raise JournalError(
                f"journal {journal.path} already exists; resume it "
                f"(repro resume) instead of overwriting")
        journal.directory.mkdir(parents=True, exist_ok=True)
        journal._fh = open(journal.path, "ab")
        journal.append("journal-opened", version=FORMAT_VERSION)
        journal.commit()
        return journal

    @classmethod
    def open(cls, directory: PathLike,
             fsync_every: int = DEFAULT_FSYNC_EVERY,
             readonly: bool = False) -> "Journal":
        """Open an existing journal, recovering a torn tail.

        Interior corruption raises :class:`JournalCorruptError`; a torn
        tail is truncated (writable opens persist the truncation and
        log a ``tail-recovered`` event so the repair is never silent).
        """
        journal = cls(directory, fsync_every=fsync_every,
                      readonly=readonly)
        if not journal.path.exists():
            raise JournalError(f"no journal at {journal.path}")
        data = journal.path.read_bytes()
        good_end = 0
        for offset, payload in read_frames(data):
            if payload is None:
                journal.recovery = {"truncated_at": offset,
                                    "dropped": len(data) - offset}
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise JournalCorruptError(
                    f"journal record at byte offset {offset} is not "
                    f"valid JSON despite an intact checksum: {exc}",
                    offset=offset)
            journal.records.append(record)
            good_end = offset + _HEADER_SIZE + len(payload)
        journal._seq = len(journal.records)
        if not journal.records:
            raise JournalError(
                f"journal {journal.path} holds no intact records")
        if journal.records[0].get("kind") != "journal-opened":
            raise JournalError(
                f"journal {journal.path} does not start with a "
                f"journal-opened record")
        version = journal.records[0].get("version")
        if version != FORMAT_VERSION:
            raise JournalError(
                f"unsupported journal format {version!r}")
        if readonly:
            return journal
        if journal.recovery is not None:
            with open(journal.path, "r+b") as fh:
                fh.truncate(good_end)
                fh.flush()
                os.fsync(fh.fileno())
        journal._fh = open(journal.path, "ab")
        if journal.recovery is not None:
            journal.append("tail-recovered", **journal.recovery)
            journal.commit()
        return journal

    def close(self) -> None:
        if self._blob_thread is not None:
            self._blob_queue.put(None)
            self._blob_thread.join()
            self._blob_thread = None
            self._blob_queue = None
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appending ----------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> int:
        """Append one event record; returns its sequence number.

        Fields must be JSON-serialisable — anything heavier goes to the
        blob store first and rides as a digest (:meth:`put_blob`).
        """
        if self._fh is None:
            raise JournalError(
                "journal is closed or readonly" if self.readonly
                else "journal is closed")
        self._seq += 1
        record = {"seq": self._seq, "kind": kind, **fields}
        payload = json.dumps(record, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        self._fh.write(_frame(payload))
        # Per-record flush: a SIGKILL'd process loses nothing the OS
        # already holds. fsync (power-cut durability) is batched.
        self._fh.flush()
        self.records.append(record)
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.commit()
        self._appended += 1
        if self._kill_after and self._appended >= self._kill_after:
            os.kill(os.getpid(), signal.SIGKILL)
        return record["seq"]

    def commit(self) -> None:
        """Force appended records to stable storage (fsync)."""
        if self._fh is not None and self._unsynced:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._unsynced = 0

    # -- blobs --------------------------------------------------------------

    def put_blob(self, obj: Any, fsync: bool = False) -> str:
        """Pickle *obj* into the content-addressed blob store; returns
        the digest an event record carries in the object's place.

        Relaxed puts (``fsync=False``) hand the file write to the
        background writer thread and return once the digest is known —
        the caller's event record can reference it immediately, and a
        crash that loses the body only costs resume a re-execution.
        ``fsync=True`` (checkpoints) drains the writer first, then
        writes through to stable storage before returning.
        """
        data = pickle.dumps(obj)
        digest = blob_digest(data)
        if fsync:
            self.flush_blobs()
            self.blobs.put(data, fsync=True)
            return digest
        if self._blob_thread is None:
            self._blob_queue = queue.Queue()
            self._blob_thread = threading.Thread(
                target=self._blob_writer_loop,
                name="journal-blob-writer", daemon=True)
            self._blob_thread.start()
        self._blob_queue.put((digest, data))
        return digest

    def _blob_writer_loop(self) -> None:
        while True:
            item = self._blob_queue.get()
            try:
                if item is None:
                    return
                _digest, data = item
                try:
                    self.blobs.put(data)
                except Exception as exc:  # surfaced by flush_blobs
                    self._blob_error = exc
            finally:
                self._blob_queue.task_done()

    def flush_blobs(self) -> None:
        """Wait until every queued blob body has landed on disk;
        re-raises (as :class:`JournalError`) a write failure the
        background thread hit."""
        if self._blob_queue is not None:
            self._blob_queue.join()
        if self._blob_error is not None:
            exc, self._blob_error = self._blob_error, None
            raise JournalError(
                f"background blob write failed: {exc}") from exc

    def get_blob(self, digest: str) -> Any:
        """Load + verify one blob (raises
        :class:`JournalCorruptError` on checksum mismatch)."""
        self.flush_blobs()
        return pickle.loads(self.blobs.get(digest))

    # -- reading ------------------------------------------------------------

    def events(self, kind: Optional[str] = None,
               after_seq: int = 0) -> List[Dict[str, Any]]:
        return [r for r in self.records
                if r["seq"] > after_seq
                and (kind is None or r["kind"] == kind)]

    def first(self, kind: str) -> Optional[Dict[str, Any]]:
        for record in self.records:
            if record["kind"] == kind:
                return record
        return None

    def last(self, kind: str) -> Optional[Dict[str, Any]]:
        for record in reversed(self.records):
            if record["kind"] == kind:
                return record
        return None

    @property
    def sealed(self) -> bool:
        return self.last("campaign-sealed") is not None

    @staticmethod
    def campaign_mode(directory: PathLike) -> str:
        """Peek the campaign mode ("dse" | "fuzz") without holding the
        journal open — the CLI's resume/replay dispatcher."""
        journal = Journal.open(directory, readonly=True)
        opened = journal.first("campaign-opened")
        if opened is None:
            raise JournalError(
                f"journal {directory} records no campaign-opened event")
        return opened["mode"]
