"""MMIO forwarding and the concretization policy (paper §III-B).

    "When the symbolic domain requests access to the concrete domain
    (i.e., hardware peripherals), our system needs to concretize the
    symbolic expression to a set of possible concrete values. This step
    is automatically done by HardSnap, and it is user-customizable to
    choose between completeness (all possible values are tested) or
    performance (only one possible value is tested)."

:class:`MmioBridge` sits between the symbolic executor and the hardware
(a target or an orchestrator's active target). Addresses and written
values crossing the VM boundary are concretized per the policy:

* ``PERFORMANCE`` — one feasible value, pinned with a constraint,
* ``COMPLETENESS`` — up to ``limit`` feasible values; the executor forks
  one state per value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.errors import ConcretizationError
from repro.solver import Solver
from repro.solver import expr as E
from repro.vm.state import ExecState

PERFORMANCE = "performance"
COMPLETENESS = "completeness"


@dataclass
class ConcretizationPolicy:
    mode: str = PERFORMANCE
    #: Maximum enumerated values in completeness mode.
    limit: int = 8

    def __post_init__(self):
        if self.mode not in (PERFORMANCE, COMPLETENESS):
            raise ConcretizationError(f"unknown policy mode {self.mode!r}")


class MmioBridge:
    """Routes VM memory accesses into the hardware domain."""

    def __init__(self, hardware, solver: Solver,
                 policy: Optional[ConcretizationPolicy] = None):
        """*hardware* is anything with read/write/irq_lines/step — a
        :class:`~repro.targets.base.HardwareTarget` or a live view of an
        orchestrator's active target."""
        self.hardware = hardware
        self.solver = solver
        self.policy = policy or ConcretizationPolicy()
        self.accesses = 0
        self.concretizations = 0
        self.forks_induced = 0

    # -- concretization ------------------------------------------------------

    def concretize(self, state: ExecState,
                   value: Union[int, E.BitVec],
                   what: str) -> List[Tuple[ExecState, int]]:
        """Concretize *value* under the state's path condition.

        Returns ``[(state, concrete)]`` in performance mode; in
        completeness mode one entry per feasible value, where the first
        entry reuses *state* and the rest are forks. Raises
        :class:`ConcretizationError` when no value is feasible (the state
        is infeasible and should have been killed earlier).
        """
        if isinstance(value, int):
            return [(state, value & 0xFFFFFFFF)]
        if value.is_const:
            return [(state, value.value)]
        self.concretizations += 1
        if self.policy.mode == PERFORMANCE:
            got = self.solver.eval_one(value, state.constraints)
            if got is None:
                raise ConcretizationError(
                    f"no feasible value for {what} at pc=0x{state.pc:x}")
            state.add_constraint(E.eq(value, E.const(got, value.width)))
            return [(state, got)]
        values = self.solver.eval_upto(value, state.constraints,
                                       self.policy.limit)
        if not values:
            raise ConcretizationError(
                f"no feasible value for {what} at pc=0x{state.pc:x}")
        # Fork every sibling from the unpinned state FIRST; only then pin
        # each copy to its value (forking after pinning would leak the
        # primary's constraint into the siblings).
        targets = [state] + [state.fork() for _ in values[1:]]
        self.forks_induced += len(targets) - 1
        out: List[Tuple[ExecState, int]] = []
        for target_state, got in zip(targets, values):
            target_state.add_constraint(
                E.eq(value, E.const(got, value.width)))
            out.append((target_state, got))
        return out

    # -- hardware access --------------------------------------------------------

    def read(self, addr: int) -> int:
        self.accesses += 1
        return self.hardware.read(addr)

    def write(self, addr: int, value: int) -> None:
        self.accesses += 1
        self.hardware.write(addr, value)

    def irq_lines(self):
        return self.hardware.irq_lines()

    def step_hardware(self, cycles: int) -> None:
        self.hardware.step(cycles)
