"""Runtime detectors and bug records.

HardSnap "inherits from KLEE the runtime detection mechanism for memory
corruptions, and it offers an interface to write assertions that are
especially relevant for the detection of peripherals misuse" (§III).

Every confirmed bug carries:

* the software side: pc, instruction, recent control flow, a *concrete
  test case* (solver model of the path condition — KLEE's .ktest),
* the hardware side: the state's hardware snapshot, giving the complete
  peripheral register view at the detection point — the paper's
  "complete view of the peripheral state" for root-cause analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.solver import expr as E
from repro.targets.base import HwSnapshot

KIND_OOB_READ = "out-of-bounds-read"
KIND_OOB_WRITE = "out-of-bounds-write"
KIND_ASSERTION = "assertion-failure"
KIND_ILLEGAL_INSTR = "illegal-instruction"
KIND_UNALIGNED = "unaligned-access"
KIND_STACK_OVERFLOW = "stack-overflow"
KIND_UNMAPPED_MMIO = "unmapped-mmio-access"


@dataclass
class Bug:
    """One confirmed security finding."""

    kind: str
    pc: int
    state_id: int
    detail: str
    #: Concrete witness: symbolic variable name -> value.
    test_case: Dict[str, int] = field(default_factory=dict)
    #: Complete hardware state at detection (peripheral registers).
    hw_snapshot: Optional[HwSnapshot] = None
    #: Recent program counters (control-flow tail).
    backtrace: List[int] = field(default_factory=list)
    steps: int = 0

    def summary(self) -> str:
        tc = ", ".join(f"{k}=0x{v:x}" for k, v in sorted(self.test_case.items()))
        return (f"{self.kind} at pc=0x{self.pc:x} (state {self.state_id}, "
                f"step {self.steps})"
                + (f" with {tc}" if tc else ""))


def model_to_test_case(model: Dict[E.BitVec, int]) -> Dict[str, int]:
    """Solver model -> named test vector."""
    return {v.name or f"v{i}": value
            for i, (v, value) in enumerate(sorted(
                model.items(), key=lambda kv: kv[0].name or ""))}
