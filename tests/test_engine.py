"""Algorithm-1 engine tests: strategies, snapshot ownership, reports."""

import pytest

from repro.core import (HardSnapSession, SessionConfig, SnapshotController,
                        run_all_strategies)
from repro.core.engine import RebootReplayStrategy
from repro.firmware import TIMER_BASE, dispatcher, fig1_two_paths
from repro.peripherals import catalog
from repro.targets import FpgaTarget
from repro.vm.state import STATUS_HALTED

TIMER = [(catalog.TIMER, TIMER_BASE)]


def _session(src, **overrides):
    defaults = dict(scan_mode="functional")
    defaults.update(overrides)
    return HardSnapSession(src, TIMER, **defaults)


class TestHardSnapStrategy:
    def test_dispatcher_explores_all_paths(self):
        report = _session(dispatcher(6, work_cycles=8)).run(
            max_instructions=100_000)
        assert sorted(report.halt_codes()) == [0x100 + i for i in range(6)]
        assert report.stop_reason == "exhausted"
        assert not report.bugs

    def test_every_path_gets_test_case(self):
        report = _session(dispatcher(4, work_cycles=8)).run(
            max_instructions=100_000)
        commands = set()
        for path in report.halted_paths:
            assert path.test_case, path
            commands.add(list(path.test_case.values())[0] % 4)
        assert commands == {0, 1, 2, 3}

    def test_snapshots_taken_on_forks_and_switches(self):
        report = _session(dispatcher(4, work_cycles=8),
                          searcher="round-robin").run(
            max_instructions=100_000)
        assert report.snapshot_saves >= report.forks
        assert report.snapshot_restores > 0

    def test_affinity_minimises_switches(self):
        affinity = _session(dispatcher(6, work_cycles=8),
                            searcher="affinity").run(max_instructions=100_000)
        rr = _session(dispatcher(6, work_cycles=8),
                      searcher="round-robin").run(max_instructions=100_000)
        assert affinity.snapshot_restores <= rr.snapshot_restores
        assert affinity.halt_codes() == rr.halt_codes()

    def test_instruction_budget_respected(self):
        report = _session(dispatcher(8)).run(max_instructions=50)
        assert report.instructions == 50
        assert report.stop_reason == "instruction-budget"

    def test_stop_after_bugs(self):
        from repro.firmware import vuln_buffer_overflow, UART_BASE
        session = HardSnapSession(vuln_buffer_overflow(),
                                  [(catalog.UART, UART_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000, stop_after_bugs=1)
        assert len(report.bugs) >= 1
        assert report.stop_reason == "bug-budget"


class TestStrategyComparison:
    """The Fig. 1 experiment in test form (E4)."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for strategy in ("hardsnap", "naive-consistent",
                         "naive-inconsistent"):
            session = HardSnapSession(
                fig1_two_paths(), TIMER, strategy=strategy,
                searcher="round-robin", scan_mode="functional")
            out[strategy] = session.run(max_instructions=20_000)
        return out

    def test_hardsnap_finds_both_paths_correctly(self, reports):
        assert sorted(reports["hardsnap"].halt_codes()) == [0xA, 0xB]
        assert not reports["hardsnap"].bugs

    def test_naive_consistent_agrees_with_hardsnap(self, reports):
        assert reports["naive-consistent"].halt_codes() == \
            reports["hardsnap"].halt_codes()
        assert not reports["naive-consistent"].bugs

    def test_naive_consistent_pays_reboots(self, reports):
        r = reports["naive-consistent"]
        assert r.reboots > 0
        assert r.modelled_time_s > 10 * reports["hardsnap"].modelled_time_s

    def test_naive_inconsistent_breaks(self, reports):
        """Shared hardware under concurrent exploration loses at least one
        of the two paths (the paper's aborted Task A) or corrupts a
        verdict."""
        broken = reports["naive-inconsistent"]
        good = reports["hardsnap"]
        diverged = (broken.halt_codes() != good.halt_codes()
                    or len(broken.bugs) != len(good.bugs))
        assert diverged

    def test_hardsnap_cheaper_than_reboot(self, reports):
        assert reports["hardsnap"].modelled_time_s < \
            reports["naive-consistent"].modelled_time_s


class TestRebootReplay:
    def test_replay_reconstructs_hardware(self):
        report = _session(dispatcher(4, work_cycles=8),
                          strategy="naive-consistent",
                          searcher="round-robin").run(
            max_instructions=100_000)
        assert sorted(report.halt_codes()) == [0x100 + i for i in range(4)]
        assert report.reboots > 0
        assert report.replayed_accesses > 0

    def test_replay_deterministic_no_divergence(self):
        session = _session(dispatcher(3, work_cycles=8),
                           strategy="naive-consistent",
                           searcher="round-robin")
        session.run(max_instructions=100_000)
        strategy = session.strategy
        assert isinstance(strategy, RebootReplayStrategy)
        assert strategy.replay_divergences == 0


class TestSnapshotController:
    def test_update_restore_cycle(self):
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        controller = SnapshotController(target)
        from repro.vm import SymbolicMemory
        from repro.vm.state import ExecState
        state = ExecState(memory=SymbolicMemory(256))
        target.write(TIMER_BASE + 4, 77)
        controller.update_state(state)
        assert state.hw_snapshot is not None
        target.write(TIMER_BASE + 4, 11)
        controller.restore_state(state)
        assert target.read(TIMER_BASE + 4) == 77
        assert controller.stats.saves == 1
        assert controller.stats.restores == 1

    def test_restore_without_snapshot_resets(self):
        target = FpgaTarget(scan_mode="functional")
        target.add_peripheral(catalog.TIMER, TIMER_BASE)
        target.reset()
        controller = SnapshotController(target)
        from repro.vm import SymbolicMemory
        from repro.vm.state import ExecState
        target.write(TIMER_BASE + 4, 55)
        state = ExecState(memory=SymbolicMemory(256))
        controller.restore_state(state)
        assert target.read(TIMER_BASE + 4) == 0  # fresh reset
        assert state.hw_snapshot is not None  # now owns one


class TestSessionConfig:
    def test_config_object_and_overrides_exclusive(self):
        from repro.errors import VmError
        with pytest.raises(VmError):
            HardSnapSession(dispatcher(2), TIMER,
                            config=SessionConfig(), searcher="dfs")

    def test_unknown_strategy_rejected(self):
        from repro.errors import VmError
        with pytest.raises(VmError):
            HardSnapSession(dispatcher(2), TIMER, strategy="psychic")

    def test_unknown_target_rejected(self):
        from repro.errors import VmError
        with pytest.raises(VmError):
            HardSnapSession(dispatcher(2), TIMER, target="asic")

    def test_simulator_target_works_end_to_end(self):
        report = HardSnapSession(dispatcher(3, work_cycles=8), TIMER,
                                 target="simulator").run(
            max_instructions=100_000)
        assert sorted(report.halt_codes()) == [0x100, 0x101, 0x102]

    def test_run_all_strategies_helper(self):
        reports = run_all_strategies(
            dispatcher(2, work_cycles=6), TIMER,
            strategies=("hardsnap", "naive-consistent"),
            config=SessionConfig(scan_mode="functional",
                                 searcher="round-robin"),
            max_instructions=50_000)
        assert [r.strategy for r in reports] == ["hardsnap",
                                                 "naive-consistent"]
        assert reports[0].halt_codes() == reports[1].halt_codes()


class TestCompletenessPolicy:
    def test_completeness_explores_mmio_values(self):
        """A symbolic value written to MMIO forks one state per feasible
        concrete value under the completeness policy."""
        src = f"""
        .equ TIMER, 0x{TIMER_BASE:x}
        start:
            movi r1, TIMER
            sym r2
            andi r2, r2, 3
            addi r2, r2, 1          ; LOAD in [1, 4]
            sw r2, 4(r1)            ; symbolic value crosses the boundary
            movi r3, 1
            sw r3, 0(r1)            ; EN
        poll:
            lw r4, 12(r1)
            beq r4, r0, poll
            lw r5, 4(r1)
            halt r5                 ; halt code = chosen LOAD
        """
        perf = _session(src, concretization="performance").run(
            max_instructions=100_000)
        comp = _session(src, concretization="completeness",
                        concretization_limit=8).run(max_instructions=100_000)
        assert len(perf.halted_paths) == 1
        assert sorted(comp.halt_codes()) == [1, 2, 3, 4]
