"""E-lint — static snapshot-consistency audit of the peripheral corpus.

The lint subsystem (``repro lint``) is the pre-flight gate in front of
the §IV-A instrumentation toolchain: before a scan chain is inserted,
every state element must be provably covered (threaded on the chain or
captured by configuration readback) and the RTL must be free of the
structural defects that would make a restored snapshot diverge
(combinational loops, multiple drivers, inferred latches, un-gated
writers of chain state).

This experiment runs the full rule catalog over every corpus peripheral
— original and instrumented — and persists both the human-readable
summary table and the machine-readable JSON report
(``benchmarks/out/lint_catalog.json``), the artifact downstream tooling
consumes.

Expected shapes: the shipped corpus is free of errors and warnings
(info-level dataflow observations are allowed — uart/intc carry
write-latch bits that never reach an output); instrumented
designs keep zero errors (the pass's own scan logic must satisfy its
own gating rules); a deliberately under-covered chain is flagged.
"""

import json

from benchmarks.conftest import OUT_DIR, emit
from repro.analysis import format_table
from repro.instrument import insert_scan_chain
from repro.lint import LintConfig, all_rules, lint_catalog, lint_design, render_json
from repro.peripherals import catalog


def test_lint_catalog(benchmark):
    reports = benchmark.pedantic(lint_catalog, rounds=1, iterations=1)

    rows = []
    for spec, report in zip(catalog.EXTENDED_CORPUS, reports):
        stats = spec.elaborate().stats()
        rows.append([report.design, stats["state_bits"],
                     report.errors, report.warnings, report.infos,
                     "clean" if report.clean else "FINDINGS"])
    emit("lint_catalog", format_table(
        ["peripheral", "state bits", "errors", "warnings", "infos",
         "verdict"],
        rows, title="E-lint: static analysis of the peripheral corpus "
                    f"({len(all_rules())} rules)"))

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "lint_catalog.json").write_text(render_json(reports) + "\n")
    payload = json.loads((OUT_DIR / "lint_catalog.json").read_text())
    assert payload["total_errors"] == 0

    assert len(reports) == len(catalog.EXTENDED_CORPUS)
    for report in reports:
        # Error/warning free; info-severity dataflow observations (dead
        # state bits the scan chain still carries) are expected findings.
        assert report.errors == 0 and report.warnings == 0, (
            report.render_text())
        for diag in report.diagnostics:
            assert diag.rule.startswith("df-"), report.render_text()


def test_lint_instrumented_corpus(benchmark, corpus):
    def run():
        return [lint_design(insert_scan_chain(spec.elaborate()).design)
                for spec in corpus]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    for report in reports:
        assert report.ok, report.render_text()


def test_lint_flags_undercovered_chain():
    """Sanity anchor: the completeness rule is not vacuously satisfied —
    restricting coverage to one sub-component flags the rest."""
    design = catalog.UART.elaborate()
    report = lint_design(design, LintConfig(include=("tx_busy",)))
    assert report.errors > 0
    assert any(d.rule == "snapshot-completeness"
               for d in report.diagnostics)
