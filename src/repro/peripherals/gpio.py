"""GPIO peripheral: the smallest design point of the corpus.

Register map (byte addresses):

====== ======= =====================================================
0x00   DIR     bit i = 1 drives pin i as output
0x04   OUT     output latch
0x08   IN      synchronised input pins (read-only)
0x0C   IRQ_EN  per-pin rising-edge interrupt enable
0x10   IRQ_ST  pending edge interrupts, write-1-to-clear
====== ======= =====================================================

``irq`` is high while any enabled pending bit is set.
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "gpio"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "DIR": 0x00,
    "OUT": 0x04,
    "IN": 0x08,
    "IRQ_EN": 0x0C,
    "IRQ_ST": 0x10,
}

_CORE = """
    reg [31:0] dir;
    reg [31:0] out;
    reg [31:0] in_sync;
    reg [31:0] in_prev;
    reg [31:0] irq_en;
    reg [31:0] irq_st;

    always @(posedge clk) begin
        if (rst) begin
            dir <= 0;
            out <= 0;
            in_sync <= 0;
            in_prev <= 0;
            irq_en <= 0;
            irq_st <= 0;
        end else begin
            in_sync <= gpio_in;
            in_prev <= in_sync;
            // Rising-edge detection on enabled pins.
            irq_st <= irq_st | (in_sync & ~in_prev & irq_en);
            if (bus_wr) begin
                case (bus_waddr)
                    8'h00: dir <= bus_wdata;
                    8'h04: out <= bus_wdata;
                    8'h0C: irq_en <= bus_wdata;
                    8'h10: irq_st <= irq_st & ~bus_wdata;
                    default: begin end
                endcase
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h00: rd_data = dir;
            8'h04: rd_data = out;
            8'h08: rd_data = in_sync;
            8'h0C: rd_data = irq_en;
            8'h10: rd_data = irq_st;
            default: rd_data = 32'h0;
        endcase
    end

    assign gpio_out = out & dir;
    assign irq = |(irq_st & irq_en);
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS, extra_ports=(
        "input wire [31:0] gpio_in",
        "output wire [31:0] gpio_out",
        "output wire irq",
    ))
