"""UART with TX/RX FIFOs — the corpus' medium-complexity peripheral.

A 16550-flavoured design: programmable baud divider, 8N1 framing, 8-deep
TX and RX FIFOs, and a real serial pair (``tx``/``rx`` pins) so two
instances can be cross-wired, or ``tx`` looped back into ``rx``.

Register map:

====== ========= ===================================================
0x00   TXDATA    write: push byte into the TX FIFO
0x04   RXDATA    read: pop byte from the RX FIFO
0x08   STATUS    bit0 TX_BUSY, bit1 TX_FULL, bit2 RX_AVAIL,
                 bit3 RX_OVERRUN, bit4 TX_EMPTY
0x0C   CTRL      bit0 RX_IRQ_EN, bit1 TX_IRQ_EN, bit2 CLR_OVERRUN
0x10   BAUDDIV   clock cycles per bit (16 bit, minimum 2)
====== ========= ===================================================

``irq`` = (RX_AVAIL && RX_IRQ_EN) || (TX idle+empty && TX_IRQ_EN).
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "uart"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "TXDATA": 0x00,
    "RXDATA": 0x04,
    "STATUS": 0x08,
    "CTRL": 0x0C,
    "BAUDDIV": 0x10,
}

STATUS_TX_BUSY = 1 << 0
STATUS_TX_FULL = 1 << 1
STATUS_RX_AVAIL = 1 << 2
STATUS_RX_OVERRUN = 1 << 3
STATUS_TX_EMPTY = 1 << 4

_CORE = """
    reg [15:0] bauddiv;
    reg [2:0] ctrl;

    // ---- TX FIFO ----
    reg [7:0] tx_fifo [0:7];
    reg [2:0] tx_head;
    reg [2:0] tx_tail;
    reg [3:0] tx_count;
    wire tx_full;
    wire tx_empty;
    assign tx_full = (tx_count == 4'd8);
    assign tx_empty = (tx_count == 4'd0);

    // ---- TX engine ----
    reg tx_busy;
    reg [9:0] tx_shift;
    reg [3:0] tx_bits;
    reg [15:0] tx_baud_cnt;
    reg tx_line;

    wire tx_pop;
    assign tx_pop = !tx_busy && !tx_empty;
    wire tx_push;
    assign tx_push = bus_wr && (bus_waddr == 8'h00) && !tx_full;

    always @(posedge clk) begin
        if (rst) begin
            tx_head <= 0;
            tx_tail <= 0;
            tx_count <= 0;
            tx_busy <= 0;
            tx_shift <= 10'h3FF;
            tx_bits <= 0;
            tx_baud_cnt <= 0;
            tx_line <= 1'b1;
        end else begin
            if (tx_push) begin
                tx_fifo[tx_head] <= bus_wdata[7:0];
                tx_head <= tx_head + 1;
            end
            if (tx_pop) begin
                // Frame: start(0), 8 data bits LSB first, stop(1).
                tx_shift <= {1'b1, tx_fifo[tx_tail], 1'b0};
                tx_tail <= tx_tail + 1;
                tx_busy <= 1'b1;
                tx_bits <= 4'd10;
                tx_baud_cnt <= 0;
            end
            if (tx_push && !tx_pop)
                tx_count <= tx_count + 1;
            if (tx_pop && !tx_push)
                tx_count <= tx_count - 1;
            if (tx_busy) begin
                if (tx_baud_cnt == 0) begin
                    tx_line <= tx_shift[0];
                    tx_shift <= {1'b1, tx_shift[9:1]};
                    tx_baud_cnt <= bauddiv - 1;
                    if (tx_bits == 0) begin
                        tx_busy <= 1'b0;
                        tx_line <= 1'b1;
                    end else begin
                        tx_bits <= tx_bits - 1;
                    end
                end else begin
                    tx_baud_cnt <= tx_baud_cnt - 1;
                end
            end
        end
    end

    assign tx = tx_line;

    // ---- RX FIFO ----
    reg [7:0] rx_fifo [0:7];
    reg [2:0] rx_head;
    reg [2:0] rx_tail;
    reg [3:0] rx_count;
    reg rx_overrun;
    wire rx_avail;
    wire rx_full;
    assign rx_avail = (rx_count != 0);
    assign rx_full = (rx_count == 4'd8);

    // ---- RX engine ----
    reg [1:0] rx_sync;
    reg rx_active;
    reg [3:0] rx_bits;
    reg [15:0] rx_baud_cnt;
    reg [7:0] rx_shift;
    reg rx_push;

    wire rx_pop;
    assign rx_pop = bus_rd && (bus_raddr == 8'h04) && rx_avail;

    always @(posedge clk) begin
        if (rst) begin
            rx_sync <= 2'b11;
            rx_active <= 0;
            rx_bits <= 0;
            rx_baud_cnt <= 0;
            rx_shift <= 0;
            rx_push <= 0;
            rx_head <= 0;
            rx_tail <= 0;
            rx_count <= 0;
            rx_overrun <= 0;
        end else begin
            rx_sync <= {rx_sync[0], rx};
            rx_push <= 1'b0;
            if (!rx_active) begin
                if (rx_sync == 2'b10) begin
                    // Falling edge: start bit. Sample mid-bit.
                    rx_active <= 1'b1;
                    rx_bits <= 4'd8;
                    rx_baud_cnt <= bauddiv + (bauddiv >> 1) - 1;
                end
            end else begin
                if (rx_baud_cnt == 0) begin
                    if (rx_bits == 0) begin
                        // Stop-bit position: commit the byte.
                        rx_active <= 1'b0;
                        if (!rx_full) begin
                            rx_fifo[rx_head] <= rx_shift;
                            rx_head <= rx_head + 1;
                            rx_push <= 1'b1;
                        end else begin
                            rx_overrun <= 1'b1;
                        end
                    end else begin
                        rx_shift <= {rx_sync[1], rx_shift[7:1]};
                        rx_bits <= rx_bits - 1;
                        rx_baud_cnt <= bauddiv - 1;
                    end
                end else begin
                    rx_baud_cnt <= rx_baud_cnt - 1;
                end
            end
            if (rx_pop) begin
                rx_tail <= rx_tail + 1;
            end
            if (rx_push && !rx_pop)
                rx_count <= rx_count + 1;
            if (rx_pop && !rx_push)
                rx_count <= rx_count - 1;
            if (bus_wr && (bus_waddr == 8'h0C) && bus_wdata[2])
                rx_overrun <= 1'b0;
        end
    end

    // ---- control registers ----
    always @(posedge clk) begin
        if (rst) begin
            bauddiv <= 16'd4;
            ctrl <= 0;
        end else if (bus_wr) begin
            case (bus_waddr)
                8'h0C: ctrl <= bus_wdata[2:0];
                8'h10: begin
                    if (bus_wdata[15:0] < 2)
                        bauddiv <= 16'd2;
                    else
                        bauddiv <= bus_wdata[15:0];
                end
                default: begin end
            endcase
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h04: rd_data = {24'h0, rx_fifo[rx_tail]};
            8'h08: rd_data = {27'h0, tx_empty && !tx_busy, rx_overrun,
                              rx_avail, tx_full, tx_busy};
            8'h0C: rd_data = {29'h0, ctrl};
            8'h10: rd_data = {16'h0, bauddiv};
            default: rd_data = 32'h0;
        endcase
    end

    assign irq = (rx_avail && ctrl[0]) || (tx_empty && !tx_busy && ctrl[1]);
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS, extra_ports=(
        "input wire rx",
        "output wire tx",
        "output wire irq",
    ))
