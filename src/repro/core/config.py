"""Session configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.resilience import FaultPlan, RetryPolicy
from repro.vm.forwarding import PERFORMANCE


@dataclass
class SessionConfig:
    """Knobs for a :class:`~repro.core.hardsnap.HardSnapSession`.

    Defaults follow the paper's setup: FPGA target, HardSnap snapshot
    strategy, snapshot-affinity scheduling, performance concretization.
    """

    #: "fpga" or "simulator" (ignored when a target instance is passed).
    target: str = "fpga"
    #: "hardsnap", "naive-consistent" or "naive-inconsistent".
    strategy: str = "hardsnap"
    #: Searcher name: affinity / dfs / bfs / random / coverage.
    searcher: str = "affinity"
    #: Concretization policy mode: performance / completeness.
    concretization: str = PERFORMANCE
    #: Max values enumerated per concretization in completeness mode.
    concretization_limit: int = 8
    #: Firmware RAM size in bytes.
    ram_size: int = 64 * 1024
    #: Base of the MMIO window (everything above is forwarded).
    mmio_base: int = 0x4000_0000
    #: Hardware clock cycles advanced per executed instruction.
    cycles_per_instruction: int = 1
    #: Poll interrupt lines every N instructions.
    irq_poll_interval: int = 1
    #: States advanced per scheduling pass (1 = classic serial schedule;
    #: >1 batches several forked snapshot states through the predecoded
    #: stepper per pass, amortising scheduling overhead).
    lane_width: int = 1
    #: Instructions granted to each lane per scheduling pass.
    lane_steps: int = 1
    #: VM dispatch tier: "fast" (predecoded table + per-opcode handlers)
    #: or "legacy" (the original stepper, kept as differential oracle).
    dispatch: str = "fast"
    #: Device reboot wall time charged by the naive-consistent baseline.
    reboot_time_s: float = 0.25
    #: FPGA scan execution mode: "shift" (real RTL shifting) or
    #: "functional" (same costs, direct state move).
    scan_mode: str = "functional"
    #: Delta-chain length at which the snapshot store materialises a
    #: full record (bounds restore-time chain walks).
    snapshot_flatten_threshold: int = 8
    #: Let the FPGA snapshot IP store delta-compressed streams in its
    #: SRAM (occupancy = dirty chains only; the shift still pays full
    #: price).
    sram_dedup: bool = False
    #: Run hosted designs through the repro.opt netlist optimizer
    #: before compilation (FPGA target only; the simulator target keeps
    #: full visibility and never optimizes).
    opt: bool = True
    #: Random seed for stochastic searchers.
    seed: int = 0
    #: Seeded fault schedule for the hardware link and the worker pool
    #: (None = infallible hardware, the pre-resilience behaviour).
    fault_plan: Optional[FaultPlan] = None
    #: Recovery bounds (retransmits, deadlines, respawn cap); None uses
    #: :class:`~repro.resilience.RetryPolicy` defaults.
    retry_policy: Optional[RetryPolicy] = None
