"""Programmable down-counter timer with interrupt.

The workhorse peripheral of the motivation example (Fig. 1): firmware
kicks off a timed task and receives an IRQ when it expires. Register map:

====== ======== =====================================================
0x00   CTRL     bit0 EN, bit1 IRQ_EN, bit2 AUTO_RELOAD, bit3 ONESHOT_CLR
0x04   LOAD     reload value
0x08   VALUE    current count (read-only)
0x0C   STATUS   bit0 EXPIRED (write-1-to-clear)
0x10   PRESCALE 8-bit clock divider
====== ======== =====================================================

``irq`` is high while STATUS.EXPIRED && CTRL.IRQ_EN.
"""

from __future__ import annotations

from repro.peripherals.axi_skeleton import axi_module

NAME = "timer"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "CTRL": 0x00,
    "LOAD": 0x04,
    "VALUE": 0x08,
    "STATUS": 0x0C,
    "PRESCALE": 0x10,
}

CTRL_EN = 1 << 0
CTRL_IRQ_EN = 1 << 1
CTRL_AUTO_RELOAD = 1 << 2

_CORE = """
    reg [3:0] ctrl;
    reg [31:0] load;
    reg [31:0] value;
    reg expired;
    reg [7:0] prescale;
    reg [7:0] presc_cnt;

    wire tick;
    assign tick = (presc_cnt == prescale);

    always @(posedge clk) begin
        if (rst) begin
            ctrl <= 0;
            load <= 0;
            value <= 0;
            expired <= 0;
            prescale <= 0;
            presc_cnt <= 0;
        end else begin
            if (ctrl[0]) begin
                if (tick) begin
                    presc_cnt <= 0;
                    if (value == 0) begin
                        expired <= 1'b1;
                        if (ctrl[2])
                            value <= load;
                        else
                            ctrl[0] <= 1'b0;
                    end else begin
                        value <= value - 1;
                    end
                end else begin
                    presc_cnt <= presc_cnt + 1;
                end
            end
            if (bus_wr) begin
                case (bus_waddr)
                    8'h00: ctrl <= bus_wdata[3:0];
                    8'h04: begin
                        load <= bus_wdata;
                        value <= bus_wdata;
                        presc_cnt <= 0;
                    end
                    8'h0C: begin
                        if (bus_wdata[0])
                            expired <= 1'b0;
                    end
                    8'h10: prescale <= bus_wdata[7:0];
                    default: begin end
                endcase
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        case (bus_raddr)
            8'h00: rd_data = {28'h0, ctrl};
            8'h04: rd_data = load;
            8'h08: rd_data = value;
            8'h0C: rd_data = {31'h0, expired};
            8'h10: rd_data = {24'h0, prescale};
            default: rd_data = 32'h0;
        endcase
    end

    assign irq = expired && ctrl[1];
"""


def verilog() -> str:
    return axi_module(NAME, _CORE, ADDR_BITS,
                      extra_ports=("output wire irq",))
