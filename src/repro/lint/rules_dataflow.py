"""Dataflow-backed lint rules (``df-*``).

These rules need :mod:`repro.opt` to exist: they query forward constant
propagation (which bits of which nets are provably fixed) and backward
bit-liveness (which bits can ever reach an observable sink).  They are
flow-aware where it matters — a net blocking-written inside the process
under inspection is treated as unknown there, so mid-block shadowing
can't produce false positives.
"""

from __future__ import annotations

import re
from typing import Iterable, Tuple

from repro.hdl import ir
from repro.lint.analysis import BlockInfo, LintContext
from repro.lint.framework import INFO, WARNING, Diagnostic, rule
from repro.opt.dataflow import _labels_match
from repro.opt.lattice import BitsVal, eval_expr, top

DF_CONST_NET = "df-const-net"
DF_CONST_GUARD = "df-const-guard"
DF_UNREACHABLE_CASE = "df-unreachable-case"
DF_DEAD_STATE = "df-dead-state"
DF_CONST_TRUNC = "df-const-trunc"

_SCAN_INTERNAL = re.compile(r"^(scan_p|scan_tap|scan_t\d+)$")


def _block_lookup(ctx: LintContext, info: BlockInfo):
    """Env lookup for expressions inside *info*: nets the process itself
    blocking-writes are unknown at any point within it."""
    env = ctx.constants()
    blocked = set()
    for stmt in ir._walk_stmts(info.stmts):
        if isinstance(stmt, ir.SAssign) and stmt.blocking:
            for lv in ir._leaf_lvalues(stmt.target):
                if isinstance(lv, (ir.LNet, ir.LNetDyn)):
                    blocked.add(lv.net.name)

    def lookup(name: str) -> BitsVal:
        if name in blocked:
            return top(ctx.design.nets[name].width)
        return env[name]

    return lookup


@rule(DF_CONST_NET, INFO, "Provably constant net",
      "Constant propagation proves every bit of this net holds one fixed "
      "value at every observable instant; the logic reading it is "
      "effectively hard-wired and the optimizer will fold it away.")
def check_const_net(ctx: LintContext) -> Iterable[Diagnostic]:
    env = ctx.constants()
    for name, net in sorted(ctx.design.nets.items()):
        if net.kind == "input":
            continue
        if ctx.readers.get(name, 0) == 0:
            continue  # dead-net territory, not ours
        bits = env[name]
        if bits.is_const:
            yield ctx.diag(
                DF_CONST_NET, INFO,
                f"net {name!r} is provably constant "
                f"({net.width}'h{bits.value:x})",
                subject=name)


@rule(DF_CONST_GUARD, WARNING, "Dead logic behind constant guard",
      "The guard of this if-statement is provably constant, so one branch "
      "can never execute — usually a disabled feature or a comparison "
      "that can never be true.")
def check_const_guard(ctx: LintContext) -> Iterable[Diagnostic]:
    for info in ctx.comb + ctx.seq + ctx.init:
        lookup = _block_lookup(ctx, info)
        for stmt in ir._walk_stmts(info.stmts):
            if not isinstance(stmt, ir.SIf):
                continue
            cond = eval_expr(stmt.cond, lookup)
            if cond.known_nonzero and stmt.other:
                yield ctx.diag(
                    DF_CONST_GUARD, WARNING,
                    f"guard in {info.label} is provably true; the else "
                    f"branch is dead logic",
                    subject=info.label, line=info.line or None)
            elif cond.known_zero and stmt.then:
                yield ctx.diag(
                    DF_CONST_GUARD, WARNING,
                    f"guard in {info.label} is provably false; the then "
                    f"branch is dead logic",
                    subject=info.label, line=info.line or None)


@rule(DF_UNREACHABLE_CASE, WARNING, "Unreachable case item",
      "Propagated constants prove the case subject can never match this "
      "item's labels; its body is dead logic.")
def check_unreachable_case(ctx: LintContext) -> Iterable[Diagnostic]:
    for info in ctx.comb + ctx.seq + ctx.init:
        lookup = _block_lookup(ctx, info)
        for stmt in ir._walk_stmts(info.stmts):
            if not isinstance(stmt, ir.SCase):
                continue
            subject = eval_expr(stmt.subject, lookup)
            if not subject.known:
                continue
            for pos, item in enumerate(stmt.items):
                _, possible = _labels_match(subject, item.labels)
                if not possible:
                    labels = ", ".join(_label_text(lab, stmt.subject.width)
                                       for lab in item.labels[:4])
                    yield ctx.diag(
                        DF_UNREACHABLE_CASE, WARNING,
                        f"case item #{pos + 1} ({labels}) in {info.label} "
                        f"can never match; its body is dead logic",
                        subject=info.label, line=info.line or None)


def _label_text(label: Tuple[int, int], width: int) -> str:
    value, care = label
    if care == (1 << width) - 1:
        return f"{width}'h{value:x}"
    return f"{width}'h{value:x}/care:{care:#x}"


@rule(DF_DEAD_STATE, INFO, "Snapshot state never observable",
      "These flip-flop bits can never influence an output, yet they are "
      "part of S_hw: every scan-chain shift and snapshot diff pays for "
      "bits whose value the outside world cannot distinguish.")
def check_dead_state(ctx: LintContext) -> Iterable[Diagnostic]:
    live = ctx.liveness(include_state_sinks=False)
    for net in ctx.design.state_nets:
        if _SCAN_INTERNAL.match(net.name.split(".")[-1]):
            continue  # chain plumbing is live via scan_out by design
        dead = net.mask & ~live.net_masks.get(net.name, 0)
        if dead:
            what = ("all bits" if dead == net.mask
                    else f"bits {dead:#x}")
            yield ctx.diag(
                DF_DEAD_STATE, INFO,
                f"state register {net.name!r}: {what} never reach an "
                f"output, but the scan chain still carries them",
                subject=net.name)


@rule(DF_CONST_TRUNC, WARNING, "Truncation drops provably-set bits",
      "The assigned value has bits that are provably 1 above the target "
      "width; the truncation always destroys information (the structural "
      "width-trunc rule only says it *might*).")
def check_const_trunc(ctx: LintContext) -> Iterable[Diagnostic]:
    for info in ctx.comb + ctx.seq + ctx.init:
        lookup = _block_lookup(ctx, info)
        for stmt in ir._walk_stmts(info.stmts):
            if not isinstance(stmt, ir.SAssign):
                continue
            target_w = stmt.target.width
            if stmt.value.width <= target_w:
                continue
            bits = eval_expr(stmt.value, lookup)
            lost = bits.value & ~((1 << target_w) - 1)
            if lost:
                subject = ""
                leaves = list(ir._leaf_lvalues(stmt.target))
                if leaves and isinstance(leaves[0], (ir.LNet, ir.LNetDyn)):
                    subject = leaves[0].net.name
                elif leaves and isinstance(leaves[0], ir.LMem):
                    subject = leaves[0].memory.name
                yield ctx.diag(
                    DF_CONST_TRUNC, WARNING,
                    f"assignment in {info.label} truncates a value whose "
                    f"bits {lost:#x} are provably set",
                    subject=subject, line=stmt.line or info.line or None)
