"""Pluggable IPC transport: how bulk payloads travel between processes.

Two implementations of one contract:

* :class:`ShmTransport` — chunk bodies and oversized envelopes go into a
  shared-memory :class:`~repro.parallel.shm.ChunkArena`; the queue
  carries fixed-size references. Default when the host supports it.
* :class:`QueueTransport` — everything rides the ``mp.Queue`` inline
  (the pre-transport behaviour). Automatic fallback, and the baseline
  the benchmarks compare against.

The contract has two planes:

* **chunk plane** (``place_chunks`` / ``resolve_chunks``): the
  ``chunks`` dict of a :class:`SnapshotWire` — digest-addressed bodies
  that ``ChunkChannel.absorb`` will verify against their content
  address after resolution, so shm adds no new trust surface.
* **blob plane** (``place_blob`` / ``fetch_blob``): whole packed
  envelopes above a size floor, so batch messages with no snapshot
  content (fuzz input/result batches) also skip the queue copy.

Ack bookkeeping piggybacks on the reverse message flow: each side
drains :meth:`take_acks` into its outgoing envelope and feeds the
peer's acks to :meth:`absorb_acks`, which lets the sender's arena
reclaim drained slabs. ``forget_peer`` is the respawn hook — it cancels
a dead worker's outstanding references and unlinks its orphaned
segments so a kill can neither leak nor wedge shared memory.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.parallel.shm import (ArenaReader, ChunkArena, ShmRef,
                                ShmUnavailable, shm_available)

#: Chunk bodies smaller than this stay inline in the queue message —
#: a shm round-trip (place + ref + attach + fetch + ack) costs more
#: than pickling a tiny dict.
CHUNK_SHM_FLOOR = 512

#: Packed envelopes smaller than this ride the queue directly.
BLOB_SHM_FLOOR = 2048


@dataclass
class IpcStats:
    """Per-endpoint IPC accounting, mergeable across processes."""

    transport: str = "queue"
    messages_out: int = 0
    messages_in: int = 0
    #: Bytes that crossed the mp.Queue (packed envelope sizes).
    queue_bytes_out: int = 0
    queue_bytes_in: int = 0
    #: Bytes that moved through shared memory instead.
    shm_bytes_out: int = 0
    shm_bytes_in: int = 0
    shm_chunks_out: int = 0
    shm_blobs_out: int = 0
    #: Wall time spent packing / unpacking envelopes, by side.
    encode_s: float = 0.0
    decode_s: float = 0.0
    worker_encode_s: float = 0.0
    worker_decode_s: float = 0.0

    def merge(self, other: "IpcStats") -> None:
        self.messages_out += other.messages_out
        self.messages_in += other.messages_in
        self.queue_bytes_out += other.queue_bytes_out
        self.queue_bytes_in += other.queue_bytes_in
        self.shm_bytes_out += other.shm_bytes_out
        self.shm_bytes_in += other.shm_bytes_in
        self.shm_chunks_out += other.shm_chunks_out
        self.shm_blobs_out += other.shm_blobs_out
        self.encode_s += other.encode_s
        self.decode_s += other.decode_s
        self.worker_encode_s += other.worker_encode_s
        self.worker_decode_s += other.worker_decode_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "transport": self.transport,
            "messages_out": self.messages_out,
            "messages_in": self.messages_in,
            "queue_bytes_out": self.queue_bytes_out,
            "queue_bytes_in": self.queue_bytes_in,
            "shm_bytes_out": self.shm_bytes_out,
            "shm_bytes_in": self.shm_bytes_in,
            "shm_chunks_out": self.shm_chunks_out,
            "shm_blobs_out": self.shm_blobs_out,
            "encode_s": round(self.encode_s, 6),
            "decode_s": round(self.decode_s, 6),
            "worker_encode_s": round(self.worker_encode_s, 6),
            "worker_decode_s": round(self.worker_decode_s, 6),
        }


class Transport:
    """Base contract; :class:`QueueTransport` is also the null object."""

    kind = "queue"

    def __init__(self, label: str = "ep"):
        self.label = label
        self.stats = IpcStats(transport=self.kind)

    # -- chunk plane --------------------------------------------------------

    def place_chunks(self, chunks: Dict[str, Tuple[dict, int]],
                     peer: object) -> Tuple[str, object]:
        """Stage a wire's chunk bodies for *peer*. Returns
        ``("inline", chunks)`` or ``("shm", [(digest, ShmRef), ...])``."""
        return ("inline", chunks)

    def resolve_chunks(self, mode: str, payload: object,
                       peer: object) -> Dict[str, Tuple[dict, int]]:
        """Receiving side of :meth:`place_chunks`."""
        if mode != "inline":
            raise ShmUnavailable(
                f"{type(self).__name__} cannot resolve {mode!r} chunks")
        return payload  # type: ignore[return-value]

    # -- blob plane ---------------------------------------------------------

    def place_blob(self, blob: bytes, peer: object) -> object:
        """Stage a packed envelope. Returns the object to enqueue:
        the bytes themselves, or ``("__shm__", ShmRef)``."""
        return blob

    def fetch_blob(self, payload: object, peer: object) -> bytes:
        if isinstance(payload, tuple) and payload and payload[0] == "__shm__":
            raise ShmUnavailable(
                f"{type(self).__name__} received a shm blob reference")
        return payload  # type: ignore[return-value]

    # -- ack plumbing -------------------------------------------------------

    def take_acks(self, peer: object) -> Dict[str, int]:
        """Drain pending consumption acks to ride on the next message
        *to* peer."""
        return {}

    def absorb_acks(self, peer: object, acks: Dict[str, int]) -> None:
        """Credit acks that arrived *from* peer."""

    # -- lifecycle ----------------------------------------------------------

    def forget_peer(self, peer: object) -> None:
        """The peer's process died (respawn/degrade): cancel its
        outstanding references and clean up its orphaned segments."""

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind}

    def close(self) -> None:
        """Release every transport resource. Idempotent."""


class QueueTransport(Transport):
    """Everything inline over the ``mp.Queue`` — the fallback path."""

    kind = "queue"


class ShmTransport(Transport):
    """Shared-memory payloads + queue-carried references."""

    kind = "shm"

    def __init__(self, label: str = "ep",
                 chunk_floor: int = CHUNK_SHM_FLOOR,
                 blob_floor: int = BLOB_SHM_FLOOR,
                 slab_bytes: int = ChunkArena.SLAB_BYTES):
        super().__init__(label)
        self.chunk_floor = chunk_floor
        self.blob_floor = blob_floor
        self.arena = ChunkArena(label, slab_bytes=slab_bytes)
        self.reader = ArenaReader()
        self._closed = False

    # -- chunk plane --------------------------------------------------------

    def place_chunks(self, chunks, peer):
        if not chunks:
            return ("inline", chunks)
        refs: List[Tuple[str, object]] = []
        for digest, (body, bits) in chunks.items():
            blob = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) < self.chunk_floor:
                refs.append((digest, (blob, bits)))
                continue
            ref = self.arena.place(blob, peer, digest=digest, bits=bits)
            self.stats.shm_bytes_out += len(blob)
            self.stats.shm_chunks_out += 1
            refs.append((digest, ref))
        return ("shm", refs)

    def resolve_chunks(self, mode, payload, peer):
        if mode == "inline":
            return payload
        chunks: Dict[str, Tuple[dict, int]] = {}
        for digest, entry in payload:
            if isinstance(entry, ShmRef):
                blob = self.reader.fetch(entry, peer)
                self.stats.shm_bytes_in += len(blob)
                chunks[digest] = (pickle.loads(blob), entry.bits)
            else:
                blob, bits = entry
                chunks[digest] = (pickle.loads(blob), bits)
        return chunks

    # -- blob plane ---------------------------------------------------------

    def place_blob(self, blob, peer):
        if len(blob) < self.blob_floor:
            return blob
        ref = self.arena.place(bytes(blob), peer)
        self.stats.shm_bytes_out += len(blob)
        self.stats.shm_blobs_out += 1
        return ("__shm__", ref)

    def fetch_blob(self, payload, peer):
        if isinstance(payload, tuple) and payload and payload[0] == "__shm__":
            blob = self.reader.fetch(payload[1], peer)
            self.stats.shm_bytes_in += len(blob)
            return blob
        return payload

    # -- ack plumbing -------------------------------------------------------

    def take_acks(self, peer):
        return self.reader.take_acks(peer)

    def absorb_acks(self, peer, acks):
        if acks:
            self.arena.ack(peer, acks)

    # -- lifecycle ----------------------------------------------------------

    def forget_peer(self, peer):
        self.arena.forget_peer(peer)
        # The dead peer's own arena segments are orphans now — unlink
        # what we had attached (or were about to).
        self.reader.drop_peer(peer, unlink=True)

    def describe(self):
        return {"kind": self.kind,
                "live_slabs": self.arena.live_slabs,
                "slabs_created": self.arena.stats.slabs_created,
                "slabs_reclaimed": self.arena.stats.slabs_reclaimed}

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.arena.close()
        self.reader.close()


def make_transport(kind: str = "auto", label: str = "ep",
                   **kwargs) -> Transport:
    """Build a transport. ``auto`` probes the host and falls back to
    the queue path; an explicit ``shm`` raises if unsupported."""
    if kind == "auto":
        kind = "shm" if shm_available() else "queue"
    if kind == "queue":
        return QueueTransport(label)
    if kind == "shm":
        if not shm_available():
            raise ShmUnavailable(
                "shared memory is unavailable on this host; "
                "use --transport queue (or auto)")
        return ShmTransport(label, **kwargs)
    raise ValueError(f"unknown transport {kind!r} "
                     "(expected auto, shm, or queue)")


class _Timer:
    """Context manager accumulating wall time into a stats attribute."""

    def __init__(self, stats: IpcStats, attr: str):
        self.stats = stats
        self.attr = attr

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        setattr(self.stats, self.attr,
                getattr(self.stats, self.attr)
                + (time.perf_counter() - self._t0))
        return False
