"""repro.resilience — deterministic fault injection + recovery policy.

HardSnap's hardware link (USB3/JTAG scan shifts, MMIO forwarding) and
the parallel runtime's worker processes are exactly the components that
fail in real HIL setups. This package provides the three pieces the
robustness machinery is built from:

* :class:`FaultPlan` / :class:`FaultInjector` — a *seeded, replayable*
  schedule of link faults (scan bit-flips, dropped frames, stalls,
  lost MMIO responses, transfer timeouts, link drops) and pool faults
  (worker kills, lost/duplicated result messages). Every decision is a
  pure function of ``(seed, site, occurrence counter)``, so a faulty
  run can be reproduced bit-for-bit from its plan spec,
* :class:`RetryPolicy` — the recovery knobs: bounded retransmits with
  exponential backoff (charged to the modelled timer), per-operation
  deadlines, lease re-issue limits, the worker respawn cap, and
  degraded-mode behaviour,
* :class:`ResilienceStats` — the record of what actually happened
  (retries, reissues, respawns, reconnects, backoff charged, degraded
  flag), surfaced through :class:`~repro.core.engine.AnalysisReport`,
  the pool epilogue and the CLI.

The headline invariant (``tests/test_resilience.py``): with any seeded
FaultPlan below the respawn cap, parallel verdicts stay byte-identical
to the fault-free serial run — faults cost modelled time, never
correctness.
"""

from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import RetryPolicy
from repro.resilience.stats import ResilienceStats

__all__ = ["FaultPlan", "FaultInjector", "RetryPolicy", "ResilienceStats"]
