"""Worker-process side of the parallel runtime.

Each worker process owns a complete private analysis stack — target,
solver, snapshot store, engine — rebuilt from the coordinator's
:class:`~repro.parallel.recipe.SessionRecipe`. Work arrives as jobs on a
queue; results go back on a shared queue. Two harnesses:

* :class:`EngineWorker` — executes state *leases*
  (:meth:`~repro.core.engine.AnalysisEngine.run_lease`): restore the
  leased state's snapshot, run until it completes, forks, or exhausts
  its budget, ship resulting states back as delta-encoded
  :class:`~repro.core.persistence.SnapshotWire` packets,
* :class:`FuzzWorker` — executes fuzz input batches from the shared
  post-boot snapshot (captured once per worker, then restored per
  input — the HardSnap fuzzing loop).

``_worker_main`` is the process entry point; it must stay module-level
and import-light so it survives ``spawn`` start methods.
"""

from __future__ import annotations

import os
import queue
import signal
import struct
import time
import traceback
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.fuzzer import execute_input
from repro.core.snapshot import SnapshotController
from repro.core.store import chunk_digest
from repro.parallel.envelope import (pack_fuzz_results, pack_lease_results,
                                     stamp_encode_time, unpack_fuzz_batch,
                                     unpack_lease_batch)
from repro.parallel.recipe import SessionRecipe
from repro.parallel.statewire import KIND_FULL, StateWire
from repro.parallel.transport import Transport, make_transport
from repro.parallel.wire import ChunkChannel
from repro.resilience import FaultInjector
from repro.targets.base import HwSnapshot
from repro.vm.state import ExecState

#: Queue sentinel that shuts a worker down.
STOP = "__stop__"

#: Peer id workers use for the coordinator in their chunk channel.
COORD = "coord"

def pack_edges(edges: Set[Tuple[int, int]]) -> bytes:
    """Edge set -> compact sorted wire form (pc pairs, little-endian
    u32s). Cuts per-input result pickling to a fraction of a tuple
    list's cost — fuzz results are the parallel fuzzer's bulk traffic."""
    return b"".join(struct.pack("<II", a, b) for a, b in sorted(edges))


def unpack_edges(blob: bytes) -> Set[Tuple[int, int]]:
    return {(a, b) for a, b in struct.iter_unpack("<II", blob)}


#: Spacing between per-lease symbolic-variable counter bases. A single
#: lease never allocates this many fresh symbols, so bases assigned from
#: distinct lease sequence numbers can never collide — regardless of
#: which worker runs which lease.
SYM_BASE_STRIDE = 1_000_000


def _strip_snapshot(snapshot: Optional[HwSnapshot]) -> Optional[HwSnapshot]:
    """A picklable, store-record-free copy of *snapshot* (for bug
    reports crossing the process boundary)."""
    if snapshot is None:
        return None
    return HwSnapshot(states=dict(snapshot.states), method=snapshot.method,
                      bits=snapshot.bits,
                      modelled_cost_s=snapshot.modelled_cost_s)


class EngineWorker:
    """One worker's engine harness: a full HardSnap session plus the
    chunk channel its states travel over."""

    def __init__(self, recipe: SessionRecipe):
        self.session = recipe.build_session()
        self.engine = self.session.engine
        self.channel = ChunkChannel()
        self.statewire = StateWire(
            delta=getattr(recipe, "delta_state", True))
        self.bits_of = {name: inst.state_bits
                        for name, inst in
                        self.session.target.instances.items()}
        self._started = False

    # -- state (de)materialisation ------------------------------------------

    def _ship_state(self, state: ExecState
                    ) -> Tuple[int, bytes, Dict[str, bytes], Any]:
        """(state-record kind, record, page bodies, wire for its
        snapshot) — the software half delta-encoded against the
        coordinator's registries, the hardware half as a chunk wire."""
        snapshot = state.hw_snapshot
        if snapshot is None:
            # Active states always carry a snapshot by the time they
            # leave a lease (update_state/on_fork refreshed it); guard
            # anyway by capturing live hardware.
            snapshot = self.engine.controller.save()
            state.hw_snapshot = snapshot
        wire = self.channel.encode(snapshot, COORD, bits_of=self.bits_of)
        state.hw_snapshot = None
        try:
            kind, record, bodies = self.statewire.encode_state(state, COORD)
        finally:
            state.hw_snapshot = snapshot
        return kind, record, bodies, wire

    def _materialise(self, payload: Dict[str, Any]) -> ExecState:
        if payload["state"] is None:
            # Root lease: fresh hardware, fresh initial state.
            self.engine.strategy.on_start(None)  # controller.reset()
            state = self.session.make_initial_state()
            return state
        if isinstance(payload["state"], ExecState):
            # Degraded InlinePool path: the structured payload carries
            # the live object — no wire format was ever involved.
            state = payload["state"]
        else:
            kind = payload.get("state_kind", KIND_FULL)
            state = self.statewire.decode_state(
                kind, payload["state"], payload.get("state_chunks") or {},
                COORD)
        state.hw_snapshot = self.channel.decode(payload["wire"], COORD)
        return state

    # -- lease execution ----------------------------------------------------

    def run_lease(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        executor = self.engine.executor
        controller = self.engine.controller
        store = controller.store
        timer = self.session.target.timer

        executor._sym_counter = int(payload["sym_base"])
        state = self._materialise(payload)
        resilience0 = self.session.target.resilience.as_dict()

        bugs_before = len(executor.bugs)
        coverage_before = set(executor.coverage)
        saves0, restores0 = (controller.stats.saves,
                             controller.stats.restores)
        logical0, stored0 = (store.stats.logical_bits,
                             store.stats.stored_bits)
        hits0, misses0, skips0 = (store.stats.chunk_hits,
                                  store.stats.chunk_misses,
                                  store.stats.capture_skips)
        modelled0 = timer.total_s

        outcome = self.engine.run_lease(
            state, max_instructions=int(payload.get("budget", 0)))

        continuation = (self._ship_state(state) if state.is_active
                        else None)
        children = [self._ship_state(fork) for fork in outcome.forks]
        new_bugs = [(replace(b, hw_snapshot=_strip_snapshot(b.hw_snapshot)),
                     state.lineage)
                    for b in executor.bugs[bugs_before:]]
        return {
            "executed": outcome.executed,
            "paused": outcome.paused,
            "continuation": continuation,
            "children": children,
            "completed": outcome.completed,
            "bugs": new_bugs,
            "coverage": sorted(set(executor.coverage) - coverage_before),
            "stats": {
                "saves": controller.stats.saves - saves0,
                "restores": controller.stats.restores - restores0,
                "logical_bits": store.stats.logical_bits - logical0,
                "stored_bits": store.stats.stored_bits - stored0,
                "chunk_hits": store.stats.chunk_hits - hits0,
                "chunk_misses": store.stats.chunk_misses - misses0,
                "capture_skips": store.stats.capture_skips - skips0,
                "chain_depth": store.stats.max_chain_depth,
            },
            "modelled_dt": timer.total_s - modelled0,
            "wire_stats": self.channel.stats,
            "state_wire": self.statewire.stats,
            "resilience":
                self.session.target.resilience.delta(resilience0),
        }


class FuzzWorker:
    """One worker's fuzz harness: target + post-boot snapshot, no VM."""

    def __init__(self, recipe: SessionRecipe):
        self.program = recipe.program
        self.target = recipe.target.build()
        plan = getattr(recipe.config, "fault_plan", None)
        if plan is not None:
            self.target.attach_resilience(plan, recipe.config.retry_policy)
        self.max_steps = recipe.max_steps_per_exec
        self.controller = SnapshotController(self.target)
        self._boot: Optional[HwSnapshot] = None
        self.restores = 0

    def _fresh_hardware(self) -> None:
        # Mirrors SnapshotFuzzer._fresh_hardware (reset="snapshot"):
        # capture the post-boot state once, restore it per input.
        if self._boot is None:
            self.controller.reset()
            self._boot = self.controller.save()
        else:
            self.controller.restore(self._boot)

    def boot_digests(self) -> Dict[str, str]:
        """Chunk digests of the post-boot snapshot (per instance) — lets
        the coordinator verify all workers fuzz from the same state."""
        self._fresh_hardware()
        return {name: chunk_digest(state)
                for name, state in self._boot.states.items()}

    def run_batch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        modelled0 = self.target.timer.total_s
        resilience0 = self.target.resilience.as_dict()
        results: List[Tuple[int, bytes, bytes, Optional[str], int]] = []
        for index, data in payload["items"]:
            self._fresh_hardware()
            self.restores += 1
            _exit, edges, crash, pc = execute_input(
                self.program, self.target, data, max_steps=self.max_steps)
            results.append((index, data, pack_edges(edges), crash, pc))
        return {
            "results": results,
            "modelled_dt": self.target.timer.total_s - modelled0,
            "resets": len(payload["items"]),
            "resilience": self.target.resilience.delta(resilience0),
        }


_HARNESS_TYPES = {"engine": EngineWorker, "fuzz": FuzzWorker}

#: Completed-envelope cache depth. The coordinator can only re-issue a
#: handful of jobs at once (bounded by in-flight jobs + reissue caps),
#: so a shallow cache suffices to answer every duplicate delivery.
_COMPLETED_CACHE = 32

#: Idle-loop cadence for the orphan check: how often a job-starved
#: worker confirms its coordinator is still alive (ppid unchanged).
_ORPHAN_POLL_S = 2.0


def _worker_main(worker_id: int, recipe: SessionRecipe,
                 jobs, results, incarnation: int = 0,
                 transport_kind: str = "queue", run_tag: str = "") -> None:
    """Worker process entry point: build harnesses lazily, serve jobs
    until the STOP sentinel arrives. Any exception is reported to the
    coordinator as an ``("error", id, job_id, traceback)`` message
    rather than killing the process silently.

    Jobs arrive as ``(kind, job_id, payload)``; results leave as
    ``(kind, worker_id, job_id, data)``. The batch kinds
    (``lease-batch`` / ``fuzz-batch``) carry packed envelopes — bytes
    or shm references, per *transport_kind* — everything else stays
    plain pickled objects. The worker owns one transport endpoint
    (arena label ``{run_tag}-w{worker_id}i{incarnation}``): payload
    refs it consumes turn into acks riding its result envelopes, and
    its own arena is unlinked on STOP (a killed worker's segments are
    swept by the coordinator under the run tag instead).

    Completed envelopes are cached by job id so a re-issued job (the
    coordinator missed our answer) is answered from the cache instead
    of being re-executed — execution mutates harness state (coverage
    baselines, chunk-channel bookkeeping), so exactly-once execution is
    what keeps re-issues deterministic.

    When the recipe's config carries a :class:`FaultPlan`, this loop is
    also the pool-boundary fault site: scheduled/stochastic worker kills
    (``os._exit`` before execution, as a real crash would land), lost
    result messages (computed and cached, never sent — the coordinator's
    deadline recovers via re-issue) and duplicated deliveries.
    """
    # Shed the coordinator's inherited signal dispositions. Its
    # cooperative shutdown handler (graceful_shutdown) only sets a
    # coordinator-side flag; carried across fork it would make this
    # process *ignore* SIGTERM — wedging pool-close escalation and
    # multiprocessing's atexit join. Shutdown reaches workers as the
    # STOP sentinel (or terminate/kill), never as a signal to
    # interpret: ignore Ctrl-C's process-group SIGINT so the
    # coordinator can drain gracefully, die on SIGTERM.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    harnesses: Dict[str, Any] = {}
    plan = getattr(recipe.config, "fault_plan", None)
    injector = (FaultInjector(plan, scope="pool")
                if plan is not None and not plan.is_empty else None)
    completed: "OrderedDict[int, tuple]" = OrderedDict()
    job_index = 0
    transport: Transport = make_transport(
        transport_kind, label=f"{run_tag}-w{worker_id}i{incarnation}")

    def harness(kind: str):
        if kind not in harnesses:
            harnesses[kind] = _HARNESS_TYPES[kind](recipe)
        return harnesses[kind]

    def run_lease_batch(payload) -> Any:
        blob = transport.fetch_blob(payload, COORD)
        t0 = time.perf_counter()
        acks, evictions, state_evictions, leases = \
            unpack_lease_batch(blob, transport, COORD)
        decode_s = time.perf_counter() - t0
        transport.absorb_acks(COORD, acks)
        engine = harness("engine")
        engine.channel.forget_remote(COORD, evictions)
        engine.statewire.forget_remote(COORD, state_evictions)
        outcomes = [engine.run_lease(lease) for lease in leases]
        t0 = time.perf_counter()
        packed = bytearray(pack_lease_results(
            outcomes, transport, COORD,
            acks=transport.take_acks(COORD),
            evictions=engine.channel.take_evictions(COORD),
            state_evictions=engine.statewire.take_evictions(COORD),
            encode_s=0.0, decode_s=decode_s))
        stamp_encode_time(packed, time.perf_counter() - t0)
        return transport.place_blob(bytes(packed), COORD)

    def run_fuzz_batch(payload) -> Any:
        blob = transport.fetch_blob(payload, COORD)
        t0 = time.perf_counter()
        acks, _evictions, items = unpack_fuzz_batch(blob)
        decode_s = time.perf_counter() - t0
        transport.absorb_acks(COORD, acks)
        res = harness("fuzz").run_batch({"items": items})
        t0 = time.perf_counter()
        packed = bytearray(pack_fuzz_results(
            res, acks=transport.take_acks(COORD),
            encode_s=0.0, decode_s=decode_s))
        stamp_encode_time(packed, time.perf_counter() - t0)
        return transport.place_blob(bytes(packed), COORD)

    parent_pid = os.getppid()
    while True:
        try:
            job = jobs.get(timeout=_ORPHAN_POLL_S)
        except queue.Empty:
            # No STOP will ever come from a dead coordinator (SIGKILL
            # skips every cleanup path): a reparented worker unlinks
            # its arena and exits instead of orphaning forever with
            # the coordinator's pipes held open.
            if os.getppid() != parent_pid:
                break
            continue
        if job == STOP:
            break
        kind, job_id, payload = job
        try:
            cached = completed.get(job_id)
            if cached is not None:
                # Re-issued job we already ran: resend, never re-execute.
                results.put(cached)
                continue
            if kind in ("lease", "fuzz", "lease-batch", "fuzz-batch"):
                index = job_index
                job_index += 1
                if (injector is not None
                        and injector.should_kill(worker_id, index,
                                                 incarnation)):
                    os._exit(17)
            if kind == "warm":
                harness(payload["kind"])
                envelope = ("warmed", worker_id, job_id, None)
            elif kind == "lease":
                envelope = ("lease", worker_id, job_id,
                            harness("engine").run_lease(payload))
            elif kind == "lease-batch":
                envelope = ("lease-batch", worker_id, job_id,
                            run_lease_batch(payload))
            elif kind == "fuzz":
                envelope = ("fuzz", worker_id, job_id,
                            harness("fuzz").run_batch(payload))
            elif kind == "fuzz-batch":
                envelope = ("fuzz-batch", worker_id, job_id,
                            run_fuzz_batch(payload))
            elif kind == "boot-digests":
                envelope = ("boot-digests", worker_id, job_id,
                            harness("fuzz").boot_digests())
            else:
                raise ValueError(f"unknown job kind {kind!r}")
            completed[job_id] = envelope
            while len(completed) > _COMPLETED_CACHE:
                completed.popitem(last=False)
            if injector is not None and injector.roll(
                    f"result_loss:w{worker_id}", plan.result_loss_rate):
                continue  # cached above; the re-issue will resend it
            results.put(envelope)
            if injector is not None and injector.roll(
                    f"result_dup:w{worker_id}", plan.result_dup_rate):
                results.put(envelope)
        except BaseException:
            results.put(("error", worker_id, job_id,
                         traceback.format_exc()))
    transport.close()
