"""Bit-blaster tests: every operation validated against concrete
evaluation, including property-based differential checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import expr as E
from repro.solver.bitblast import BitBlaster
from repro.solver.sat import SAT, UNSAT

U8 = st.integers(min_value=0, max_value=255)


def _solve_for(expr_fn, width, a, b):
    """Assert op(x, y) == expected with x==a, y==b via the SAT solver and
    read back the model — a full round trip through the encoding."""
    x, y = E.var("bb_x", width), E.var("bb_y", width)
    node = expr_fn(x, y)
    expected = node.evaluate({x: a, y: b})
    bb = BitBlaster()
    bb.assert_true(E.eq(x, E.const(a, width)))
    bb.assert_true(E.eq(y, E.const(b, width)))
    bits = bb.blast(node)
    assert bb.sat.solve() == SAT
    got = bb.model_value(node)
    assert got == expected, f"{expr_fn.__name__}({a},{b}) = {got} != {expected}"


BINOPS = [E.add, E.sub, E.mul, E.udiv, E.urem, E.and_, E.or_, E.xor,
          E.shl, E.lshr, E.ashr]
CMPOPS = [E.eq, E.ult, E.ule, E.slt, E.sle]


class TestOperations:
    @pytest.mark.parametrize("op", BINOPS)
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (255, 1), (170, 85),
                                     (128, 7), (3, 250)])
    def test_binop_roundtrip(self, op, a, b):
        _solve_for(op, 8, a, b)

    @pytest.mark.parametrize("op", CMPOPS)
    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (3, 5), (128, 127),
                                     (255, 0)])
    def test_comparison_roundtrip(self, op, a, b):
        _solve_for(op, 8, a, b)

    def test_ite_roundtrip(self):
        c = E.var("bb_c", 1)
        x, y = E.var("bb_tx", 8), E.var("bb_ty", 8)
        bb = BitBlaster()
        bb.assert_true(c)
        bb.assert_true(E.eq(x, E.const(0xAA, 8)))
        bb.assert_true(E.eq(y, E.const(0x55, 8)))
        node = E.ite(c, x, y)
        bb.blast(node)
        assert bb.sat.solve() == SAT
        assert bb.model_value(node) == 0xAA

    def test_concat_extract(self):
        x = E.var("bb_ce", 16)
        node = E.concat(E.extract(x, 7, 0), E.extract(x, 15, 8))  # swap
        bb = BitBlaster()
        bb.assert_true(E.eq(x, E.const(0xBEEF, 16)))
        bb.blast(node)
        assert bb.sat.solve() == SAT
        assert bb.model_value(node) == 0xEFBE

    def test_zext_sext(self):
        x = E.var("bb_ext", 8)
        bb = BitBlaster()
        bb.assert_true(E.eq(x, E.const(0x80, 8)))
        z, s = E.zext(x, 16), E.sext(x, 16)
        bb.blast(z)
        bb.blast(s)
        assert bb.sat.solve() == SAT
        assert bb.model_value(z) == 0x0080
        assert bb.model_value(s) == 0xFF80

    def test_division_by_zero_convention(self):
        x, y = E.var("bb_d1", 8), E.var("bb_d2", 8)
        bb = BitBlaster()
        bb.assert_true(E.eq(x, E.const(42, 8)))
        bb.assert_true(E.eq(y, E.const(0, 8)))
        q, r = E.udiv(x, y), E.urem(x, y)
        bb.blast(q)
        bb.blast(r)
        assert bb.sat.solve() == SAT
        assert bb.model_value(q) == 0xFF
        assert bb.model_value(r) == 42

    def test_shift_overflow_amount(self):
        x, y = E.var("bb_s1", 8), E.var("bb_s2", 8)
        bb = BitBlaster()
        bb.assert_true(E.eq(x, E.const(0xFF, 8)))
        bb.assert_true(E.eq(y, E.const(200, 8)))
        node = E.shl(x, y)
        bb.blast(node)
        assert bb.sat.solve() == SAT
        assert bb.model_value(node) == 0


class TestUnsatCases:
    def test_contradiction(self):
        x = E.var("bb_u", 8)
        bb = BitBlaster()
        bb.assert_true(E.eq(x, E.const(1, 8)))
        bb.assert_true(E.eq(x, E.const(2, 8)))
        assert bb.sat.solve() == UNSAT

    def test_arith_contradiction(self):
        x = E.var("bb_ua", 8)
        bb = BitBlaster()
        bb.assert_true(E.ult(x, E.const(4, 8)))
        bb.assert_true(E.eq(E.mul(x, E.const(2, 8)), E.const(9, 8)))
        assert bb.sat.solve() == UNSAT  # odd result from doubling


@settings(max_examples=60, deadline=None)
@given(a=U8, b=U8,
       op=st.sampled_from(BINOPS + CMPOPS))
def test_property_differential(a, b, op):
    """Any op on any inputs: SAT encoding agrees with concrete eval."""
    _solve_for(op, 8, a, b)


@settings(max_examples=25, deadline=None)
@given(a=st.integers(min_value=0, max_value=2**16 - 1),
       b=st.integers(min_value=0, max_value=2**16 - 1))
def test_property_wide_mul_add(a, b):
    x, y = E.var("bb_w1", 16), E.var("bb_w2", 16)
    node = E.add(E.mul(x, y), E.xor(x, y))
    expected = node.evaluate({x: a, y: b})
    bb = BitBlaster()
    bb.assert_true(E.eq(x, E.const(a, 16)))
    bb.assert_true(E.eq(y, E.const(b, 16)))
    bb.blast(node)
    assert bb.sat.solve() == SAT
    assert bb.model_value(node) == expected
