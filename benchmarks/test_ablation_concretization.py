"""A2 — ablation: the concretization policy (paper §III-B).

"user-customizable to choose between completeness (i.e., all possible
values are tested) or performance (i.e., only one possible value is
tested)."

The workload writes a symbolic value (4 feasible values) into the
timer's LOAD register — a symbolic expression crossing the VM boundary.
Performance mode pins one value and explores one path; completeness
forks per feasible value and finds a bug that only one value triggers.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE
from repro.peripherals import catalog

TIMER = [(catalog.TIMER, TIMER_BASE)]

# LOAD in {2, 18, 34, 50}; the property "expiry takes at least 3 polls"
# fails only for the shortest programs — a value-dependent
# peripheral-misuse bug that the performance policy can miss.
FIRMWARE = f"""
.equ TIMER, 0x{TIMER_BASE:x}
start:
    movi r1, TIMER
    sym r2
    andi r2, r2, 3
    slli r2, r2, 4
    addi r2, r2, 2          ; LOAD in {{2, 18, 34, 50}}
    sw r2, 4(r1)            ; symbolic value crosses into hardware
    movi r3, 1
    sw r3, 0(r1)            ; EN
    movi r6, 0              ; poll counter
poll:
    inc r6
    lw r4, 12(r1)
    beq r4, r0, poll
    ; property: the task must survive at least 3 polls (driver assumes
    ; it has time to prepare the result buffer)
    movi r7, 2
    sltu r8, r7, r6         ; r8 = (2 < polls)
    assert r8
    halt r2
"""


def _run(policy, limit=8):
    session = HardSnapSession(FIRMWARE, TIMER, concretization=policy,
                              concretization_limit=limit,
                              scan_mode="functional")
    return session.run(max_instructions=100_000)


def test_ablation_concretization(benchmark):
    results = benchmark.pedantic(
        lambda: {"performance": _run("performance"),
                 "completeness": _run("completeness")},
        rounds=1, iterations=1)

    rows = []
    for name, report in results.items():
        rows.append([
            name,
            len(report.paths),
            len(report.halted_paths),
            len(report.bugs),
            report.instructions,
            format_si_time(report.modelled_time_s),
        ])
    emit("ablation_concretization", format_table(
        ["policy", "paths", "completed", "bugs found", "instructions",
         "modelled time"],
        rows, title="A2: concretization policy ablation (symbolic MMIO write)"))

    perf = results["performance"]
    comp = results["completeness"]
    # Performance: one pinned value, one path, cheap.
    assert len(perf.paths) == 1
    # Completeness: all four values explored...
    assert len(comp.paths) == 4
    # ...which is what exposes the value-dependent bug while showing the
    # safe values pass: a strict subset of the LOADs fails.
    assert comp.bugs and comp.halted_paths
    assert comp.instructions > perf.instructions
    bad = {((list(b.test_case.values())[0] & 3) << 4) + 2
           for b in comp.bugs}
    good = {((list(p.test_case.values())[0] & 3) << 4) + 2
            for p in comp.halted_paths}
    assert max(bad) < min(good)  # only the short tasks violate the property
