"""The examples are part of the public contract: run each as a script
and check it exits cleanly (their internal asserts check the behaviour).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, tmp_path):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
        cwd=tmp_path,  # artifacts (e.g. VCD files) land in a sandbox
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout  # every example narrates what it shows
