"""The peripheral corpus: open-source-style Verilog peripherals used for
HardSnap's evaluation, generated as Verilog text and elaborated by
:mod:`repro.hdl`.

All peripherals share the AXI4-Lite slave front-end from
:mod:`~repro.peripherals.axi_skeleton`; see
:mod:`~repro.peripherals.catalog` for the corpus definition.
"""

from repro.peripherals import (aes128, dma, gpio, gpio_wb, intc, sha256,
                               timer, uart, wdt)
from repro.peripherals.axi_skeleton import axi_module
from repro.peripherals.wb_skeleton import wishbone_module
from repro.peripherals.soc import SocSpec, build_soc

__all__ = ["aes128", "dma", "gpio", "gpio_wb", "intc", "sha256", "timer",
           "uart", "wdt", "axi_module", "wishbone_module", "catalog",
           "SocSpec", "build_soc"]

from repro.peripherals import catalog  # noqa: E402  (circular-safe tail import)
