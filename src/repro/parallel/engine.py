"""Coordinator for parallel dynamic symbolic execution.

The coordinator owns Algorithm 1's *scheduling* half — the searcher and
the stop conditions — and leases the actual execution of states to the
worker pool. A lease runs one state until it completes, forks, or
exhausts its instruction budget; the resulting states come back as
delta-encoded snapshots and re-enter the searcher. Because per-path
outcomes are schedule-independent (branch feasibility does not depend on
execution order, and every path's hardware travels with it), a
run-to-exhaustion merge reproduces the serial engine's
``verdict_summary()`` byte-for-byte, whatever the worker count — the
property ``tests/test_parallel.py`` pins down.

Leases travel in **coalesced batches** (up to ``lease_batch`` per
envelope, struct-packed — see :mod:`repro.parallel.envelope`) and the
main loop is a **pipelined merge**: every already-delivered result is
drained without blocking, freed workers are re-dispatched from parked
states *first*, and the decode of the drained envelopes is interleaved
with further dispatch — after each envelope's states are adopted into
the searcher, any worker that went idle meanwhile is fed immediately,
so batch *i+1* executes while the coordinator is still merging batch
*i*. Per-lease ``sym_base`` assignment, lineage-keyed merging and the
final identity renumbering are unchanged, which is why batching and
pipelining cannot perturb verdicts.

Software state crosses the process boundary through the
:class:`~repro.parallel.statewire.StateWire` delta codec: leases park
*live* states coordinator-side and are delta-encoded at pack time
(dirty pages the peer lacks + the constraint suffix beyond a shared
ancestor), so a recovery re-pack after a respawn re-encodes as a full
pickle against the worker's cold registry (``force_full``).

Verdict parity holds for ``irq_poll_interval=1`` (the default): larger
intervals phase the IRQ poll against the *global* instruction stream in
the serial engine but per-lease here.
"""

from __future__ import annotations

import time
from collections import deque
from typing import (Any, Deque, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.core.config import SessionConfig
from repro.core.engine import AnalysisReport
from repro.core.journal import (DEFAULT_FSYNC_EVERY, Journal, PathLike,
                                config_fingerprint)
from repro.core.persistence import SnapshotWire
from repro.core.shutdown import shutdown_requested
from repro.errors import JournalCorruptError, JournalError, VmError
from repro.isa.assembler import Program
from repro.parallel.envelope import pack_lease_batch, unpack_lease_results
from repro.parallel.pool import WorkerPool
from repro.parallel.recipe import SessionRecipe
from repro.parallel.recovery import PoolRecoveryMixin
from repro.parallel.statewire import StateWire
from repro.parallel.wire import ChunkChannel
from repro.parallel.workers import SYM_BASE_STRIDE
from repro.resilience import RetryPolicy
from repro.vm.searchers import make_searcher
from repro.vm.state import ExecState


def _wire_digests(wire) -> List[str]:
    return [digest for _name, (digest, _cycle, _bits) in wire.refs.items()]


class ParallelAnalysisEngine(PoolRecoveryMixin):
    """Drop-in parallel counterpart of
    :meth:`~repro.core.hardsnap.HardSnapSession.run`.

    Takes the same firmware/peripherals/config arguments as
    :class:`~repro.core.hardsnap.HardSnapSession` plus a worker count;
    only the ``hardsnap`` strategy is supported (snapshots are what make
    states portable across processes).
    """

    def __init__(self, firmware: Optional[Union[str, Program]] = None,
                 peripherals: Sequence[Tuple[object, int]] = (),
                 config: Optional[SessionConfig] = None,
                 workers: int = 2,
                 lease_budget: int = 0,
                 transport: str = "auto",
                 lease_batch: int = 4,
                 delta_state: bool = True,
                 journal: Optional[PathLike] = None,
                 journal_fsync_every: int = DEFAULT_FSYNC_EVERY,
                 checkpoint_every: int = 8,
                 recipe: Optional[SessionRecipe] = None,
                 **overrides):
        if recipe is not None:
            self.recipe = recipe
        elif firmware is not None:
            self.recipe = SessionRecipe.create(firmware, peripherals,
                                               config=config,
                                               transport=transport,
                                               delta_state=delta_state,
                                               **overrides)
        else:
            raise VmError("pass firmware or a prebuilt recipe")
        self.config = self.recipe.config
        self.workers = workers
        #: Instructions per lease; 0 = run each lease to fork/completion.
        self.lease_budget = lease_budget
        #: Max leases coalesced into one job envelope.
        self.lease_batch = max(1, lease_batch)
        self.channel = ChunkChannel()
        self.statewire = StateWire(delta=self.recipe.delta_state)
        self.retry_policy = self.config.retry_policy or RetryPolicy()
        self._coverage: Set[int] = set()
        self._pool: Optional[WorkerPool] = None
        self._last_stats = None
        self._lease_seq = 0
        self._degraded = False
        self._worker_wire: Dict[object, object] = {}
        self._worker_statewire: Dict[object, object] = {}
        #: Digests pinned on behalf of each worker's in-flight batch
        #: (they back wires the recovery ladder may need to re-encode).
        self._pinned: Dict[int, List[str]] = {}
        self._journal_path = journal
        self._journal_fsync = journal_fsync_every
        #: Envelopes merged between periodic checkpoints.
        self.checkpoint_every = max(1, checkpoint_every)
        self._journal: Optional[Journal] = None
        #: Checkpoint state restored by :meth:`resume`, consumed by the
        #: next :meth:`run`.
        self._resume_state: Optional[Dict[str, Any]] = None
        self._resume_run_kwargs: Optional[Dict[str, Any]] = None

    # -- pool lifecycle -----------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.recipe, self.workers,
                                    channel=self.channel)
        return self._pool

    @property
    def pool_stats(self):
        """Stats of the live pool, or the last closed pool's — reading
        stats must never spawn workers (a post-``close`` read that
        resurrected the pool would leak processes past the campaign)."""
        if self._pool is not None:
            return self._pool.stats
        return self._last_stats

    def warm(self) -> None:
        self.pool.warm("engine")

    def close(self) -> None:
        if self._pool is not None:
            self._last_stats = self._pool.stats
            self._pool.close()
            self._pool = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "ParallelAnalysisEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- leasing ------------------------------------------------------------

    def _make_searcher(self):
        kwargs = {}
        if self.config.searcher == "random":
            kwargs["seed"] = self.config.seed
        elif self.config.searcher == "coverage":
            kwargs["covered"] = self._coverage
        return make_searcher(self.config.searcher, **kwargs)

    def _peer(self, worker_id: int) -> object:
        """Chunk-channel peer key for a worker. After degrading to the
        in-process pool all results come from one harness whatever
        worker id they echo, so they share one peer identity."""
        return "degraded" if self._degraded else worker_id

    def _pack_leases(self, payload: Dict[str, Any],
                     worker_id: int) -> bytes:
        """``pack`` hook for the pool: structured batch → envelope
        bytes, with the transport's piggyback lane (shm acks owed to
        this worker, chunk evictions it must learn about) taken at pack
        time so a re-pack ships fresh bookkeeping."""
        transport = self.pool.transport
        peer = self._peer(worker_id)
        return pack_lease_batch(
            payload["leases"], transport, worker_id,
            acks=transport.take_acks(worker_id),
            evictions=self.channel.take_evictions(peer),
            state_evictions=self.statewire.take_evictions(peer),
            statewire=self.statewire)

    def _dispatch_batch(self, worker_id: int,
                        states: Sequence[Optional[ExecState]],
                        budget: int) -> None:
        leases = []
        pinned = self._pinned.setdefault(worker_id, [])
        for state in states:
            self._lease_seq += 1
            lease: Dict[str, Any] = {
                "budget": budget,
                "sym_base": self._lease_seq * SYM_BASE_STRIDE}
            if state is None:
                lease["state"] = None
                lease["wire"] = None
            else:
                wire = self.channel.reencode(state._wire,
                                             self._peer(worker_id))
                # The adopt-time pin transfers from the parked state to
                # the in-flight batch (same refs): _readdress may need
                # these bodies again after a respawn.
                pinned.extend(_wire_digests(wire))
                self.channel.unpin(_wire_digests(state._wire))
                del state._wire
                # The lease parks the *live* state; the statewire delta
                # encode happens at pack time (pack_lease_batch), so a
                # recovery re-pack re-encodes against the new peer's
                # registries instead of replaying stale bytes.
                lease["state"] = state
                lease["wire"] = wire
            leases.append(lease)
        self.pool.submit(worker_id, "lease-batch", {"leases": leases},
                         pack=self._pack_leases)
        if self._journal is not None:
            self._journal.append(
                "lease-issued", worker=worker_id, leases=len(leases),
                budget=budget, seq=self._lease_seq,
                root=any(lease["state"] is None for lease in leases))
        self.pool.stats.leases += len(leases)
        self.pool.stats.batches += 1
        self.pool.stats.states_shipped += sum(
            1 for lease in leases if lease["state"] is not None)

    def _adopt(self, shipped, worker_id: int) -> ExecState:
        """Decode a shipped ``(kind, record, page bodies, wire)`` state
        and remember which chunks back its snapshot (the snapshot
        itself stays as references until the state is leased out
        again). The backing chunks are pinned against LRU eviction for
        as long as the state is parked."""
        kind, record, bodies, wire = shipped
        peer = self._peer(worker_id)
        self.channel.absorb(wire, peer)
        state = self.statewire.decode_state(kind, record, bodies, peer)
        state._wire = wire
        self.channel.pin(_wire_digests(wire))
        return state

    def _decode_batch(self, worker_id: int, data) -> List[Dict[str, Any]]:
        """One arrived batch envelope → the list of per-lease result
        dicts. Packed bytes come from real workers; the degraded
        InlinePool delivers the structured form directly."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            transport = self.pool.transport
            t0 = time.perf_counter()
            acks, evictions, state_evictions, worker_enc, worker_dec, \
                results = unpack_lease_results(data, transport, worker_id)
            stats = transport.stats
            stats.decode_s += time.perf_counter() - t0
            stats.worker_encode_s += worker_enc
            stats.worker_decode_s += worker_dec
            transport.absorb_acks(worker_id, acks)
            peer = self._peer(worker_id)
            self.channel.forget_remote(peer, evictions)
            self.statewire.forget_remote(peer, state_evictions)
            return results
        return data["results"]

    # -- recovery hooks (see PoolRecoveryMixin) -----------------------------

    def _forget_peer(self, worker_id: object) -> None:
        self.channel.known.pop(worker_id, None)
        self.statewire.forget_peer(worker_id)

    def _readdress(self, payload, peer: object) -> None:
        if not isinstance(payload, dict):
            return
        if payload.get("wire") is not None:  # legacy single-lease dict
            payload["wire"] = self.channel.reencode(payload["wire"], peer)
        for lease in payload.get("leases", ()):
            if lease.get("wire") is not None:
                lease["wire"] = self.channel.reencode(lease["wire"], peer)
            if lease.get("state") is not None:
                # The replacement worker's base/page registries are
                # cold: the re-pack must ship a self-contained full
                # pickle, never a delta against history the old worker
                # took down with it.
                lease["force_full"] = True

    # -- journal lifecycle ---------------------------------------------------

    @classmethod
    def resume(cls, journal_dir: PathLike,
               workers: Optional[int] = None) -> "ParallelAnalysisEngine":
        """Reopen an interrupted (or completed) journaled DSE campaign.

        Restores the frontier (parked *and* in-flight states, with their
        snapshot chunks), coverage, merged paths and bugs from the last
        loadable checkpoint; :meth:`resume_run` then continues the
        campaign under the recorded budgets. A corrupt checkpoint blob
        falls back to the previous checkpoint — recorded in the journal
        as ``checkpoint-skipped``, never silently. Worker count may
        differ from the original run: verdicts are
        worker-count-independent.
        """
        journal = Journal.open(journal_dir)
        opened = journal.first("campaign-opened")
        if opened is None:
            raise JournalError(
                f"journal {journal_dir} records no campaign-opened event")
        if opened.get("mode") != "dse":
            raise JournalError(
                f"journal {journal_dir} holds a {opened.get('mode')!r} "
                f"campaign, not a DSE one")
        setup = journal.get_blob(opened["blob"])
        engine = cls(recipe=setup["recipe"],
                     workers=workers or setup["workers"],
                     lease_budget=setup["lease_budget"],
                     lease_batch=setup["lease_batch"])
        engine._journal = journal
        engine._resume_run_kwargs = dict(setup["run_kwargs"])
        for checkpoint in reversed(journal.events("checkpoint")):
            digest = checkpoint["blob"]
            try:
                engine._resume_state = journal.get_blob(digest)
            except JournalCorruptError:
                journal.append("checkpoint-skipped", blob=digest,
                               seq_skipped=checkpoint["seq"])
                continue
            break
        return engine

    def resume_run(self) -> AnalysisReport:
        """Continue the resumed campaign under its recorded budgets."""
        if self._resume_run_kwargs is None:
            raise JournalError("resume_run() requires resume()")
        return self.run(**self._resume_run_kwargs)

    def _open_journal(self, run_kwargs: Dict[str, Any]) -> Optional[Journal]:
        if self._journal is not None:
            return self._journal
        if self._journal_path is None:
            return None
        journal = Journal.create(self._journal_path,
                                 fsync_every=self._journal_fsync)
        blob = journal.put_blob(
            {"recipe": self.recipe, "workers": self.workers,
             "lease_budget": self.lease_budget,
             "lease_batch": self.lease_batch,
             "run_kwargs": dict(run_kwargs)},
            fsync=True)
        journal.append("campaign-opened", mode="dse", blob=blob,
                       workers=self.workers,
                       config=config_fingerprint(self.config),
                       **run_kwargs)
        journal.commit()
        self._journal = journal
        return journal

    def _write_checkpoint(self, journal: Journal, report: AnalysisReport,
                          searcher, executed: int,
                          stats_sums: Dict[str, int], chain_depth: int,
                          bugs: List[Tuple[object, Tuple[int, ...]]]
                          ) -> None:
        """Seal the campaign's complete resumable state.

        The frontier (parked states) and every in-flight lease's state
        travel as ``(pickled ExecState, refs-only wire)`` pairs plus one
        shared ``digest → (body, bits)`` chunk map resolved from the
        coordinator's channel — every referenced chunk is pinned for
        exactly as long as its state is parked or leased, so the bodies
        are guaranteed resolvable at checkpoint time.
        """
        entries: List[Tuple[ExecState, SnapshotWire]] = []
        chunks: Dict[str, Tuple[dict, int]] = {}
        root_pending = False

        def add_state(state: ExecState, wire: SnapshotWire) -> None:
            for _name, (digest, _cycle, bits) in wire.refs.items():
                if digest not in chunks:
                    chunks[digest] = (
                        self.channel._body_of(digest, wire),
                        self.channel.chunk_bits.get(digest, bits))
            entries.append((state, SnapshotWire(
                refs=dict(wire.refs), chunks={},
                method=wire.method, bits=wire.bits)))

        # Frontier states carry their wire as an attribute; strip it for
        # pickling (the wire rides separately) and restore after.
        stripped: List[Tuple[ExecState, SnapshotWire]] = []
        for state in list(searcher.states):
            wire = state._wire
            del state._wire
            stripped.append((state, wire))
            add_state(state, wire)
        for _kind, payload in self.pool.in_flight_payloads():
            if not isinstance(payload, dict):
                continue
            for lease in payload.get("leases", ()):
                if lease.get("state") is None:
                    root_pending = True  # the boot lease never returned
                else:
                    add_state(lease["state"], lease["wire"])
        try:
            blob = journal.put_blob(
                {"executed": executed,
                 "lease_seq": self._lease_seq,
                 "coverage": sorted(self._coverage),
                 "paths": list(report.paths),
                 "forks": report.forks,
                 "max_live_states": report.max_live_states,
                 "modelled_time_s": report.modelled_time_s,
                 "resilience": report.resilience.as_dict(),
                 "stats_sums": dict(stats_sums),
                 "chain_depth": chain_depth,
                 "bugs": list(bugs),
                 "root_pending": root_pending,
                 "states": entries,
                 "chunks": chunks},
                fsync=True)
        finally:
            for state, wire in stripped:
                state._wire = wire
        journal.append("snapshot-sealed", states=len(entries),
                       chunks=len(chunks),
                       bits=sum(bits for _body, bits in chunks.values()))
        journal.append("checkpoint", executed=executed,
                       states=len(entries), blob=blob)
        journal.commit()

    def _restore_checkpoint(self, state: Dict[str, Any],
                            report: AnalysisReport, searcher
                            ) -> Tuple[int, Dict[str, int], int,
                                       List[Tuple[object, Tuple[int, ...]]],
                                       bool]:
        """Rebuild coordinator state from a checkpoint blob; returns the
        ``(executed, stats_sums, chain_depth, bugs, root_pending)``
        loop-local state :meth:`run` continues from."""
        self._lease_seq = state["lease_seq"]
        self._coverage.clear()
        self._coverage.update(state["coverage"])
        report.paths = list(state["paths"])
        report.forks = state["forks"]
        report.max_live_states = state["max_live_states"]
        report.modelled_time_s = state["modelled_time_s"]
        report.resilience.merge(state["resilience"])
        chunks = state["chunks"]
        for parked, wire in state["states"]:
            carry = SnapshotWire(
                refs=dict(wire.refs),
                chunks={digest: chunks[digest]
                        for _n, (digest, _c, _b) in wire.refs.items()},
                method=wire.method, bits=wire.bits)
            # The journal acts as the sending peer: absorb verifies every
            # chunk body against its content address on the way in.
            self.channel.absorb(carry, "journal")
            parked._wire = SnapshotWire(refs=dict(wire.refs), chunks={},
                                        method=wire.method, bits=wire.bits)
            self.channel.pin(_wire_digests(parked._wire))
            searcher.add(parked)
        return (state["executed"], dict(state["stats_sums"]),
                state["chain_depth"], list(state["bugs"]),
                state["root_pending"])

    # -- main loop ----------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000,
            max_states: int = 4096,
            stop_after_bugs: int = 0) -> AnalysisReport:
        """Run the leased Algorithm 1 to completion or budget."""
        report = AnalysisReport(strategy="hardsnap")
        journal = self._open_journal(
            {"max_instructions": max_instructions,
             "max_states": max_states,
             "stop_after_bugs": stop_after_bugs})
        start = time.perf_counter()
        searcher = self._make_searcher()
        pool = self.pool  # starts the workers
        resilience0 = pool.stats.resilience.as_dict()
        idle: Deque[int] = deque(range(self.workers))
        bugs: List[Tuple[object, Tuple[int, ...]]] = []
        stats_sums = {"saves": 0, "restores": 0, "logical_bits": 0,
                      "stored_bits": 0, "chunk_hits": 0, "chunk_misses": 0,
                      "capture_skips": 0}
        chain_depth = 0
        executed = 0
        outstanding = 0  # leases awaiting results
        batches_out = 0  # envelopes awaiting results
        stop: Optional[str] = None
        merged_envelopes = 0  # since the last periodic checkpoint
        root_pending = True
        if self._resume_state is not None:
            state, self._resume_state = self._resume_state, None
            (executed, stats_sums, chain_depth, bugs,
             root_pending) = self._restore_checkpoint(state, report,
                                                      searcher)

        def lease_budget_now() -> int:
            if self.lease_budget:
                return self.lease_budget
            return 0  # to fork/completion

        def dispatch() -> None:
            """Feed every idle worker from the searcher, coalescing up
            to ``lease_batch`` leases per envelope (spread evenly so one
            worker never hoards the backlog while others starve)."""
            nonlocal outstanding, batches_out
            while idle and len(searcher):
                share = -(-len(searcher) // len(idle))  # ceil
                take = min(self.lease_batch, max(1, share), len(searcher))
                states = [searcher.pop_next(None) for _ in range(take)]
                self._dispatch_batch(idle.popleft(), states,
                                     lease_budget_now())
                outstanding += take
                batches_out += 1

        # Root lease: worker 0 builds the initial state itself. A resumed
        # campaign only re-issues it when the checkpoint recorded the
        # boot lease as still un-returned.
        if root_pending:
            self._dispatch_batch(idle.popleft(), [None], lease_budget_now())
            outstanding += 1
            batches_out += 1

        while True:
            if stop is None:
                if shutdown_requested():
                    # Cooperative shutdown: stop dispatching, drain every
                    # outstanding envelope (merged below as usual), then
                    # fall out with a checkpoint-current journal.
                    stop = "interrupted"
                elif executed >= max_instructions and \
                        (len(searcher) or outstanding):
                    stop = "instruction-budget"
                elif stop_after_bugs and len(bugs) >= stop_after_bugs:
                    stop = "bug-budget"
            if stop is None:
                dispatch()
            if batches_out == 0:
                break
            # Async draining: collect every envelope already delivered
            # (first one blocking), hand the freed workers new leases,
            # and only then pay the decode cost.
            # (self.pool, not the local: the recovery ladder may have
            # swapped in an InlinePool since the loop started.)
            arrived = [self._await_result()]
            arrived.extend(self.pool.drain_results())
            # Snapshot each completed batch's pins *before* dispatch():
            # a worker has at most one batch in flight, so at arrival
            # time _pinned[worker_id] holds exactly that batch's pins —
            # re-dispatching the freed worker below would extend the
            # same list with the *next* batch's pins, and unpinning
            # those early would expose in-flight chunks to LRU eviction
            # while the recovery ladder may still need them.
            batch_pins = [self._pinned.pop(worker_id, [])
                          for _kind, worker_id, _data in arrived]
            for _kind, worker_id, _data in arrived:
                idle.append(worker_id)
                batches_out -= 1
            if stop is None:
                dispatch()
            for (_kind, worker_id, data), pins in zip(arrived, batch_pins):
                # Pipelined merge: decode one envelope, fold its states
                # into the searcher, then (below) immediately feed any
                # idle worker before decoding the next envelope — batch
                # i+1 executes while batch i+2..n are still merging.
                results = self._decode_batch(worker_id, data)
                if journal is not None:
                    journal.append("envelope-merged", worker=worker_id,
                                   leases=len(results))
                for res in results:
                    outstanding -= 1
                    executed += res["executed"]
                    self._coverage.update(res["coverage"])
                    report.modelled_time_s += res["modelled_dt"]
                    report.resilience.merge(res["resilience"])
                    for key in stats_sums:
                        stats_sums[key] += res["stats"][key]
                    chain_depth = max(chain_depth,
                                      res["stats"]["chain_depth"])
                    bugs.extend(res["bugs"])
                    if journal is not None:
                        for bug, lineage in res["bugs"]:
                            journal.append("bug-found", bug=bug.kind,
                                           pc=bug.pc,
                                           lineage=list(lineage))
                    self._worker_wire[self._peer(worker_id)] = \
                        res["wire_stats"]
                    if res.get("state_wire") is not None:
                        self._worker_statewire[self._peer(worker_id)] = \
                            res["state_wire"]
                    if res["completed"] is not None:
                        report.paths.append(res["completed"])
                    # Serial parity: forks count before the
                    # max_states cap.
                    report.forks += len(res["children"])
                    incoming = []
                    if res["continuation"] is not None:
                        incoming.append(res["continuation"])
                    incoming.extend(res["children"])
                    for i, shipped in enumerate(incoming):
                        state = self._adopt(shipped, worker_id)
                        if journal is not None and (
                                res["continuation"] is None or i > 0):
                            journal.append("state-forked",
                                           lineage=list(state.lineage))
                        if len(searcher) + outstanding < max_states:
                            searcher.add(state)
                        else:
                            self.channel.unpin(_wire_digests(shipped[3]))
                    report.max_live_states = max(
                        report.max_live_states,
                        len(searcher) + outstanding)
                self.channel.unpin(pins)
                merged_envelopes += 1
                if stop is None:
                    dispatch()
            if journal is not None and \
                    merged_envelopes >= self.checkpoint_every:
                self._write_checkpoint(journal, report, searcher,
                                       executed, stats_sums,
                                       chain_depth, bugs)
                merged_envelopes = 0

        report.stop_reason = stop or "exhausted"
        report.instructions = executed
        report.coverage = len(self._coverage)
        self._finalise_identity(report, bugs)
        report.snapshot_saves = stats_sums["saves"]
        report.snapshot_restores = stats_sums["restores"]
        report.snapshot_logical_bits = stats_sums["logical_bits"]
        report.snapshot_stored_bits = stats_sums["stored_bits"]
        lookups = (stats_sums["chunk_hits"] + stats_sums["chunk_misses"]
                   + stats_sums["capture_skips"])
        report.snapshot_dedup_hit_rate = (
            (stats_sums["chunk_hits"] + stats_sums["capture_skips"])
            / lookups if lookups else 0.0)
        report.snapshot_chain_depth = chain_depth
        report.host_time_s = time.perf_counter() - start
        pool.stats.host_time_s += report.host_time_s
        pool.stats.wire.merge(self.channel.stats)
        self.channel.stats = type(self.channel.stats)()
        for wire_stats in self._worker_wire.values():
            pool.stats.wire.merge(wire_stats)
        self._worker_wire.clear()
        pool.stats.state_wire.merge(self.statewire.stats)
        self.statewire.stats = type(self.statewire.stats)()
        for sw_stats in self._worker_statewire.values():
            pool.stats.state_wire.merge(sw_stats)
        self._worker_statewire.clear()
        # Pool-boundary recovery (respawns/reissues/duplicates/degraded)
        # joins the link-layer events the workers reported per lease.
        report.resilience.merge(pool.stats.resilience.delta(resilience0))
        if journal is not None:
            # Final checkpoint: a budget-stopped campaign's frontier is
            # resumable; an exhausted one restores to an empty frontier
            # and re-derives the identical report.
            self._write_checkpoint(journal, report, searcher, executed,
                                   stats_sums, chain_depth, bugs)
            if report.stop_reason == "interrupted":
                journal.append("campaign-interrupted", executed=executed)
            elif not journal.sealed:
                journal.append("campaign-sealed", executed=executed,
                               verdict=report.verdict_summary())
            journal.commit()
        return report

    @staticmethod
    def _finalise_identity(report: AnalysisReport,
                           bugs: List[Tuple[object, Tuple[int, ...]]]
                           ) -> None:
        """Renumber merged paths deterministically: state ids are
        assigned 1..N in lineage order (worker-local ids mean nothing
        globally), and bugs are remapped onto the renumbered paths."""
        report.paths.sort(key=lambda p: p.lineage)
        ids: Dict[Tuple[int, ...], int] = {}
        for i, path in enumerate(report.paths, start=1):
            path.state_id = i
            ids[path.lineage] = i
        ordered = sorted(bugs, key=lambda item: (item[1], item[0].steps))
        report.bugs = []
        for bug, lineage in ordered:
            bug.state_id = ids.get(lineage, 0)
            report.bugs.append(bug)


def serial_report(firmware: Union[str, Program],
                  peripherals: Sequence[Tuple[object, int]] = (),
                  config: Optional[SessionConfig] = None,
                  run_kwargs: Optional[dict] = None,
                  **overrides) -> AnalysisReport:
    """Convenience: the serial engine's report for the same arguments —
    the reference a parallel run's verdicts are compared against."""
    from repro.core.hardsnap import HardSnapSession
    session = HardSnapSession(firmware, peripherals, config=config,
                              **overrides)
    return session.run(**(run_kwargs or {}))
