"""RTL simulation semantics, tested on both backends, plus differential
equivalence (the compiled backend must match the interpreter bit for bit).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CombinationalLoopError, SimulationError
from repro.hdl import elaborate
from repro.sim import CompiledSimulation, Interpreter, VcdWriter

BACKENDS = [Interpreter, CompiledSimulation]


def _both(src, top):
    design = elaborate(src, top)
    return [cls(design) for cls in BACKENDS]


@pytest.fixture(params=BACKENDS, ids=["interp", "compiled"])
def backend(request):
    return request.param


class TestSequentialSemantics:
    def test_nonblocking_swap(self, backend):
        src = """
        module m (input wire clk, output wire [7:0] oa, output wire [7:0] ob);
            reg [7:0] a = 8'd1;
            reg [7:0] b = 8'd2;
            always @(posedge clk) begin
                a <= b;
                b <= a;
            end
            assign oa = a;
            assign ob = b;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (2, 1)
        sim.step()
        assert (sim.peek("a"), sim.peek("b")) == (1, 2)

    def test_blocking_temp_in_seq(self, backend):
        src = """
        module m (input wire clk, input wire [7:0] x, output wire [7:0] o);
            reg [7:0] t;
            reg [7:0] acc;
            always @(posedge clk) begin
                t = x + 1;
                t = t * 2;
                acc <= t;
            end
            assign o = acc;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke("x", 5)
        sim.step()
        assert sim.peek("o") == 12

    def test_blocking_not_visible_to_sibling_blocks(self, backend):
        src = """
        module m (input wire clk, output wire [7:0] seen);
            reg [7:0] shared = 8'd7;
            reg [7:0] observer;
            always @(posedge clk) shared = shared + 1;
            always @(posedge clk) observer <= shared;
            assign seen = observer;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.step()
        # The observer must read the PRE-edge value of `shared`.
        assert sim.peek("seen") == 7

    def test_last_nonblocking_write_wins(self, backend):
        src = """
        module m (input wire clk, input wire sel, output wire [7:0] o);
            reg [7:0] r;
            always @(posedge clk) begin
                r <= 8'd1;
                if (sel) r <= 8'd2;
            end
            assign o = r;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke("sel", 0); sim.step()
        assert sim.peek("o") == 1
        sim.poke("sel", 1); sim.step()
        assert sim.peek("o") == 2

    def test_partial_bit_writes_merge(self, backend):
        src = """
        module m (input wire clk, input wire [3:0] hi, input wire [3:0] lo,
                  output wire [7:0] o);
            reg [7:0] r;
            always @(posedge clk) begin
                r[7:4] <= hi;
                r[3:0] <= lo;
            end
            assign o = r;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke_many({"hi": 0xA, "lo": 0x5})
        sim.step()
        assert sim.peek("o") == 0xA5

    def test_dynamic_bit_write(self, backend):
        src = """
        module m (input wire clk, input wire [2:0] idx, input wire v,
                  output wire [7:0] o);
            reg [7:0] r;
            always @(posedge clk) r[idx] <= v;
            assign o = r;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        for i in (0, 3, 7):
            sim.poke_many({"idx": i, "v": 1})
            sim.step()
        assert sim.peek("o") == 0b10001001

    def test_concat_lvalue_scatter(self, backend):
        src = """
        module m (input wire clk, input wire [8:0] val,
                  output wire [7:0] o, output wire c);
            reg [7:0] r;
            reg cr;
            always @(posedge clk) {cr, r} <= val;
            assign o = r;
            assign c = cr;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke("val", 0x1A5)
        sim.step()
        assert sim.peek("o") == 0xA5 and sim.peek("c") == 1

    def test_memory_write_read(self, backend):
        src = """
        module m (input wire clk, input wire [3:0] wa, input wire [3:0] ra,
                  input wire [7:0] wd, input wire we, output wire [7:0] rd);
            reg [7:0] mem [0:15];
            always @(posedge clk) if (we) mem[wa] <= wd;
            assign rd = mem[ra];
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke_many({"wa": 3, "wd": 0x77, "we": 1})
        sim.step()
        sim.poke_many({"we": 0, "ra": 3})
        assert sim.peek("rd") == 0x77

    def test_memory_read_during_write_sees_old(self, backend):
        src = """
        module m (input wire clk, output wire [7:0] o);
            reg [7:0] mem [0:3];
            reg [7:0] captured;
            always @(posedge clk) begin
                mem[0] <= mem[0] + 1;
                captured <= mem[0];
            end
            assign o = captured;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.step()
        assert sim.peek("o") == 0  # pre-edge value
        sim.step()
        assert sim.peek("o") == 1


class TestCombinational:
    def test_topological_chain(self, backend):
        src = """
        module m (input wire clk, input wire [7:0] a, output wire [7:0] o);
            wire [7:0] s1, s2;
            assign o = s2 + 1;
            assign s2 = s1 * 2;
            assign s1 = a + 3;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke("a", 10)
        assert sim.peek("o") == (10 + 3) * 2 + 1

    def test_comb_loop_detected(self):
        src = """
        module m (input wire clk, output wire a);
            wire b;
            assign a = ~b;
            assign b = ~a;
        endmodule
        """
        with pytest.raises(CombinationalLoopError):
            Interpreter(elaborate(src, "m"))

    def test_latch_like_hold(self, backend):
        src = """
        module m (input wire clk, input wire en, input wire [7:0] d,
                  output wire [7:0] q);
            reg [7:0] lat;
            always @(*) begin
                if (en) lat = d;
            end
            assign q = lat;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke_many({"en": 1, "d": 0x33})
        assert sim.peek("q") == 0x33
        sim.poke_many({"en": 0, "d": 0x44})
        assert sim.peek("q") == 0x33  # held

    def test_reduction_operators(self, backend):
        src = """
        module m (input wire clk, input wire [7:0] a,
                  output wire all1, output wire any1, output wire par);
            assign all1 = &a;
            assign any1 = |a;
            assign par = ^a;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke("a", 0xFF)
        assert (sim.peek("all1"), sim.peek("any1"), sim.peek("par")) == (1, 1, 0)
        sim.poke("a", 0x01)
        assert (sim.peek("all1"), sim.peek("any1"), sim.peek("par")) == (0, 1, 1)
        sim.poke("a", 0x00)
        assert (sim.peek("all1"), sim.peek("any1"), sim.peek("par")) == (0, 0, 0)

    def test_division_semantics(self, backend):
        src = """
        module m (input wire clk, input wire [7:0] a, input wire [7:0] b,
                  output wire [7:0] q, output wire [7:0] r);
            assign q = a / b;
            assign r = a % b;
        endmodule
        """
        sim = backend(elaborate(src, "m"))
        sim.poke_many({"a": 47, "b": 5})
        assert sim.peek("q") == 9 and sim.peek("r") == 2
        sim.poke_many({"a": 47, "b": 0})
        assert sim.peek("q") == 0xFF and sim.peek("r") == 47


class TestStateCapture:
    def test_save_load_roundtrip(self, backend, rich_design):
        sim = backend(rich_design)
        rng = random.Random(5)
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        for _ in range(20):
            sim.poke_many({"a": rng.randrange(256), "b": rng.randrange(256),
                           "sel": rng.randrange(8)})
            sim.step()
        snap = sim.save_state()
        wires_before = dict(sim.values)
        for _ in range(10):
            sim.poke_many({"a": rng.randrange(256), "b": rng.randrange(256)})
            sim.step()
        sim.load_state(snap)
        assert sim.values == wires_before

    def test_load_rejects_bad_memory_shape(self, backend, rich_design):
        sim = backend(rich_design)
        snap = sim.save_state()
        snap["memories"]["mem"] = [0] * 3
        with pytest.raises(SimulationError):
            sim.load_state(snap)

    def test_unknown_net_errors(self, backend, rich_design):
        sim = backend(rich_design)
        with pytest.raises(SimulationError):
            sim.peek("no_such_net")
        with pytest.raises(SimulationError):
            sim.poke("no_such_net", 1)


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255),
                              st.integers(0, 7)),
                    min_size=1, max_size=30))
    def test_rich_design_random_stimulus(self, stimulus):
        from tests.conftest import RICH_DESIGN
        design = elaborate(RICH_DESIGN, "rich")
        sims = [cls(design) for cls in BACKENDS]
        for s in sims:
            s.poke("rst", 1); s.step(); s.poke("rst", 0)
        for a, b, sel in stimulus:
            for s in sims:
                s.poke_many({"a": a, "b": b, "sel": sel})
                s.step()
            v0, v1 = sims[0].values, sims[1].values
            assert v0 == v1
        assert sims[0].memories == sims[1].memories

    @pytest.mark.parametrize("name", ["gpio", "timer", "uart", "intc", "dma"])
    def test_corpus_equivalence_random_bus_pokes(self, name, corpus_designs):
        design = corpus_designs[name]
        sims = [cls(design) for cls in BACKENDS]
        rng = random.Random(hash(name) & 0xFFFF)
        inputs = [n.name for n in design.inputs if n.name != "clk"]
        for s in sims:
            s.poke("rst", 1); s.step(2); s.poke("rst", 0)
        for _ in range(120):
            pokes = {}
            for net in inputs:
                if rng.random() < 0.3:
                    width = design.nets[net].width
                    pokes[net] = rng.randrange(1 << min(width, 30))
            for s in sims:
                if pokes:
                    s.poke_many(pokes)
                s.step()
            assert sims[0].values == sims[1].values, name
        assert sims[0].memories == sims[1].memories


class TestVcd:
    def test_vcd_records_changes(self, rich_design):
        sim = Interpreter(rich_design)
        writer = VcdWriter()
        sim.attach_vcd(writer)
        sim.poke("rst", 1); sim.step(); sim.poke("rst", 0)
        sim.poke_many({"a": 0xAA, "b": 0x55}); sim.step(3)
        text = writer.getvalue()
        assert "$enddefinitions" in text
        assert writer.changes > 0
        assert "#1" in text

    def test_vcd_signal_filter(self, rich_design):
        sim = Interpreter(rich_design)
        writer = VcdWriter(signals=["acc"])
        sim.attach_vcd(writer)
        sim.step(2)
        assert len(writer._ids) == 1

    def test_detach_stops_sampling(self, rich_design):
        sim = Interpreter(rich_design)
        writer = VcdWriter()
        sim.attach_vcd(writer)
        sim.step()
        count = writer.changes
        sim.detach_vcd()
        sim.poke("a", 0x12)
        sim.step(5)
        assert writer.changes == count
