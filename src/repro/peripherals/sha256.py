"""SHA-256 accelerator — a high-complexity corpus peripheral.

A full FIPS-180-4 compression core, one round per cycle (64 cycles per
block) with a rolling 16-word message schedule, the architecture used by
the OpenCores/secworks ``sha256`` IP that HardSnap-class corpora draw on.

Register map:

=========== ========= ==============================================
0x00        CTRL      bit0 INIT (load H constants), bit1 NEXT (start
                      compressing the loaded block), bit2 IRQ_EN
0x04        STATUS    bit0 BUSY, bit1 DONE (write 1 to bit1 to clear)
0x40-0x7C   BLOCK     16 big-endian message words W0..W15
0x80-0x9C   DIGEST    8 hash words H0..H7 (read-only)
=========== ========= ==============================================

Message padding is the driver's job (as on the real IP): firmware writes
padded 512-bit blocks and pulses INIT once, then NEXT per block.

Round constants and initial hash values are derived at generation time
with exact integer arithmetic (cube/square roots of the first primes), so
no magic tables are embedded in the source.
"""

from __future__ import annotations

import math
from typing import List

from repro.peripherals.axi_skeleton import axi_module

NAME = "sha256"
ADDR_BITS = 8
IRQ = True

REGISTERS = {
    "CTRL": 0x00,
    "STATUS": 0x04,
    "BLOCK": 0x40,   # 16 words
    "DIGEST": 0x80,  # 8 words
}

CTRL_INIT = 1 << 0
CTRL_NEXT = 1 << 1
CTRL_IRQ_EN = 1 << 2
STATUS_BUSY = 1 << 0
STATUS_DONE = 1 << 1


def _primes(count: int) -> List[int]:
    out: List[int] = []
    candidate = 2
    while len(out) < count:
        if all(candidate % p for p in out if p * p <= candidate):
            out.append(candidate)
        candidate += 1
    return out


def _icbrt(n: int) -> int:
    """Exact integer cube root (floor)."""
    if n == 0:
        return 0
    x = 1 << ((n.bit_length() + 2) // 3)
    while True:
        y = (2 * x + n // (x * x)) // 3
        if y >= x:
            return x
        x = y


def round_constants() -> List[int]:
    """The 64 K constants: frac(cbrt(prime_i)) * 2^32, exact."""
    out: List[int] = []
    for p in _primes(64):
        root = _icbrt(p << 96)  # floor(cbrt(p) * 2^32)
        out.append(root & 0xFFFFFFFF)
    return out


def initial_hash() -> List[int]:
    """The 8 H constants: frac(sqrt(prime_i)) * 2^32, exact."""
    out: List[int] = []
    for p in _primes(8):
        root = math.isqrt(p << 64)  # floor(sqrt(p) * 2^32)
        out.append(root & 0xFFFFFFFF)
    return out


def _core_body() -> str:
    k = round_constants()
    h0 = initial_hash()
    k_cases = "\n".join(
        f"            7'd{i}: kt = 32'h{v:08x};" for i, v in enumerate(k))
    h_init = "\n".join(
        f"                        hreg{i} <= 32'h{v:08x};"
        for i, v in enumerate(h0))
    h_decls = "\n".join(f"    reg [31:0] hreg{i};" for i in range(8))
    digest_cases = "\n".join(
        f"                3'd{i}: rd_data = hreg{i};" for i in range(8))
    return f"""
    reg [31:0] a;
    reg [31:0] b;
    reg [31:0] c;
    reg [31:0] d;
    reg [31:0] e;
    reg [31:0] f;
    reg [31:0] g;
    reg [31:0] h;
{h_decls}
    reg [31:0] wmem [0:15];
    reg [6:0] t;
    reg busy;
    reg done;
    reg irq_en;

    // ---- message schedule (rolling 16-word window) ----
    wire [31:0] w2;
    wire [31:0] w7;
    wire [31:0] w15;
    wire [31:0] w16;
    assign w2 = wmem[t[3:0] - 4'd2];
    assign w7 = wmem[t[3:0] - 4'd7];
    assign w15 = wmem[t[3:0] - 4'd15];
    assign w16 = wmem[t[3:0]];
    wire [31:0] ssig0;
    wire [31:0] ssig1;
    assign ssig0 = {{w15[6:0], w15[31:7]}} ^ {{w15[17:0], w15[31:18]}} ^ (w15 >> 3);
    assign ssig1 = {{w2[16:0], w2[31:17]}} ^ {{w2[18:0], w2[31:19]}} ^ (w2 >> 10);
    wire [31:0] wt;
    assign wt = (t < 7'd16) ? w16 : (ssig1 + w7 + ssig0 + w16);

    // ---- round constant ROM ----
    reg [31:0] kt;
    always @(*) begin
        case (t)
{k_cases}
            default: kt = 32'h0;
        endcase
    end

    // ---- round function ----
    wire [31:0] bsig1;
    wire [31:0] chef;
    wire [31:0] t1;
    wire [31:0] bsig0;
    wire [31:0] majv;
    wire [31:0] t2;
    assign bsig1 = {{e[5:0], e[31:6]}} ^ {{e[10:0], e[31:11]}} ^ {{e[24:0], e[31:25]}};
    assign chef = (e & f) ^ ((~e) & g);
    assign t1 = h + bsig1 + chef + kt + wt;
    assign bsig0 = {{a[1:0], a[31:2]}} ^ {{a[12:0], a[31:13]}} ^ {{a[21:0], a[31:22]}};
    assign majv = (a & b) ^ (a & c) ^ (b & c);
    assign t2 = bsig0 + majv;

    always @(posedge clk) begin
        if (rst) begin
            a <= 0; b <= 0; c <= 0; d <= 0;
            e <= 0; f <= 0; g <= 0; h <= 0;
            t <= 0;
            busy <= 0;
            done <= 0;
            irq_en <= 0;
        end else begin
            if (bus_wr) begin
                if (bus_waddr[7:6] == 2'b01) begin
                    wmem[bus_waddr[5:2]] <= bus_wdata;
                end else begin
                    case (bus_waddr)
                        8'h00: begin
                            if (bus_wdata[0]) begin
{h_init}
                                done <= 1'b0;
                            end
                            if (bus_wdata[1]) begin
                                a <= hreg0; b <= hreg1; c <= hreg2; d <= hreg3;
                                e <= hreg4; f <= hreg5; g <= hreg6; h <= hreg7;
                                t <= 0;
                                busy <= 1'b1;
                                done <= 1'b0;
                            end
                            irq_en <= bus_wdata[2];
                        end
                        8'h04: begin
                            if (bus_wdata[1])
                                done <= 1'b0;
                        end
                        default: begin end
                    endcase
                end
            end
            if (busy) begin
                if (t >= 7'd16)
                    wmem[t[3:0]] <= wt;
                h <= g;
                g <= f;
                f <= e;
                e <= d + t1;
                d <= c;
                c <= b;
                b <= a;
                a <= t1 + t2;
                t <= t + 1;
                if (t == 7'd63) begin
                    busy <= 1'b0;
                    done <= 1'b1;
                    hreg0 <= hreg0 + (t1 + t2);
                    hreg1 <= hreg1 + a;
                    hreg2 <= hreg2 + b;
                    hreg3 <= hreg3 + c;
                    hreg4 <= hreg4 + (d + t1);
                    hreg5 <= hreg5 + e;
                    hreg6 <= hreg6 + f;
                    hreg7 <= hreg7 + g;
                end
            end
        end
    end

    reg [31:0] rd_data;
    always @(*) begin
        if (bus_raddr[7:5] == 3'b100) begin
            case (bus_raddr[4:2])
{digest_cases}
                default: rd_data = 32'h0;
            endcase
        end else if (bus_raddr[7:6] == 2'b01) begin
            rd_data = wmem[bus_raddr[5:2]];
        end else begin
            case (bus_raddr)
                8'h00: rd_data = {{29'h0, irq_en, 2'b00}};
                8'h04: rd_data = {{30'h0, done, busy}};
                default: rd_data = 32'h0;
            endcase
        end
    end

    assign irq = done && irq_en;
"""


def verilog() -> str:
    return axi_module(NAME, _core_body(), ADDR_BITS,
                      extra_ports=("output wire irq",))
