"""E1c — I/O forwarding latency and execution speed, per target.

The paper completes its performance evaluation "by measuring the I/O
forwarding latency and execution speed between the FPGA and the
simulator target". Three axes here:

* modelled per-access MMIO latency: shared memory (simulator) vs USB3
  (FPGA) vs JTAG (the Avatar/Inception hardware-in-the-loop baseline),
* modelled execution speed (target clock rates),
* host execution speed of the two simulation backends — the real
  compiled-vs-interpreted gap that stands in for FPGA-vs-Verilator.

Expected shapes: shm < usb3 << jtag for latency; the FPGA target
executes orders of magnitude more cycles per second than the simulator;
the compiled backend is much faster than the interpreter in wall time.
"""

import time

from benchmarks.conftest import PERIPH_BASE, emit, fpga_with, simulator_with
from repro.analysis import format_si_time, format_table
from repro.bus.transport import JTAG, SHARED_MEMORY, USB3
from repro.peripherals import catalog
from repro.sim import CompiledSimulation, Interpreter

ACCESSES = 64


def _per_access_modelled(target):
    before_transport = target.timer.transport_s
    before_total = target.timer.total_s
    for i in range(ACCESSES):
        target.write(PERIPH_BASE + 0x04, i)
        target.read(PERIPH_BASE + 0x04)
    transport = (target.timer.transport_s - before_transport) / (2 * ACCESSES)
    total = (target.timer.total_s - before_total) / (2 * ACCESSES)
    return transport, total


def test_io_forwarding_latency(benchmark):
    def run():
        sim_t = simulator_with(catalog.TIMER)
        fpga_t = fpga_with(catalog.TIMER)
        jtag_t = fpga_with(catalog.TIMER)
        jtag_t.transport = JTAG  # Avatar-style hardware-in-the-loop
        return {name: _per_access_modelled(t)
                for name, t in (("simulator/shm", sim_t),
                                ("fpga/usb3", fpga_t),
                                ("fpga/jtag", jtag_t))}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, format_si_time(tr), format_si_time(total)]
            for name, (tr, total) in results.items()]
    emit("io_forwarding_latency", format_table(
        ["target/transport", "transport per access", "total per access"],
        rows, title="E1c.1: MMIO forwarding latency (modelled, per access)"))

    shm = results["simulator/shm"][0]
    usb = results["fpga/usb3"][0]
    jtag = results["fpga/jtag"][0]
    assert shm < usb < jtag
    assert jtag / usb > 10          # JTAG is the order-of-magnitude loser
    assert usb / shm > 5            # USB3 round trips cost more than shm


def test_execution_speed(benchmark):
    """Cycles/second: modelled target clocks and measured host speed of
    both backends on the largest corpus peripheral."""
    design = catalog.SHA256.elaborate()
    interp = Interpreter(design)
    compiled = CompiledSimulation(design)
    for s in (interp, compiled):
        s.poke("rst", 1); s.step(2); s.poke("rst", 0)

    cycles = 2000

    def run_compiled():
        compiled.step(cycles)

    benchmark.pedantic(run_compiled, rounds=3, iterations=1)

    start = time.perf_counter()
    interp.step(cycles)
    interp_hz = cycles / (time.perf_counter() - start)
    start = time.perf_counter()
    compiled.step(cycles)
    compiled_hz = cycles / (time.perf_counter() - start)

    sim_t = simulator_with(catalog.SHA256)
    fpga_t = fpga_with(catalog.SHA256)
    rows = [
        ["simulator (modelled clock)", f"{sim_t.clock_hz:.3e}"],
        ["fpga (modelled clock)", f"{fpga_t.clock_hz:.3e}"],
        ["interpreter backend (host)", f"{interp_hz:.3e}"],
        ["compiled backend (host)", f"{compiled_hz:.3e}"],
    ]
    emit("io_forwarding_speed", format_table(
        ["execution engine", "cycles/second"], rows,
        title="E1c.2: execution speed, simulator vs FPGA substrate"))

    assert fpga_t.clock_hz / sim_t.clock_hz >= 100
    assert compiled_hz > 3 * interp_hz
