"""Exception hierarchy for the HardSnap reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish errors of the framework from bugs in the systems under test.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SolverError(ReproError):
    """Raised for malformed solver queries (width mismatches, bad ops)."""


class HdlError(ReproError):
    """Base class for Verilog frontend errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class LexError(HdlError):
    """Raised when the Verilog lexer encounters an invalid token."""


class ParseError(HdlError):
    """Raised when the Verilog parser encounters invalid syntax."""


class ElaborationError(HdlError):
    """Raised when a parsed design cannot be elaborated to RTL IR."""


class SimulationError(ReproError):
    """Raised for runtime errors inside the RTL simulator."""


class CombinationalLoopError(SimulationError):
    """Raised when the combinational netlist cannot be levelised."""


class InstrumentationError(ReproError):
    """Raised when the scan-chain insertion pass cannot transform a design.

    ``diagnostics`` carries the :class:`repro.lint.Diagnostic` findings
    when the failure came from the pre-flight lint, so callers (and the
    CLI) can render rule ids and source locations, not just a message.
    """

    def __init__(self, message: str, diagnostics=()):
        self.diagnostics = list(diagnostics)
        if self.diagnostics:
            details = "\n".join("  " + d.format() for d in self.diagnostics)
            message = f"{message}\n{details}"
        super().__init__(message)


class ScanCoverageError(InstrumentationError):
    """Raised when requested instrumentation would leave state uncovered.

    ``elements`` lists the offending state elements as
    ``(kind, name, bits, reason)`` tuples, one per register or memory the
    chain cannot thread.
    """

    def __init__(self, message: str, elements=(), diagnostics=()):
        self.elements = list(elements)
        if self.elements:
            details = "\n".join(
                f"  {kind} {name!r}: {bits} bits ({reason})"
                for kind, name, bits, reason in self.elements)
            message = f"{message}\n{details}"
        super().__init__(message, diagnostics)


class BusError(ReproError):
    """Raised for protocol violations on the bus functional models."""


class TargetError(ReproError):
    """Raised for errors on hardware targets (snapshot, transfer, I/O)."""


class SnapshotError(TargetError):
    """Raised when a hardware snapshot cannot be saved or restored."""


class SnapshotIntegrityError(SnapshotError):
    """Raised when a snapshot's integrity digest does not match its
    content — corrupt state is rejected instead of silently loaded."""


class LinkError(TargetError):
    """Raised when the debugger link to a target fails irrecoverably
    (retransmit budget exhausted, reconnect impossible)."""


class ScanShiftError(LinkError):
    """A scan-chain shift failed past the retry budget.

    Carries the context a recovery layer (or a human) needs:
    ``instance`` (the peripheral whose chain was shifting),
    ``operation`` ("capture" or "load") and ``attempts`` made.
    """

    def __init__(self, message: str, instance: str | None = None,
                 operation: str | None = None, attempts: int = 0):
        self.instance = instance
        self.operation = operation
        self.attempts = attempts
        if instance is not None:
            message = (f"scan {operation or 'shift'} on {instance!r} "
                       f"failed after {attempts} attempts: {message}")
        super().__init__(message)


class AssemblerError(ReproError):
    """Raised for errors in firmware assembly sources."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class VmError(ReproError):
    """Raised for errors inside the symbolic virtual machine."""


class ConcretizationError(VmError):
    """Raised when a symbolic value cannot be concretized at the VM boundary."""


class FirmwarePanic(VmError):
    """Raised when executed firmware reaches an irrecoverable fault."""


class JournalError(ReproError):
    """Raised for campaign-journal failures (missing journal, unknown
    event kinds, resume of an incompatible campaign)."""


class JournalCorruptError(JournalError):
    """A journal record or blob failed its checksum.

    ``offset`` is the byte offset of the corrupt record in
    ``events.log`` (``None`` for blob corruption, where ``digest`` names
    the blob instead). Raised only for *interior* damage — a torn tail
    (the file ends mid-record) is recovered by truncation, never
    silently: see :meth:`repro.core.journal.Journal.open`.
    """

    def __init__(self, message: str, offset: int | None = None,
                 digest: str | None = None):
        self.offset = offset
        self.digest = digest
        super().__init__(message)
