"""Property test: copy-on-write memory under random fork trees.

Simulates KLEE-style exploration: a tree of states forking at random
points, each then writing random bytes. Every leaf's memory must match
an independently maintained bytearray model — no write may leak between
siblings, no shared page may lose data.
"""

from hypothesis import given, settings, strategies as st

from repro.vm.memory import SymbolicMemory

SIZE = 4096


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_random_fork_tree_matches_model(data):
    rng_ops = data.draw(st.lists(
        st.tuples(
            st.sampled_from(["write", "fork", "switch"]),
            st.integers(0, SIZE - 4),
            st.integers(0, 2**32 - 1),
        ),
        min_size=5, max_size=60))

    memories = [SymbolicMemory(SIZE)]
    models = [bytearray(SIZE)]
    current = 0
    for op, addr, value in rng_ops:
        if op == "write":
            size = 1 + (value % 3)  # 1, 2 or 3 bytes
            memories[current].write(addr, value, size)
            models[current][addr:addr + size] = \
                (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        elif op == "fork":
            memories.append(memories[current].fork())
            models.append(bytearray(models[current]))
            current = len(memories) - 1
        else:  # switch
            current = value % len(memories)

    for memory, model in zip(memories, models):
        # Spot-check a deterministic sample of addresses plus all
        # addresses that were ever written.
        addrs = {addr for _, addr, _ in rng_ops} | {0, 1, SIZE - 4}
        for addr in addrs:
            got = memory.read(addr, 4 if addr <= SIZE - 4 else 1)
            size = 4 if addr <= SIZE - 4 else 1
            expected = int.from_bytes(model[addr:addr + size], "little")
            assert got == expected, (addr, got, expected)


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_parent_unaffected_by_deep_descendants(data):
    writes = data.draw(st.lists(
        st.tuples(st.integers(0, SIZE - 1), st.integers(0, 255)),
        min_size=1, max_size=20))
    root = SymbolicMemory(SIZE)
    for addr, value in writes:
        root.write_byte(addr, value)
    snapshot = {addr: root.read_byte(addr) for addr, _ in writes}
    # A chain of forks, each clobbering everything.
    node = root
    for _ in range(4):
        node = node.fork()
        for addr, _ in writes:
            node.write_byte(addr, 0xEE)
    for addr, expected in snapshot.items():
        assert root.read_byte(addr) == expected
