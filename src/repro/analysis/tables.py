"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render a fixed-width table; numeric cells are right-aligned."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in rows:
        cells = []
        for cell, width in zip(row, widths):
            if _is_numeric(cell):
                cells.append(cell.rjust(width))
            else:
                cells.append(cell.ljust(width))
        out.append(" | ".join(cells))
    return "\n".join(out)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.3f}"
        return f"{cell:.3e}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def format_snapshot_stats(controller_stats, store_stats) -> str:
    """Snapshot-subsystem accounting table.

    Duck-typed over :class:`~repro.core.snapshot.SnapshotStats` and
    :class:`~repro.core.store.StoreStats` (keeps analysis import-light).
    """
    logical = store_stats.logical_bits
    stored = store_stats.stored_bits
    rows = [
        ("saves", controller_stats.saves),
        ("restores", controller_stats.restores),
        ("resets", controller_stats.resets),
        ("logical bits", logical),
        ("stored bits", stored),
        ("compression", f"{store_stats.compression_ratio:.1f}x"),
        ("dedup hit-rate", f"{store_stats.dedup_hit_rate:.1%}"),
        ("capture skips", store_stats.capture_skips),
        ("unique chunks", store_stats.chunks),
        ("max chain depth", store_stats.max_chain_depth),
        ("flattens", store_stats.flattens),
        ("modelled save", format_si_time(controller_stats.modelled_save_s)),
        ("modelled restore",
         format_si_time(controller_stats.modelled_restore_s)),
    ]
    return format_table(("metric", "value"), rows, title="snapshot store")


def format_si_time(seconds: float) -> str:
    """Human-scale time: 1.23 us / 4.56 ms / 7.89 s."""
    if seconds == 0:
        return "0"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.2f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
