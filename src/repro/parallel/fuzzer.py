"""Input-sharded parallel fuzzing from a shared post-boot snapshot.

The serial :class:`~repro.core.fuzzer.SnapshotFuzzer` already splits
into a deterministic scheduler (mutation batches, corpus/coverage update
rule) and a hardware harness (restore boot snapshot, execute input).
This coordinator keeps the scheduler and shards the harness across the
worker pool: each worker rebuilds the target from the recipe, captures
the post-boot snapshot **once**, then restores it per input — the
HardSnap fuzzing loop, N times over.

Because every input executes from the same boot state, per-input results
are corpus-independent; merging them back **in global input order**
makes the run bit-identical to a serial run with the same ``batch_size``
(see :meth:`~repro.core.fuzzer.FuzzReport.verdict_summary`), whatever
the worker count.

Shards travel as packed ``fuzz-batch`` envelopes over the pool's
transport (shared-memory slabs by default), each worker gets one
**contiguous** slice of the batch (one envelope per worker instead of
round-robin message-per-input), and the coordinator merges **streamed**:
as each shard lands, every result whose global index is next in line
feeds the scheduler immediately, so merge work overlaps the stragglers.
The merge *order* is still the global input order — identical verdicts.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SessionConfig
from repro.core.fuzzer import CorpusScheduler, FuzzReport
from repro.core.journal import (DEFAULT_FSYNC_EVERY, Journal, PathLike,
                                config_fingerprint)
from repro.core.shutdown import shutdown_requested
from repro.errors import JournalCorruptError, JournalError, VmError
from repro.isa.assembler import Program
from repro.parallel.envelope import pack_fuzz_batch, unpack_fuzz_results
from repro.parallel.pool import WorkerPool
from repro.parallel.recipe import SessionRecipe
from repro.parallel.recovery import PoolRecoveryMixin
from repro.parallel.workers import unpack_edges
from repro.resilience import RetryPolicy


class ParallelFuzzer(PoolRecoveryMixin):
    """N-worker counterpart of :class:`~repro.core.fuzzer.SnapshotFuzzer`
    (snapshot reset mode only — rebooting per input is exactly what the
    snapshot runtime exists to avoid).

    With ``journal=<dir>`` the campaign is event-sourced: the run's
    setup, every completed shard (result blob included), every crash and
    a periodic checkpoint (every ``checkpoint_every`` batches) land in
    an append-only log
    (:mod:`repro.core.journal`). :meth:`resume` reopens such a journal
    after a coordinator crash and continues — re-applying recorded
    post-checkpoint shards instead of re-executing them — to a verdict
    byte-identical to the uninterrupted run.
    """

    def __init__(self, firmware: Optional[Union[str, Program]] = None,
                 peripherals: Sequence[Tuple[object, int]] = (),
                 seeds: Optional[List[bytes]] = None,
                 workers: int = 2,
                 batch_size: int = 32,
                 seed: int = 0,
                 max_steps_per_exec: int = 20_000,
                 config: Optional[SessionConfig] = None,
                 transport: str = "auto",
                 journal: Optional[PathLike] = None,
                 journal_fsync_every: int = DEFAULT_FSYNC_EVERY,
                 checkpoint_every: int = 8,
                 recipe: Optional[SessionRecipe] = None,
                 **overrides):
        if batch_size < 1:
            raise VmError(f"batch_size must be >= 1, got {batch_size}")
        if recipe is not None:
            self.recipe = recipe
        elif firmware is not None:
            self.recipe = SessionRecipe.create(
                firmware, peripherals, config=config,
                max_steps_per_exec=max_steps_per_exec, transport=transport,
                **overrides)
        else:
            raise VmError("pass firmware or a prebuilt recipe")
        self.workers = workers
        self.batch_size = batch_size
        self.scheduler = CorpusScheduler(seeds, seed)
        self.config = self.recipe.config
        self.retry_policy = self.config.retry_policy or RetryPolicy()
        self._degraded = False
        self._pool: Optional[WorkerPool] = None
        self._last_stats = None
        self._seeds = None if seeds is None else [bytes(s) for s in seeds]
        self._seed = seed
        self._journal_path = journal
        self._journal_fsync = journal_fsync_every
        #: Checkpoint cadence in batches. Between checkpoints the
        #: recorded ``fuzz-shard-completed`` blobs carry the campaign:
        #: resume replays them batch-by-batch, so a sparser cadence
        #: trades resume work for per-batch fsync cost, never safety.
        self.checkpoint_every = max(1, checkpoint_every)
        self._journal: Optional[Journal] = None
        #: Checkpoint state restored by :meth:`resume`, consumed by the
        #: next :meth:`run`.
        self._resume_state: Optional[Dict[str, Any]] = None
        #: ``fuzz-shard-completed`` events after the restored checkpoint.
        self._suffix: List[Dict[str, Any]] = []
        self._resume_executions: Optional[int] = None

    # -- pool lifecycle -----------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.recipe, self.workers)
        return self._pool

    @property
    def pool_stats(self):
        """Stats of the live pool, or the last closed pool's — reading
        stats must never spawn workers (a post-``close`` read that
        resurrected the pool would leak processes past the campaign)."""
        if self._pool is not None:
            return self._pool.stats
        return self._last_stats

    def warm(self) -> None:
        self.pool.warm("fuzz")

    def close(self) -> None:
        if self._pool is not None:
            self._last_stats = self._pool.stats
            self._pool.close()
            self._pool = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None

    def __enter__(self) -> "ParallelFuzzer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def boot_digests(self) -> Dict[int, Dict[str, str]]:
        """Each worker's post-boot snapshot chunk digests — they must all
        be identical (every worker fuzzes the same machine)."""
        pool = self.pool
        pool.broadcast("boot-digests", None)
        out: Dict[int, Dict[str, str]] = {}
        for _ in range(self.workers):
            _, worker_id, digests = pool.next_result(timeout=120)
            out[worker_id] = digests
        return out

    # -- journal lifecycle ---------------------------------------------------

    @classmethod
    def resume(cls, journal_dir: PathLike,
               workers: Optional[int] = None) -> "ParallelFuzzer":
        """Reopen an interrupted (or completed) journaled campaign.

        Restores the scheduler and report from the last loadable
        checkpoint; ``fuzz-shard-completed`` events recorded after it
        are re-applied by :meth:`resume_run` instead of re-executed.
        A corrupt checkpoint blob falls back to the previous checkpoint
        — recorded in the journal as ``checkpoint-skipped``, never
        silently. Worker count may differ from the original run:
        verdicts are worker-count-independent.
        """
        journal = Journal.open(journal_dir)
        opened = journal.first("campaign-opened")
        if opened is None:
            raise JournalError(
                f"journal {journal_dir} records no campaign-opened event")
        if opened.get("mode") != "fuzz":
            raise JournalError(
                f"journal {journal_dir} holds a {opened.get('mode')!r} "
                f"campaign, not a fuzzing one")
        setup = journal.get_blob(opened["blob"])
        fuzzer = cls(recipe=setup["recipe"], seeds=setup["seeds"],
                     seed=setup["seed"], batch_size=setup["batch_size"],
                     workers=workers or setup["workers"])
        fuzzer._journal = journal
        fuzzer._resume_executions = setup["executions"]
        after = 0
        for checkpoint in reversed(journal.events("checkpoint")):
            digest = checkpoint["blob"]
            try:
                fuzzer._resume_state = journal.get_blob(digest)
            except JournalCorruptError:
                journal.append("checkpoint-skipped", blob=digest,
                               seq_skipped=checkpoint["seq"])
                continue
            after = checkpoint["seq"]
            break
        fuzzer._suffix = journal.events("fuzz-shard-completed",
                                        after_seq=after)
        return fuzzer

    def resume_run(self) -> FuzzReport:
        """Continue the resumed campaign to its recorded budget."""
        if self._resume_executions is None:
            raise JournalError("resume_run() requires resume()")
        return self.run(executions=self._resume_executions)

    def _open_journal(self, executions: int) -> Optional[Journal]:
        if self._journal is not None:
            return self._journal
        if self._journal_path is None:
            return None
        journal = Journal.create(self._journal_path,
                                 fsync_every=self._journal_fsync)
        blob = journal.put_blob(
            {"recipe": self.recipe, "seeds": self._seeds,
             "seed": self._seed, "batch_size": self.batch_size,
             "workers": self.workers, "executions": executions},
            fsync=True)
        journal.append("campaign-opened", mode="fuzz", blob=blob,
                       workers=self.workers, batch_size=self.batch_size,
                       executions=executions,
                       config=config_fingerprint(self.config))
        journal.commit()
        self._journal = journal
        return journal

    def _checkpoint(self, journal: Optional[Journal],
                    report: FuzzReport, done: int) -> None:
        """Seal the campaign's resumable state at a batch boundary."""
        if journal is None:
            return
        blob = journal.put_blob(
            {"done": done,
             "scheduler": self.scheduler.state_dict(),
             "report": {"executions": report.executions,
                        "crashes": list(report.crashes),
                        "resets": report.resets,
                        "modelled_time_s": report.modelled_time_s,
                        "resilience": report.resilience.as_dict()}},
            fsync=True)
        journal.append("checkpoint", done=done, blob=blob)
        journal.commit()

    # -- main loop ----------------------------------------------------------

    def _pack_items(self, payload: Dict[str, Any],
                    worker_id: int) -> bytes:
        """``pack`` hook for the pool: shard dict → envelope bytes, with
        shm acks owed to this worker piggybacked at pack time (a re-pack
        ships fresh bookkeeping)."""
        return pack_fuzz_batch(
            payload["items"],
            acks=self.pool.transport.take_acks(worker_id))

    def _decode_shard(self, worker_id: int, data) -> Dict[str, Any]:
        """One arrived shard → the structured result dict. Packed bytes
        come from real workers; the degraded InlinePool delivers the
        structured form directly. The piggybacked shm acks are fed back
        to the transport so the coordinator arena's slabs drain — fuzz
        batches routinely clear the blob floor, so dropping acks would
        leak a slab per batch for the whole campaign."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            transport = self.pool.transport
            t0 = time.perf_counter()
            acks, _evictions, worker_enc, worker_dec, res = \
                unpack_fuzz_results(data)
            stats = transport.stats
            stats.decode_s += time.perf_counter() - t0
            stats.worker_encode_s += worker_enc
            stats.worker_decode_s += worker_dec
            transport.absorb_acks(worker_id, acks)
            return res
        return data

    def run(self, executions: int = 200) -> FuzzReport:
        """Fuzz for *executions* inputs across the pool.

        Equivalent to ``SnapshotFuzzer.run(executions,
        batch_size=self.batch_size)`` with the same seeds and seed: the
        batch is generated up front from the shared scheduler, sharded
        contiguously across workers, and merged back in input order —
        streamed, so early shards feed the scheduler while late shards
        are still executing.
        """
        report = FuzzReport()
        journal = self._open_journal(executions)
        pool = self.pool
        resilience0 = pool.stats.resilience.as_dict()
        start = time.perf_counter()
        done = 0
        dirty = 0  # batches since the last checkpoint
        if self._resume_state is not None:
            state, self._resume_state = self._resume_state, None
            done = state["done"]
            self.scheduler.restore_state(state["scheduler"])
            saved = state["report"]
            report.executions = saved["executions"]
            report.crashes = list(saved["crashes"])
            report.resets = saved["resets"]
            report.modelled_time_s = saved["modelled_time_s"]
            report.resilience.merge(saved["resilience"])
        while done < executions:
            if shutdown_requested():
                report.stop_reason = "interrupted"
                break
            batch = self.scheduler.next_batch(
                min(max(1, self.batch_size), executions - done))
            if not self._replay_batch(journal, report, batch, done):
                self._execute_batch(journal, report, batch, done)
            done += len(batch)
            dirty += 1
            if dirty >= self.checkpoint_every:
                self._checkpoint(journal, report, done)
                dirty = 0
        if dirty:
            self._checkpoint(journal, report, done)
        self.scheduler.finalize(report)
        report.host_time_s = time.perf_counter() - start
        pool.stats.host_time_s += report.host_time_s
        report.resilience.merge(pool.stats.resilience.delta(resilience0))
        if journal is not None:
            if report.stop_reason == "interrupted":
                journal.append("campaign-interrupted", done=done)
            elif not journal.sealed:
                journal.append("campaign-sealed", executions=done,
                               verdict=report.verdict_summary())
            journal.commit()
        return report

    def _replay_batch(self, journal: Optional[Journal],
                      report: FuzzReport, batch: List[bytes],
                      done: int) -> bool:
        """Re-apply a batch from recorded post-checkpoint shard blobs.

        Returns ``True`` only when the recorded shards cover the whole
        batch, every blob verifies, and every recorded input matches the
        regenerated schedule (the restored RNG makes them identical by
        construction) — anything less falls back to re-execution, which
        is sound because shard execution is deterministic. No report
        state is touched until the whole batch has verified.
        """
        if journal is None or not self._suffix:
            return False
        shards = [e for e in self._suffix if e.get("base") == done]
        if not shards:
            return False
        results = []
        for event in shards:
            digest = event["blob"]
            if digest not in journal.blobs:
                return False
            try:
                results.append(journal.get_blob(digest))
            except JournalCorruptError:
                return False
        merged: Dict[int, Tuple[bytes, bytes, Optional[str], int]] = {}
        for res in results:
            for index, data_, edges, crash, pc in res["results"]:
                merged[index] = (data_, edges, crash, pc)
        if sorted(merged) != list(range(len(batch))):
            return False
        if any(merged[i][0] != batch[i] for i in range(len(batch))):
            return False
        for res in results:
            report.resets += res["resets"]
            report.modelled_time_s += res["modelled_dt"]
            report.resilience.merge(res["resilience"])
        for i in range(len(batch)):
            data_, edges, crash, pc = merged[i]
            self.scheduler.merge(report, data_, unpack_edges(edges),
                                 crash, pc, done + i)
        return True

    def _execute_batch(self, journal: Optional[Journal],
                       report: FuzzReport, batch: List[bytes],
                       done: int) -> None:
        pool = self.pool
        indexed = list(enumerate(batch))
        per = -(-len(indexed) // self.workers)  # ceil
        shards = 0
        for worker_id in range(self.workers):
            items = indexed[worker_id * per:(worker_id + 1) * per]
            if not items:
                continue
            self.pool.submit(worker_id, "fuzz-batch",
                             {"items": items}, pack=self._pack_items)
            shards += 1
        pool.stats.batches += 1
        merged: Dict[int, Tuple[bytes, bytes, Optional[str], int]] = {}
        next_i = 0
        arrived = 0
        while arrived < shards:
            results = [self._await_result()]
            results.extend(self.pool.drain_results())
            for _, worker_id, data in results:
                arrived += 1
                res = self._decode_shard(worker_id, data)
                if journal is not None:
                    journal.append(
                        "fuzz-shard-completed", worker=worker_id,
                        base=done, count=len(res["results"]),
                        blob=journal.put_blob(res))
                report.resets += res["resets"]
                report.modelled_time_s += res["modelled_dt"]
                report.resilience.merge(res["resilience"])
                for index, data_, edges, crash, pc in res["results"]:
                    merged[index] = (data_, edges, crash, pc)
            # Streaming merge: consume the longest in-order prefix
            # available so far (scheduler order == input order).
            while next_i in merged:
                data_, edges, crash, pc = merged.pop(next_i)
                if crash is not None and journal is not None:
                    journal.append("bug-found", bug="fuzz-crash",
                                   index=done + next_i, reason=crash,
                                   pc=pc)
                self.scheduler.merge(report, data_,
                                     unpack_edges(edges), crash, pc,
                                     done + next_i)
                next_i += 1
