"""Unit tests for the bitvector expression DAG."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.solver import expr as E

U8 = st.integers(min_value=0, max_value=255)
U32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestConstruction:
    def test_const_masks_value(self):
        assert E.const(0x1FF, 8).value == 0xFF

    def test_const_negative_wraps(self):
        assert E.const(-1, 8).value == 0xFF

    def test_const_invalid_width(self):
        with pytest.raises(SolverError):
            E.const(1, 0)

    def test_var_identity_by_name_and_width(self):
        assert E.var("x", 8) is E.var("x", 8)
        assert E.var("x", 8) is not E.var("x", 16)
        assert E.var("x", 8) is not E.var("y", 8)

    def test_hash_consing_structural(self):
        x = E.var("hc", 8)
        a = E.add(x, E.const(3, 8))
        b = E.add(x, E.const(3, 8))
        assert a is b

    def test_width_mismatch_rejected(self):
        with pytest.raises(SolverError):
            E.add(E.var("w1", 8), E.var("w2", 16))

    def test_bool_helpers(self):
        assert E.true().value == 1
        assert E.false().value == 0
        assert E.true().width == 1


class TestConstantFolding:
    def test_add_fold(self):
        assert E.add(E.const(250, 8), E.const(10, 8)).value == 4

    def test_sub_self_is_zero(self):
        x = E.var("s", 8)
        assert E.sub(x, x).value == 0

    def test_add_zero_identity(self):
        x = E.var("z", 8)
        assert E.add(x, E.const(0, 8)) is x
        assert E.add(E.const(0, 8), x) is x

    def test_mul_identities(self):
        x = E.var("m", 8)
        assert E.mul(x, E.const(1, 8)) is x
        assert E.mul(x, E.const(0, 8)).value == 0

    def test_and_identities(self):
        x = E.var("a8", 8)
        assert E.and_(x, E.const(0xFF, 8)) is x
        assert E.and_(x, E.const(0, 8)).value == 0
        assert E.and_(x, x) is x

    def test_or_identities(self):
        x = E.var("o8", 8)
        assert E.or_(x, E.const(0, 8)) is x
        assert E.or_(x, E.const(0xFF, 8)).value == 0xFF

    def test_xor_self_zero(self):
        x = E.var("x8", 8)
        assert E.xor(x, x).value == 0

    def test_double_not(self):
        x = E.var("n", 8)
        assert E.not_(E.not_(x)) is x

    def test_shift_by_zero(self):
        x = E.var("sh", 8)
        assert E.shl(x, E.const(0, 8)) is x
        assert E.lshr(x, E.const(0, 8)) is x

    def test_eq_same_node(self):
        x = E.var("e", 8)
        assert E.eq(x, x).value == 1

    def test_comparison_folds(self):
        assert E.ult(E.const(3, 8), E.const(5, 8)).value == 1
        assert E.slt(E.const(0xFF, 8), E.const(0, 8)).value == 1  # -1 < 0
        assert E.sle(E.const(0x7F, 8), E.const(0x7F, 8)).value == 1

    def test_ite_folds(self):
        x, y = E.var("it1", 8), E.var("it2", 8)
        assert E.ite(E.true(), x, y) is x
        assert E.ite(E.false(), x, y) is y
        assert E.ite(E.var("c", 1), x, x) is x

    def test_ite_boolean_collapse(self):
        c = E.var("cb", 1)
        assert E.ite(c, E.const(1, 1), E.const(0, 1)) is c
        assert E.ite(c, E.const(0, 1), E.const(1, 1)) is E.not_(c)

    def test_udiv_by_zero_convention(self):
        assert E.udiv(E.const(7, 8), E.const(0, 8)).value == 0xFF
        assert E.urem(E.const(7, 8), E.const(0, 8)).value == 7


class TestConcatExtract:
    def test_concat_width(self):
        c = E.concat(E.var("hi", 8), E.var("lo", 8))
        assert c.width == 16

    def test_concat_constants_merge(self):
        c = E.concat(E.const(0xAB, 8), E.const(0xCD, 8))
        assert c.is_const and c.value == 0xABCD

    def test_concat_flattens(self):
        a, b, c = E.var("f1", 4), E.var("f2", 4), E.var("f3", 4)
        nested = E.concat(E.concat(a, b), c)
        assert len(nested.args) == 3

    def test_extract_of_const(self):
        assert E.extract(E.const(0xABCD, 16), 15, 8).value == 0xAB

    def test_extract_full_width_identity(self):
        x = E.var("ef", 8)
        assert E.extract(x, 7, 0) is x

    def test_extract_out_of_range(self):
        with pytest.raises(SolverError):
            E.extract(E.var("eo", 8), 8, 0)
        with pytest.raises(SolverError):
            E.extract(E.var("eo", 8), 3, 5)

    def test_extract_through_concat(self):
        hi, lo = E.var("tc_h", 8), E.var("tc_l", 8)
        c = E.concat(hi, lo)
        assert E.extract(c, 15, 8) is hi
        assert E.extract(c, 7, 0) is lo

    def test_extract_through_zext(self):
        x = E.var("tz", 8)
        z = E.zext(x, 32)
        assert E.extract(z, 7, 0) is x
        assert E.extract(z, 31, 8).value == 0

    def test_nested_extract_composes(self):
        x = E.var("ne", 32)
        inner = E.extract(x, 23, 8)
        outer = E.extract(inner, 7, 0)
        direct = E.extract(x, 15, 8)
        assert outer is direct

    def test_zext_sext(self):
        assert E.zext(E.const(0x80, 8), 16).value == 0x0080
        assert E.sext(E.const(0x80, 8), 16).value == 0xFF80
        with pytest.raises(SolverError):
            E.zext(E.var("zx", 16), 8)


class TestEvaluate:
    def test_evaluate_requires_assignment(self):
        x = E.var("ev", 8)
        with pytest.raises(SolverError):
            E.add(x, E.const(1, 8)).evaluate({})

    @given(a=U8, b=U8)
    def test_evaluate_matches_python(self, a, b):
        x, y = E.var("eva", 8), E.var("evb", 8)
        env = {x: a, y: b}
        assert E.add(x, y).evaluate(env) == (a + b) & 0xFF
        assert E.sub(x, y).evaluate(env) == (a - b) & 0xFF
        assert E.mul(x, y).evaluate(env) == (a * b) & 0xFF
        assert E.and_(x, y).evaluate(env) == a & b
        assert E.xor(x, y).evaluate(env) == a ^ b
        assert E.ult(x, y).evaluate(env) == int(a < b)

    @given(a=U8, s=st.integers(min_value=0, max_value=15))
    def test_evaluate_shifts(self, a, s):
        x, y = E.var("shx", 8), E.var("shy", 8)
        env = {x: a, y: s}
        assert E.shl(x, y).evaluate(env) == ((a << s) & 0xFF if s < 8 else 0)
        assert E.lshr(x, y).evaluate(env) == (a >> s if s < 8 else 0)

    @given(a=U8)
    def test_evaluate_ashr_sign_fill(self, a):
        x = E.var("asx", 8)
        signed = a - 256 if a & 0x80 else a
        got = E.ashr(x, E.const(3, 8)).evaluate({x: a})
        assert got == (signed >> 3) & 0xFF

    @given(a=U32)
    def test_evaluate_extract_concat_roundtrip(self, a):
        x = E.var("rt", 32)
        parts = [E.extract(x, 8 * i + 7, 8 * i) for i in range(3, -1, -1)]
        assert E.concat(*parts).evaluate({x: a}) == a

    def test_variables_collection(self):
        x, y = E.var("vc1", 8), E.var("vc2", 8)
        node = E.add(E.mul(x, y), x)
        assert node.variables() == frozenset((x, y))

    def test_size_counts_dag_nodes(self):
        x = E.var("sz", 8)
        shared = E.add(x, E.const(1, 8))
        node = E.mul(shared, shared)
        assert node.size() == 4  # x, 1, add, mul
