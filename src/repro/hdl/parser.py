"""Recursive-descent parser for the supported Verilog subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.hdl import ast_nodes as A
from repro.hdl.lexer import Token, tokenize

# Binary operator precedence, lowest binds loosest. Ternary sits below all.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^", "^~", "~^"],
    ["&"],
    ["==", "!=", "===", "!=="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_UNARY_OPS = {"~", "!", "-", "+", "&", "|", "^", "~&", "~|", "~^"}


def parse(source: str) -> A.SourceFile:
    """Parse Verilog source text into a :class:`~repro.hdl.ast_nodes.SourceFile`."""
    return Parser(tokenize(source)).parse_source()


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.line)
        return self.advance()

    # -- top level -------------------------------------------------------------

    def parse_source(self) -> A.SourceFile:
        out = A.SourceFile()
        while not self.at("eof"):
            out.modules.append(self.parse_module())
        return out

    def parse_module(self) -> A.Module:
        start = self.expect("keyword", "module")
        name = self.expect("id").text
        mod = A.Module(name=name, line=start.line)
        if self.accept("op", "#"):
            self.expect("op", "(")
            while not self.at("op", ")"):
                self.expect("keyword", "parameter")
                self._skip_optional_range()
                pname = self.expect("id").text
                self.expect("op", "=")
                mod.params.append(A.ParamDecl(pname, self.parse_expr(),
                                              line=self.peek().line))
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        if self.accept("op", "("):
            self._parse_port_list(mod)
            self.expect("op", ")")
        self.expect("op", ";")
        while not self.at("keyword", "endmodule"):
            self._parse_module_item(mod)
        self.expect("keyword", "endmodule")
        return mod

    def _skip_optional_range(self) -> Optional[A.Range]:
        if self.at("op", "["):
            return self.parse_range()
        return None

    def _parse_port_list(self, mod: A.Module) -> None:
        # ANSI style: direction [reg] [range] name {, ...}
        # Non-ANSI (bare identifiers) is also accepted; directions then come
        # from body declarations, which we record as ports with kind 'wire'.
        direction = None
        kind = "wire"
        rng: Optional[A.Range] = None
        while not self.at("op", ")"):
            tok = self.peek()
            if tok.kind == "keyword" and tok.text in ("input", "output", "inout"):
                direction = self.advance().text
                kind = "wire"
                self.accept("keyword", "signed")
                if self.accept("keyword", "reg"):
                    kind = "reg"
                    self.accept("keyword", "signed")
                elif self.accept("keyword", "wire"):
                    self.accept("keyword", "signed")
                rng = self._skip_optional_range()
            name_tok = self.expect("id")
            if direction is None:
                # Non-ANSI port: body declarations define it; keep placeholder.
                mod.ports.append(A.Port("inout", "wire", name_tok.text,
                                        line=name_tok.line))
            else:
                mod.ports.append(A.Port(direction, kind, name_tok.text, rng,
                                        line=name_tok.line))
            if not self.accept("op", ","):
                break

    def _parse_module_item(self, mod: A.Module) -> None:
        tok = self.peek()
        if tok.kind == "keyword":
            text = tok.text
            if text in ("input", "output", "inout"):
                self._parse_body_port_decl(mod)
                return
            if text in ("wire", "reg", "integer", "genvar"):
                mod.items.extend(self.parse_net_decl())
                return
            if text in ("parameter", "localparam"):
                self.advance()
                local = text == "localparam"
                self._skip_optional_range()
                while True:
                    pname = self.expect("id").text
                    self.expect("op", "=")
                    mod.items.append(A.ParamDecl(pname, self.parse_expr(),
                                                 local=local, line=tok.line))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
                return
            if text == "assign":
                self.advance()
                while True:
                    target = self.parse_expr()
                    self.expect("op", "=")
                    value = self.parse_expr()
                    mod.items.append(A.ContinuousAssign(target, value, line=tok.line))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ";")
                return
            if text == "always":
                mod.items.append(self.parse_always())
                return
            if text == "initial":
                self.advance()
                mod.items.append(A.InitialBlock(self.parse_stmt_or_block(),
                                                line=tok.line))
                return
            raise ParseError(f"unsupported module item {text!r}", tok.line)
        if tok.kind == "id":
            mod.items.append(self.parse_instance())
            return
        raise ParseError(f"unexpected token {tok.text!r} in module body", tok.line)

    def _parse_body_port_decl(self, mod: A.Module) -> None:
        tok = self.advance()
        direction = tok.text
        kind = "wire"
        if self.accept("keyword", "reg"):
            kind = "reg"
        else:
            self.accept("keyword", "wire")
        self.accept("keyword", "signed")
        rng = self._skip_optional_range()
        while True:
            name = self.expect("id").text
            # Upgrade a non-ANSI placeholder port if present.
            for port in mod.ports:
                if port.name == name:
                    port.direction = direction
                    port.kind = kind
                    port.range = rng
                    break
            else:
                mod.ports.append(A.Port(direction, kind, name, rng, line=tok.line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")

    def parse_net_decl(self) -> List[A.NetDecl]:
        tok = self.advance()
        kind = tok.text
        if kind == "genvar":
            kind = "integer"
        self.accept("keyword", "signed")
        rng = self._skip_optional_range()
        decls: List[A.NetDecl] = []
        while True:
            name = self.expect("id").text
            array = self._skip_optional_range()
            init = None
            if self.accept("op", "="):
                init = self.parse_expr()
            decls.append(A.NetDecl(kind, name, rng, array, init, line=tok.line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return decls

    def parse_range(self) -> A.Range:
        self.expect("op", "[")
        msb = self.parse_expr()
        self.expect("op", ":")
        lsb = self.parse_expr()
        self.expect("op", "]")
        return A.Range(msb, lsb)

    def parse_always(self) -> A.AlwaysBlock:
        tok = self.expect("keyword", "always")
        sensitivity: List[A.EdgeEvent] = []
        self.expect("op", "@")
        if self.accept("op", "("):
            if self.accept("op", "*"):
                pass  # @(*) — empty sensitivity means full combinational
            else:
                while True:
                    edge = None
                    if self.accept("keyword", "posedge"):
                        edge = "posedge"
                    elif self.accept("keyword", "negedge"):
                        edge = "negedge"
                    sig = self.expect("id").text
                    sensitivity.append(A.EdgeEvent(edge, sig))
                    if self.accept("keyword", "or") or self.accept("op", ","):
                        continue
                    break
            self.expect("op", ")")
        else:
            self.expect("op", "*")  # `always @*`
        body = self.parse_stmt_or_block()
        return A.AlwaysBlock(sensitivity, body, line=tok.line)

    def parse_instance(self) -> A.Instance:
        mod_tok = self.expect("id")
        inst = A.Instance(module=mod_tok.text, name="", line=mod_tok.line)
        if self.accept("op", "#"):
            self.expect("op", "(")
            inst.params = self._parse_connection_list()
            self.expect("op", ")")
        inst.name = self.expect("id").text
        self.expect("op", "(")
        raw = self._parse_port_connection_list()
        self.expect("op", ")")
        self.expect("op", ";")
        inst.connections = raw
        return inst

    def _parse_connection_list(self) -> List[Tuple[Optional[str], A.Expr]]:
        out: List[Tuple[Optional[str], A.Expr]] = []
        while not self.at("op", ")"):
            if self.accept("op", "."):
                name = self.expect("id").text
                self.expect("op", "(")
                out.append((name, self.parse_expr()))
                self.expect("op", ")")
            else:
                out.append((None, self.parse_expr()))
            if not self.accept("op", ","):
                break
        return out

    def _parse_port_connection_list(self) -> List[Tuple[Optional[str], Optional[A.Expr]]]:
        out: List[Tuple[Optional[str], Optional[A.Expr]]] = []
        while not self.at("op", ")"):
            if self.accept("op", "."):
                name = self.expect("id").text
                self.expect("op", "(")
                expr = None if self.at("op", ")") else self.parse_expr()
                self.expect("op", ")")
                out.append((name, expr))
            else:
                out.append((None, self.parse_expr()))
            if not self.accept("op", ","):
                break
        return out

    # -- statements ---------------------------------------------------------------

    def parse_stmt_or_block(self) -> List[A.Stmt]:
        if self.accept("keyword", "begin"):
            # optional block label `begin : name`
            if self.accept("op", ":"):
                self.expect("id")
            stmts: List[A.Stmt] = []
            while not self.at("keyword", "end"):
                stmt = self.parse_stmt()
                if stmt is not None:
                    stmts.append(stmt)
            self.expect("keyword", "end")
            return stmts
        stmt = self.parse_stmt()
        return [] if stmt is None else [stmt]

    def parse_stmt(self) -> Optional[A.Stmt]:
        tok = self.peek()
        if tok.kind == "keyword":
            if tok.text == "if":
                return self.parse_if()
            if tok.text in ("case", "casez", "casex"):
                return self.parse_case()
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "begin":
                # nested bare block: flatten into an If(1) wrapper-free list —
                # represent as If with constant-true condition for simplicity.
                body = self.parse_stmt_or_block()
                return A.If(A.Number(1, 1), body, [], line=tok.line)
            raise ParseError(f"unsupported statement keyword {tok.text!r}", tok.line)
        if tok.kind == "id" and tok.text.startswith("$"):
            # System task call: parse and discard.
            self.advance()
            if self.accept("op", "("):
                depth = 1
                while depth:
                    t = self.advance()
                    if t.kind == "eof":
                        raise ParseError("unterminated system task call", tok.line)
                    if t.kind == "op" and t.text == "(":
                        depth += 1
                    elif t.kind == "op" and t.text == ")":
                        depth -= 1
            self.expect("op", ";")
            return None
        # Assignment.
        target = self.parse_primary()
        if self.accept("op", "<="):
            value = self.parse_expr()
            self.expect("op", ";")
            return A.Assign(target, value, blocking=False, line=tok.line)
        self.expect("op", "=")
        value = self.parse_expr()
        self.expect("op", ";")
        return A.Assign(target, value, blocking=True, line=tok.line)

    def parse_if(self) -> A.If:
        tok = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt_or_block()
        other: List[A.Stmt] = []
        if self.accept("keyword", "else"):
            other = self.parse_stmt_or_block()
        return A.If(cond, then, other, line=tok.line)

    def parse_case(self) -> A.Case:
        tok = self.advance()
        kind = tok.text
        self.expect("op", "(")
        subject = self.parse_expr()
        self.expect("op", ")")
        items: List[A.CaseItem] = []
        while not self.at("keyword", "endcase"):
            if self.accept("keyword", "default"):
                self.accept("op", ":")
                items.append(A.CaseItem([], self.parse_stmt_or_block()))
                continue
            labels = [self.parse_expr()]
            while self.accept("op", ","):
                labels.append(self.parse_expr())
            self.expect("op", ":")
            items.append(A.CaseItem(labels, self.parse_stmt_or_block()))
        self.expect("keyword", "endcase")
        return A.Case(subject, items, kind, line=tok.line)

    def parse_for(self) -> A.For:
        tok = self.expect("keyword", "for")
        self.expect("op", "(")
        var = self.expect("id").text
        self.expect("op", "=")
        init = self.parse_expr()
        self.expect("op", ";")
        cond = self.parse_expr()
        self.expect("op", ";")
        step_var = self.expect("id").text
        if step_var != var:
            raise ParseError("for-loop update must assign the loop variable",
                             tok.line)
        self.expect("op", "=")
        step = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt_or_block()
        return A.For(var, init, cond, step, body, line=tok.line)

    # -- expressions --------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(0)
        if self.accept("op", "?"):
            then = self.parse_ternary()
            self.expect("op", ":")
            other = self.parse_ternary()
            return A.Ternary(cond, then, other, line=self.peek().line)
        return cond

    def parse_binary(self, level: int) -> A.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.advance().text
            if op == "===":
                op = "=="
            elif op == "!==":
                op = "!="
            right = self.parse_binary(level + 1)
            left = A.Binary(op, left, right, line=self.peek().line)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in _UNARY_OPS:
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return A.Unary(tok.text, operand, line=tok.line)
        return self.parse_primary()

    def parse_primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return A.Number(tok.value, tok.width, tok.xmask, line=tok.line)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return self._parse_selects(expr)
        if tok.kind == "op" and tok.text == "{":
            self.advance()
            first = self.parse_expr()
            if self.accept("op", "{"):
                # Replication {N{expr}}
                value = self.parse_expr()
                self.expect("op", "}")
                self.expect("op", "}")
                return self._parse_selects(A.Repeat(first, value, line=tok.line))
            parts = [first]
            while self.accept("op", ","):
                parts.append(self.parse_expr())
            self.expect("op", "}")
            return self._parse_selects(A.Concat(parts, line=tok.line))
        if tok.kind == "id":
            self.advance()
            return self._parse_selects(A.Identifier(tok.text, line=tok.line))
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.line)

    def _parse_selects(self, base: A.Expr) -> A.Expr:
        while self.at("op", "["):
            self.advance()
            first = self.parse_expr()
            if self.accept("op", ":"):
                lsb = self.parse_expr()
                self.expect("op", "]")
                base = A.PartSelect(base, first, lsb, line=self.peek().line)
            else:
                self.expect("op", "]")
                base = A.BitSelect(base, first, line=self.peek().line)
        return base
