"""Coverage for the remaining public API surface."""

import pytest

from repro.analysis import (coverage_report, format_si_time,
                            source_line_coverage, uncovered_listing)
from repro.cli import main
from repro.firmware import dispatcher
from repro.isa import assemble
from repro.peripherals import gpio


class TestCoverageHelpers:
    @pytest.fixture
    def partial_run(self):
        program = assemble("""
        start:
            movi r1, 1
            beq r1, r0, never
            halt r1
        never:
            movi r2, 99
            halt r2
        """)
        # Execute concretely, collecting pcs.
        from repro.isa import Cpu
        cpu = Cpu(program)
        covered = set()
        while True:
            covered.add(cpu.pc)
            if cpu.step() is not None:
                break
        return program, covered

    def test_uncovered_listing_shows_dead_branch(self, partial_run):
        program, covered = partial_run
        listing = uncovered_listing(program, covered)
        assert listing
        assert any("99" in line or "halt" in line for line in listing)

    def test_source_line_coverage(self, partial_run):
        program, covered = partial_run
        lines = source_line_coverage(program, covered)
        assert any(lines.values())        # something ran
        assert not all(lines.values())    # the dead branch did not

    def test_coverage_percent_partial(self, partial_run):
        program, covered = partial_run
        report = coverage_report(program, covered)
        assert 0 < report.percent < 100

    def test_format_si_time_scales(self):
        assert format_si_time(0) == "0"
        assert "ns" in format_si_time(5e-9)
        assert "us" in format_si_time(5e-6)
        assert "ms" in format_si_time(5e-3)
        assert format_si_time(2.5).endswith(" s")


class TestCliScoped:
    def test_instrument_include_scopes_chain(self, tmp_path, capsys):
        design_path = tmp_path / "two.v"
        # Two GPIO instances under a top; scope the chain to one.
        design_path.write_text(gpio.verilog() + """
module duo (
    input wire clk, input wire rst,
    input wire s_axi_awvalid, output wire s_axi_awready, input wire [7:0] s_axi_awaddr,
    input wire s_axi_wvalid, output wire s_axi_wready, input wire [31:0] s_axi_wdata,
    output wire s_axi_bvalid, input wire s_axi_bready,
    input wire s_axi_arvalid, output wire s_axi_arready, input wire [7:0] s_axi_araddr,
    output wire s_axi_rvalid, input wire s_axi_rready, output wire [31:0] s_axi_rdata,
    input wire [31:0] pins_in, output wire [31:0] pins_a, output wire [31:0] pins_b,
    output wire irq_a, output wire irq_b
);
    gpio a (.clk(clk), .rst(rst),
            .s_axi_awvalid(s_axi_awvalid), .s_axi_awready(s_axi_awready), .s_axi_awaddr(s_axi_awaddr),
            .s_axi_wvalid(s_axi_wvalid), .s_axi_wready(s_axi_wready), .s_axi_wdata(s_axi_wdata),
            .s_axi_bvalid(s_axi_bvalid), .s_axi_bready(s_axi_bready),
            .s_axi_arvalid(s_axi_arvalid), .s_axi_arready(s_axi_arready), .s_axi_araddr(s_axi_araddr),
            .s_axi_rvalid(s_axi_rvalid), .s_axi_rready(s_axi_rready), .s_axi_rdata(s_axi_rdata),
            .gpio_in(pins_in), .gpio_out(pins_a), .irq(irq_a));
    gpio b (.clk(clk), .rst(rst),
            .s_axi_awvalid(1'b0), .s_axi_awready(), .s_axi_awaddr(8'h0),
            .s_axi_wvalid(1'b0), .s_axi_wready(), .s_axi_wdata(32'h0),
            .s_axi_bvalid(), .s_axi_bready(1'b0),
            .s_axi_arvalid(1'b0), .s_axi_arready(), .s_axi_araddr(8'h0),
            .s_axi_rvalid(), .s_axi_rready(1'b0), .s_axi_rdata(),
            .gpio_in(pins_in), .gpio_out(pins_b), .irq(irq_b));
endmodule
""")
        out_path = tmp_path / "scoped.v"
        code = main(["instrument", str(design_path), "--top", "duo",
                     "--include", "a", "-o", str(out_path)])
        assert code == 0
        err = capsys.readouterr().err
        # Chain covers only instance `a`: half of the duo's state.
        import re
        bits = int(re.search(r"chain length: (\d+) bits", err).group(1))
        from repro.hdl import elaborate
        single = elaborate(gpio.verilog(), "gpio").state_bit_count
        assert bits == single
