"""E13 — journaling overhead: the event-sourced campaign log must be
nearly free.

Mirrors the E9 2-worker fuzzing cell (same firmware, seeds, batch size;
workload scaled until the serial baseline clears the measurement floor)
and runs it twice through :class:`~repro.parallel.ParallelFuzzer`:
journal off, then journal on (``journal=<dir>``, default checkpoint
cadence).  The journal-on run event-sources the whole campaign — setup
blob, per-shard result blobs, crash events, periodic checkpoints —
through :mod:`repro.core.journal`.

Two properties are asserted:

* **identity** (unconditional): journaling is observation, never
  behaviour — the journal-on verdict is byte-identical to journal-off;
* **overhead** (gated like E9's speedup: only when the host has the
  cores for the cell): best-of-N wall time with the journal on stays
  within ``MAX_OVERHEAD_PCT`` of journal-off.  The event log is
  synchronous but cheap (one flushed JSON frame per event); blob bodies
  ride the journal's background writer thread, which overlaps the
  coordinator's idle wait on worker shards — given a spare core.

Emits ``benchmarks/out/BENCH_journal.json``; CI reads the gate back.
"""

import os
import pathlib
import tempfile
import time

from benchmarks.conftest import emit, emit_json
from repro.core import SnapshotFuzzer
from repro.firmware import TIMER_BASE, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import ParallelFuzzer
from repro.peripherals import catalog
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 31])]
BATCH = 64
WORKERS = 2
#: Workload for the scaling probe; the real run is scaled from it.
PROBE_EXECUTIONS = 576  # 9 batches
#: Measurement floor (serial baseline), as in E9: overhead ratios on a
#: sub-second run drown in scheduler/timer noise.
MIN_SERIAL_S = 2.0
MAX_EXECUTIONS = 19_968  # 312 batches
#: The gate: journaling-on wall overhead on the E9 2-worker cell.
MAX_OVERHEAD_PCT = 5.0
ROUNDS = 3  # best-of-N per cell, interleaved


def _effective_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _serial_probe(executions):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()), target,
                            seeds=SEEDS, seed=3)
    start = time.perf_counter()
    fuzzer.run(executions=executions, batch_size=BATCH)
    return time.perf_counter() - start


def _scaled_executions(probe_s: float) -> int:
    if probe_s >= MIN_SERIAL_S:
        return PROBE_EXECUTIONS
    per_exec = probe_s / PROBE_EXECUTIONS
    need = (MIN_SERIAL_S * 1.15) / per_exec  # 15% headroom over floor
    batches = -(-int(need) // BATCH) + 1
    return min(batches * BATCH, MAX_EXECUTIONS)


def _cell(executions, journal_dir=None):
    with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                        workers=WORKERS, batch_size=BATCH, seed=3,
                        journal=journal_dir) as fuzzer:
        fuzzer.warm()  # target elaboration out of the timed region
        start = time.perf_counter()
        report = fuzzer.run(executions=executions)
        elapsed = time.perf_counter() - start
    return report, elapsed


def test_journal_overhead(tmp_path):
    probe_s = _serial_probe(PROBE_EXECUTIONS)
    executions = _scaled_executions(probe_s)

    off_best = on_best = None
    journal_stats = None
    for round_ in range(ROUNDS):  # interleaved: noise hits both cells
        report, elapsed = _cell(executions)
        if off_best is None or elapsed < off_best[1]:
            off_best = (report, elapsed)
        journal_dir = tmp_path / f"journal-{round_}"
        report, elapsed = _cell(executions, journal_dir=journal_dir)
        if on_best is None or elapsed < on_best[1]:
            on_best = (report, elapsed)
        journal_stats = {
            "events_log_bytes": (journal_dir / "events.log").stat().st_size,
            "blob_count": len(list((journal_dir / "blobs").iterdir())),
        }

    off_report, off_s = off_best
    on_report, on_s = on_best
    overhead_pct = (on_s / off_s - 1.0) * 100.0
    identical = on_report.verdict_summary() == off_report.verdict_summary()

    effective_cores = _effective_cores()
    # Same eligibility rule as E9's speedup gate: wall-clock ratios on a
    # host that cannot run the cell's processes concurrently measure
    # the scheduler, not the journal — but the skipped gate must be
    # visible in the artifact (no-silent-caps).
    gate = {"max_overhead_pct": MAX_OVERHEAD_PCT, "workers": WORKERS,
            "enforced": effective_cores >= WORKERS}
    if not gate["enforced"]:
        gate["note"] = (
            f"overhead gate SKIPPED: {effective_cores} effective "
            f"core(s) cannot overlap journal I/O with {WORKERS} "
            f"workers; identity still asserted")
        print(gate["note"])

    emit("journal_overhead", "\n".join([
        f"E13: journaling overhead, {executions} executions "
        f"(batch {BATCH}, {WORKERS} workers, best of {ROUNDS})",
        f"  journal off : {off_s:.3f} s",
        f"  journal on  : {on_s:.3f} s",
        f"  overhead    : {overhead_pct:+.1f}% "
        f"(gate < {MAX_OVERHEAD_PCT:.0f}%, "
        f"{'enforced' if gate['enforced'] else 'skipped'})",
        f"  verdict     : {'identical' if identical else 'DIVERGED'}",
        f"  journal     : {journal_stats['events_log_bytes']} log bytes, "
        f"{journal_stats['blob_count']} blobs",
    ]))

    emit_json("BENCH_journal.json", {
        "experiment": "journal_overhead",
        "executions": executions,
        "probe_host_s": probe_s,
        "batch_size": BATCH,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "journal_off_s": off_s,
        "journal_on_s": on_s,
        "overhead_pct": overhead_pct,
        "verdict_identical": identical,
        "journal": journal_stats,
        "gate": gate,
    })

    # Journaling is observation: the campaign's verdict never moves.
    assert identical, "journal-on verdict diverged from journal-off"
    # Sealed campaigns record the verdict they reached.
    assert on_report.verdict_summary() is not None
    if gate["enforced"]:
        assert overhead_pct < MAX_OVERHEAD_PCT, (
            f"journaling overhead {overhead_pct:.1f}% exceeds the "
            f"{MAX_OVERHEAD_PCT:.0f}% gate on the E9 {WORKERS}-worker "
            f"cell")
