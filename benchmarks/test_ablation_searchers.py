"""A3 — ablation: state-selection heuristic vs time-to-first-bug.

KLEE-style engines live and die by their searcher. We hunt the planted
buffer overflow under every heuristic and record instructions and
modelled time until the first finding, plus snapshot traffic — the
affinity searcher exists precisely to cut context-switch costs.
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import UART_BASE, vuln_buffer_overflow
from repro.peripherals import catalog
from repro.vm.searchers import SEARCHERS

PERIPHS = [(catalog.UART, UART_BASE)]


def _hunt(searcher):
    session = HardSnapSession(vuln_buffer_overflow(), PERIPHS,
                              searcher=searcher, scan_mode="functional",
                              seed=7)
    report = session.run(max_instructions=300_000, stop_after_bugs=1)
    return report


def test_ablation_searchers(benchmark):
    names = sorted(SEARCHERS)
    results = benchmark.pedantic(
        lambda: {name: _hunt(name) for name in names},
        rounds=1, iterations=1)

    rows = []
    for name in names:
        r = results[name]
        rows.append([
            name,
            len(r.bugs),
            r.instructions,
            r.snapshot_saves + r.snapshot_restores,
            format_si_time(r.modelled_time_s),
            f"{r.host_time_s:.2f}s",
        ])
    emit("ablation_searchers", format_table(
        ["searcher", "bugs", "instr to first bug", "snapshot ops",
         "modelled time", "host time"],
        rows, title="A3: searcher ablation — time to first finding "
                    "(buffer overflow)"))

    # Every heuristic eventually finds the bug.
    for name in names:
        assert results[name].bugs, name
    # Affinity scheduling produces no more snapshot traffic than
    # round-robin for the same hunt.
    affinity_ops = (results["affinity"].snapshot_saves
                    + results["affinity"].snapshot_restores)
    rr_ops = (results["round-robin"].snapshot_saves
              + results["round-robin"].snapshot_restores)
    assert affinity_ops <= rr_ops
