"""Chunk-pool bookkeeping for cross-process snapshot transfer.

The wire format itself lives in :mod:`repro.core.persistence`
(:class:`SnapshotWire`). This module adds what a *conversation* needs:
each endpoint keeps a digest → body pool of every chunk it has seen and
tracks, per peer, which digests that peer holds — so a snapshot resend
carries only the chunks the receiver is missing. Chunk digests come from
:func:`repro.core.store.chunk_digest`, the same content addresses the
delta snapshot store deduplicates on; shipping a state to a worker that
already explored a sibling path typically moves reference-sized
metadata, not state payloads (the cross-process analogue of
``TransferRecord.delta_bits``).

Long campaigns see an unbounded stream of distinct chunk bodies, so the
pool is LRU-bounded (``pool_cap``). Eviction interacts with the known-
digest protocol — a peer that believes we hold a digest will send it by
reference only — so evicted digests are buffered
(:meth:`ChunkChannel.take_evictions`) and piggybacked on the next
outgoing envelope; the peer answers by dropping them from its
``known[us]`` set (:meth:`ChunkChannel.forget_remote`) and ships full
payloads again. Digests backing states that are still parked in the
coordinator's searcher are :meth:`pinned <ChunkChannel.pin>` and never
evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.core.persistence import (SnapshotWire, snapshot_from_wire,
                                    snapshot_to_wire)
from repro.core.store import chunk_digest
from repro.errors import SnapshotIntegrityError
from repro.targets.base import HwSnapshot


@dataclass
class WireStats:
    """Transfer accounting for one endpoint (summed over all peers)."""

    snapshots_sent: int = 0
    snapshots_received: int = 0
    #: Chunk references resolved from the peer's pool (no payload moved).
    chunk_hits: int = 0
    #: Chunk payloads actually shipped.
    chunk_misses: int = 0
    #: Pool entries dropped under the LRU cap.
    chunk_evictions: int = 0
    #: Full-image bits of every snapshot sent (the naive transfer cost).
    logical_bits_sent: int = 0
    #: Bits actually carried as chunk payloads (the delta transfer cost).
    payload_bits_sent: int = 0

    @property
    def delta_ratio(self) -> float:
        """Logical bits over transferred bits (≥ 1; higher = more
        dedup). Always finite — when everything moved by reference the
        ratio is reported against a one-bit floor so report/bench JSON
        artifacts stay serializable."""
        if self.payload_bits_sent == 0:
            return 1.0 if self.logical_bits_sent == 0 \
                else float(self.logical_bits_sent)
        return self.logical_bits_sent / self.payload_bits_sent

    def merge(self, other: "WireStats") -> None:
        self.snapshots_sent += other.snapshots_sent
        self.snapshots_received += other.snapshots_received
        self.chunk_hits += other.chunk_hits
        self.chunk_misses += other.chunk_misses
        self.chunk_evictions += other.chunk_evictions
        self.logical_bits_sent += other.logical_bits_sent
        self.payload_bits_sent += other.payload_bits_sent


class ChunkChannel:
    """One endpoint's view of snapshot traffic with its peers.

    ``pool`` holds every chunk body this endpoint has seen (sent *or*
    received — a digest we sent may come back by reference only), up to
    ``pool_cap`` entries under LRU eviction. ``known[peer]`` is the
    digest set we believe that peer holds; it grows symmetrically on
    send and receive, so both endpoints agree on it without a handshake
    — and shrinks when the peer reports evictions.
    """

    #: Default pool bound. Each entry is one chunk body (an instance
    #: state dict); campaigns that outgrow this re-ship cold chunks.
    POOL_CAP = 4096

    def __init__(self, pool_cap: int = POOL_CAP) -> None:
        self.pool: "OrderedDict[str, dict]" = OrderedDict()
        self.pool_cap = pool_cap
        self.chunk_bits: Dict[str, int] = {}
        self.known: Dict[object, Set[str]] = {}
        self.stats = WireStats()
        self._pins: Dict[str, int] = {}
        #: Per-peer eviction notices awaiting piggyback delivery: every
        #: peer that might send an evicted digest by reference must
        #: learn we no longer hold it.
        self._evict_notices: Dict[object, Set[str]] = {}

    def _peer(self, peer: object) -> Set[str]:
        return self.known.setdefault(peer, set())

    # -- pool bookkeeping ----------------------------------------------------

    def _admit(self, digest: str, body: dict, bits: int) -> None:
        if digest in self.pool:
            self.pool.move_to_end(digest)
            return
        self.pool[digest] = body
        self.chunk_bits[digest] = bits
        for notices in self._evict_notices.values():
            notices.discard(digest)
        self._shrink()

    def _shrink(self) -> None:
        if len(self.pool) <= self.pool_cap:
            return
        for digest in list(self.pool):
            if len(self.pool) <= self.pool_cap:
                break
            if self._pins.get(digest):
                continue  # backs a live parked state; never evict
            del self.pool[digest]
            self.chunk_bits.pop(digest, None)
            for peer in self.known:
                self._evict_notices.setdefault(peer, set()).add(digest)
            self.stats.chunk_evictions += 1

    def pin(self, digests: Iterable[str]) -> None:
        """Protect *digests* from eviction (refcounted) while a parked
        state still references them."""
        for digest in digests:
            self._pins[digest] = self._pins.get(digest, 0) + 1

    def unpin(self, digests: Iterable[str]) -> None:
        for digest in digests:
            count = self._pins.get(digest, 0) - 1
            if count > 0:
                self._pins[digest] = count
            else:
                self._pins.pop(digest, None)
        self._shrink()

    def take_evictions(self, peer: object) -> List[str]:
        """Drain the evicted-digest notices owed to *peer* for the next
        outgoing envelope's piggyback lane."""
        notices = self._evict_notices.pop(peer, None)
        return sorted(notices) if notices else []

    def forget_remote(self, peer: object, digests: Iterable[str]) -> None:
        """The peer evicted *digests* from its pool: stop sending them
        by reference only."""
        known = self._peer(peer)
        known.difference_update(digests)

    # -- sending ------------------------------------------------------------

    def encode(self, snapshot: HwSnapshot, peer: object,
               bits_of: Optional[Mapping[str, int]] = None) -> SnapshotWire:
        """Encode *snapshot* for *peer*, omitting chunks it holds."""
        known = self._peer(peer)
        wire = snapshot_to_wire(snapshot, known=known, bits_of=bits_of)
        for name, (digest, _cycle, bits) in wire.refs.items():
            if digest in known:
                self.stats.chunk_hits += 1
            else:
                self.stats.chunk_misses += 1
            known.add(digest)
            # Keep our own copy: the peer may later reference this
            # digest back at us without a payload.
            if digest in self.pool:
                self.pool.move_to_end(digest)
            else:
                body, _ = wire.chunks.get(digest, (None, 0))
                if body is None:
                    body = {k: v for k, v in snapshot.states[name].items()
                            if k != "cycle"}
                self._admit(digest, body, bits)
        self.stats.snapshots_sent += 1
        self.stats.logical_bits_sent += wire.logical_bits
        self.stats.payload_bits_sent += wire.payload_bits
        return wire

    def _body_of(self, digest: str, wire: SnapshotWire) -> dict:
        body = self.pool.get(digest)
        if body is not None:
            self.pool.move_to_end(digest)
            return body
        # Not pooled (LRU-evicted after this wire was absorbed): the
        # wire itself may still carry the payload.
        entry = wire.chunks.get(digest)
        if entry is not None:
            return entry[0]
        raise SnapshotIntegrityError(
            f"chunk {digest} needed for re-encode is neither pooled nor "
            f"carried by the wire (evicted while still referenced — "
            f"raise pool_cap or pin the state's digests)")

    def reencode(self, wire: SnapshotWire, peer: object) -> SnapshotWire:
        """Re-address a received wire to another peer (coordinator
        forwarding a state between workers), filling payloads from the
        pool for chunks the new peer lacks."""
        known = self._peer(peer)
        chunks = {}
        for name, (digest, _cycle, bits) in wire.refs.items():
            if digest in known:
                self.stats.chunk_hits += 1
            else:
                self.stats.chunk_misses += 1
                chunks[digest] = (self._body_of(digest, wire),
                                  self.chunk_bits.get(digest, bits))
                known.add(digest)
        out = SnapshotWire(refs=dict(wire.refs), chunks=chunks,
                           method=wire.method, bits=wire.bits)
        self.stats.snapshots_sent += 1
        self.stats.logical_bits_sent += out.logical_bits
        self.stats.payload_bits_sent += out.payload_bits
        return out

    # -- receiving ----------------------------------------------------------

    def absorb(self, wire: SnapshotWire, peer: object) -> None:
        """Merge a received wire's chunks into the pool and credit the
        sender with everything it referenced.

        Every shipped payload is verified against its content address
        before entering the pool: chunk digests *are* the transfer's
        integrity check (delta-sized cost — references are not re-hashed,
        their bodies were verified when they first arrived)."""
        known = self._peer(peer)
        for digest, (body, bits) in wire.chunks.items():
            actual = chunk_digest(body)
            if actual != digest:
                raise SnapshotIntegrityError(
                    f"chunk from peer {peer!r} fails verification: "
                    f"declared {digest}, body hashes to {actual}")
            self._admit(digest, body, bits)
            known.add(digest)
        for _name, (digest, _cycle, bits) in wire.refs.items():
            known.add(digest)
            self.chunk_bits.setdefault(digest, bits)
        self.stats.snapshots_received += 1

    def decode(self, wire: SnapshotWire, peer: object) -> HwSnapshot:
        """absorb + reassemble into a (foreign) HwSnapshot."""
        self.absorb(wire, peer)
        return snapshot_from_wire(wire, self.pool)
