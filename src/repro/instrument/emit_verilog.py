"""IR -> Verilog printer.

The scan-chain pass transforms the elaborated IR; this module prints any
:class:`~repro.hdl.ir.Design` back to synthesisable Verilog text, so the
instrumented design can be inspected, diffed against the original, fed to
an external toolchain — and, in tests, re-parsed and re-simulated to prove
the transformation is semantics-preserving (modulo the added scan ports).

Flattened hierarchical names contain dots; they are emitted with ``__``.
Every combinational block is printed as ``always @(*)`` with ``reg``
targets, which is behaviourally identical to the original mix of
continuous assigns and always blocks.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import InstrumentationError
from repro.hdl import ir


def emit_verilog(design: ir.Design) -> str:
    return _Emitter(design).emit()


def _safe(name: str) -> str:
    return name.replace(".", "__")


_PAREN_OPS = {"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>",
              "<", "<=", ">", ">=", "==", "!=", "&&", "||"}


class _Emitter:
    def __init__(self, design: ir.Design):
        self.design = design
        self.lines: List[str] = []
        self.indent = 0

    def out(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line)

    def emit(self) -> str:
        design = self.design
        ports = [n.name for n in design.inputs] + [n.name for n in design.outputs]
        self.out(f"module {_safe(design.name)} (")
        self.indent += 1
        for i, name in enumerate(ports):
            comma = "," if i < len(ports) - 1 else ""
            self.out(f"{_safe(name)}{comma}")
        self.indent -= 1
        self.out(");")
        self.indent += 1

        reg_names = self._reg_names()
        input_names = {n.name for n in design.inputs}
        output_names = {n.name for n in design.outputs}
        for name, net in sorted(design.nets.items()):
            rng = f"[{net.width - 1}:0] " if net.width > 1 else ""
            if name in input_names:
                self.out(f"input wire {rng}{_safe(name)};")
            elif name in output_names:
                kind = "reg" if name in reg_names else "wire"
                self.out(f"output {kind} {rng}{_safe(name)};")
            else:
                kind = "reg" if name in reg_names else "wire"
                self.out(f"{kind} {rng}{_safe(name)};")
        for name, mem in sorted(design.memories.items()):
            rng = f"[{mem.width - 1}:0] " if mem.width > 1 else ""
            self.out(f"reg {rng}{_safe(name)} [0:{mem.depth - 1}];")
        self.out()

        # Initial values.
        init_lines: List[str] = []
        for name, net in sorted(design.nets.items()):
            if net.initial and name not in input_names:
                init_lines.append(
                    f"{_safe(name)} = {net.width}'h{net.initial:x};")
        for name, mem in sorted(design.memories.items()):
            if mem.initial:
                for j, word in enumerate(mem.initial):
                    if word:
                        init_lines.append(
                            f"{_safe(name)}[{j}] = {mem.width}'h{word:x};")
        for block in design.init_blocks:
            init_lines.extend(self._stmts_text(block.stmts, blocking=True))
        if init_lines:
            self.out("initial begin")
            self.indent += 1
            for line in init_lines:
                self.out(line)
            self.indent -= 1
            self.out("end")
            self.out()

        for block in design.comb_blocks:
            self.out("always @(*) begin")
            self.indent += 1
            for line in self._stmts_text(block.stmts, blocking=True):
                self.out(line)
            self.indent -= 1
            self.out("end")
            self.out()

        for block in design.seq_blocks:
            sens = f"{block.clock_edge} {_safe(block.clock.name)}"
            if block.areset is not None:
                sens += f" or {block.areset_edge} {_safe(block.areset.name)}"
            self.out(f"always @({sens}) begin")
            self.indent += 1
            for line in self._stmts_text(block.stmts, blocking=None):
                self.out(line)
            self.indent -= 1
            self.out("end")
            self.out()

        self.indent -= 1
        self.out("endmodule")
        return "\n".join(self.lines) + "\n"

    def _reg_names(self) -> Set[str]:
        """Nets that must be declared ``reg``: written by any process."""
        names: Set[str] = set()
        blocks: List[List[ir.Stmt]] = [b.stmts for b in self.design.comb_blocks]
        blocks += [b.stmts for b in self.design.seq_blocks]
        blocks += [b.stmts for b in self.design.init_blocks]
        for stmts in blocks:
            for stmt in ir._walk_stmts(stmts):
                if isinstance(stmt, ir.SAssign):
                    for leaf in ir._leaf_lvalues(stmt.target):
                        if isinstance(leaf, (ir.LNet, ir.LNetDyn)):
                            names.add(leaf.net.name)
        return names

    # -- statements -----------------------------------------------------------

    def _stmts_text(self, stmts: List[ir.Stmt], blocking) -> List[str]:
        """Render statements; *blocking* True forces '=', None keeps each
        statement's own kind."""
        out: List[str] = []
        for stmt in stmts:
            out.extend(self._stmt_text(stmt, blocking))
        return out

    def _stmt_text(self, stmt: ir.Stmt, blocking) -> List[str]:
        if isinstance(stmt, ir.SAssign):
            use_blocking = blocking if blocking is not None else stmt.blocking
            op = "=" if use_blocking else "<="
            return [f"{self._lvalue(stmt.target)} {op} {self._expr(stmt.value)};"]
        if isinstance(stmt, ir.SIf):
            lines = [f"if ({self._expr(stmt.cond)}) begin"]
            lines += ["    " + l for l in self._stmts_text(stmt.then, blocking)]
            if stmt.other:
                lines.append("end else begin")
                lines += ["    " + l for l in self._stmts_text(stmt.other, blocking)]
            lines.append("end")
            return lines
        if isinstance(stmt, ir.SCase):
            width = stmt.subject.width
            lines = [f"casez ({self._expr(stmt.subject)})"]
            for item in stmt.items:
                labels = []
                for value, care in item.labels:
                    labels.append(_masked_label(value, care, width))
                lines.append(f"    {', '.join(labels)}: begin")
                lines += ["        " + l
                          for l in self._stmts_text(item.body, blocking)]
                lines.append("    end")
            lines.append("    default: begin")
            lines += ["        " + l
                      for l in self._stmts_text(stmt.default, blocking)]
            lines.append("    end")
            lines.append("endcase")
            return lines
        raise InstrumentationError(f"cannot print statement {stmt!r}")

    def _lvalue(self, lv: ir.LValue) -> str:
        if isinstance(lv, ir.LNet):
            if lv.hi is None:
                return _safe(lv.net.name)
            if lv.hi == lv.lo:
                return f"{_safe(lv.net.name)}[{lv.hi}]"
            return f"{_safe(lv.net.name)}[{lv.hi}:{lv.lo}]"
        if isinstance(lv, ir.LNetDyn):
            return f"{_safe(lv.net.name)}[{self._expr(lv.index)}]"
        if isinstance(lv, ir.LMem):
            return f"{_safe(lv.memory.name)}[{self._expr(lv.index)}]"
        if isinstance(lv, ir.LConcat):
            return "{" + ", ".join(self._lvalue(p) for p in lv.parts) + "}"
        raise InstrumentationError(f"cannot print lvalue {lv!r}")

    # -- expressions ---------------------------------------------------------------

    def _expr(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Const):
            return f"{expr.width}'h{expr.value:x}"
        if isinstance(expr, ir.Ref):
            return _safe(expr.net.name)
        if isinstance(expr, ir.Binary):
            return (f"({self._expr(expr.left)} {expr.op} "
                    f"{self._expr(expr.right)})")
        if isinstance(expr, ir.Unary):
            return f"({expr.op}{self._expr(expr.operand)})"
        if isinstance(expr, ir.Ternary):
            return (f"({self._expr(expr.cond)} ? {self._expr(expr.then)} : "
                    f"{self._expr(expr.other)})")
        if isinstance(expr, ir.Concat):
            return "{" + ", ".join(self._expr(p) for p in expr.parts) + "}"
        if isinstance(expr, ir.Slice):
            base = self._expr(expr.value)
            if not isinstance(expr.value, ir.Ref):
                raise InstrumentationError(
                    "part select of a non-net expression cannot be printed; "
                    "the elaborator only produces Slice over Ref")
            if expr.hi == expr.lo:
                return f"{base}[{expr.hi}]"
            return f"{base}[{expr.hi}:{expr.lo}]"
        if isinstance(expr, ir.MemRead):
            return f"{_safe(expr.memory.name)}[{self._expr(expr.index)}]"
        if isinstance(expr, ir.DynBit):
            if not isinstance(expr.value, ir.Ref):
                raise InstrumentationError(
                    "dynamic bit select of a non-net expression")
            return f"{self._expr(expr.value)}[{self._expr(expr.index)}]"
        raise InstrumentationError(f"cannot print expression {expr!r}")


def _masked_label(value: int, care: int, width: int) -> str:
    """casez label with '?' for don't-care bits."""
    if care == (1 << width) - 1:
        return f"{width}'h{value:x}"
    digits = []
    for i in range(width - 1, -1, -1):
        if (care >> i) & 1:
            digits.append(str((value >> i) & 1))
        else:
            digits.append("?")
    return f"{width}'b{''.join(digits)}"
