"""Execution state: the paper's combined hardware/software state S.

    "We extended Inception's symbolic virtual machine state
    representation from software only to also consider hardware state...
    Each software state S_sw is associated to a unique hardware snapshot
    identifier." (§IV-B)

:class:`ExecState` is S: the software 3-tuple {PC, F, G} — program
counter, registers/stack, global memory — *plus* ``hw_snapshot``, the
hardware snapshot this path owns. The snapshot controller in
:mod:`repro.core` keeps the invariant that the live hardware state
matches the scheduled ExecState's snapshot.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.isa import encoding as enc
from repro.solver import expr as E
from repro.targets.base import HwSnapshot
from repro.vm.memory import SymbolicMemory, Value

_state_ids = itertools.count(1)

STATUS_ACTIVE = "active"
STATUS_HALTED = "halted"
STATUS_ERROR = "error"
STATUS_TERMINATED = "terminated"  # infeasible / assume-failed / killed

TRACE_DEPTH = 64


@dataclass(eq=False)
class ExecState:
    """One explored execution path (software state + hardware snapshot id).

    Identity semantics (``eq=False``): two states are the same only if
    they are the same object — searchers track states by identity."""

    memory: SymbolicMemory
    pc: int = 0
    regs: List[Value] = field(default_factory=lambda: [0] * enc.NUM_REGS)
    constraints: List[E.BitVec] = field(default_factory=list)
    status: str = STATUS_ACTIVE
    # Hardware side of S. None = "no snapshot yet" (fresh reset state).
    hw_snapshot: Optional[HwSnapshot] = None
    # Interrupt state.
    irq_enabled: bool = False
    irq_handler: Optional[int] = None
    in_irq: bool = False
    irq_return_pc: int = 0
    # Bookkeeping.
    state_id: int = field(default_factory=lambda: next(_state_ids))
    parent_id: int = 0
    depth: int = 0          # number of forks on this path
    steps: int = 0          # instructions executed
    #: Fork-tree address: the root is ``()``; each fork appends the
    #: parent's fork ordinal. Unlike ``state_id`` (a process-local
    #: counter), the lineage is schedule- and process-independent, which
    #: is what lets a parallel run renumber merged paths identically to
    #: the serial engine.
    lineage: Tuple[int, ...] = ()
    #: Number of forks this state has spawned (the next child's ordinal).
    fork_count: int = 0
    halt_code: Optional[int] = None
    error: Optional[str] = None
    trace_marks: List[int] = field(default_factory=list)
    recent_pcs: Deque[int] = field(default_factory=lambda: deque(maxlen=TRACE_DEPTH))

    # -- forking -------------------------------------------------------------

    def fork(self) -> "ExecState":
        """Fork at a symbolic branch: COW memory, private constraint list,
        and — per Algorithm 1 — a cloned, non-shared hardware snapshot."""
        child = ExecState(
            memory=self.memory.fork(),
            pc=self.pc,
            regs=list(self.regs),
            constraints=list(self.constraints),
            hw_snapshot=(self.hw_snapshot.clone()
                         if self.hw_snapshot is not None else None),
            irq_enabled=self.irq_enabled,
            irq_handler=self.irq_handler,
            in_irq=self.in_irq,
            irq_return_pc=self.irq_return_pc,
            parent_id=self.state_id,
            depth=self.depth + 1,
            steps=self.steps,
            lineage=self.lineage + (self.fork_count,),
            trace_marks=list(self.trace_marks),
        )
        self.fork_count += 1
        child.recent_pcs = deque(self.recent_pcs, maxlen=TRACE_DEPTH)
        return child

    # -- value helpers ---------------------------------------------------------------

    def reg(self, index: int) -> Value:
        return self.regs[index]

    def set_reg(self, index: int, value: Value) -> None:
        if isinstance(value, int):
            value &= 0xFFFFFFFF
        self.regs[index] = value

    def reg_expr(self, index: int) -> E.BitVec:
        """Register as a 32-bit expression (wrapping concrete ints)."""
        value = self.regs[index]
        if isinstance(value, int):
            return E.const(value, 32)
        return value

    def add_constraint(self, cond: E.BitVec) -> None:
        if not (cond.is_const and cond.value == 1):
            self.constraints.append(cond)

    @property
    def is_active(self) -> bool:
        return self.status == STATUS_ACTIVE

    def symbolic_variables(self) -> List[E.BitVec]:
        seen: Dict[E.BitVec, None] = {}
        for c in self.constraints:
            for v in c.variables():
                seen.setdefault(v)
        for r in self.regs:
            if isinstance(r, E.BitVec):
                for v in r.variables():
                    seen.setdefault(v)
        return list(seen)

    def __repr__(self) -> str:
        return (f"ExecState(id={self.state_id}, pc=0x{self.pc:x}, "
                f"status={self.status}, depth={self.depth}, "
                f"constraints={len(self.constraints)})")
