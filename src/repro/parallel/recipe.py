"""Picklable recipes for rebuilding a session inside a worker process.

Live targets cannot cross a process boundary: a
:class:`~repro.peripherals.catalog.PeripheralSpec` holds the peripheral's
generator *module* and an elaborated instance holds a compiled
simulation. Workers therefore receive a recipe — catalog names, base
addresses and the :class:`~repro.core.config.SessionConfig` — and
re-elaborate their own private target, exactly as the coordinator's was
built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.config import SessionConfig
from repro.errors import TargetError, VmError
from repro.isa.assembler import Program, assemble
from repro.peripherals import catalog
from repro.targets.base import HardwareTarget
from repro.targets.fpga import FpgaTarget
from repro.targets.simulator import SimulatorTarget


@dataclass(frozen=True)
class TargetRecipe:
    """How to rebuild one hardware target in another process."""

    kind: str  # "fpga" | "simulator"
    scan_mode: str = "functional"
    sram_dedup: bool = False
    #: Netlist optimization for the worker's compiled backend (FPGA
    #: kind only) — must match the coordinator so snapshots transport
    #: between bit-identical simulations.
    opt: bool = True
    #: (catalog name, base address, instance name) per peripheral.
    peripherals: Tuple[Tuple[str, int, str], ...] = ()

    @classmethod
    def from_target(cls, target: HardwareTarget) -> "TargetRecipe":
        """Describe a live target so a worker can rebuild it by name.

        Every hosted peripheral must come from the catalog — the recipe
        travels as names, not modules.
        """
        if isinstance(target, FpgaTarget):
            kind, scan_mode, sram_dedup, opt = \
                "fpga", target.scan_mode, target.sram_dedup, target.opt
        elif isinstance(target, SimulatorTarget):
            kind, scan_mode, sram_dedup, opt = \
                "simulator", "functional", False, True
        else:
            raise TargetError(
                f"cannot describe target {type(target).__name__} for "
                f"worker-side reconstruction")
        peripherals = []
        for name, instance in target.instances.items():
            spec_name = instance.spec.name
            try:
                catalog.get(spec_name)
            except KeyError:
                raise TargetError(
                    f"peripheral {spec_name!r} is not in the catalog; "
                    f"parallel workers rebuild targets by catalog name")
            peripherals.append((spec_name, instance.region.base, name))
        return cls(kind=kind, scan_mode=scan_mode, sram_dedup=sram_dedup,
                   opt=opt, peripherals=tuple(peripherals))

    def build(self) -> HardwareTarget:
        if self.kind == "fpga":
            target: HardwareTarget = FpgaTarget(
                scan_mode=self.scan_mode, sram_dedup=self.sram_dedup,
                opt=self.opt)
        elif self.kind == "simulator":
            target = SimulatorTarget()
        else:
            raise TargetError(f"unknown target kind {self.kind!r}")
        for spec_name, base, instance_name in self.peripherals:
            target.add_peripheral(catalog.get(spec_name), base,
                                  instance_name=instance_name)
        return target


@dataclass(frozen=True)
class SessionRecipe:
    """Everything a worker needs to rebuild the full analysis stack:
    assembled firmware, target recipe, session knobs, fuzz harness
    parameters. All fields are plain picklable data."""

    program: Program
    target: TargetRecipe
    config: SessionConfig = field(default_factory=SessionConfig)
    # Fuzz-harness parameters (ignored by engine workers).
    max_steps_per_exec: int = 20_000
    #: IPC transport for the pool serving this recipe: "auto" (shm when
    #: the host supports it, else queue), "shm", or "queue". Rides the
    #: recipe so coordinator and workers resolve the same choice.
    transport: str = "auto"
    #: Ship software state as dirty-page + constraint-suffix deltas
    #: (:mod:`repro.parallel.statewire`). ``False`` forces full pickles
    #: on every lease — the measurement baseline and the degraded
    #: in-process fallback, where no wire format is involved at all.
    delta_state: bool = True

    @classmethod
    def create(cls, firmware: Union[str, Program],
               peripherals: Sequence[Tuple[object, int]] = (),
               config: Optional[SessionConfig] = None,
               max_steps_per_exec: int = 20_000,
               transport: str = "auto",
               delta_state: bool = True,
               **overrides) -> "SessionRecipe":
        """Build a recipe from the same arguments
        :class:`~repro.core.hardsnap.HardSnapSession` takes."""
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            raise VmError("pass either a config or keyword overrides")
        if config.strategy != "hardsnap":
            raise VmError(
                f"the parallel runtime requires the 'hardsnap' strategy "
                f"(snapshots are what make states portable); "
                f"got {config.strategy!r}")
        program = (firmware if isinstance(firmware, Program)
                   else assemble(firmware))
        bindings = []
        for spec, base in peripherals:
            try:
                catalog.get(spec.name)
            except (AttributeError, KeyError):
                raise TargetError(
                    f"peripheral {getattr(spec, 'name', spec)!r} is not "
                    f"in the catalog; parallel workers rebuild targets "
                    f"by catalog name")
            bindings.append((spec.name, base, spec.name))
        target = TargetRecipe(
            kind=config.target, scan_mode=config.scan_mode,
            sram_dedup=config.sram_dedup, opt=config.opt,
            peripherals=tuple(bindings))
        return cls(program=program, target=target, config=config,
                   max_steps_per_exec=max_steps_per_exec,
                   transport=transport, delta_state=delta_state)

    def build_session(self):
        """Construct a full HardSnapSession from this recipe (worker
        side). Imported lazily to keep recipe unpickling cheap."""
        from repro.core.hardsnap import HardSnapSession
        return HardSnapSession(self.program, (), config=self.config,
                               target=self.target.build())

    def with_config(self, **changes) -> "SessionRecipe":
        return replace(self, config=replace(self.config, **changes))


def peripheral_names(recipe: SessionRecipe) -> List[str]:
    return [name for name, _, _ in recipe.target.peripherals]
