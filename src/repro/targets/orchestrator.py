"""Multi-target orchestration (paper §III-B "Multi-target orchestration").

    "It supports state transfer from one target to another one at any
    time during the analysis... the target orchestration enables to
    start the analysis on the FPGA target and once a particular point is
    reached the FPGA state is transferred to the Verilator target."

The orchestrator keeps a registry of targets hosting the *same* set of
peripherals and moves live hardware states between them: capture on the
source (scan chain / CRIU), convert through the canonical state form,
load on the destination. It also tracks which target is *active* so a
virtual machine can route MMIO to the current one transparently.

Transfers pass through a shared content-addressed
:class:`~repro.core.store.SnapshotStore`: the captured image is interned
as canonical chunks, so repeated transfers of mostly-unchanged state
stream only the delta over the debugger link (``TransferRecord.delta_bits``),
while the destination still loads a full image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.store import SnapshotStore
from repro.errors import LinkError, TargetError
from repro.targets.base import HardwareTarget, HwSnapshot


@dataclass
class TransferRecord:
    source: str
    destination: str
    bits: int
    modelled_cost_s: float
    #: Bits that actually crossed the link after chunk dedup against
    #: earlier transfers (== ``bits`` for the first transfer).
    delta_bits: int = -1


class TargetOrchestrator:
    """Registry + state-transfer engine over interchangeable targets."""

    def __init__(self, store: Optional[SnapshotStore] = None) -> None:
        self._targets: Dict[str, HardwareTarget] = {}
        self._active: Optional[str] = None
        self.transfers: List[TransferRecord] = []
        #: Shared store deduplicating the canonical images that travel
        #: between targets (ids here are transfer ids, not snapshot ids).
        self.store = store if store is not None else SnapshotStore()
        self._last_transfer_id: Optional[int] = None

    # -- registry -----------------------------------------------------------

    def register(self, target: HardwareTarget, active: bool = False) -> None:
        if target.name in self._targets:
            raise TargetError(f"target {target.name!r} already registered")
        if self._targets:
            reference = next(iter(self._targets.values()))
            if set(reference.instances) != set(target.instances):
                raise TargetError(
                    "all registered targets must host the same instances; "
                    f"{target.name!r} differs from {reference.name!r}")
        self._targets[target.name] = target
        if active or self._active is None:
            self._active = target.name

    def target(self, name: str) -> HardwareTarget:
        target = self._targets.get(name)
        if target is None:
            raise TargetError(f"unknown target {name!r}; "
                              f"registered: {sorted(self._targets)}")
        return target

    @property
    def active(self) -> HardwareTarget:
        if self._active is None:
            raise TargetError("no target registered")
        return self._targets[self._active]

    @property
    def names(self) -> List[str]:
        return sorted(self._targets)

    # -- state transfer -------------------------------------------------------------

    def transfer(self, source: str, destination: str,
                 switch_active: bool = True) -> HwSnapshot:
        """Move the live hardware state from *source* to *destination*.

        Captures with the source's snapshot method, loads with the
        destination's, and (by default) makes the destination the active
        target. Returns the canonical snapshot that travelled.
        """
        src = self.target(source)
        dst = self.target(destination)
        if src is dst:
            raise TargetError("source and destination are the same target")
        snapshot = src.save_snapshot()
        # Intern the canonical image: chunks already seen on an earlier
        # transfer are content-identical on both sides of the link, so
        # only the delta needs to travel.
        transfer_id = self.store.next_id()
        record = self.store.put(
            transfer_id, snapshot.states,
            bits_of={name: src.instances[name].state_bits
                     for name in snapshot.states},
            parent_id=self._last_transfer_id, method=snapshot.method)
        snapshot.record = record
        snapshot.states = self.store.resolve(transfer_id)
        self._last_transfer_id = transfer_id
        delta_bits = record.stored_bits
        # The state leaves the source's domain: a cross-target transfer
        # always streams the (delta-compressed) image over the slower of
        # the two transports.
        link = max(src.transport, dst.transport,
                   key=lambda t: t.per_access_s)
        link_cost = link.bulk_latency_s(max(delta_bits, 1))
        dst.timer.add_transport(link_cost)
        link_cost += self._retry_transfer(src, dst, link_cost)
        dst.restore_snapshot(snapshot)
        total = snapshot.modelled_cost_s + link_cost
        self.transfers.append(TransferRecord(source, destination,
                                             snapshot.bits, total,
                                             delta_bits=delta_bits))
        if switch_active:
            self._active = destination
        return snapshot

    @staticmethod
    def _retry_transfer(src: HardwareTarget, dst: HardwareTarget,
                        link_cost: float) -> float:
        """Bounded retry for cross-target transfers timing out on the
        link (decided by the destination's fault injector — it owns the
        receiving end). Each retry re-streams the delta and charges
        backoff; returns the extra modelled cost."""
        inj = dst._injector
        if inj is None:
            return 0.0
        policy = dst._retry_policy
        extra = 0.0
        attempt = 0
        while inj.roll("transfer_timeout", inj.plan.transfer_timeout_rate):
            if attempt >= policy.max_link_retries:
                raise LinkError(
                    f"transfer {src.name!r} -> {dst.name!r} timed out; "
                    f"{attempt} retries exhausted")
            backoff = policy.backoff_s(attempt)
            attempt += 1
            dst.timer.add_transport(link_cost)
            dst.timer.add_fixed(backoff)
            extra += link_cost + backoff
            dst.resilience.transfer_retries += 1
            dst.resilience.backoff_s += backoff
        return extra

    def modelled_time_s(self) -> float:
        """Total modelled time across all registered targets."""
        return sum(t.timer.total_s for t in self._targets.values())

    def active_view(self) -> "ActiveTargetView":
        """A HardwareTarget-shaped proxy that always follows the active
        target — lets an analysis engine run over the orchestrator and
        keep working across mid-analysis target switches."""
        return ActiveTargetView(self)


class ActiveTargetView:
    """Delegates the HardwareTarget surface to the orchestrator's active
    target. Attribute access (``timer``, ``instances``, ``visibility``…)
    follows the active target dynamically."""

    def __init__(self, orchestrator: TargetOrchestrator):
        object.__setattr__(self, "_orch", orchestrator)

    @property
    def _target(self) -> HardwareTarget:
        return self._orch.active

    def __getattr__(self, name: str):
        return getattr(self._target, name)

    def read(self, addr: int) -> int:
        return self._target.read(addr)

    def write(self, addr: int, value: int) -> None:
        self._target.write(addr, value)

    def step(self, cycles: int = 1) -> None:
        self._target.step(cycles)

    def irq_lines(self):
        return self._target.irq_lines()

    def reset(self) -> None:
        self._target.reset()

    def save_snapshot(self) -> HwSnapshot:
        return self._target.save_snapshot()

    def restore_snapshot(self, snapshot: HwSnapshot) -> None:
        self._target.restore_snapshot(snapshot)
