"""The content-addressed delta snapshot store + controller integration.

Covers three layers:

* the store itself (chunk dedup, delta records, flatten threshold,
  leaf-only garbage collection),
* the snapshot controller over it (id assignment — including the valid
  id 0 — symmetric cost accounting, lineage/epoch guards),
* property-style round trips: a delta-chain restore must be
  bit-identical to a full-image restore on every target and across
  targets (orchestrator transfer).
"""

import json
import random

import pytest

from repro.core.snapshot import SnapshotController
from repro.core.store import SnapshotStore, chunk_digest
from repro.errors import SnapshotError
from repro.peripherals import catalog
from repro.targets import (FpgaTarget, SimulatorTarget, TargetOrchestrator)
from repro.targets.base import HwSnapshot

BASE = 0x4000_0000
TIMER_CTRL = BASE + 0x00
TIMER_LOAD = BASE + 0x04
GPIO_BASE = 0x4001_0000
GPIO_DIR = GPIO_BASE + 0x00
GPIO_OUT = GPIO_BASE + 0x04


def _bits_of(states):
    return {name: 1 for name in states}


# ---------------------------------------------------------------------------
# chunk_digest
# ---------------------------------------------------------------------------

def test_digest_is_insertion_order_independent():
    a = {"nets": {"x": 1, "y": 2}, "cycle": 3, "memories": {}}
    b = {"memories": {}, "cycle": 3, "nets": {"y": 2, "x": 1}}
    assert chunk_digest(a) == chunk_digest(b)


def test_digest_distinguishes_values():
    a = {"nets": {"x": 1}, "cycle": 0, "memories": {}}
    b = {"nets": {"x": 2}, "cycle": 0, "memories": {}}
    assert chunk_digest(a) != chunk_digest(b)


# ---------------------------------------------------------------------------
# store mechanics
# ---------------------------------------------------------------------------

def _state(v):
    return {"cycle": 0, "nets": {"r": v}, "memories": {}}


def test_identical_states_share_one_chunk():
    store = SnapshotStore()
    store.put(1, {"a": _state(7), "b": _state(7)}, {"a": 8, "b": 8})
    assert store.stats.chunks == 1
    assert store.stats.chunk_hits == 1
    assert store.stats.stored_bits == 8
    assert store.stats.logical_bits == 16


def test_child_stores_only_changed_instances():
    store = SnapshotStore()
    states = {"a": _state(1), "b": _state(2)}
    store.put(1, states, {"a": 8, "b": 8})
    child = dict(states, a=_state(99))
    record = store.put(2, child, {"a": 8, "b": 8}, parent_id=1)
    assert not record.full
    assert set(record.chunk_map) == {"a"}
    assert record.stored_bits == 8  # only the new chunk
    assert store.resolve(2) == child  # b inherited through the chain


def test_flatten_threshold_bounds_chain_depth():
    store = SnapshotStore(flatten_threshold=3)
    store.put(1, {"a": _state(0), "b": _state(0)}, {"a": 8, "b": 8})
    for i in range(2, 12):
        store.put(i, {"a": _state(i), "b": _state(0)}, {"a": 8, "b": 8},
                  parent_id=i - 1)
        assert store.chain_depth(i) < 3
    assert store.stats.flattens > 0
    assert store.stats.max_chain_depth == 2
    # Flattening costs no extra chunk storage: one chunk per distinct
    # state value (the first "a" and "b" are identical → shared).
    assert store.stats.chunks == 11


def test_unchanged_fast_path_skips_hashing():
    store = SnapshotStore()
    states = {"a": _state(1), "b": _state(2)}
    store.put(1, states, {"a": 8, "b": 8})
    store.put(2, dict(states, a=_state(3)), {"a": 8, "b": 8},
              parent_id=1, unchanged=("b",))
    assert store.stats.capture_skips == 1
    assert store.resolve(2)["b"] == _state(2)


def test_cycle_only_movement_stores_no_new_chunks():
    """Lockstep time advances every instance's cycle counter on any
    activity; that alone must not defeat dedup — yet the cycle must
    round-trip exactly."""
    store = SnapshotStore()
    s0 = {"cycle": 10, "nets": {"r": 5}, "memories": {}}
    s1 = {"cycle": 99, "nets": {"r": 5}, "memories": {}}  # idle, just later
    store.put(1, {"a": s0}, {"a": 8})
    record = store.put(2, {"a": s1}, {"a": 8}, parent_id=1)
    assert record.stored_bits == 0  # same register content, shared chunk
    assert store.resolve(1)["a"]["cycle"] == 10
    assert store.resolve(2)["a"]["cycle"] == 99
    assert store.resolve(2)["a"]["nets"] == {"r": 5}


def test_duplicate_and_unknown_parent_rejected():
    store = SnapshotStore()
    store.put(1, {"a": _state(0)}, {"a": 8})
    with pytest.raises(SnapshotError):
        store.put(1, {"a": _state(1)}, {"a": 8})
    with pytest.raises(SnapshotError):
        store.put(2, {"a": _state(1)}, {"a": 8}, parent_id=404)


def test_forget_is_leaf_only_and_frees_chunks():
    store = SnapshotStore()
    store.put(1, {"a": _state(1)}, {"a": 8})
    store.put(2, {"a": _state(2)}, {"a": 8}, parent_id=1)
    with pytest.raises(SnapshotError):
        store.forget(1)  # interior: child 2 inherits through it
    store.forget(2)
    store.forget(1)
    assert len(store) == 0
    assert store.stats.chunks == 0
    assert store.stats.stored_bits == 0


def test_shared_store_ids_never_collide():
    store = SnapshotStore()
    a = store.next_id()
    b = store.next_id()
    assert a != b


# ---------------------------------------------------------------------------
# controller: ids + accounting (the two satellite bugfixes)
# ---------------------------------------------------------------------------

class _ZeroSlotTarget(SimulatorTarget):
    """A target whose mechanism assigns snapshot id 0 (a valid slot)."""

    def save_snapshot(self) -> HwSnapshot:
        snapshot = super().save_snapshot()
        snapshot.snapshot_id = 0
        return snapshot


def test_target_assigned_id_zero_is_preserved():
    target = _ZeroSlotTarget()
    target.add_peripheral(catalog.TIMER, BASE)
    target.reset()
    snapshot = SnapshotController(target).save()
    assert snapshot.snapshot_id == 0  # not clobbered by `or next(ids)`


def test_save_and_restore_costs_both_use_timer_delta():
    target = SimulatorTarget()
    target.add_peripheral(catalog.TIMER, BASE)
    target.reset()
    controller = SnapshotController(target)
    snapshot = controller.save()
    controller.restore(snapshot)
    # Both directions account exactly the mechanism's modelled time.
    assert controller.stats.modelled_save_s == \
        pytest.approx(snapshot.modelled_cost_s)
    assert controller.stats.modelled_restore_s == \
        pytest.approx(target.criu.restore_s(snapshot.bits))


def test_untouched_hardware_dedups_to_zero_new_bits():
    target = SimulatorTarget()
    target.add_peripheral(catalog.TIMER, BASE)
    target.reset()
    controller = SnapshotController(target)
    first = controller.save()
    second = controller.save()  # nothing ran in between
    assert second.record.stored_bits == 0
    assert controller.store.resolve_digests(second.record.snapshot_id) == \
        controller.store.resolve_digests(first.record.snapshot_id)


def test_out_of_band_capture_breaks_the_fast_path_safely():
    target = SimulatorTarget()
    target.add_peripheral(catalog.TIMER, BASE)
    target.reset()
    controller = SnapshotController(target)
    controller.save()
    # Behind the controller's back: snapshot, mutate, restore. The sim's
    # state version ends up back where it was, so a naive dirty-set
    # consumer would wrongly reuse the parent digest.
    target.save_snapshot()
    controller.save()  # must not trust the stale lineage
    assert controller.store.stats.capture_skips == 0


def test_incremental_criu_pricing():
    target = SimulatorTarget()
    target.add_peripheral(catalog.SHA256, BASE)
    target.reset()
    controller = SnapshotController(target)
    first = controller.save()
    target.write(TIMER_CTRL, 1)  # touch the peripheral a little
    second = controller.save()
    # Dirty-page tracking armed: the second dump streams the small
    # incremental image, not the whole process image.
    assert second.modelled_cost_s < first.modelled_cost_s
    dirty_bits = sum(target.instances[name].state_bits
                     for name in second.dirty)
    assert second.modelled_cost_s == \
        pytest.approx(target.criu.incremental_checkpoint_s(dirty_bits))
    controller.reset()
    third = controller.save()  # process restarted: full dump again
    assert third.modelled_cost_s == pytest.approx(first.modelled_cost_s)


# ---------------------------------------------------------------------------
# round-trip equivalence (property-style)
# ---------------------------------------------------------------------------

def _make_target(kind):
    if kind == "simulator":
        target = SimulatorTarget()
    else:
        target = FpgaTarget(scan_mode=kind)
    target.add_peripheral(catalog.TIMER, BASE)
    target.add_peripheral(catalog.GPIO, GPIO_BASE)
    target.reset()
    return target


def _poke_randomly(target, rng, ops=4):
    for _ in range(ops):
        choice = rng.randrange(4)
        if choice == 0:
            target.write(TIMER_LOAD, rng.randrange(1 << 16))
        elif choice == 1:
            target.write(TIMER_CTRL, rng.randrange(16))
        elif choice == 2:
            target.write(GPIO_OUT, rng.randrange(1 << 32))
        else:
            target.step(rng.randrange(1, 8))


def _frozen(states):
    """Deep, mutation-proof copy of a canonical state map."""
    return json.loads(json.dumps(states, sort_keys=True))


def _live_canonical(target):
    """The live hardware state in canonical form, read directly (no
    capture mechanism — a physical scan shift would advance time)."""
    out = {}
    for name, instance in target.instances.items():
        state = instance.sim.save_state()
        if hasattr(target, "_strip_scan_artifacts"):
            state = target._strip_scan_artifacts(instance, state)
        out[name] = state
    return out


@pytest.mark.parametrize("kind", ["simulator", "functional", "shift"])
def test_delta_chain_restore_is_bit_identical(kind):
    """Save a chain of delta snapshots under random activity, then
    restore each in random order: the reassembled image must equal the
    full image recorded at save time, and the hardware must actually
    reach that state (verified by an independent re-capture)."""
    rng = random.Random(1234)
    target = _make_target(kind)
    controller = SnapshotController(target, flatten_threshold=4)
    saved = []
    for _ in range(12):
        _poke_randomly(target, rng)
        snapshot = controller.save()
        saved.append((snapshot, _frozen(snapshot.states)))
    order = list(range(len(saved)))
    rng.shuffle(order)
    for i in order:
        snapshot, full_image = saved[i]
        controller.restore(snapshot)
        # Store reassembly (delta-chain walk) is bit-identical.
        assert _frozen(snapshot.states) == full_image
        # And the live hardware actually holds that state.
        assert _frozen(_live_canonical(target)) == full_image


def test_store_backed_clone_is_cheap_and_identical():
    target = _make_target("functional")
    controller = SnapshotController(target)
    target.write(TIMER_LOAD, 77)
    snapshot = controller.save()
    clone = snapshot.clone()
    assert clone.states == snapshot.states
    # Shared immutable chunks, not deep copies.
    for name in snapshot.states:
        assert clone.states[name] is snapshot.states[name]


def test_readback_capture_matches_scan_canonical_form():
    target = _make_target("functional")
    target.write(TIMER_LOAD, 123)
    target.write(GPIO_OUT, 0xA5)
    scan = target.save_snapshot()
    readback = target.readback_snapshot()
    # Same canonical content → same chunk digests → full store dedup.
    for name in scan.states:
        assert chunk_digest(scan.states[name]) == \
            chunk_digest(readback.states[name])
    store = SnapshotStore()
    store.put(1, scan.states, _bits_of(scan.states))
    store.put(2, readback.states, _bits_of(readback.states), parent_id=1)
    assert store.record(2).stored_bits == 0


def test_cross_target_transfer_round_trips_through_store():
    rng = random.Random(99)
    fpga = _make_target("functional")
    sim = SimulatorTarget()
    sim.add_peripheral(catalog.TIMER, BASE)
    sim.add_peripheral(catalog.GPIO, GPIO_BASE)
    sim.reset()
    orch = TargetOrchestrator()
    orch.register(fpga, active=True)
    orch.register(sim)

    _poke_randomly(fpga, rng)
    first = orch.transfer("fpga", "simulator")
    assert _frozen(_live_canonical(sim)) == _frozen(first.states)
    # First transfer: everything is new, the full image crosses.
    assert orch.transfers[0].delta_bits == first.record.logical_bits

    # Back-transfer with no intervening activity: the image dedups
    # against the first transfer and only the delta crosses the link.
    second = orch.transfer("simulator", "fpga")
    assert _frozen(second.states) == _frozen(first.states)
    assert orch.transfers[1].delta_bits == 0
    assert _frozen(_live_canonical(fpga)) == _frozen(first.states)
