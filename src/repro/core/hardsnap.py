"""The HardSnap session facade — the library's main entry point.

Wires together every layer: peripherals are elaborated onto a hardware
target (FPGA or simulator), firmware is assembled, the selective symbolic
VM is built over the MMIO bridge, and Algorithm 1 runs with the chosen
consistency strategy.

Typical use::

    from repro import HardSnapSession
    from repro.peripherals import catalog

    session = HardSnapSession(
        firmware=ASM_SOURCE,
        peripherals=[(catalog.TIMER, 0x4000_0000)],
    )
    report = session.run(max_instructions=200_000)
    for bug in report.bugs:
        print(bug.summary())
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import SessionConfig
from repro.core.engine import (AnalysisEngine, AnalysisReport,
                               ConsistencyStrategy, RebootReplayStrategy,
                               SharedHardwareStrategy, SnapshotStrategy)
from repro.errors import VmError
from repro.isa.assembler import Program, assemble
from repro.peripherals.catalog import PeripheralSpec
from repro.solver import Solver
from repro.targets.base import HardwareTarget
from repro.targets.fpga import FpgaTarget
from repro.targets.simulator import SimulatorTarget
from repro.vm.executor import SymbolicExecutor
from repro.vm.forwarding import ConcretizationPolicy, MmioBridge
from repro.vm.searchers import RandomSearcher, make_searcher
from repro.vm.state import ExecState

PeripheralBinding = Tuple[PeripheralSpec, int]


def make_strategy(name: str, config: SessionConfig) -> ConsistencyStrategy:
    if name == "hardsnap":
        return SnapshotStrategy()
    if name == "naive-consistent":
        return RebootReplayStrategy(
            reboot_time_s=config.reboot_time_s,
            cycles_per_instruction=config.cycles_per_instruction)
    if name == "naive-inconsistent":
        return SharedHardwareStrategy()
    raise VmError(f"unknown strategy {name!r}")


def make_target(config: SessionConfig) -> HardwareTarget:
    if config.target == "fpga":
        return FpgaTarget(scan_mode=config.scan_mode,
                          sram_dedup=config.sram_dedup,
                          opt=config.opt)
    if config.target == "simulator":
        return SimulatorTarget()
    raise VmError(f"unknown target kind {config.target!r}")


class HardSnapSession:
    """One co-testing analysis: firmware + peripherals + engine."""

    def __init__(self,
                 firmware: Union[str, Program],
                 peripherals: Sequence[PeripheralBinding] = (),
                 config: Optional[SessionConfig] = None,
                 target: Optional[Union[HardwareTarget, str]] = None,
                 solver: Optional[Solver] = None,
                 **overrides):
        if isinstance(target, str):
            # `target="simulator"` is a config override, not an instance.
            overrides["target"] = target
            target = None
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            raise VmError("pass either a config or keyword overrides")
        self.config = config
        self.program = (firmware if isinstance(firmware, Program)
                        else assemble(firmware))
        self.target = target or make_target(config)
        if config.fault_plan is not None:
            self.target.attach_resilience(config.fault_plan,
                                          config.retry_policy)
        for spec, base in peripherals:
            self.target.add_peripheral(spec, base)
        self.solver = solver or Solver()
        policy = ConcretizationPolicy(config.concretization,
                                      config.concretization_limit)
        self.bridge = MmioBridge(self.target, self.solver, policy)
        self.executor = SymbolicExecutor(
            self.program, self.bridge, self.solver,
            ram_size=config.ram_size, mmio_base=config.mmio_base,
            dispatch=config.dispatch)
        searcher_kwargs = {}
        if config.searcher == "random":
            searcher_kwargs["seed"] = config.seed
        elif config.searcher == "coverage":
            searcher_kwargs["covered"] = self.executor.coverage
        self.searcher = make_searcher(config.searcher, **searcher_kwargs)
        self.strategy = make_strategy(config.strategy, config)
        self.engine = AnalysisEngine(
            self.executor, self.searcher, self.strategy, self.target,
            self.bridge,
            cycles_per_instruction=config.cycles_per_instruction,
            irq_poll_interval=config.irq_poll_interval,
            flatten_threshold=config.snapshot_flatten_threshold)

    # -- running ------------------------------------------------------------

    def make_initial_state(self) -> ExecState:
        return self.executor.make_initial_state()

    def run(self, max_instructions: int = 1_000_000,
            max_states: int = 4096, stop_after_bugs: int = 0,
            host_time_limit_s: float = 0.0) -> AnalysisReport:
        """Run Algorithm 1 to completion (or budget exhaustion)."""
        initial = self.make_initial_state()
        return self.engine.run(initial,
                               max_instructions=max_instructions,
                               max_states=max_states,
                               stop_after_bugs=stop_after_bugs,
                               host_time_limit_s=host_time_limit_s,
                               lane_width=self.config.lane_width,
                               lane_steps=self.config.lane_steps)


def run_all_strategies(firmware: Union[str, Program],
                       peripherals: Sequence[PeripheralBinding],
                       strategies: Iterable[str] = (
                           "hardsnap", "naive-consistent",
                           "naive-inconsistent"),
                       config: Optional[SessionConfig] = None,
                       **run_kwargs) -> List[AnalysisReport]:
    """Run the same analysis under several consistency strategies —
    the comparison harness behind experiments E2 and E4."""
    reports = []
    for name in strategies:
        cfg = SessionConfig(**{**(config.__dict__ if config else {}),
                               "strategy": name})
        session = HardSnapSession(firmware, peripherals, config=cfg)
        reports.append(session.run(**run_kwargs))
    return reports
