"""Two-pass assembler for HS32.

Syntax::

    ; comment            (also //)
    .org 0x100           ; set location counter
    .word 0xdeadbeef, 12 ; literal words
    .space 64            ; zero-filled bytes
    .asciz "hello"       ; NUL-terminated string
    .equ UART_BASE, 0x40010000
    label:
        movi r1, UART_BASE     ; pseudo: lui+ori / addi
        lw   r2, 8(r1)
        beq  r2, r0, done
        call subroutine
    done:
        halt r0

Registers: ``r0``..``r15``; aliases ``sp`` (r13), ``lr`` (r14).

Pseudo-instructions: ``movi`` (32-bit constant), ``mov``, ``li`` (alias of
movi), ``nop``, ``j``, ``call``, ``ret``, ``inc``, ``dec``, ``push``,
``pop``, and the intrinsic mnemonics ``sym``, ``symbuf``, ``assume``,
``assert``, ``setivt``, ``ei``, ``di``, ``trace``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa import encoding as enc

_REG_ALIASES = {"sp": enc.REG_SP, "lr": enc.REG_LR}

_R_OPS = {"add": enc.ADD, "sub": enc.SUB, "and": enc.AND, "or": enc.OR,
          "xor": enc.XOR, "sll": enc.SLL, "srl": enc.SRL, "sra": enc.SRA,
          "mul": enc.MUL, "divu": enc.DIVU, "remu": enc.REMU,
          "slt": enc.SLT, "sltu": enc.SLTU}
_I_OPS = {"addi": enc.ADDI, "andi": enc.ANDI, "ori": enc.ORI,
          "xori": enc.XORI, "slli": enc.SLLI, "srli": enc.SRLI,
          "srai": enc.SRAI}
_LOAD_OPS = {"lw": enc.LW, "lb": enc.LB, "lbu": enc.LBU}
_STORE_OPS = {"sw": enc.SW, "sb": enc.SB}
_BRANCH_OPS = {"beq": enc.BEQ, "bne": enc.BNE, "blt": enc.BLT,
               "bge": enc.BGE, "bltu": enc.BLTU, "bgeu": enc.BGEU}


@dataclass
class Program:
    """Assembled firmware image."""

    words: Dict[int, int] = field(default_factory=dict)  # byte addr -> word
    labels: Dict[str, int] = field(default_factory=dict)
    entry: int = 0
    source_map: Dict[int, int] = field(default_factory=dict)  # addr -> line

    @property
    def size_bytes(self) -> int:
        if not self.words:
            return 0
        return max(self.words) + 4 - min(self.words)

    def as_bytes(self) -> Dict[int, int]:
        """Byte-addressed image (little-endian)."""
        out: Dict[int, int] = {}
        for addr, word in self.words.items():
            for i in range(4):
                out[addr + i] = (word >> (8 * i)) & 0xFF
        return out


def assemble(source: str, entry_label: str = "start") -> Program:
    """Assemble *source*; the entry point is *entry_label* if defined,
    else the lowest address."""
    asm = _Assembler()
    asm.run(source)
    program = Program(asm.words, asm.labels, source_map=asm.source_map)
    if entry_label in asm.labels:
        program.entry = asm.labels[entry_label]
    elif asm.words:
        program.entry = min(asm.words)
    return program


@dataclass
class _Pending:
    """An instruction awaiting label resolution in pass 2."""

    addr: int
    line_no: int
    mnemonic: str
    operands: List[str]


class _Assembler:
    def __init__(self) -> None:
        self.words: Dict[int, int] = {}
        self.labels: Dict[str, int] = {}
        self.equs: Dict[str, int] = {}
        self.source_map: Dict[int, int] = {}
        self.lc = 0  # location counter (bytes)
        self.pending: List[_Pending] = []

    # -- driver ---------------------------------------------------------------

    def run(self, source: str) -> None:
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = self._strip(raw)
            if not line:
                continue
            self._line(line, line_no)
        for item in self.pending:
            words = self._encode(item.mnemonic, item.operands, item.addr,
                                 item.line_no, resolve=True)
            for i, w in enumerate(words):
                self.words[item.addr + 4 * i] = w

    @staticmethod
    def _strip(raw: str) -> str:
        for marker in (";", "//", "#"):
            idx = _find_outside_quotes(raw, marker)
            if idx >= 0:
                raw = raw[:idx]
        return raw.strip()

    def _line(self, line: str, line_no: int) -> None:
        # Labels (possibly several, possibly followed by code).
        while True:
            m = re.match(r"^([A-Za-z_.$][\w.$]*):\s*", line)
            if not m:
                break
            label = m.group(1)
            if label in self.labels:
                raise AssemblerError(f"duplicate label {label!r}", line_no)
            self.labels[label] = self.lc
            line = line[m.end():]
        if not line:
            return
        if line.startswith("."):
            self._directive(line, line_no)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        # Pass 1: reserve space; encode in pass 2 when labels are known.
        size = self._size_of(mnemonic, operands, line_no)
        self.pending.append(_Pending(self.lc, line_no, mnemonic, operands))
        self.source_map[self.lc] = line_no
        self.lc += size

    # -- directives ----------------------------------------------------------------

    def _directive(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".org":
            self.lc = self._const(rest, line_no)
            return
        if name == ".word":
            for item in _split_operands(rest):
                self.words[self.lc] = self._const(item, line_no) & 0xFFFFFFFF
                self.lc += 4
            return
        if name == ".space":
            count = self._const(rest, line_no)
            # Zero words covering the space (word granularity).
            for addr in range(self.lc, self.lc + count, 4):
                self.words.setdefault(addr & ~3, 0)
            self.lc += count
            self.lc = (self.lc + 3) & ~3
            return
        if name in (".asciz", ".ascii"):
            m = re.match(r'^\s*"((?:[^"\\]|\\.)*)"\s*$', rest)
            if not m:
                raise AssemblerError(f"bad string in {name}", line_no)
            data = m.group(1).encode().decode("unicode_escape").encode("latin1")
            if name == ".asciz":
                data += b"\x00"
            for byte in data:
                word_addr = self.lc & ~3
                shift = (self.lc & 3) * 8
                self.words[word_addr] = (self.words.get(word_addr, 0)
                                         | (byte << shift))
                self.lc += 1
            self.lc = (self.lc + 3) & ~3
            return
        if name == ".equ":
            items = _split_operands(rest)
            if len(items) != 2:
                raise AssemblerError(".equ needs NAME, VALUE", line_no)
            self.equs[items[0]] = self._const(items[1], line_no)
            return
        if name == ".align":
            boundary = self._const(rest, line_no) if rest else 4
            rem = self.lc % boundary
            if rem:
                self.lc += boundary - rem
            return
        raise AssemblerError(f"unknown directive {name!r}", line_no)

    # -- sizing (pass 1) -------------------------------------------------------------

    def _size_of(self, mnemonic: str, operands: List[str],
                 line_no: int) -> int:
        if mnemonic in ("movi", "li"):
            # Conservatively two words (lui+ori); short forms are padded
            # with a nop so label addresses stay stable.
            return 8
        if mnemonic in ("push", "pop"):
            return 8
        return 4

    # -- encoding (pass 2) --------------------------------------------------------------

    def _encode(self, mnemonic: str, operands: List[str], addr: int,
                line_no: int, resolve: bool) -> List[int]:
        try:
            return self._encode_inner(mnemonic, operands, addr, line_no)
        except AssemblerError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise AssemblerError(f"{mnemonic}: {exc}", line_no) from exc

    def _encode_inner(self, mnemonic: str, ops: List[str], addr: int,
                      line_no: int) -> List[int]:
        if mnemonic in _R_OPS:
            rd, rs1, rs2 = (self._reg(o, line_no) for o in self._arity(ops, 3, line_no))
            return [enc.encode_r(_R_OPS[mnemonic], rd, rs1, rs2)]
        if mnemonic in _I_OPS:
            a = self._arity(ops, 3, line_no)
            return [enc.encode_i(_I_OPS[mnemonic], self._reg(a[0], line_no),
                                 self._reg(a[1], line_no),
                                 self._const(a[2], line_no))]
        if mnemonic == "lui":
            a = self._arity(ops, 2, line_no)
            value = self._const(a[1], line_no)
            if not (0 <= value <= 0xFFFF):
                raise AssemblerError("lui immediate must be 16-bit", line_no)
            return [enc.encode_i(enc.LUI, self._reg(a[0], line_no), 0, value)]
        if mnemonic in _LOAD_OPS:
            a = self._arity(ops, 2, line_no)
            rbase, offset = self._mem_operand(a[1], line_no)
            return [enc.encode_i(_LOAD_OPS[mnemonic],
                                 self._reg(a[0], line_no), rbase, offset)]
        if mnemonic in _STORE_OPS:
            a = self._arity(ops, 2, line_no)
            rbase, offset = self._mem_operand(a[1], line_no)
            return [enc.encode_i(_STORE_OPS[mnemonic],
                                 self._reg(a[0], line_no), rbase, offset)]
        if mnemonic in _BRANCH_OPS:
            a = self._arity(ops, 3, line_no)
            target = self._const(a[2], line_no)
            offset = target - addr
            return [enc.encode_i(_BRANCH_OPS[mnemonic],
                                 self._reg(a[0], line_no),
                                 self._reg(a[1], line_no), offset)]
        if mnemonic == "jal":
            a = self._arity(ops, 2, line_no)
            target = self._const(a[1], line_no)
            return [enc.encode_j(enc.JAL, self._reg(a[0], line_no),
                                 target - addr)]
        if mnemonic == "jalr":
            a = self._arity(ops, 3, line_no)
            return [enc.encode_i(enc.JALR, self._reg(a[0], line_no),
                                 self._reg(a[1], line_no),
                                 self._const(a[2], line_no))]
        if mnemonic == "halt":
            code = self._reg(ops[0], line_no) if ops else 0
            return [enc.encode_i(enc.HALT, 0, code, 0)]
        if mnemonic == "iret":
            return [enc.encode_i(enc.IRET, 0, 0, 0)]
        # ---- intrinsics ----
        if mnemonic == "sym":
            a = self._arity(ops, 1, line_no)
            return [enc.encode_i(enc.HS, self._reg(a[0], line_no), 0,
                                 enc.HS_SYMBOLIC)]
        if mnemonic == "symbuf":
            a = self._arity(ops, 2, line_no)  # symbuf rptr, rlen
            return [enc.encode_i(enc.HS, self._reg(a[1], line_no),
                                 self._reg(a[0], line_no),
                                 enc.HS_SYMBOLIC_BYTES)]
        if mnemonic == "assume":
            a = self._arity(ops, 1, line_no)
            return [enc.encode_i(enc.HS, 0, self._reg(a[0], line_no),
                                 enc.HS_ASSUME)]
        if mnemonic == "assert":
            a = self._arity(ops, 1, line_no)
            return [enc.encode_i(enc.HS, 0, self._reg(a[0], line_no),
                                 enc.HS_ASSERT)]
        if mnemonic == "setivt":
            a = self._arity(ops, 1, line_no)
            return [enc.encode_i(enc.HS, 0, self._reg(a[0], line_no),
                                 enc.HS_SET_IVT)]
        if mnemonic == "ei":
            return [enc.encode_i(enc.HS, 0, 0, enc.HS_EI)]
        if mnemonic == "di":
            return [enc.encode_i(enc.HS, 0, 0, enc.HS_DI)]
        if mnemonic == "trace":
            a = self._arity(ops, 1, line_no)
            return [enc.encode_i(enc.HS, 0, self._reg(a[0], line_no),
                                 enc.HS_TRACE)]
        # ---- pseudo-instructions ----
        if mnemonic == "nop":
            return [enc.encode_i(enc.ADDI, 0, 0, 0)]
        if mnemonic == "mov":
            a = self._arity(ops, 2, line_no)
            return [enc.encode_i(enc.ADDI, self._reg(a[0], line_no),
                                 self._reg(a[1], line_no), 0)]
        if mnemonic in ("movi", "li"):
            a = self._arity(ops, 2, line_no)
            rd = self._reg(a[0], line_no)
            value = self._const(a[1], line_no) & 0xFFFFFFFF
            if value < 0x20000:
                # lui rd, 0 ; ori rd, rd, value — two words so label
                # addresses never depend on the constant's magnitude.
                return [enc.encode_i(enc.LUI, rd, 0, 0),
                        enc.encode_i(enc.ORI, rd, rd, value)]
            return [enc.encode_i(enc.LUI, rd, 0, value >> 16),
                    enc.encode_i(enc.ORI, rd, rd, value & 0xFFFF)]
        if mnemonic == "j":
            a = self._arity(ops, 1, line_no)
            target = self._const(a[0], line_no)
            return [enc.encode_j(enc.JAL, 0, target - addr)]
        if mnemonic == "call":
            a = self._arity(ops, 1, line_no)
            target = self._const(a[0], line_no)
            return [enc.encode_j(enc.JAL, enc.REG_LR, target - addr)]
        if mnemonic == "ret":
            return [enc.encode_i(enc.JALR, 0, enc.REG_LR, 0)]
        if mnemonic == "inc":
            a = self._arity(ops, 1, line_no)
            rd = self._reg(a[0], line_no)
            return [enc.encode_i(enc.ADDI, rd, rd, 1)]
        if mnemonic == "dec":
            a = self._arity(ops, 1, line_no)
            rd = self._reg(a[0], line_no)
            return [enc.encode_i(enc.ADDI, rd, rd, -1)]
        if mnemonic == "push":
            a = self._arity(ops, 1, line_no)
            rv = self._reg(a[0], line_no)
            return [enc.encode_i(enc.ADDI, enc.REG_SP, enc.REG_SP, -4),
                    enc.encode_i(enc.SW, rv, enc.REG_SP, 0)]
        if mnemonic == "pop":
            a = self._arity(ops, 1, line_no)
            rd = self._reg(a[0], line_no)
            return [enc.encode_i(enc.LW, rd, enc.REG_SP, 0),
                    enc.encode_i(enc.ADDI, enc.REG_SP, enc.REG_SP, 4)]
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)

    # -- operand helpers -----------------------------------------------------------------

    @staticmethod
    def _arity(ops: List[str], n: int, line_no: int) -> List[str]:
        if len(ops) != n:
            raise AssemblerError(f"expected {n} operands, got {len(ops)}",
                                 line_no)
        return ops

    def _reg(self, text: str, line_no: int) -> int:
        text = text.strip().lower()
        if text in _REG_ALIASES:
            return _REG_ALIASES[text]
        m = re.fullmatch(r"r(\d{1,2})", text)
        if not m or int(m.group(1)) >= enc.NUM_REGS:
            raise AssemblerError(f"bad register {text!r}", line_no)
        return int(m.group(1))

    def _mem_operand(self, text: str, line_no: int) -> Tuple[int, int]:
        """Parse ``offset(reg)``."""
        m = re.fullmatch(r"(.*)\(\s*(\w+)\s*\)", text.strip())
        if not m:
            raise AssemblerError(f"bad memory operand {text!r}", line_no)
        offset = self._const(m.group(1), line_no) if m.group(1).strip() else 0
        return self._reg(m.group(2), line_no), offset

    def _const(self, text: str, line_no: int) -> int:
        """Evaluate a constant expression: numbers, labels, .equ names,
        + - * ( ) and unary minus."""
        text = text.strip()
        tokens = re.findall(
            r"0x[0-9a-fA-F]+|0b[01]+|\d+|[A-Za-z_.$][\w.$]*|[+\-*()]", text)
        if not tokens or "".join(tokens).replace(" ", "") != text.replace(" ", ""):
            raise AssemblerError(f"bad constant expression {text!r}", line_no)
        resolved = []
        for tok in tokens:
            if re.fullmatch(r"0x[0-9a-fA-F]+|0b[01]+|\d+", tok):
                resolved.append(str(int(tok, 0)))
            elif tok in "+-*()":
                resolved.append(tok)
            elif tok in self.equs:
                resolved.append(str(self.equs[tok]))
            elif tok in self.labels:
                resolved.append(str(self.labels[tok]))
            else:
                raise AssemblerError(f"undefined symbol {tok!r}", line_no)
        try:
            value = eval("".join(resolved), {"__builtins__": {}})  # noqa: S307
        except Exception as exc:
            raise AssemblerError(f"bad expression {text!r}: {exc}",
                                 line_no) from exc
        if not isinstance(value, int):
            raise AssemblerError(f"expression {text!r} is not an integer",
                                 line_no)
        return value


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside parentheses or quotes."""
    out: List[str] = []
    depth = 0
    in_str = False
    current = ""
    for ch in text:
        if ch == '"':
            in_str = not in_str
        if not in_str:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            elif ch == "," and depth == 0:
                out.append(current.strip())
                current = ""
                continue
        current += ch
    if current.strip():
        out.append(current.strip())
    return out


def _find_outside_quotes(text: str, marker: str) -> int:
    in_str = False
    for i in range(len(text) - len(marker) + 1):
        ch = text[i]
        if ch == '"':
            in_str = not in_str
        if not in_str and text.startswith(marker, i):
            return i
    return -1
