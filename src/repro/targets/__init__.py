"""Hardware targets: the execution substrates for peripherals.

* :class:`~repro.targets.simulator.SimulatorTarget` — slow, fully visible,
  CRIU-checkpoint snapshots,
* :class:`~repro.targets.fpga.FpgaTarget` — fast, pins-only visibility,
  scan-chain snapshots via the on-board
  :class:`~repro.targets.snapshot_ip.SnapshotIp` (plus vendor readback),
* :class:`~repro.targets.orchestrator.TargetOrchestrator` — registry and
  live state transfer between targets.
"""

from repro.targets.base import HardwareTarget, HwSnapshot, PeripheralInstance
from repro.targets.fpga import DEFAULT_FPGA_CLOCK_HZ, FpgaTarget
from repro.targets.orchestrator import TargetOrchestrator, TransferRecord
from repro.targets.simulator import (DEFAULT_SIM_CLOCK_HZ, CriuModel,
                                     SimulatorTarget)
from repro.targets.snapshot_ip import SnapshotIp

__all__ = [
    "HardwareTarget", "HwSnapshot", "PeripheralInstance",
    "SimulatorTarget", "CriuModel", "DEFAULT_SIM_CLOCK_HZ",
    "FpgaTarget", "DEFAULT_FPGA_CLOCK_HZ", "SnapshotIp",
    "TargetOrchestrator", "TransferRecord",
]
