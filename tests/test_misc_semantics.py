"""Assorted semantic contracts: async reset approximation, VCD content
fidelity, engine over the orchestrator's active view, and a full crypto
driver running through the symbolic VM."""

import re
import struct

import pytest

from repro import HardSnapSession
from repro.core.engine import AnalysisEngine, SnapshotStrategy
from repro.firmware import TIMER_BASE
from repro.hdl import elaborate
from repro.peripherals import catalog
from repro.sim import CompiledSimulation, Interpreter, VcdWriter
from repro.solver import Solver
from repro.targets import FpgaTarget, SimulatorTarget, TargetOrchestrator
from repro.vm import MmioBridge, SymbolicExecutor, make_searcher

SHA_BASE = 0x4003_0000


class TestAsyncResetApproximation:
    ASYNC = r"""
    module m (input wire clk, input wire rst_n, output wire [3:0] q);
        reg [3:0] count;
        always @(posedge clk or negedge rst_n) begin
            if (!rst_n) count <= 0;
            else count <= count + 1;
        end
        assign q = count;
    endmodule
    """

    @pytest.mark.parametrize("backend", [Interpreter, CompiledSimulation],
                             ids=["interp", "compiled"])
    def test_reset_branch_taken_while_level_active(self, backend):
        sim = backend(elaborate(self.ASYNC, "m"))
        sim.poke("rst_n", 0)
        sim.step(3)
        assert sim.peek("q") == 0  # held in reset across edges
        sim.poke("rst_n", 1)
        sim.step(5)
        assert sim.peek("q") == 5

    def test_elaborator_records_async_reset(self):
        design = elaborate(self.ASYNC, "m")
        block = design.seq_blocks[0]
        assert block.areset is not None
        assert block.areset.name == "rst_n"
        assert block.areset_edge == "negedge"


class TestVcdContent:
    def test_values_parse_back(self):
        src = """
        module m (input wire clk, output wire [7:0] q);
            reg [7:0] count;
            always @(posedge clk) count <= count + 3;
            assign q = count;
        endmodule
        """
        sim = Interpreter(elaborate(src, "m"))
        writer = VcdWriter(signals=["count"])
        sim.attach_vcd(writer)
        sim.step(4)
        text = writer.getvalue()
        ident = re.search(r"\$var wire 8 (\S+) count \$end", text).group(1)
        values = re.findall(rf"b([01]+) {re.escape(ident)}", text)
        assert [int(v, 2) for v in values] == [0, 3, 6, 9, 12]

    def test_scalar_format(self):
        src = """
        module m (input wire clk, output wire t);
            reg toggle;
            always @(posedge clk) toggle <= ~toggle;
            assign t = toggle;
        endmodule
        """
        sim = Interpreter(elaborate(src, "m"))
        writer = VcdWriter(signals=["toggle"])
        sim.attach_vcd(writer)
        sim.step(2)
        text = writer.getvalue()
        ident = re.search(r"\$var wire 1 (\S+) toggle \$end", text).group(1)
        # scalar changes use the compact <value><id> form
        assert f"1{ident}" in text and f"0{ident}" in text


class TestEngineOverOrchestrator:
    def test_hardsnap_session_on_active_view(self):
        """Algorithm 1 runs over the orchestrator's active-target proxy:
        snapshot traffic goes to whichever target is live."""
        fpga = FpgaTarget(scan_mode="functional")
        sim = SimulatorTarget()
        for t in (fpga, sim):
            t.add_peripheral(catalog.TIMER, TIMER_BASE)
            t.reset()
        orch = TargetOrchestrator()
        orch.register(fpga, active=True)
        orch.register(sim)
        view = orch.active_view()

        from repro.firmware import dispatcher
        from repro.isa import assemble
        solver = Solver()
        bridge = MmioBridge(view, solver)
        program = assemble(dispatcher(3, work_cycles=6))
        executor = SymbolicExecutor(program, bridge, solver)
        engine = AnalysisEngine(executor, make_searcher("affinity"),
                                SnapshotStrategy(), view, bridge)
        report = engine.run(executor.make_initial_state(),
                            max_instructions=60_000)
        assert sorted(report.halt_codes()) == [0x100, 0x101, 0x102]
        assert fpga.snapshots_taken > 0  # active target did the work
        assert sim.snapshots_taken == 0


class TestCryptoDriverUnderVm:
    def test_sha256_driver_firmware(self):
        """Full co-testing of a real crypto driver: firmware feeds the
        padded block for 'abc' into the SHA-256 RTL core through the VM's
        MMIO forwarding and asserts the first digest word — verified
        against the FIPS value baked in at assembly time."""
        import hashlib
        digest0 = struct.unpack(
            ">I", hashlib.sha256(b"abc").digest()[:4])[0]
        block = b"abc" + b"\x80" + b"\x00" * 52 + struct.pack(">Q", 24)
        words = struct.unpack(">16I", block)
        stores = "\n".join(
            f"    movi r2, 0x{w:08x}\n    sw r2, {0x40 + 4 * i}(r1)"
            for i, w in enumerate(words))
        src = f"""
        .equ SHA, 0x{SHA_BASE:x}
        start:
            movi r1, SHA
            movi r2, 1
            sw r2, 0(r1)            ; INIT
        {stores}
            movi r2, 2
            sw r2, 0(r1)            ; NEXT
        busy:
            lw r3, 4(r1)
            andi r3, r3, 1
            bne r3, r0, busy
            lw r4, 128(r1)          ; DIGEST[0]
            movi r5, 0x{digest0:08x}
            sub r6, r4, r5
            movi r8, 1
            beq r6, r0, ok
            movi r8, 0
        ok:
            assert r8
            halt r4
        """
        session = HardSnapSession(src, [(catalog.SHA256, SHA_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=100_000)
        assert not report.bugs, report.bugs[0].summary() if report.bugs else ""
        assert report.halted_paths[0].halt_code == digest0
