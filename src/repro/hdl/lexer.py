"""Tokenizer for the supported Verilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import LexError

KEYWORDS = frozenset({
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "parameter", "localparam", "assign", "always", "initial",
    "begin", "end", "if", "else", "case", "casez", "casex", "endcase",
    "default", "for", "posedge", "negedge", "or", "signed", "genvar",
    "generate", "endgenerate", "function", "endfunction", "task", "endtask",
})

# Multi-character operators, longest first so the scanner is greedy.
OPERATORS = [
    "<<<", ">>>", "===", "!==", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "~&", "~|", "~^", "^~", "+", "-", "*", "/", "%", "&",
    "|", "^", "~", "!", "<", ">", "=", "?", ":", "(", ")", "[", "]",
    "{", "}", ",", ";", ".", "@", "#",
]

_NUMBER_RE = re.compile(
    r"(?:(\d+)\s*)?'\s*([bBoOdDhH])\s*([0-9a-fA-FxXzZ_?]+)")
_DECIMAL_RE = re.compile(r"\d[\d_]*")
_ID_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_$]*")
_BASES = {"b": 2, "o": 8, "d": 10, "h": 16}
_BITS_PER_DIGIT = {2: 1, 8: 3, 16: 4}


def _xz_mask(digits: str, base: int) -> int:
    """Mask of bits spelled as x/z/? in a based literal (0 for decimal)."""
    bits = _BITS_PER_DIGIT.get(base)
    if bits is None:
        return 0
    mask = 0
    shift = 0
    for ch in reversed(digits):
        if ch in "xXzZ?":
            mask |= ((1 << bits) - 1) << shift
        shift += bits
    return mask


@dataclass
class Token:
    kind: str  # 'id' | 'keyword' | 'number' | 'op' | 'string' | 'eof'
    text: str
    line: int
    # For numbers: decoded value, declared width (None if unsized), and the
    # mask of bits written as x/z/? (treated as 0 in value, wildcards in
    # casez labels).
    value: int = 0
    width: Optional[int] = None
    xmask: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize Verilog *source*, raising :class:`LexError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        if ch in " \t\r":
            pos += 1
            continue
        # Comments.
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        # Compiler directives: consume to end of line (`timescale etc.)
        if ch == "`":
            end = source.find("\n", pos)
            pos = length if end == -1 else end
            continue
        # Strings (used only in rare $display; tokenised, ignored by parser).
        if ch == '"':
            end = source.find('"', pos + 1)
            if end == -1:
                raise LexError("unterminated string", line)
            yield Token("string", source[pos + 1:end], line)
            pos = end + 1
            continue
        # System tasks like $display — lex as identifiers with $ prefix.
        if ch == "$":
            m = _ID_RE.match(source, pos + 1)
            if not m:
                raise LexError("stray '$'", line)
            yield Token("id", "$" + m.group(0), line)
            pos = m.end()
            continue
        # Based number literal (possibly with explicit size).
        m = _NUMBER_RE.match(source, pos)
        if m:
            size_txt, base_ch, digits = m.groups()
            base = _BASES[base_ch.lower()]
            raw = digits.replace("_", "")
            cleaned = re.sub(r"[xXzZ?]", "0", raw)
            try:
                value = int(cleaned, base) if cleaned else 0
            except ValueError:
                raise LexError(f"bad digits {digits!r} for base {base}", line) from None
            xmask = _xz_mask(raw, base)
            width = int(size_txt) if size_txt else 32
            if width <= 0:
                raise LexError(f"bad literal width {width}", line)
            mask = (1 << width) - 1
            yield Token("number", m.group(0), line,
                        value=value & mask, width=width, xmask=xmask & mask)
            pos = m.end()
            continue
        # Unsized decimal.
        m = _DECIMAL_RE.match(source, pos)
        if m:
            yield Token("number", m.group(0), line,
                        value=int(m.group(0).replace("_", "")), width=None)
            pos = m.end()
            continue
        # Identifier or keyword.
        m = _ID_RE.match(source, pos)
        if m:
            text = m.group(0)
            kind = "keyword" if text in KEYWORDS else "id"
            yield Token(kind, text, line)
            pos = m.end()
            continue
        # Operator / punctuation.
        for op in OPERATORS:
            if source.startswith(op, pos):
                yield Token("op", op, line)
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    yield Token("eof", "", line)
