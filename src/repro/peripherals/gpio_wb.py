"""GPIO on a Wishbone bus — the modular-bus-abstraction demonstration.

Exactly the same core logic as :mod:`~repro.peripherals.gpio` (the body
is literally shared), wrapped in the Wishbone scaffold instead of the
AXI4-Lite one. Hosted on a target, the memory forwarding path drives it
through a :class:`~repro.bus.wishbone.WishboneMaster` transparently.
"""

from __future__ import annotations

from repro.peripherals import gpio
from repro.peripherals.wb_skeleton import wishbone_module

NAME = "gpio_wb"
ADDR_BITS = 8
IRQ = True
BUS = "wishbone"

REGISTERS = dict(gpio.REGISTERS)


def verilog() -> str:
    return wishbone_module(NAME, gpio._CORE, ADDR_BITS, extra_ports=(
        "input wire [31:0] gpio_in",
        "output wire [31:0] gpio_out",
        "output wire irq",
    ))
