"""Tests for repro.resilience: seeded fault injection, link-layer
recovery, snapshot integrity, worker-pool self-healing — and the
headline invariant: with any seeded FaultPlan below the respawn cap,
parallel verdicts stay byte-identical to a fault-free serial run."""

import json
import os
import signal
import time

import pytest

from repro.core import HardSnapSession, SnapshotController
from repro.core.persistence import snapshot_from_dict, snapshot_to_dict
from repro.errors import (LinkError, ScanShiftError, SnapshotIntegrityError,
                          VmError)
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.parallel import (ParallelAnalysisEngine, ParallelFuzzer,
                            SessionRecipe, WorkerPool)
from repro.parallel.pool import PoolTimeout, WorkerDeath, WorkerError
from repro.peripherals import catalog
from repro.resilience import (FaultInjector, FaultPlan, ResilienceStats,
                              RetryPolicy)
from repro.targets import FpgaTarget, SimulatorTarget
from repro.targets.orchestrator import TargetOrchestrator

TIMER = [(catalog.TIMER, TIMER_BASE)]
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]
FIRMWARE = dispatcher(5, work_cycles=8)


def _timer_target(**attach):
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    target.reset()
    if attach:
        target.attach_resilience(**attach)
    return target


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "seed=9,scan_corrupt=0.1,mmio_drop=0.02,kill=1@0,kill=3@2")
        assert plan.seed == 9
        assert plan.scan_corrupt_rate == pytest.approx(0.1)
        assert plan.mmio_drop_rate == pytest.approx(0.02)
        assert plan.worker_kills == ((1, 0), (3, 2))
        assert not plan.is_empty

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(VmError):
            FaultPlan.parse("seed=1,flux_capacitor=0.5")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(VmError):
            FaultPlan.parse("scan_corrupt=lots")
        with pytest.raises(VmError):
            FaultPlan.parse("kill=x@y")
        with pytest.raises(VmError):
            FaultPlan.parse("scan_corrupt")

    def test_empty_plan(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(worker_kills=((0, 0),)).is_empty

    def test_rolls_are_deterministic(self):
        a = FaultInjector(FaultPlan(seed=4), scope="t")
        b = FaultInjector(FaultPlan(seed=4), scope="t")
        rolls = [a.roll("site", 0.5) for _ in range(64)]
        assert rolls == [b.roll("site", 0.5) for _ in range(64)]
        assert any(rolls) and not all(rolls)

    def test_rolls_differ_by_seed_and_scope(self):
        base = [FaultInjector(FaultPlan(seed=1), "x").roll("s", 0.5)
                for _ in range(1)]
        seq = lambda seed, scope: [
            inj.roll("s", 0.5) for inj in [FaultInjector(
                FaultPlan(seed=seed), scope)] for _ in range(64)]
        assert seq(1, "x") != seq(2, "x")
        assert seq(1, "x") != seq(1, "y")

    def test_explicit_kills_only_first_incarnation(self):
        inj = FaultInjector(FaultPlan(seed=0, worker_kills=((2, 1),)))
        assert inj.should_kill(2, 1, incarnation=0)
        assert not inj.should_kill(2, 1, incarnation=1)
        assert not inj.should_kill(2, 0, incarnation=0)


class TestLinkRecovery:
    def test_scan_corruption_recovered_transparently(self):
        clean = _timer_target()
        clean.step(9)
        want = SnapshotController(clean).save().states

        target = _timer_target(plan=FaultPlan(seed=1, scan_corrupt_rate=0.4))
        target.step(9)
        modelled0 = target.timer.total_s
        snap = target.save_snapshot()
        for _ in range(6):  # roll until a retry actually triggers
            target.restore_snapshot(snap)
        assert target.resilience.link_retries > 0
        # retransmits are charged to modelled time, not free
        assert target.timer.total_s > modelled0
        got = {name: {k: v for k, v in state.items() if k != "cycle"}
               for name, state in snap.states.items()}
        expected = {name: {k: v for k, v in state.items() if k != "cycle"}
                    for name, state in want.states.items()} \
            if hasattr(want, "states") else {
                name: {k: v for k, v in state.items() if k != "cycle"}
                for name, state in want.items()}
        assert got == expected

    def test_scan_retry_exhaustion_names_the_failure(self):
        target = _timer_target(plan=FaultPlan(seed=1, scan_corrupt_rate=1.0),
                               policy=RetryPolicy(max_link_retries=3))
        with pytest.raises(ScanShiftError) as excinfo:
            target.save_snapshot()
        err = excinfo.value
        assert err.instance == "timer"
        assert err.operation == "capture"
        assert err.attempts == 4  # 1 try + 3 retries
        assert "timer" in str(err) and "4 attempts" in str(err)

    def test_mmio_drop_retransmits(self):
        target = _timer_target(plan=FaultPlan(seed=3, mmio_drop_rate=0.3))
        for _ in range(32):
            target.read(TIMER_BASE)
        assert target.resilience.mmio_retries > 0
        assert target.resilience.backoff_s > 0

    def test_mmio_retry_exhaustion_raises_link_error(self):
        target = _timer_target(plan=FaultPlan(seed=3, mmio_drop_rate=1.0),
                               policy=RetryPolicy(max_link_retries=2))
        with pytest.raises(LinkError):
            target.read(TIMER_BASE)

    def test_link_down_reconnects_and_restores_verified_state(self):
        target = _timer_target(plan=FaultPlan(seed=2, link_down_rate=1.0))
        target.step(5)
        snap = target.save_snapshot()  # reconnect happens, then save
        assert target.resilience.reconnects >= 1
        target.step(3)
        target.restore_snapshot(snap)  # reconnect + resync + restore
        assert target.resilience.reconnects >= 2
        strip = lambda states: {name: {k: v for k, v in s.items()
                                       if k != "cycle"}
                                for name, s in states.items()}
        assert strip(target.save_snapshot().states) == strip(snap.states)

    def test_transfer_timeout_retries(self):
        fpga = FpgaTarget(name="fpga")
        fpga.add_peripheral(catalog.TIMER, TIMER_BASE)
        fpga.reset()
        sim = SimulatorTarget(name="sim")
        sim.add_peripheral(catalog.TIMER, TIMER_BASE)
        sim.reset()
        sim.attach_resilience(FaultPlan(seed=5, transfer_timeout_rate=0.6))
        orch = TargetOrchestrator()
        orch.register(fpga, active=True)
        orch.register(sim)
        fpga.step(7)
        modelled0 = sim.timer.total_s
        for src, dst in (("fpga", "sim"), ("sim", "fpga")) * 3:
            moved = orch.transfer(src, dst)
        assert sim.resilience.transfer_retries > 0
        assert sim.timer.total_s > modelled0
        # state still arrived intact on the last hop (the final transfer
        # left sim as the source, so its live state is the canonical one)
        assert (moved.states["timer"]["nets"]["value"]
                == sim.peek("timer", "value"))

    def test_no_plan_means_no_bookkeeping(self):
        target = _timer_target()
        target.step(3)
        snap = target.save_snapshot()
        assert snap.digest is None  # fast path: no sealing
        assert not target.resilience.any


class TestSnapshotIntegrity:
    def test_seal_and_verify(self):
        target = _timer_target()
        target.step(4)
        snap = target.save_snapshot().seal()
        assert snap.digest
        snap.verify()  # intact
        clone = snap.clone()
        assert clone.digest == snap.digest

    def test_tampered_snapshot_rejected_on_restore(self):
        # A rate-only plan (never fires here) still attaches the injector,
        # which turns on snapshot sealing; a fully empty plan would not.
        target = _timer_target(plan=FaultPlan(seed=0, mmio_drop_rate=1e-9))
        target.step(4)
        snap = target.save_snapshot()
        assert snap.digest  # sealed because an injector is attached
        snap.states["timer"] = dict(snap.states["timer"])
        snap.states["timer"]["value"] = 0xDEAD
        with pytest.raises(SnapshotIntegrityError):
            target.restore_snapshot(snap)

    def test_json_round_trip_carries_digest(self):
        target = _timer_target()
        target.step(4)
        data = snapshot_to_dict(target.save_snapshot())
        assert data["digest"]
        snapshot_from_dict(json.loads(json.dumps(data)))  # verifies

    def test_tampered_json_rejected(self):
        target = _timer_target()
        target.step(4)
        data = snapshot_to_dict(target.save_snapshot())
        data["states"]["timer"]["value"] = 0xBAD
        with pytest.raises(SnapshotIntegrityError):
            snapshot_from_dict(data)

    def test_corrupted_wire_chunk_rejected(self):
        from repro.core.persistence import snapshot_to_wire
        from repro.parallel import ChunkChannel
        target = _timer_target()
        target.step(4)
        wire = snapshot_to_wire(SnapshotController(target).save())
        digest = next(iter(wire.chunks))
        body, bits = wire.chunks[digest]
        body = dict(body)
        body["nets"] = dict(body["nets"])
        body["nets"]["value"] ^= 1
        wire.chunks[digest] = (body, bits)
        with pytest.raises(SnapshotIntegrityError) as excinfo:
            ChunkChannel().absorb(wire, peer="w0")
        assert digest in str(excinfo.value)


class TestWorkerPool:
    def _recipe(self, **config):
        return SessionRecipe.create(FIRMWARE, TIMER, searcher="bfs",
                                    **config)

    def test_dead_worker_raises_structured_error_not_hang(self):
        """The satellite fix: next_result(timeout=None) used to block
        forever when a worker died mid-lease."""
        with WorkerPool(self._recipe(), workers=2) as pool:
            pool.warm("engine")
            job = pool.submit(1, "lease", {"state": None, "wire": None,
                                           "sym_base": 0, "budget": 0})
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            start = time.monotonic()
            with pytest.raises(WorkerDeath) as excinfo:
                pool.next_result(timeout=None)
            assert time.monotonic() - start < 30
            err = excinfo.value
            assert err.worker_id == 1
            assert job in err.jobs
            assert "worker 1" in str(err) and str(job) in str(err)

    def test_timeout_raises_pool_timeout_when_workers_alive(self):
        with WorkerPool(self._recipe(), workers=1) as pool:
            pool.warm("engine")
            with pytest.raises(PoolTimeout):
                pool.next_result(timeout=0.2)

    def test_close_idempotent_after_worker_crash(self):
        pool = WorkerPool(self._recipe(), workers=2)
        pool.warm("engine")
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGKILL)
        pool.close()
        pool.close()  # idempotent
        assert all(not proc.is_alive() for proc in pool._procs)

    def test_respawn_replaces_worker_and_returns_leases(self):
        with WorkerPool(self._recipe(), workers=2) as pool:
            pool.warm("engine")
            job = pool.submit(0, "lease", {"state": None, "wire": None,
                                           "sym_base": 0, "budget": 0})
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            with pytest.raises(WorkerDeath):
                pool.next_result()
            assert pool.respawn(0) == [job]
            assert pool._procs[0].is_alive()
            assert pool.stats.resilience.worker_respawns == 1
            pool.resubmit(job)
            kind, worker_id, res = pool.next_result(timeout=120)
            assert kind == "lease" and worker_id == 0
            assert res["executed"] > 0

    def test_worker_errors_still_carry_remote_traceback(self):
        with WorkerPool(self._recipe(), workers=1) as pool:
            pool.submit(0, "no-such-job", {})
            with pytest.raises(WorkerError, match="no-such-job"):
                pool.next_result(timeout=60)

    def test_duplicate_results_dropped(self):
        plan = FaultPlan(seed=1, result_dup_rate=1.0)
        with WorkerPool(self._recipe(fault_plan=plan), workers=1) as pool:
            pool.warm("engine")
            pool.submit(0, "lease", {"state": None, "wire": None,
                                     "sym_base": 0, "budget": 0})
            pool.next_result(timeout=120)
            deadline = time.monotonic() + 30
            while (not pool.stats.resilience.duplicate_results
                   and time.monotonic() < deadline):
                with pytest.raises(PoolTimeout):
                    pool.next_result(timeout=0.1)
            assert pool.stats.resilience.duplicate_results == 1


class _SerialVerdicts:
    _engine = None
    _fuzz = None

    @classmethod
    def engine(cls):
        if cls._engine is None:
            cls._engine = HardSnapSession(
                FIRMWARE, TIMER, searcher="bfs").run(
                max_instructions=100_000).verdict_summary()
        return cls._engine

    @classmethod
    def fuzz(cls):
        from repro.core import SnapshotFuzzer
        from repro.isa import assemble
        if cls._fuzz is None:
            fuzzer = SnapshotFuzzer(assemble(fuzz_packet_parser()),
                                    _timer_target(), seeds=SEEDS, seed=3)
            cls._fuzz = fuzzer.run(executions=96,
                                   batch_size=16).verdict_summary()
        return cls._fuzz


class TestDeterminismUnderFaults:
    """The headline invariant: seeded faults below the respawn cap never
    change what a run concludes, only how much recovery it reports."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_engine_kill_mid_lease_matches_fault_free_serial(self, workers):
        plan = FaultPlan.parse(
            "seed=7,kill=1@0,scan_corrupt=0.05,result_dup=0.05")
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=workers,
                                    searcher="bfs",
                                    fault_plan=plan) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _SerialVerdicts.engine()
        assert report.resilience.worker_respawns == 1
        assert report.resilience.lease_reissues >= 1

    def test_engine_result_loss_recovered_by_deadline(self):
        plan = FaultPlan.parse("seed=11,result_loss=0.3")
        with ParallelAnalysisEngine(
                FIRMWARE, TIMER, workers=2, searcher="bfs",
                fault_plan=plan,
                retry_policy=RetryPolicy(result_deadline_s=2.0)) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _SerialVerdicts.engine()
        assert report.resilience.lease_reissues >= 1

    def test_engine_degrades_to_serial_at_respawn_cap(self):
        plan = FaultPlan.parse("seed=3,kill=0@1")
        with ParallelAnalysisEngine(
                FIRMWARE, TIMER, workers=2, searcher="bfs", fault_plan=plan,
                retry_policy=RetryPolicy(respawn_cap=0)) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _SerialVerdicts.engine()
        assert report.resilience.degraded

    def test_degradation_disabled_propagates_death(self):
        plan = FaultPlan.parse("seed=3,kill=0@1")
        with ParallelAnalysisEngine(
                FIRMWARE, TIMER, workers=2, searcher="bfs", fault_plan=plan,
                retry_policy=RetryPolicy(respawn_cap=0,
                                         degrade_to_serial=False)) as engine:
            with pytest.raises(WorkerDeath):
                engine.run(max_instructions=100_000)

    def test_fuzzer_kill_and_link_faults_match_fault_free_run(self):
        plan = FaultPlan.parse(
            "seed=2,kill=1@0,scan_corrupt=0.02,result_dup=0.1")
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=SEEDS,
                            workers=2, batch_size=16, seed=3,
                            fault_plan=plan) as fuzzer:
            report = fuzzer.run(executions=96)
        assert report.verdict_summary() == _SerialVerdicts.fuzz()
        assert report.resilience.worker_respawns == 1

    def test_empty_plan_changes_nothing(self):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    searcher="bfs",
                                    fault_plan=FaultPlan()) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _SerialVerdicts.engine()
        assert not report.resilience.worker_respawns
        assert not report.resilience.lease_reissues

    def test_chaos_matrix_cell(self):
        """One CI chaos-matrix cell: seed and worker count come from the
        environment (defaults make it a plain local test)."""
        seed = int(os.environ.get("REPRO_CHAOS_SEED", "1"))
        workers = int(os.environ.get("REPRO_CHAOS_WORKERS", "2"))
        # Kill on the victim's first job so the kill fires whenever that
        # worker is leased at all (high worker counts thin out leases).
        plan = FaultPlan(seed=seed, scan_corrupt_rate=0.03,
                         mmio_drop_rate=0.01, result_dup_rate=0.05,
                         link_down_rate=0.01,
                         worker_kills=((seed % workers, 0),))
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=workers,
                                    searcher="bfs",
                                    fault_plan=plan) as engine:
            report = engine.run(max_instructions=100_000)
        assert report.verdict_summary() == _SerialVerdicts.engine()
        assert report.resilience.any  # some fault fired and was healed


class TestResilienceStats:
    def test_merge_and_delta(self):
        a = ResilienceStats(link_retries=2, backoff_s=0.5)
        a.merge(ResilienceStats(link_retries=1, degraded=True))
        assert a.link_retries == 3 and a.degraded
        base = a.as_dict()
        a.merge({"link_retries": 4})
        assert a.delta(base)["link_retries"] == 4

    def test_summary_clean_and_dirty(self):
        assert "clean" in ResilienceStats().summary()
        text = ResilienceStats(worker_respawns=2, degraded=True).summary()
        assert "worker_respawns=2" in text and "DEGRADED" in text
