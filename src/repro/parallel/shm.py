"""Shared-memory chunk arena: zero-copy payload transport.

``multiprocessing.Queue`` moves every payload through pickle → pipe →
feeder thread → unpickle — at least two copies plus per-object pickling,
paid *per message*. Once the VM is fast (E12), that fixed cost dominates
the parallel runtime (E9). This module keeps bulk payloads out of the
queue entirely:

* a **writer** appends payload bytes into ref-counted **slabs**
  (``multiprocessing.shared_memory`` segments) via a bump allocator —
  one copy, into memory the receiver can map directly; references are
  issued under per-peer epoch keys so a dead peer incarnation's late
  acks stay inert after a respawn,
* the queue then carries a fixed-size :class:`ShmRef` (segment name,
  offset, length, digest) instead of the payload,
* a **reader** attaches segments on demand, slices the payload straight
  out of the mapping, and accumulates per-segment **acks** that ride
  back to the writer on the next message in the opposite direction,
* the writer **reclaims** (unlinks) a sealed slab once every reference
  issued from it has been acked — and cancels a peer's outstanding
  references wholesale when that peer's process dies
  (:meth:`ChunkArena.forget_peer`), so a killed worker can neither leak
  nor wedge a slab.

Lifetime discipline: every segment has exactly one owner (its creating
arena). Readers attach but never unlink — except the coordinator's
reader, which unlinks a *dead worker's* orphaned segments on respawn
(:meth:`ArenaReader.drop_peer`); the owner is gone, someone must. Both
sides tolerate :class:`FileNotFoundError` races on unlink, and readers
unregister attachments from the ``multiprocessing`` resource tracker so
ownership stays single (on Python < 3.13 attaching registers too, which
would otherwise double-book cleanup).
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Set, Tuple

from repro.errors import VmError


class ShmUnavailable(VmError):
    """POSIX shared memory cannot be used on this host; callers fall
    back to the queue transport."""


class ShmSegmentGone(VmError):
    """A reference names a segment that no longer exists (its owner
    reclaimed or crashed past recovery)."""


@dataclass(frozen=True)
class ShmRef:
    """Fixed-size handle to one payload placed in an arena slab. This is
    what crosses the ``mp.Queue`` instead of the payload itself."""

    segment: str
    offset: int
    length: int
    #: Content address of the payload (chunk digest for snapshot chunks,
    #: empty for whole-envelope blobs — those are length-checked only;
    #: chunk bodies are digest-verified in ``ChunkChannel.absorb``).
    digest: str = ""
    bits: int = 0


def _untrack(name: str) -> None:
    """Release a resource-tracker registration made on *attach* (Python
    < 3.13 registers every ``SharedMemory.__init__``): the segment's
    creator owns cleanup, an attaching reader must not double-book it."""
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    except (KeyError, ValueError, FileNotFoundError):  # pragma: no cover
        pass


def _track(name: str) -> None:
    """(Re-)register *name* with the resource tracker. Called right
    before every unlink: under the ``fork`` start method all processes
    share one tracker, so a reader's attach-time :func:`_untrack` may
    already have dropped the creator's registration — and the tracker
    prints a ``KeyError`` traceback when ``unlink()``'s implicit
    unregister then misses. Registration is a set-add, so pairing every
    unregister with a fresh register is idempotent and silent."""
    try:
        resource_tracker.register("/" + name, "shared_memory")
    except (OSError, ValueError):  # pragma: no cover
        pass


_available: Optional[bool] = None


def shm_available() -> bool:
    """Probe (once) whether shared memory works on this host."""
    global _available
    if _available is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            _available = True
        except (OSError, ValueError, ImportError):
            _available = False
    return _available


def unlink_stale(prefix: str) -> int:
    """Best-effort sweep: unlink every shm segment whose name starts
    with *prefix* (a run tag, or a run tag + dead worker incarnation).
    This is the backstop for owners that died without cleanup —
    ``os._exit`` kills skip ``close()``. POSIX shm segments surface as
    files under ``/dev/shm`` on Linux; elsewhere this is a no-op and
    cleanup relies on the ack/close protocol alone. Returns the number
    of segments removed."""
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover — non-Linux host
        return 0
    removed = 0
    for name in os.listdir(base):
        if not name.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(base, name))
            _track(name)
            _untrack(name)  # balanced pair: clears any stale tracking
            removed += 1
        except OSError:  # pragma: no cover — concurrent removal
            pass
    return removed


@dataclass
class ArenaStats:
    """Writer-side accounting (per endpoint)."""

    slabs_created: int = 0
    slabs_reclaimed: int = 0
    payloads_placed: int = 0
    bytes_placed: int = 0
    peers_forgotten: int = 0


class _Slab:
    """One shared-memory segment under bump allocation.

    Reference bookkeeping is keyed by ``(peer, epoch)`` — the peer's
    forget-generation at :meth:`ChunkArena.place` time — so acks from a
    dead incarnation can never be credited against references issued to
    its successor."""

    def __init__(self, name: str, size: int):
        self.shm = shared_memory.SharedMemory(name=name, create=True,
                                              size=size)
        self.name = name
        self.size = size
        self.used = 0
        self.sealed = False
        self.issued: Dict[Tuple[object, int], int] = {}
        self.acked: Dict[Tuple[object, int], int] = {}

    @property
    def drained(self) -> bool:
        """Every issued reference has been consumed (or cancelled)."""
        return all(self.acked.get(key, 0) >= n
                   for key, n in self.issued.items())


class ChunkArena:
    """Writer side: bump-allocates payloads into ref-counted slabs.

    One arena per *sending* endpoint (the coordinator has one, each
    worker incarnation has one). Slab reclamation is driven entirely by
    the message flow: ``place`` counts a reference as issued to its
    peer, :meth:`ack` credits consumptions reported back by that peer,
    and a sealed slab whose references have all drained is unlinked.

    Every peer has a forget-generation **epoch**: references are issued
    (and acks credited) under ``(peer, epoch)`` keys, and
    :meth:`forget_peer` bumps the peer's epoch, cancels its old-epoch
    keys and retires the open slab — so a late ack from a dead
    incarnation finds no current-epoch issuance to credit and can never
    reclaim a slab its successor still reads from.
    """

    #: Default slab size. Most chunk bodies are far smaller; oversized
    #: payloads get a dedicated slab of their exact length.
    SLAB_BYTES = 1 << 18

    def __init__(self, label: str, slab_bytes: int = SLAB_BYTES):
        self.label = label
        self.slab_bytes = slab_bytes
        #: Per-peer forget-generation; bumped by :meth:`forget_peer`.
        self._epochs: Dict[object, int] = {}
        self.stats = ArenaStats()
        self._nonce = secrets.token_hex(4)
        self._seq = 0
        self._slabs: Dict[str, _Slab] = {}
        self._current: Optional[_Slab] = None
        self._closed = False

    # -- allocation ---------------------------------------------------------

    def _key(self, peer: object) -> Tuple[object, int]:
        return (peer, self._epochs.get(peer, 0))

    def _new_slab(self, size: int) -> _Slab:
        self._seq += 1
        name = f"rpr-{self.label}-{os.getpid():x}-{self._nonce}-{self._seq}"
        try:
            slab = _Slab(name, size)
        except (OSError, ValueError) as exc:
            raise ShmUnavailable(f"cannot create shm slab {name!r}: {exc}")
        self._slabs[name] = slab
        self.stats.slabs_created += 1
        return slab

    def _seal(self, slab: _Slab) -> None:
        slab.sealed = True
        self._maybe_reclaim(slab)

    def place(self, payload: bytes, peer: object,
              digest: str = "", bits: int = 0) -> ShmRef:
        """Copy *payload* into the arena (the one copy) and return the
        reference to send to *peer*."""
        if self._closed:
            raise ShmUnavailable(f"arena {self.label!r} is closed")
        length = len(payload)
        if length > self.slab_bytes:
            slab = self._new_slab(length)  # dedicated slab
        else:
            slab = self._current
            if slab is None or slab.used + length > slab.size:
                if slab is not None:
                    self._seal(slab)
                slab = self._current = self._new_slab(self.slab_bytes)
        offset = slab.used
        slab.shm.buf[offset:offset + length] = payload
        slab.used = offset + length
        key = self._key(peer)
        slab.issued[key] = slab.issued.get(key, 0) + 1
        if slab is not self._current:
            self._seal(slab)
        self.stats.payloads_placed += 1
        self.stats.bytes_placed += length
        return ShmRef(segment=slab.name, offset=offset, length=length,
                      digest=digest, bits=bits)

    # -- reclamation --------------------------------------------------------

    def _maybe_reclaim(self, slab: _Slab) -> None:
        if not slab.sealed or not slab.drained:
            return
        if self._slabs.pop(slab.name, None) is None:
            return
        slab.shm.close()
        _track(slab.name)
        try:
            slab.shm.unlink()
        except FileNotFoundError:  # pragma: no cover — unlink race
            pass
        self.stats.slabs_reclaimed += 1

    def ack(self, peer: object, acks: Dict[str, int]) -> None:
        """Credit consumptions reported by *peer* (piggybacked on a
        message travelling the other way). Acks are credited under the
        peer's *current* epoch: acks for unknown slabs, or from a
        forgotten epoch (issuance keys removed by :meth:`forget_peer`),
        are ignored — stale accounting must never reclaim a slab the
        peer's successor still reads from."""
        key = self._key(peer)
        for name, count in acks.items():
            slab = self._slabs.get(name)
            if slab is None or key not in slab.issued:
                continue
            slab.acked[key] = slab.acked.get(key, 0) + count
            self._maybe_reclaim(slab)

    def forget_peer(self, peer: object) -> None:
        """Cancel every outstanding reference issued to *peer* (its
        process died; nothing will ever ack them) and bump the peer's
        epoch so late acks from the dead incarnation stay inert. The
        open slab is sealed too: re-placements for the respawned peer
        must start a fresh slab, or a stale ack could name a slab that
        carries live current-epoch references."""
        self._epochs[peer] = self._epochs.get(peer, 0) + 1
        self.stats.peers_forgotten += 1
        self.seal()
        for slab in list(self._slabs.values()):
            stale = [key for key in slab.issued if key[0] == peer]
            for key in stale:
                slab.issued.pop(key, None)
                slab.acked.pop(key, None)
            if stale:
                self._maybe_reclaim(slab)

    def seal(self) -> None:
        """Seal the open slab (reclamation then only awaits acks)."""
        if self._current is not None:
            self._seal(self._current)
            self._current = None

    @property
    def live_slabs(self) -> int:
        return len(self._slabs)

    def close(self) -> None:
        """Unlink every remaining slab. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._current = None
        for slab in self._slabs.values():
            slab.shm.close()
            _track(slab.name)
            try:
                slab.shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._slabs.clear()


class ArenaReader:
    """Reader side: attach-on-demand segment cache + ack bookkeeping.

    ``fetch`` returns the payload bytes (the receiving copy — out of
    shared memory, into the consumer's heap) and records one pending ack
    for the segment under the sending peer; :meth:`take_acks` drains the
    pending acks for one peer so the caller can piggyback them on its
    next message to that peer.
    """

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._pending: Dict[object, Dict[str, int]] = {}
        self._peer_segments: Dict[object, Set[str]] = {}
        self.bytes_fetched = 0

    def fetch(self, ref: ShmRef, peer: object) -> bytes:
        seg = self._segments.get(ref.segment)
        if seg is None:
            try:
                seg = shared_memory.SharedMemory(name=ref.segment)
            except FileNotFoundError:
                raise ShmSegmentGone(
                    f"shm segment {ref.segment!r} referenced by peer "
                    f"{peer!r} no longer exists")
            _untrack(ref.segment)  # creator owns cleanup, not us
            self._segments[ref.segment] = seg
        if ref.offset + ref.length > seg.size:
            raise ShmSegmentGone(
                f"reference beyond segment {ref.segment!r}: "
                f"{ref.offset}+{ref.length} > {seg.size}")
        data = bytes(seg.buf[ref.offset:ref.offset + ref.length])
        acks = self._pending.setdefault(peer, {})
        acks[ref.segment] = acks.get(ref.segment, 0) + 1
        self._peer_segments.setdefault(peer, set()).add(ref.segment)
        self.bytes_fetched += len(data)
        return data

    def take_acks(self, peer: object) -> Dict[str, int]:
        return self._pending.pop(peer, {})

    def drop_peer(self, peer: object, unlink: bool = False) -> None:
        """Forget a peer's segments (it died). With *unlink*, also
        remove them from the system — the coordinator does this for a
        killed worker's orphans; the dead owner cannot."""
        self._pending.pop(peer, None)
        for name in self._peer_segments.pop(peer, set()):
            seg = self._segments.pop(name, None)
            if seg is not None:
                seg.close()
            elif unlink:
                try:
                    seg = shared_memory.SharedMemory(name=name)
                    _untrack(name)
                except FileNotFoundError:
                    continue
            if unlink and seg is not None:
                _track(name)
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass

    def close(self) -> None:
        """Detach every cached segment. Idempotent."""
        for seg in self._segments.values():
            try:
                seg.close()
            except (OSError, ValueError):  # pragma: no cover
                pass
        self._segments.clear()
        self._pending.clear()
        self._peer_segments.clear()
