"""The examples are part of the public contract: run each as a script
and check it exits cleanly (their internal asserts check the behaviour).
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"
# Underscore-prefixed files are shared helpers, not runnable examples.
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py")
                  if not p.name.startswith("_"))


def test_every_example_is_covered():
    assert len(EXAMPLES) >= 7


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, tmp_path):
    # The example subprocess does not inherit the test runner's import
    # setup: point it at src/ explicitly (examples also self-bootstrap
    # via _bootstrap for direct fresh-checkout runs).
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
        cwd=tmp_path,  # artifacts (e.g. VCD files) land in a sandbox
        env=env,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr[-2000:]}"
    assert result.stdout  # every example narrates what it shows
