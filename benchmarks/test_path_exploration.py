"""E2a — benefit of hardware snapshotting for multi-path firmware
analysis.

The paper's second evaluation question: "How beneficial is hardware
snapshotting for firmware analysis?" The dispatcher-N workload explores
N firmware paths that each program the shared timer; exploration is
concurrent (round-robin scheduling), so every state switch needs a
consistent hardware context.

Strategies compared (Fig. 1):
* HardSnap — snapshot context switches,
* naive-and-consistent — reboot + replay the MMIO history per switch,
* naive-and-inconsistent — shared hardware, no isolation (fast, wrong).

Expected shapes:
* HardSnap's modelled analysis time is orders of magnitude below the
  reboot baseline and the gap grows with N,
* HardSnap matches the reboot baseline's (correct) per-path verdicts,
* the inconsistent baseline diverges from ground truth.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.core import HardSnapSession
from repro.firmware import TIMER_BASE, dispatcher
from repro.peripherals import catalog

TIMER = [(catalog.TIMER, TIMER_BASE)]
PATH_COUNTS = (2, 4, 8, 16)


def _explore(n_paths, strategy):
    session = HardSnapSession(
        dispatcher(n_paths, work_cycles=8), TIMER,
        strategy=strategy, searcher="round-robin", scan_mode="functional")
    return session.run(max_instructions=60_000)


def test_path_exploration_scaling(benchmark):
    def run():
        out = {}
        for n in PATH_COUNTS:
            out[n] = {s: _explore(n, s)
                      for s in ("hardsnap", "naive-consistent",
                                "naive-inconsistent")}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n in PATH_COUNTS:
        hs = results[n]["hardsnap"]
        nc = results[n]["naive-consistent"]
        ni = results[n]["naive-inconsistent"]
        rows.append([
            n,
            format_si_time(hs.modelled_time_s),
            format_si_time(nc.modelled_time_s),
            format_si_time(ni.modelled_time_s),
            f"{nc.modelled_time_s / hs.modelled_time_s:.0f}x",
            len(hs.halt_codes()), len(nc.halt_codes()),
            len(ni.halt_codes()),
        ])
    emit("path_exploration", format_table(
        ["paths", "HardSnap", "naive-consistent", "naive-inconsistent",
         "speedup vs reboot", "HS verdicts", "NC verdicts", "NI verdicts"],
        rows,
        title="E2a: concurrent path exploration, modelled analysis time"))

    speedups = []
    for n in PATH_COUNTS:
        hs = results[n]["hardsnap"]
        nc = results[n]["naive-consistent"]
        ni = results[n]["naive-inconsistent"]
        # Correctness: HardSnap finds all N paths, same verdicts as the
        # (correct but slow) reboot baseline.
        assert sorted(hs.halt_codes()) == [0x100 + i for i in range(n)]
        assert hs.halt_codes() == nc.halt_codes()
        # Performance: HardSnap is orders of magnitude cheaper.
        speedup = nc.modelled_time_s / hs.modelled_time_s
        speedups.append(speedup)
        assert speedup > 50, (n, speedup)
        # The inconsistent baseline diverges from ground truth under
        # concurrent exploration.
        assert (ni.halt_codes() != hs.halt_codes()
                or ni.stop_reason != "exhausted")
    # Both engines scale roughly linearly in path count, so the reboot
    # baseline's handicap stays in the orders-of-magnitude regime across
    # the sweep (its absolute cost explodes: ~N reboots+replays).
    assert min(speedups) > 50
    nc_growth = (results[PATH_COUNTS[-1]]["naive-consistent"].modelled_time_s
                 / results[PATH_COUNTS[0]]["naive-consistent"].modelled_time_s)
    assert nc_growth > len(PATH_COUNTS)  # reboot cost grows with N


@pytest.mark.parametrize("searcher", ["affinity", "round-robin"])
def test_hardsnap_snapshot_traffic_by_searcher(benchmark, searcher):
    """Snapshot traffic depends on scheduling: affinity batches per
    state; round-robin context-switches constantly. Both stay correct."""
    def run():
        session = HardSnapSession(
            dispatcher(8, work_cycles=8), TIMER,
            searcher=searcher, scan_mode="functional")
        return session.run(max_instructions=60_000)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(report.halt_codes()) == 8
    emit(f"path_exploration_traffic_{searcher}",
         f"searcher={searcher}: saves={report.snapshot_saves} "
         f"restores={report.snapshot_restores} "
         f"modelled={report.modelled_time_s:.6f}s")
