"""Lint framework, structural rules and snapshot-consistency rules.

Every registered rule has one intentionally broken fixture asserting its
rule id fires, and the whole peripheral catalog must lint clean.
"""

import pytest

from repro.errors import InstrumentationError, ScanCoverageError
from repro.hdl import elaborate, ir
from repro.instrument import emit_verilog, insert_scan_chain, preflight_lint
from repro.lint import (ERROR, INFO, WARNING, LintConfig, all_rules,
                        lint_catalog, lint_design, lint_source, render_json)
from repro.peripherals import catalog


def fired(report):
    return {d.rule for d in report.diagnostics}


def lint_verilog(source, top="m", **cfg):
    return lint_source(source, top, LintConfig(**cfg))


# ---------------------------------------------------------------------------
# Broken fixtures — one per rule
# ---------------------------------------------------------------------------

COMB_LOOP = """
module m (input wire clk, input wire x, output wire y);
    reg q;
    wire a, b;
    assign a = b ^ x;
    assign b = a;
    assign y = a;
    always @(posedge clk) q <= y;
endmodule
"""

MULTI_DRIVER_COMB = """
module m (input wire clk, input wire a, input wire b, output wire y);
    reg q;
    wire w;
    assign w = a;
    assign w = b;
    assign y = w;
    always @(posedge clk) q <= y;
endmodule
"""

MULTI_DRIVER_SEQ_COMB = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    always @(posedge clk) q <= a;
    assign q = ~a;
    assign y = q;
endmodule
"""

LATCH = """
module m (input wire clk, input wire en, input wire [3:0] d,
          output wire [3:0] y);
    reg q;
    reg [3:0] v;
    always @(*) begin
        if (en)
            v = d;
    end
    assign y = v;
    always @(posedge clk) q <= en;
endmodule
"""

WIDTH_TRUNC = """
module m (input wire clk, input wire [15:0] wide, output wire [3:0] y);
    reg [3:0] q;
    always @(posedge clk) q <= wide;
    assign y = q;
endmodule
"""

DEAD_NET = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    wire scratch;
    assign scratch = ~a;
    always @(posedge clk) q <= a;
    assign y = q;
endmodule
"""

UNREACHABLE_SEQ = """
module m (input wire clk, input wire a, output wire y);
    wire gclk;
    reg q, p;
    always @(posedge clk) q <= a;
    always @(posedge gclk) p <= q;
    assign y = p;
endmodule
"""

NO_RESET = """
module m (input wire clk, input wire rst, input wire a, output wire [7:0] y);
    reg good;
    reg [7:0] free;
    always @(posedge clk) begin
        if (rst) good <= 0;
        else good <= a;
    end
    always @(posedge clk) free <= free + 1;
    assign y = free;
endmodule
"""

TWO_REGS = """
module m (input wire clk, input wire [7:0] d, output wire [7:0] y);
    reg [7:0] a;
    reg [7:0] b;
    always @(posedge clk) begin
        a <= d;
        b <= a;
    end
    assign y = b;
endmodule
"""

BIG_MEMORY = """
module m (input wire clk, input wire we, input wire [9:0] addr,
          input wire [31:0] d, output wire [31:0] y);
    reg [31:0] ram [0:1023];
    reg [31:0] q;
    always @(posedge clk) begin
        if (we) ram[addr] <= d;
        q <= ram[addr];
    end
    assign y = q;
endmodule
"""

SCAN_PORT_COLLISION = """
module m (input wire clk, input wire scan_enable, input wire d,
          output wire y);
    reg q;
    always @(posedge clk) begin
        if (scan_enable) q <= d;
    end
    assign y = q;
endmodule
"""

SCAN_INTERNAL_COLLISION = """
module m (input wire clk, input wire d, output wire y);
    reg scan_p;
    always @(posedge clk) scan_p <= d;
    assign y = scan_p;
endmodule
"""

DF_CONST_NET = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    wire k;
    assign k = 1'b0;
    always @(posedge clk) q <= a ^ k;
    assign y = q;
endmodule
"""

DF_CONST_GUARD = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    wire k;
    assign k = 1'b1;
    always @(posedge clk) begin
        if (k) q <= a;
        else q <= ~a;
    end
    assign y = q;
endmodule
"""

DF_UNREACHABLE_CASE = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    wire [1:0] sel;
    assign sel = {1'b0, a};
    always @(posedge clk) begin
        case (sel)
            2'd0: q <= 1'b0;
            2'd1: q <= a;
            2'd2: q <= ~a;
            default: q <= 1'b1;
        endcase
    end
    assign y = q;
endmodule
"""

DF_DEAD_STATE = """
module m (input wire clk, input wire a, output wire y);
    reg q;
    reg [7:0] shadow;
    always @(posedge clk) begin
        q <= a;
        shadow <= {shadow[6:0], a};
    end
    assign y = q;
endmodule
"""

DF_CONST_TRUNC = """
module m (input wire clk, input wire a, output wire [3:0] y);
    reg [3:0] q;
    wire [7:0] big;
    assign big = 8'hf0 | {7'b0, a};
    always @(posedge clk) q <= big;
    assign y = q;
endmodule
"""


class TestStructuralRules:
    def test_comb_loop_fires(self):
        report = lint_verilog(COMB_LOOP)
        assert "comb-loop" in fired(report)
        assert not report.ok

    def test_multi_driver_comb_fires(self):
        report = lint_verilog(MULTI_DRIVER_COMB)
        assert "multi-driver" in fired(report)

    def test_multi_driver_seq_vs_comb_fires(self):
        report = lint_verilog(MULTI_DRIVER_SEQ_COMB)
        assert "multi-driver" in fired(report)
        [diag] = [d for d in report.diagnostics if d.rule == "multi-driver"]
        assert diag.subject == "q"

    def test_disjoint_slices_are_not_multi_driven(self):
        src = """
        module m (input wire clk, input wire [3:0] a, output wire [7:0] y);
            reg q;
            wire [7:0] w;
            assign w[3:0] = a;
            assign w[7:4] = ~a;
            assign y = w;
            always @(posedge clk) q <= w[0];
        endmodule
        """
        assert "multi-driver" not in fired(lint_verilog(src))

    def test_latch_fires(self):
        report = lint_verilog(LATCH)
        assert "latch" in fired(report)
        [diag] = [d for d in report.diagnostics if d.rule == "latch"]
        assert diag.subject == "v"
        assert "0xf" in diag.message

    def test_default_assignment_prevents_latch(self):
        src = """
        module m (input wire clk, input wire en, input wire [3:0] d,
                  output wire [3:0] y);
            reg q;
            reg [3:0] v;
            always @(*) begin
                v = 0;
                if (en) v = d;
            end
            assign y = v;
            always @(posedge clk) q <= en;
        endmodule
        """
        assert "latch" not in fired(lint_verilog(src))

    def test_width_trunc_fires(self):
        report = lint_verilog(WIDTH_TRUNC)
        assert "width-trunc" in fired(report)

    def test_counter_increment_is_not_truncation(self):
        src = """
        module m (input wire clk, output wire [7:0] y);
            reg [7:0] count;
            always @(posedge clk) count <= count + 1;
            assign y = count;
        endmodule
        """
        assert "width-trunc" not in fired(lint_verilog(src))

    def test_dead_net_fires(self):
        report = lint_verilog(DEAD_NET)
        assert "dead-net" in fired(report)
        [diag] = [d for d in report.diagnostics if d.rule == "dead-net"]
        assert diag.subject == "scratch"

    def test_unreachable_seq_fires(self):
        report = lint_verilog(UNREACHABLE_SEQ)
        assert "unreachable-seq" in fired(report)

    def test_no_reset_fires(self):
        report = lint_verilog(NO_RESET)
        assert "no-reset" in fired(report)
        subjects = {d.subject for d in report.diagnostics
                    if d.rule == "no-reset"}
        assert subjects == {"free"}

    def test_design_without_reset_style_is_not_flagged(self):
        assert "no-reset" not in fired(lint_verilog(TWO_REGS))


class TestSnapshotRules:
    def test_register_excluded_from_chain_is_flagged(self):
        # The acceptance-criterion case: a register outside the include
        # filter is provably missing from S_hw coverage.
        report = lint_verilog(TWO_REGS, include=("a",))
        diags = [d for d in report.diagnostics
                 if d.rule == "snapshot-completeness"]
        assert any(d.subject == "b" and d.severity == ERROR for d in diags)
        assert not report.ok

    def test_full_chain_is_complete(self):
        report = lint_verilog(TWO_REGS)
        assert "snapshot-completeness" not in fired(report)

    def test_oversize_memory_with_readback_is_info(self):
        report = lint_verilog(BIG_MEMORY, memory_limit_bits=1024)
        diags = [d for d in report.diagnostics
                 if d.rule == "snapshot-completeness"]
        assert [d.severity for d in diags] == [INFO]
        assert report.ok

    def test_oversize_memory_without_readback_is_error(self):
        report = lint_verilog(BIG_MEMORY, memory_limit_bits=1024,
                              readback=False)
        diags = [d for d in report.diagnostics
                 if d.rule == "snapshot-completeness"]
        assert [d.severity for d in diags] == [ERROR]

    def test_missing_clock_is_error(self):
        report = lint_verilog(TWO_REGS, clock="clock")
        assert "snapshot-completeness" in fired(report)
        assert not report.ok

    def test_stateless_design_is_error(self):
        src = "module m (input wire a, output wire y); assign y = ~a; endmodule"
        report = lint_verilog(src, clock="a")
        assert "snapshot-completeness" in fired(report)

    def test_scan_port_collision_fires(self):
        report = lint_verilog(SCAN_PORT_COLLISION)
        diags = [d for d in report.diagnostics
                 if d.rule == "scan-port-collision"]
        assert [d.subject for d in diags] == ["scan_enable"]

    def test_scan_internal_collision_fires(self):
        report = lint_verilog(SCAN_INTERNAL_COLLISION)
        assert "scan-port-collision" in fired(report)

    def test_instrumented_design_owns_scan_names(self):
        design = elaborate(TWO_REGS, "m")
        result = insert_scan_chain(design)
        report = lint_design(result.design)
        assert "scan-port-collision" not in fired(report)
        assert report.ok

    def test_ungated_writer_of_scanned_state_fires(self):
        design = elaborate(TWO_REGS, "m")
        scanned = insert_scan_chain(design).design
        # Sabotage: add a functional writer of chain state that is NOT
        # gated off while the chain is shifting.
        a = scanned.nets["a"]
        d = scanned.nets["d"]
        scanned.seq_blocks.append(ir.SeqBlock(
            clock=scanned.nets["clk"], clock_edge="posedge",
            stmts=[ir.SAssign(ir.LNet(a), ir.Ref(d, width=8),
                              blocking=False)],
            name="rogue"))
        scanned.finalize()
        report = lint_design(scanned)
        diags = [d2 for d2 in report.diagnostics if d2.rule == "scan-gating"]
        assert diags and diags[0].subject == "a"
        assert "rogue" in diags[0].message


class TestDataflowRules:
    def test_const_net_fires(self):
        report = lint_verilog(DF_CONST_NET)
        assert "df-const-net" in fired(report)
        diags = [d for d in report.diagnostics if d.rule == "df-const-net"]
        assert any(d.subject == "k" for d in diags)

    def test_input_derived_net_is_not_constant(self):
        report = lint_verilog(TWO_REGS)
        assert "df-const-net" not in fired(report)

    def test_const_guard_fires(self):
        report = lint_verilog(DF_CONST_GUARD)
        assert "df-const-guard" in fired(report)

    def test_unreachable_case_fires(self):
        report = lint_verilog(DF_UNREACHABLE_CASE)
        assert "df-unreachable-case" in fired(report)

    def test_dead_state_fires(self):
        report = lint_verilog(DF_DEAD_STATE)
        diags = [d for d in report.diagnostics if d.rule == "df-dead-state"]
        assert diags and diags[0].subject == "shadow"
        assert "all bits" in diags[0].message

    def test_live_state_is_not_flagged(self):
        report = lint_verilog(TWO_REGS)
        assert "df-dead-state" not in fired(report)

    def test_const_trunc_fires(self):
        report = lint_verilog(DF_CONST_TRUNC)
        diags = [d for d in report.diagnostics if d.rule == "df-const-trunc"]
        assert diags and "0xf0" in diags[0].message

    def test_plain_truncation_is_not_const_trunc(self):
        # Structural width-trunc territory: nothing provably set above
        # the target width.
        report = lint_verilog(WIDTH_TRUNC)
        assert "df-const-trunc" not in fired(report)

    def test_rules_idempotent_under_optimization(self):
        # Optimizing a design must not create NEW findings: every rule
        # fires at most as often on optimize(design) as on the original.
        from repro.opt import optimize
        for spec in catalog.CORPUS:
            before = lint_design(spec.elaborate()).by_rule()
            after = lint_design(optimize(spec.elaborate())).by_rule()
            for rule_id, count in after.items():
                assert count <= before.get(rule_id, count), (
                    f"{spec.name}: rule {rule_id} fired {count}x after "
                    f"optimization vs {before.get(rule_id, 0)}x before")


class TestRuleInventory:
    def test_at_least_eight_rules_registered(self):
        assert len(all_rules()) >= 8

    def test_every_rule_has_a_fixture(self):
        covered = {
            "comb-loop", "multi-driver", "latch", "width-trunc",
            "dead-net", "unreachable-seq", "no-reset",
            "snapshot-completeness", "scan-port-collision", "scan-gating",
            "df-const-net", "df-const-guard", "df-unreachable-case",
            "df-dead-state", "df-const-trunc",
        }
        assert {r.id for r in all_rules()} == covered

    def test_rules_carry_documentation(self):
        for rule in all_rules():
            assert rule.title and rule.rationale
            assert rule.severity in (ERROR, WARNING, INFO)


class TestCatalogCoverage:
    @pytest.mark.parametrize(
        "spec", catalog.EXTENDED_CORPUS, ids=lambda s: s.name)
    def test_peripheral_lints_clean(self, spec):
        # The catalog must be free of errors and warnings.  Info-severity
        # dataflow findings (e.g. write-latch bits that never reach an
        # output) are legitimate observations, not defects.
        report = lint_design(spec.elaborate())
        noisy = [d for d in report.diagnostics if d.severity != INFO]
        assert not noisy, report.render_text()
        for diag in report.diagnostics:
            assert diag.rule.startswith("df-"), report.render_text()

    def test_dataflow_rules_fire_on_catalog(self):
        # At least one catalog peripheral carries provably-dead state the
        # dataflow rules can point at (uart/intc hold full-width wdata
        # latches but only expose a few bits).
        reports = lint_catalog()
        hits = [d for r in reports for d in r.diagnostics
                if d.rule.startswith("df-")]
        assert hits

    @pytest.mark.parametrize(
        "spec", catalog.CORPUS, ids=lambda s: s.name)
    def test_instrumented_peripheral_has_no_errors(self, spec):
        design = spec.elaborate()
        result = insert_scan_chain(design)
        assert lint_design(result.design).ok

    def test_instrumented_design_survives_reemission(self):
        design = catalog.TIMER.elaborate()
        text = emit_verilog(insert_scan_chain(design).design)
        report = lint_source(text, "timer_scan")
        assert report.ok

    def test_lint_catalog_helper(self):
        reports = lint_catalog()
        assert len(reports) == len(catalog.EXTENDED_CORPUS)
        assert all(r.ok for r in reports)


class TestFrameworkPolicy:
    def test_severity_override(self):
        report = lint_verilog(LATCH, severity_overrides={"latch": "error"})
        [diag] = [d for d in report.diagnostics if d.rule == "latch"]
        assert diag.severity == ERROR
        assert not report.ok

    def test_disable_rule(self):
        report = lint_verilog(LATCH, disabled=frozenset({"latch"}))
        assert "latch" not in fired(report)

    def test_diagnostics_sorted_most_severe_first(self):
        report = lint_verilog(COMB_LOOP + LATCH.replace("module m", "module n"),
                              )
        # single-module lint: just check ordering property on a mixed report
        report = lint_verilog(UNREACHABLE_SEQ)
        ranks = [{"error": 0, "warning": 1, "info": 2}[d.severity]
                 for d in report.diagnostics]
        assert ranks == sorted(ranks)

    def test_render_text_has_summary_and_locations(self):
        report = lint_source(NO_RESET, "m", source_file="fw.v")
        text = report.render_text()
        assert "0 error(s)" in text or "error(s)" in text
        assert "fw.v:" in text

    def test_render_json_round_trips(self):
        import json

        report = lint_verilog(WIDTH_TRUNC)
        payload = json.loads(render_json([report]))
        assert payload["reports"][0]["design"] == "m"
        assert payload["reports"][0]["warnings"] >= 1
        rules = {d["rule"] for d in payload["reports"][0]["diagnostics"]}
        assert "width-trunc" in rules

    def test_diagnostic_points_at_source_line(self):
        report = lint_source(DEAD_NET, "m", source_file="dead.v")
        [diag] = [d for d in report.diagnostics if d.rule == "dead-net"]
        assert diag.source_file == "dead.v"
        assert diag.line and diag.line > 1
        assert diag.format().startswith(f"dead.v:{diag.line}:")


class TestScanChainCoverageErrors:
    def test_include_exclusions_are_recorded(self):
        design = elaborate(TWO_REGS, "m")
        result = insert_scan_chain(design, include=["a"])
        assert [(e.kind, e.name, e.reason) for e in result.excluded] == [
            ("net", "b", "include-filter")]

    def test_on_excluded_error_raises_structured(self):
        design = elaborate(TWO_REGS, "m")
        with pytest.raises(ScanCoverageError) as exc:
            insert_scan_chain(design, include=["a"], on_excluded="error")
        assert ("net", "b", 8, "include-filter") in exc.value.elements
        assert "b" in str(exc.value)

    def test_memory_limit_exclusions_are_recorded(self):
        design = elaborate(BIG_MEMORY, "m")
        result = insert_scan_chain(design, memory_limit_bits=1024)
        assert result.excluded_memories == ["ram"]
        [entry] = [e for e in result.excluded if e.kind == "mem"]
        assert entry.reason == "memory-limit" and entry.bits == 32 * 1024

    def test_internal_name_collision_is_rejected(self):
        design = elaborate(SCAN_INTERNAL_COLLISION, "m")
        with pytest.raises(InstrumentationError, match="scan_p"):
            insert_scan_chain(design)

    def test_preflight_attaches_diagnostics(self):
        design = elaborate(TWO_REGS, "m")
        with pytest.raises(InstrumentationError) as exc:
            preflight_lint(design, include=["a"])
        assert exc.value.diagnostics
        assert {d.rule for d in exc.value.diagnostics} == {
            "snapshot-completeness"}
        assert "snapshot-completeness" in str(exc.value)

    def test_preflight_blocks_structural_errors(self):
        design = elaborate(MULTI_DRIVER_SEQ_COMB, "m")
        with pytest.raises(InstrumentationError) as exc:
            insert_scan_chain(design, preflight=True)
        assert {d.rule for d in exc.value.diagnostics} == {"multi-driver"}

    def test_preflight_treats_explicit_include_as_scoping(self):
        # Deliberate --include scoping is not a completeness error in the
        # built-in pre-flight; the gap is recorded via on_excluded instead.
        design = elaborate(TWO_REGS, "m")
        result = insert_scan_chain(design, include=["a"], preflight=True)
        assert [(e.name, e.reason) for e in result.excluded] == [
            ("b", "include-filter")]

    def test_preflight_passes_clean_design(self):
        design = elaborate(TWO_REGS, "m")
        result = insert_scan_chain(design, preflight=True)
        assert result.chain_length == 16
