"""Copy-on-write symbolic memory.

Byte-granular RAM where each byte is either a concrete ``int`` or an
8-bit :class:`~repro.solver.expr.BitVec`. Pages are shared between
forked states and copied on first write — the mechanism that makes
KLEE-style state forking cheap (paper §II: "it forks the entire program
memory in two states"; the fork is O(1), not a copy).

Words are little-endian. Reading a word whose bytes are all concrete
returns an ``int``; any symbolic byte promotes the result to an
expression.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import VmError
from repro.solver import expr as E

PAGE_SIZE = 256
Value = Union[int, E.BitVec]


class SymbolicMemory:
    """Paged, copy-on-write byte store of ``size`` bytes."""

    def __init__(self, size: int):
        if size % PAGE_SIZE:
            raise VmError(f"memory size must be a multiple of {PAGE_SIZE}")
        self.size = size
        self._pages: Dict[int, List[Value]] = {}
        self._owned: set = set()
        # Predecode support: digest of the loaded firmware image (stamped
        # by load_image) and a clean flag cleared by any write below the
        # image extent. Executors fetch through their predecode table
        # only while (digest matches, code_clean) both hold.
        self.image_digest: Optional[bytes] = None
        self.code_limit = 0
        self.code_clean = True

    # -- forking -----------------------------------------------------------

    def fork(self) -> "SymbolicMemory":
        """O(pages) shallow fork; both sides copy pages on next write."""
        child = SymbolicMemory.__new__(SymbolicMemory)
        child.size = self.size
        child._pages = dict(self._pages)
        child._owned = set()
        child.image_digest = self.image_digest
        child.code_limit = self.code_limit
        child.code_clean = self.code_clean
        self._owned = set()  # parent must also COW from now on
        return child

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict:
        # Canonical form: pages in sorted page order and no ``_owned``
        # set. ``_owned`` is a process-local COW hint — an unpickled
        # memory must copy on first write anyway (its pages may be
        # shared with a decoder-side page pool), and dropping it makes
        # ``pickle.dumps`` a pure function of memory *content*, which
        # the delta state wire (repro.parallel.statewire) relies on for
        # byte-identical full-pickle/delta round-trips.
        return {
            "size": self.size,
            "pages": dict(sorted(self._pages.items())),
            "image_digest": self.image_digest,
            "code_limit": self.code_limit,
            "code_clean": self.code_clean,
        }

    def __setstate__(self, state: dict) -> None:
        self.size = state["size"]
        self._pages = state["pages"]
        self._owned = set()
        self.image_digest = state["image_digest"]
        self.code_limit = state["code_limit"]
        self.code_clean = state["code_clean"]

    # -- byte access ----------------------------------------------------------

    def _page_for_read(self, page_no: int) -> Optional[List[Value]]:
        return self._pages.get(page_no)

    def _page_for_write(self, page_no: int) -> List[Value]:
        page = self._pages.get(page_no)
        if page is None:
            page = [0] * PAGE_SIZE
            self._pages[page_no] = page
            self._owned.add(page_no)
        elif page_no not in self._owned:
            page = list(page)
            self._pages[page_no] = page
            self._owned.add(page_no)
        return page

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or addr + size > self.size:
            raise VmError(f"memory access out of range: 0x{addr:x}+{size}")

    def read_byte(self, addr: int) -> Value:
        self._check(addr, 1)
        page = self._page_for_read(addr // PAGE_SIZE)
        if page is None:
            return 0
        return page[addr % PAGE_SIZE]

    def write_byte(self, addr: int, value: Value) -> None:
        self._check(addr, 1)
        if isinstance(value, int):
            value &= 0xFF
        elif value.width != 8:
            raise VmError(f"write_byte needs an 8-bit value, got {value.width}")
        if addr < self.code_limit:
            self.code_clean = False  # self-modifying code: stop predecoding
        page = self._page_for_write(addr // PAGE_SIZE)
        page[addr % PAGE_SIZE] = value

    # -- word access -------------------------------------------------------------

    def read(self, addr: int, size: int) -> Value:
        """Little-endian read of 1, 2 or 4 bytes."""
        self._check(addr, size)
        parts = [self.read_byte(addr + i) for i in range(size)]
        if all(isinstance(p, int) for p in parts):
            value = 0
            for i, p in enumerate(parts):
                value |= p << (8 * i)  # type: ignore[operator]
            return value
        exprs = [p if isinstance(p, E.BitVec) else E.const(p, 8)
                 for p in parts]
        # concat is MSB-first; the highest-address byte is most significant.
        return E.concat(*reversed(exprs))

    def write(self, addr: int, value: Value, size: int) -> None:
        """Little-endian write of 1, 2 or 4 bytes."""
        self._check(addr, size)
        if isinstance(value, int):
            for i in range(size):
                self.write_byte(addr + i, (value >> (8 * i)) & 0xFF)
            return
        if value.width < 8 * size:
            value = E.zext(value, 8 * size)
        for i in range(size):
            self.write_byte(addr + i, E.extract(value, 8 * i + 7, 8 * i))

    # -- bulk helpers ---------------------------------------------------------------

    def load_image(self, image: Dict[int, int]) -> None:
        """Load a byte-addressed concrete image (e.g. assembled firmware).

        Stamps the memory with the image's content digest and extent so
        executors can prove their predecode table matches this memory."""
        from repro.isa.predecode import image_digest
        for addr, byte in image.items():
            self.write_byte(addr, byte)
        self.image_digest = image_digest(image)
        self.code_limit = min((max(image) + 1) if image else 0, self.size)
        self.code_clean = True

    def concrete_bytes(self, addr: int, size: int) -> bytes:
        """Read a concrete byte string; raises if any byte is symbolic."""
        out = bytearray()
        for i in range(size):
            value = self.read_byte(addr + i)
            if not isinstance(value, int):
                raise VmError(f"byte at 0x{addr + i:x} is symbolic")
            out.append(value)
        return bytes(out)

    def symbolic_byte_count(self) -> int:
        """Number of currently-symbolic bytes (diagnostics)."""
        count = 0
        for page in self._pages.values():
            count += sum(1 for v in page if not isinstance(v, int))
        return count
