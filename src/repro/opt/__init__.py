"""Bit-level dataflow analysis and netlist optimization.

The package has two consumers:

* ``repro.lint`` — the dataflow-backed rules (``df-*``) query
  :func:`constant_map` and :func:`live_masks` directly,
* ``repro.sim`` — :func:`optimize` / :func:`run_opt` produce the
  pre-folded netlist the compiled backend executes when ``opt=True``.
"""

from repro.opt.cones import comb_cone, flatten_cone, inline_single_use_wires
from repro.opt.dataflow import DefUse, constant_map
from repro.opt.lattice import BitsVal, eval_expr, join, of_const, top
from repro.opt.liveness import LiveSets, live_masks
from repro.opt.transform import OptReport, OptResult, optimize, run_opt

__all__ = [
    "BitsVal", "DefUse", "LiveSets", "OptReport", "OptResult",
    "comb_cone", "constant_map", "eval_expr", "flatten_cone",
    "inline_single_use_wires", "join", "live_masks", "of_const",
    "optimize", "run_opt", "top",
]
