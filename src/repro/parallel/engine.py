"""Coordinator for parallel dynamic symbolic execution.

The coordinator owns Algorithm 1's *scheduling* half — the searcher and
the stop conditions — and leases the actual execution of states to the
worker pool. A lease runs one state until it completes, forks, or
exhausts its instruction budget; the resulting states come back as
delta-encoded snapshots and re-enter the searcher. Because per-path
outcomes are schedule-independent (branch feasibility does not depend on
execution order, and every path's hardware travels with it), a
run-to-exhaustion merge reproduces the serial engine's
``verdict_summary()`` byte-for-byte, whatever the worker count — the
property ``tests/test_parallel.py`` pins down.

Leases travel in **coalesced batches** (up to ``lease_batch`` per
envelope, struct-packed — see :mod:`repro.parallel.envelope`) and the
main loop is a **pipelined merge**: every already-delivered result is
drained without blocking, freed workers are re-dispatched from parked
states *first*, and the decode of the drained envelopes is interleaved
with further dispatch — after each envelope's states are adopted into
the searcher, any worker that went idle meanwhile is fed immediately,
so batch *i+1* executes while the coordinator is still merging batch
*i*. Per-lease ``sym_base`` assignment, lineage-keyed merging and the
final identity renumbering are unchanged, which is why batching and
pipelining cannot perturb verdicts.

Software state crosses the process boundary through the
:class:`~repro.parallel.statewire.StateWire` delta codec: leases park
*live* states coordinator-side and are delta-encoded at pack time
(dirty pages the peer lacks + the constraint suffix beyond a shared
ancestor), so a recovery re-pack after a respawn re-encodes as a full
pickle against the worker's cold registry (``force_full``).

Verdict parity holds for ``irq_poll_interval=1`` (the default): larger
intervals phase the IRQ poll against the *global* instruction stream in
the serial engine but per-lease here.
"""

from __future__ import annotations

import time
from collections import deque
from typing import (Any, Deque, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.core.config import SessionConfig
from repro.core.engine import AnalysisReport
from repro.isa.assembler import Program
from repro.parallel.envelope import pack_lease_batch, unpack_lease_results
from repro.parallel.pool import WorkerPool
from repro.parallel.recipe import SessionRecipe
from repro.parallel.recovery import PoolRecoveryMixin
from repro.parallel.statewire import StateWire
from repro.parallel.wire import ChunkChannel
from repro.parallel.workers import SYM_BASE_STRIDE
from repro.resilience import RetryPolicy
from repro.vm.searchers import make_searcher
from repro.vm.state import ExecState


def _wire_digests(wire) -> List[str]:
    return [digest for _name, (digest, _cycle, _bits) in wire.refs.items()]


class ParallelAnalysisEngine(PoolRecoveryMixin):
    """Drop-in parallel counterpart of
    :meth:`~repro.core.hardsnap.HardSnapSession.run`.

    Takes the same firmware/peripherals/config arguments as
    :class:`~repro.core.hardsnap.HardSnapSession` plus a worker count;
    only the ``hardsnap`` strategy is supported (snapshots are what make
    states portable across processes).
    """

    def __init__(self, firmware: Union[str, Program],
                 peripherals: Sequence[Tuple[object, int]] = (),
                 config: Optional[SessionConfig] = None,
                 workers: int = 2,
                 lease_budget: int = 0,
                 transport: str = "auto",
                 lease_batch: int = 4,
                 delta_state: bool = True,
                 **overrides):
        self.recipe = SessionRecipe.create(firmware, peripherals,
                                           config=config,
                                           transport=transport,
                                           delta_state=delta_state,
                                           **overrides)
        self.config = self.recipe.config
        self.workers = workers
        #: Instructions per lease; 0 = run each lease to fork/completion.
        self.lease_budget = lease_budget
        #: Max leases coalesced into one job envelope.
        self.lease_batch = max(1, lease_batch)
        self.channel = ChunkChannel()
        self.statewire = StateWire(delta=self.recipe.delta_state)
        self.retry_policy = self.config.retry_policy or RetryPolicy()
        self._coverage: Set[int] = set()
        self._pool: Optional[WorkerPool] = None
        self._lease_seq = 0
        self._degraded = False
        self._worker_wire: Dict[object, object] = {}
        self._worker_statewire: Dict[object, object] = {}
        #: Digests pinned on behalf of each worker's in-flight batch
        #: (they back wires the recovery ladder may need to re-encode).
        self._pinned: Dict[int, List[str]] = {}

    # -- pool lifecycle -----------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(self.recipe, self.workers,
                                    channel=self.channel)
        return self._pool

    @property
    def pool_stats(self):
        return self.pool.stats

    def warm(self) -> None:
        self.pool.warm("engine")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ParallelAnalysisEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- leasing ------------------------------------------------------------

    def _make_searcher(self):
        kwargs = {}
        if self.config.searcher == "random":
            kwargs["seed"] = self.config.seed
        elif self.config.searcher == "coverage":
            kwargs["covered"] = self._coverage
        return make_searcher(self.config.searcher, **kwargs)

    def _peer(self, worker_id: int) -> object:
        """Chunk-channel peer key for a worker. After degrading to the
        in-process pool all results come from one harness whatever
        worker id they echo, so they share one peer identity."""
        return "degraded" if self._degraded else worker_id

    def _pack_leases(self, payload: Dict[str, Any],
                     worker_id: int) -> bytes:
        """``pack`` hook for the pool: structured batch → envelope
        bytes, with the transport's piggyback lane (shm acks owed to
        this worker, chunk evictions it must learn about) taken at pack
        time so a re-pack ships fresh bookkeeping."""
        transport = self.pool.transport
        peer = self._peer(worker_id)
        return pack_lease_batch(
            payload["leases"], transport, worker_id,
            acks=transport.take_acks(worker_id),
            evictions=self.channel.take_evictions(peer),
            state_evictions=self.statewire.take_evictions(peer),
            statewire=self.statewire)

    def _dispatch_batch(self, worker_id: int,
                        states: Sequence[Optional[ExecState]],
                        budget: int) -> None:
        leases = []
        pinned = self._pinned.setdefault(worker_id, [])
        for state in states:
            self._lease_seq += 1
            lease: Dict[str, Any] = {
                "budget": budget,
                "sym_base": self._lease_seq * SYM_BASE_STRIDE}
            if state is None:
                lease["state"] = None
                lease["wire"] = None
            else:
                wire = self.channel.reencode(state._wire,
                                             self._peer(worker_id))
                # The adopt-time pin transfers from the parked state to
                # the in-flight batch (same refs): _readdress may need
                # these bodies again after a respawn.
                pinned.extend(_wire_digests(wire))
                self.channel.unpin(_wire_digests(state._wire))
                del state._wire
                # The lease parks the *live* state; the statewire delta
                # encode happens at pack time (pack_lease_batch), so a
                # recovery re-pack re-encodes against the new peer's
                # registries instead of replaying stale bytes.
                lease["state"] = state
                lease["wire"] = wire
            leases.append(lease)
        self.pool.submit(worker_id, "lease-batch", {"leases": leases},
                         pack=self._pack_leases)
        self.pool.stats.leases += len(leases)
        self.pool.stats.batches += 1
        self.pool.stats.states_shipped += sum(
            1 for lease in leases if lease["state"] is not None)

    def _adopt(self, shipped, worker_id: int) -> ExecState:
        """Decode a shipped ``(kind, record, page bodies, wire)`` state
        and remember which chunks back its snapshot (the snapshot
        itself stays as references until the state is leased out
        again). The backing chunks are pinned against LRU eviction for
        as long as the state is parked."""
        kind, record, bodies, wire = shipped
        peer = self._peer(worker_id)
        self.channel.absorb(wire, peer)
        state = self.statewire.decode_state(kind, record, bodies, peer)
        state._wire = wire
        self.channel.pin(_wire_digests(wire))
        return state

    def _decode_batch(self, worker_id: int, data) -> List[Dict[str, Any]]:
        """One arrived batch envelope → the list of per-lease result
        dicts. Packed bytes come from real workers; the degraded
        InlinePool delivers the structured form directly."""
        if isinstance(data, (bytes, bytearray, memoryview)):
            transport = self.pool.transport
            t0 = time.perf_counter()
            acks, evictions, state_evictions, worker_enc, worker_dec, \
                results = unpack_lease_results(data, transport, worker_id)
            stats = transport.stats
            stats.decode_s += time.perf_counter() - t0
            stats.worker_encode_s += worker_enc
            stats.worker_decode_s += worker_dec
            transport.absorb_acks(worker_id, acks)
            peer = self._peer(worker_id)
            self.channel.forget_remote(peer, evictions)
            self.statewire.forget_remote(peer, state_evictions)
            return results
        return data["results"]

    # -- recovery hooks (see PoolRecoveryMixin) -----------------------------

    def _forget_peer(self, worker_id: object) -> None:
        self.channel.known.pop(worker_id, None)
        self.statewire.forget_peer(worker_id)

    def _readdress(self, payload, peer: object) -> None:
        if not isinstance(payload, dict):
            return
        if payload.get("wire") is not None:  # legacy single-lease dict
            payload["wire"] = self.channel.reencode(payload["wire"], peer)
        for lease in payload.get("leases", ()):
            if lease.get("wire") is not None:
                lease["wire"] = self.channel.reencode(lease["wire"], peer)
            if lease.get("state") is not None:
                # The replacement worker's base/page registries are
                # cold: the re-pack must ship a self-contained full
                # pickle, never a delta against history the old worker
                # took down with it.
                lease["force_full"] = True

    # -- main loop ----------------------------------------------------------

    def run(self, max_instructions: int = 1_000_000,
            max_states: int = 4096,
            stop_after_bugs: int = 0) -> AnalysisReport:
        """Run the leased Algorithm 1 to completion or budget."""
        report = AnalysisReport(strategy="hardsnap")
        start = time.perf_counter()
        searcher = self._make_searcher()
        pool = self.pool  # starts the workers
        resilience0 = pool.stats.resilience.as_dict()
        idle: Deque[int] = deque(range(self.workers))
        bugs: List[Tuple[object, Tuple[int, ...]]] = []
        stats_sums = {"saves": 0, "restores": 0, "logical_bits": 0,
                      "stored_bits": 0, "chunk_hits": 0, "chunk_misses": 0,
                      "capture_skips": 0}
        chain_depth = 0
        executed = 0
        outstanding = 0  # leases awaiting results
        batches_out = 0  # envelopes awaiting results
        stop: Optional[str] = None

        def lease_budget_now() -> int:
            if self.lease_budget:
                return self.lease_budget
            return 0  # to fork/completion

        def dispatch() -> None:
            """Feed every idle worker from the searcher, coalescing up
            to ``lease_batch`` leases per envelope (spread evenly so one
            worker never hoards the backlog while others starve)."""
            nonlocal outstanding, batches_out
            while idle and len(searcher):
                share = -(-len(searcher) // len(idle))  # ceil
                take = min(self.lease_batch, max(1, share), len(searcher))
                states = [searcher.pop_next(None) for _ in range(take)]
                self._dispatch_batch(idle.popleft(), states,
                                     lease_budget_now())
                outstanding += take
                batches_out += 1

        # Root lease: worker 0 builds the initial state itself.
        self._dispatch_batch(idle.popleft(), [None], lease_budget_now())
        outstanding += 1
        batches_out += 1

        while True:
            if stop is None:
                if executed >= max_instructions and \
                        (len(searcher) or outstanding):
                    stop = "instruction-budget"
                elif stop_after_bugs and len(bugs) >= stop_after_bugs:
                    stop = "bug-budget"
            if stop is None:
                dispatch()
            if batches_out == 0:
                break
            # Async draining: collect every envelope already delivered
            # (first one blocking), hand the freed workers new leases,
            # and only then pay the decode cost.
            # (self.pool, not the local: the recovery ladder may have
            # swapped in an InlinePool since the loop started.)
            arrived = [self._await_result()]
            arrived.extend(self.pool.drain_results())
            # Snapshot each completed batch's pins *before* dispatch():
            # a worker has at most one batch in flight, so at arrival
            # time _pinned[worker_id] holds exactly that batch's pins —
            # re-dispatching the freed worker below would extend the
            # same list with the *next* batch's pins, and unpinning
            # those early would expose in-flight chunks to LRU eviction
            # while the recovery ladder may still need them.
            batch_pins = [self._pinned.pop(worker_id, [])
                          for _kind, worker_id, _data in arrived]
            for _kind, worker_id, _data in arrived:
                idle.append(worker_id)
                batches_out -= 1
            if stop is None:
                dispatch()
            for (_kind, worker_id, data), pins in zip(arrived, batch_pins):
                # Pipelined merge: decode one envelope, fold its states
                # into the searcher, then (below) immediately feed any
                # idle worker before decoding the next envelope — batch
                # i+1 executes while batch i+2..n are still merging.
                for res in self._decode_batch(worker_id, data):
                    outstanding -= 1
                    executed += res["executed"]
                    self._coverage.update(res["coverage"])
                    report.modelled_time_s += res["modelled_dt"]
                    report.resilience.merge(res["resilience"])
                    for key in stats_sums:
                        stats_sums[key] += res["stats"][key]
                    chain_depth = max(chain_depth,
                                      res["stats"]["chain_depth"])
                    bugs.extend(res["bugs"])
                    self._worker_wire[self._peer(worker_id)] = \
                        res["wire_stats"]
                    if res.get("state_wire") is not None:
                        self._worker_statewire[self._peer(worker_id)] = \
                            res["state_wire"]
                    if res["completed"] is not None:
                        report.paths.append(res["completed"])
                    # Serial parity: forks count before the
                    # max_states cap.
                    report.forks += len(res["children"])
                    incoming = []
                    if res["continuation"] is not None:
                        incoming.append(res["continuation"])
                    incoming.extend(res["children"])
                    for shipped in incoming:
                        state = self._adopt(shipped, worker_id)
                        if len(searcher) + outstanding < max_states:
                            searcher.add(state)
                        else:
                            self.channel.unpin(_wire_digests(shipped[3]))
                    report.max_live_states = max(
                        report.max_live_states,
                        len(searcher) + outstanding)
                self.channel.unpin(pins)
                if stop is None:
                    dispatch()

        report.stop_reason = stop or "exhausted"
        report.instructions = executed
        report.coverage = len(self._coverage)
        self._finalise_identity(report, bugs)
        report.snapshot_saves = stats_sums["saves"]
        report.snapshot_restores = stats_sums["restores"]
        report.snapshot_logical_bits = stats_sums["logical_bits"]
        report.snapshot_stored_bits = stats_sums["stored_bits"]
        lookups = (stats_sums["chunk_hits"] + stats_sums["chunk_misses"]
                   + stats_sums["capture_skips"])
        report.snapshot_dedup_hit_rate = (
            (stats_sums["chunk_hits"] + stats_sums["capture_skips"])
            / lookups if lookups else 0.0)
        report.snapshot_chain_depth = chain_depth
        report.host_time_s = time.perf_counter() - start
        pool.stats.host_time_s += report.host_time_s
        pool.stats.wire.merge(self.channel.stats)
        self.channel.stats = type(self.channel.stats)()
        for wire_stats in self._worker_wire.values():
            pool.stats.wire.merge(wire_stats)
        self._worker_wire.clear()
        pool.stats.state_wire.merge(self.statewire.stats)
        self.statewire.stats = type(self.statewire.stats)()
        for sw_stats in self._worker_statewire.values():
            pool.stats.state_wire.merge(sw_stats)
        self._worker_statewire.clear()
        # Pool-boundary recovery (respawns/reissues/duplicates/degraded)
        # joins the link-layer events the workers reported per lease.
        report.resilience.merge(pool.stats.resilience.delta(resilience0))
        return report

    @staticmethod
    def _finalise_identity(report: AnalysisReport,
                           bugs: List[Tuple[object, Tuple[int, ...]]]
                           ) -> None:
        """Renumber merged paths deterministically: state ids are
        assigned 1..N in lineage order (worker-local ids mean nothing
        globally), and bugs are remapped onto the renumbered paths."""
        report.paths.sort(key=lambda p: p.lineage)
        ids: Dict[Tuple[int, ...], int] = {}
        for i, path in enumerate(report.paths, start=1):
            path.state_id = i
            ids[path.lineage] = i
        ordered = sorted(bugs, key=lambda item: (item[1], item[0].steps))
        report.bugs = []
        for bug, lineage in ordered:
            bug.state_id = ids.get(lineage, 0)
            report.bugs.append(bug)


def serial_report(firmware: Union[str, Program],
                  peripherals: Sequence[Tuple[object, int]] = (),
                  config: Optional[SessionConfig] = None,
                  run_kwargs: Optional[dict] = None,
                  **overrides) -> AnalysisReport:
    """Convenience: the serial engine's report for the same arguments —
    the reference a parallel run's verdicts are compared against."""
    from repro.core.hardsnap import HardSnapSession
    session = HardSnapSession(firmware, peripherals, config=config,
                              **overrides)
    return session.run(**(run_kwargs or {}))
