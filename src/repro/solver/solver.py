"""Top-level bitvector solver used by the symbolic virtual machine.

One :class:`Solver` owns one incremental :class:`BitBlaster`. Constraints
are lowered to single SAT literals and passed as *assumptions*, never
asserted, so the same encoding serves every path-feasibility and
concretization query the executor issues — the pattern KLEE uses with its
incremental backends.

Two caches sit in front of the SAT solver, mirroring KLEE's counterexample
cache:

* a *query cache* keyed on the exact constraint set,
* a *model cache*: before solving, recent satisfying models are replayed
  against the new query, which answers most branch-feasibility checks in
  symbolic-execution workloads without touching the SAT solver.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SolverError
from repro.solver import expr as E
from repro.solver.bitblast import FALSE_LIT, TRUE_LIT, BitBlaster
from repro.solver.simplify import simplify

SAT = "sat"
UNSAT = "unsat"


@dataclass
class CheckResult:
    """Outcome of a satisfiability query."""

    status: str
    model: Dict[E.BitVec, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status == SAT


@dataclass
class SolverStats:
    queries: int = 0
    sat_queries: int = 0
    unsat_queries: int = 0
    query_cache_hits: int = 0
    query_cache_evictions: int = 0
    model_cache_hits: int = 0
    solver_time: float = 0.0


#: Default bound on the query cache. Long campaigns (fuzzing loops, DSE
#: fork trees) issue millions of distinct feasibility queries; an
#: unbounded cache is a slow memory leak.
DEFAULT_QUERY_CACHE_SIZE = 4096


class Solver:
    """Incremental QF_BV solver with KLEE-style caching."""

    def __init__(self, model_cache_size: int = 32, simplify_queries: bool = True,
                 query_cache_size: int = DEFAULT_QUERY_CACHE_SIZE):
        if query_cache_size < 1:
            raise SolverError("query_cache_size must be >= 1")
        self._blaster = BitBlaster()
        #: LRU-ordered: most recently used keys at the end.
        self._query_cache: "OrderedDict[frozenset, CheckResult]" = OrderedDict()
        self._query_cache_size = query_cache_size
        self._recent_models: List[Dict[E.BitVec, int]] = []
        self._model_cache_size = model_cache_size
        self._simplify = simplify_queries
        self.stats = SolverStats()

    # -- core API -------------------------------------------------------------

    def check(self, constraints: Iterable[E.BitVec]) -> CheckResult:
        """Check the conjunction of boolean *constraints*.

        Returns a :class:`CheckResult`; on SAT the model assigns every
        variable occurring in the constraints (absent variables are
        unconstrained and reported as 0).
        """
        conj = self._normalise(constraints)
        if conj is None:
            return CheckResult(UNSAT)
        if not conj:
            return CheckResult(SAT)
        key = frozenset(conj)
        cached = self._query_cache.get(key)
        if cached is not None:
            self.stats.query_cache_hits += 1
            self._query_cache.move_to_end(key)
            return cached
        self.stats.queries += 1
        result = self._check_uncached(conj)
        self._query_cache[key] = result
        while len(self._query_cache) > self._query_cache_size:
            self._query_cache.popitem(last=False)
            self.stats.query_cache_evictions += 1
        return result

    def is_satisfiable(self, constraints: Iterable[E.BitVec]) -> bool:
        return self.check(constraints).is_sat

    def eval_one(self, value: E.BitVec, constraints: Iterable[E.BitVec]) -> Optional[int]:
        """One concrete value of *value* consistent with *constraints*.

        Returns None when the constraints are unsatisfiable.
        """
        if value.is_const:
            return value.value
        result = self.check(constraints)
        if not result.is_sat:
            return None
        return value.evaluate(_total_model(result.model, value))

    def eval_upto(self, value: E.BitVec, constraints: Sequence[E.BitVec],
                  limit: int) -> List[int]:
        """Up to *limit* distinct concrete values of *value*.

        This is the completeness side of HardSnap's concretization policy:
        enumerate feasible concrete values of a symbolic expression at the
        VM boundary.
        """
        if value.is_const:
            return [value.value]
        found: List[int] = []
        extra: List[E.BitVec] = list(constraints)
        while len(found) < limit:
            got = self.eval_one(value, extra)
            if got is None:
                break
            found.append(got)
            extra.append(E.ne(value, E.const(got, value.width)))
        return found

    def must_be_true(self, cond: E.BitVec, constraints: Sequence[E.BitVec]) -> bool:
        """True when *cond* holds in every model of *constraints*."""
        return not self.is_satisfiable(list(constraints) + [E.not_(cond)])

    def may_be_true(self, cond: E.BitVec, constraints: Sequence[E.BitVec]) -> bool:
        """True when some model of *constraints* satisfies *cond*."""
        return self.is_satisfiable(list(constraints) + [cond])

    # -- internals ---------------------------------------------------------------

    def _normalise(self, constraints: Iterable[E.BitVec]) -> Optional[List[E.BitVec]]:
        """Simplify and filter a constraint set.

        Returns None when a constraint is trivially false, else a list of
        non-trivial boolean expressions.
        """
        out: List[E.BitVec] = []
        seen = set()
        for c in constraints:
            if c.width != 1:
                raise SolverError(f"constraint must be boolean, got width {c.width}")
            if self._simplify:
                c = simplify(c)
            if c.is_const:
                if c.value == 0:
                    return None
                continue
            if c not in seen:
                seen.add(c)
                out.append(c)
        return out

    def _check_uncached(self, conj: List[E.BitVec]) -> CheckResult:
        # Model-cache replay: any recent model satisfying all constraints
        # answers the query as SAT without search.
        for model in self._recent_models:
            if self._model_satisfies(model, conj):
                self.stats.model_cache_hits += 1
                self.stats.sat_queries += 1
                return CheckResult(SAT, dict(model))
        start = time.perf_counter()
        assumptions: List[int] = []
        status = SAT
        for c in conj:
            literal = self._blaster.literal_for(c)
            if literal is FALSE_LIT:
                status = UNSAT
                break
            if literal is TRUE_LIT:
                continue
            assumptions.append(literal)  # type: ignore[arg-type]
        if status == SAT:
            status = self._blaster.sat.solve(assumptions)
        self.stats.solver_time += time.perf_counter() - start
        if status == UNSAT:
            self.stats.unsat_queries += 1
            return CheckResult(UNSAT)
        self.stats.sat_queries += 1
        model = self._extract_model(conj)
        self._remember_model(model)
        return CheckResult(SAT, model)

    def _extract_model(self, conj: List[E.BitVec]) -> Dict[E.BitVec, int]:
        model: Dict[E.BitVec, int] = {}
        for c in conj:
            for v in c.variables():
                if v not in model:
                    model[v] = self._blaster.model_value(v)
        return model

    def _model_satisfies(self, model: Dict[E.BitVec, int],
                         conj: List[E.BitVec]) -> bool:
        try:
            for c in conj:
                if c.evaluate(_total_model(model, c)) != 1:
                    return False
        except SolverError:
            return False
        return True

    def _remember_model(self, model: Dict[E.BitVec, int]) -> None:
        self._recent_models.insert(0, model)
        del self._recent_models[self._model_cache_size:]


def _total_model(model: Dict[E.BitVec, int], node: E.BitVec) -> Dict[E.BitVec, int]:
    """Extend *model* with 0 for variables of *node* it does not assign."""
    full = dict(model)
    for v in node.variables():
        full.setdefault(v, 0)
    return full
