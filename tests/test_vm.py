"""Symbolic VM tests: memory COW, executor semantics (differential vs the
concrete CPU), forking, detectors, concretization, searchers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConcretizationError, VmError
from repro.isa import Cpu, assemble
from repro.solver import Solver
from repro.solver import expr as E
from repro.vm import (COMPLETENESS, PERFORMANCE, ConcretizationPolicy,
                      MmioBridge, SymbolicExecutor, SymbolicMemory,
                      make_searcher)
from repro.vm.state import ExecState, STATUS_ERROR, STATUS_HALTED


class TestSymbolicMemory:
    def test_basic_word_roundtrip(self):
        mem = SymbolicMemory(4096)
        mem.write(0x100, 0xDEADBEEF, 4)
        assert mem.read(0x100, 4) == 0xDEADBEEF
        assert mem.read(0x100, 1) == 0xEF  # little-endian

    def test_unwritten_reads_zero(self):
        mem = SymbolicMemory(4096)
        assert mem.read(0x200, 4) == 0

    def test_cow_fork_isolation(self):
        parent = SymbolicMemory(4096)
        parent.write(0, 0x11, 1)
        child = parent.fork()
        child.write(0, 0x22, 1)
        parent.write(4, 0x33, 1)
        assert parent.read(0, 1) == 0x11
        assert child.read(0, 1) == 0x22
        assert child.read(4, 1) == 0  # parent's later write not visible

    def test_fork_shares_untouched_pages(self):
        parent = SymbolicMemory(4096)
        parent.write(0, 0xAB, 1)
        child = parent.fork()
        assert child.read(0, 1) == 0xAB

    def test_symbolic_byte_promotes_word(self):
        mem = SymbolicMemory(4096)
        mem.write(0x10, 0x11223344, 4)
        mem.write_byte(0x11, E.var("mb", 8))
        word = mem.read(0x10, 4)
        assert isinstance(word, E.BitVec)
        # Concrete bytes still recoverable.
        assert word.evaluate({E.var("mb", 8): 0x99}) == 0x11229944

    def test_symbolic_word_write_scatters(self):
        mem = SymbolicMemory(4096)
        v = E.var("mw", 32)
        mem.write(0, v, 4)
        b0 = mem.read_byte(0)
        assert isinstance(b0, E.BitVec) and b0.width == 8
        assert mem.symbolic_byte_count() == 4

    def test_bounds_checked(self):
        mem = SymbolicMemory(4096)
        with pytest.raises(VmError):
            mem.read(4096, 1)
        with pytest.raises(VmError):
            mem.write(4094, 0, 4)

    def test_concrete_bytes_rejects_symbolic(self):
        mem = SymbolicMemory(4096)
        mem.write_byte(5, E.var("cb", 8))
        with pytest.raises(VmError):
            mem.concrete_bytes(4, 4)

    @settings(max_examples=20, deadline=None)
    @given(ops=st.lists(st.tuples(st.integers(0, 1023),
                                  st.integers(0, 2**32 - 1),
                                  st.sampled_from([1, 2, 4])),
                        min_size=1, max_size=40))
    def test_property_matches_bytearray(self, ops):
        mem = SymbolicMemory(4096)
        shadow = bytearray(4096)
        for addr, value, size in ops:
            mem.write(addr, value, size)
            shadow[addr:addr + size] = (value & ((1 << (8 * size)) - 1)) \
                .to_bytes(size, "little")
        for addr, _, size in ops:
            expect = int.from_bytes(shadow[addr:addr + size], "little")
            assert mem.read(addr, size) == expect


DIFFERENTIAL_PROGRAMS = [
    """
    start:
        movi r1, 0x1234
        movi r2, 0x00FF
        and r3, r1, r2
        or r4, r1, r2
        xor r5, r3, r4
        halt r5
    """,
    """
    start:
        movi r1, 10
        movi r2, 0
    loop:
        add r2, r2, r1
        dec r1
        bne r1, r0, loop
        halt r2
    """,
    """
    start:
        movi r1, 0x800
        movi r2, 0xCAFEBABE
        sw r2, 0(r1)
        lbu r3, 1(r1)
        lb r4, 3(r1)
        add r5, r3, r4
        halt r5
    """,
    """
    start:
        movi r1, 97
        movi r2, 13
        divu r3, r1, r2
        remu r4, r1, r2
        mul r5, r3, r2
        add r5, r5, r4
        sub r5, r5, r1
        halt r5
    """,
]


class TestExecutorConcrete:
    @pytest.mark.parametrize("src", DIFFERENTIAL_PROGRAMS)
    def test_differential_vs_cpu(self, src):
        """Concrete programs: the symbolic executor must agree with the
        reference core exactly."""
        prog = assemble(src)
        cpu_exit = Cpu(prog).run()
        executor = SymbolicExecutor(prog, bridge=None)
        state = executor.make_initial_state()
        while state.is_active:
            executor.step(state)
        assert state.status == STATUS_HALTED
        assert state.halt_code == cpu_exit.code

    def test_illegal_opcode_detected(self):
        prog = assemble("start: .word 0xFC000000\n")
        executor = SymbolicExecutor(prog, bridge=None)
        state = executor.make_initial_state()
        executor.step(state)
        assert state.status == STATUS_ERROR
        assert executor.bugs[0].kind == "illegal-instruction"

    def test_oob_store_detected_with_backtrace(self):
        prog = assemble("""
        start:
            movi r1, 0x20000
            sw r0, 0(r1)
            halt r0
        """)
        executor = SymbolicExecutor(prog, bridge=None, ram_size=64 * 1024)
        state = executor.make_initial_state()
        while state.is_active:
            executor.step(state)
        bug = executor.bugs[0]
        assert bug.kind == "out-of-bounds-write"
        assert bug.backtrace  # recent control flow captured


class TestExecutorSymbolic:
    def _explore(self, src, **kw):
        prog = assemble(src)
        executor = SymbolicExecutor(prog, bridge=None, **kw)
        states = [executor.make_initial_state()]
        done = []
        while states:
            state = states.pop()
            if not state.is_active:
                done.append(state)
                continue
            outcome = executor.step(state)
            states.extend(outcome.forks)
            states.append(state) if state.is_active else done.append(state)
        return executor, done

    def test_fork_on_symbolic_branch(self):
        executor, done = self._explore("""
        start:
            sym r1
            movi r2, 100
            bltu r1, r2, small
            movi r3, 1
            halt r3
        small:
            movi r3, 2
            halt r3
        """)
        codes = sorted(s.halt_code for s in done
                       if s.status == STATUS_HALTED)
        assert codes == [1, 2]
        assert executor.sat_forks == 1

    def test_infeasible_branch_not_forked(self):
        executor, done = self._explore("""
        start:
            sym r1
            andi r1, r1, 0xF     ; r1 in [0, 15]
            movi r2, 100
            bltu r1, r2, small   ; always true
            movi r3, 1
            halt r3
        small:
            movi r3, 2
            halt r3
        """)
        codes = [s.halt_code for s in done if s.status == STATUS_HALTED]
        assert codes == [2]
        assert executor.sat_forks == 0

    def test_test_case_satisfies_path(self):
        executor, done = self._explore("""
        start:
            sym r1
            movi r2, 0x1337
            bne r1, r2, other
            movi r3, 0xAA
            halt r3
        other:
            movi r3, 0xBB
            halt r3
        """)
        match = [s for s in done if s.halt_code == 0xAA][0]
        model = executor.solver.check(match.constraints)
        assert model.is_sat
        value = list(model.model.values())[0]
        assert value == 0x1337

    def test_assert_counterexample(self):
        executor, done = self._explore("""
        start:
            sym r1
            andi r1, r1, 0xFF
            movi r2, 200
            sltu r3, r1, r2      ; claim: r1 < 200 ... falsifiable
            assert r3
            halt r0
        """)
        bug = executor.bugs[0]
        assert bug.kind == "assertion-failure"
        value = list(bug.test_case.values())[0]
        assert value & 0xFF >= 200

    def test_assume_prunes(self):
        executor, done = self._explore("""
        start:
            sym r1
            andi r1, r1, 0xFF
            movi r2, 10
            sltu r3, r1, r2
            assume r3            ; r1 < 10
            movi r2, 50
            bltu r1, r2, fine    ; must be true now
            halt r0
        fine:
            movi r3, 7
            halt r3
        """)
        codes = [s.halt_code for s in done if s.status == STATUS_HALTED]
        assert codes == [7]

    def test_symbolic_memory_index_oob_found(self):
        """A symbolic store index reaching past the buffer — the classic
        OOB write KLEE-style detection."""
        executor, done = self._explore("""
        start:
            sym r1
            movi r4, 0x3FFFF      ; up to 256K: beyond 64K RAM
            and r1, r1, r4
            movi r2, 0x1000
            add r2, r2, r1
            sw r0, 0(r2)
            halt r0
        """)
        # Performance policy picks one value; OOB only if that value is
        # out of range. Use solver to steer: constraint-free pick may or
        # may not be OOB, so accept either a bug or a clean halt but the
        # engine must not crash.
        assert done or executor.bugs


class TestConcretization:
    def _bridged(self, policy):
        class FakeHw:
            def __init__(self):
                self.log = []
            def read(self, addr):
                self.log.append(("r", addr))
                return 0x5A
            def write(self, addr, value):
                self.log.append(("w", addr, value))
            def irq_lines(self):
                return {}
            def step(self, cycles):
                pass
        solver = Solver()
        hw = FakeHw()
        return MmioBridge(hw, solver, policy), hw, solver

    def test_performance_pins_single_value(self):
        bridge, hw, solver = self._bridged(
            ConcretizationPolicy(PERFORMANCE))
        state = ExecState(memory=SymbolicMemory(4096))
        v = E.var("cz1", 32)
        state.add_constraint(E.ult(v, E.const(10, 32)))
        pairs = bridge.concretize(state, v, "test")
        assert len(pairs) == 1
        st_out, value = pairs[0]
        assert st_out is state and value < 10
        # pinned: the same value on re-query
        assert solver.eval_upto(v, state.constraints, 4) == [value]

    def test_completeness_forks_per_value(self):
        bridge, hw, solver = self._bridged(
            ConcretizationPolicy(COMPLETENESS, limit=8))
        state = ExecState(memory=SymbolicMemory(4096))
        v = E.var("cz2", 32)
        state.add_constraint(E.ult(v, E.const(3, 32)))
        pairs = bridge.concretize(state, v, "test")
        assert sorted(value for _, value in pairs) == [0, 1, 2]
        assert pairs[0][0] is state
        assert all(p[0] is not state for p in pairs[1:])
        assert bridge.forks_induced == 2

    def test_completeness_respects_limit(self):
        bridge, _, _ = self._bridged(ConcretizationPolicy(COMPLETENESS,
                                                          limit=4))
        state = ExecState(memory=SymbolicMemory(4096))
        v = E.var("cz3", 32)
        pairs = bridge.concretize(state, v, "test")
        assert len(pairs) == 4

    def test_concrete_passthrough(self):
        bridge, _, _ = self._bridged(ConcretizationPolicy(PERFORMANCE))
        state = ExecState(memory=SymbolicMemory(4096))
        assert bridge.concretize(state, 0x42, "x") == [(state, 0x42)]
        assert bridge.concretizations == 0

    def test_infeasible_raises(self):
        bridge, _, _ = self._bridged(ConcretizationPolicy(PERFORMANCE))
        state = ExecState(memory=SymbolicMemory(4096))
        v = E.var("cz4", 32)
        state.add_constraint(E.false())
        with pytest.raises(ConcretizationError):
            bridge.concretize(state, v, "test")

    def test_bad_policy_mode_rejected(self):
        with pytest.raises(ConcretizationError):
            ConcretizationPolicy("yolo")


class TestSearchers:
    def _states(self, n):
        return [ExecState(memory=SymbolicMemory(256)) for _ in range(n)]

    def test_dfs_picks_newest(self):
        s = make_searcher("dfs")
        a, b = self._states(2)
        s.add(a); s.add(b)
        assert s.select(None) is b

    def test_bfs_picks_oldest(self):
        s = make_searcher("bfs")
        a, b = self._states(2)
        s.add(a); s.add(b)
        assert s.select(None) is a

    def test_round_robin_rotates(self):
        s = make_searcher("round-robin", quantum=1)
        a, b, c = self._states(3)
        for x in (a, b, c):
            s.add(x)
        picks = []
        prev = None
        for _ in range(6):
            prev = s.select(prev)
            picks.append(prev)
        assert len(set(picks[:3])) == 3  # all states visited

    def test_affinity_sticks_to_previous(self):
        s = make_searcher("affinity")
        a, b = self._states(2)
        s.add(a); s.add(b)
        first = s.select(None)
        assert s.select(first) is first

    def test_irq_atomicity_overrides_heuristic(self):
        s = make_searcher("round-robin", quantum=1)
        a, b = self._states(2)
        a.in_irq = True
        s.add(a); s.add(b)
        assert s.select(a) is a  # must keep servicing the interrupt

    def test_random_deterministic_with_seed(self):
        picks1, picks2 = [], []
        for picks in (picks1, picks2):
            s = make_searcher("random", seed=99)
            states = self._states(5)
            for x in states:
                s.add(x)
            prev = None
            for _ in range(10):
                prev = s.select(prev)
                picks.append(states.index(prev))
        assert picks1 == picks2

    def test_unknown_searcher_rejected(self):
        with pytest.raises(VmError):
            make_searcher("astar")

    def test_empty_searcher_select_raises(self):
        with pytest.raises(VmError):
            make_searcher("dfs").select(None)


class TestStateFork:
    def test_fork_isolates_everything(self):
        state = ExecState(memory=SymbolicMemory(4096))
        state.set_reg(1, 0x42)
        state.memory.write(0, 0x11, 1)
        state.add_constraint(E.ult(E.var("fk", 8), E.const(5, 8)))
        child = state.fork()
        child.set_reg(1, 0x99)
        child.memory.write(0, 0x22, 1)
        child.add_constraint(E.true())
        assert state.reg(1) == 0x42
        assert state.memory.read(0, 1) == 0x11
        assert len(state.constraints) == 1
        assert child.parent_id == state.state_id
        assert child.depth == state.depth + 1

    def test_fork_clones_hw_snapshot(self):
        from repro.targets.base import HwSnapshot
        state = ExecState(memory=SymbolicMemory(256))
        state.hw_snapshot = HwSnapshot({"p": {"nets": {"a": 1},
                                              "memories": {}, "cycle": 0}})
        child = state.fork()
        child.hw_snapshot.states["p"]["nets"]["a"] = 2
        assert state.hw_snapshot.states["p"]["nets"]["a"] == 1
