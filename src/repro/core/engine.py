"""The analysis engine: Algorithm 1 with pluggable hardware-consistency
strategies.

The paper's Fig. 1 contrasts three ways of co-testing multiple firmware
paths against stateful hardware; all three share the same symbolic
execution loop and differ only in what happens when the scheduled state
changes and when states fork:

* :class:`SnapshotStrategy` — **HardSnap**: ``UpdateState(S_prev)`` /
  ``RestoreState(S)`` hardware context switches through the snapshot
  controller; forked states receive cloned, non-shared snapshots,
* :class:`RebootReplayStrategy` — **naive-and-consistent**: every switch
  reboots the device and replays the incoming state's entire MMIO
  interaction history (record-and-replay; §II's "extremely slow" case),
* :class:`SharedHardwareStrategy` — **naive-and-inconsistent**: states
  share the live hardware with no isolation; fast and wrong.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.shutdown import shutdown_requested
from repro.core.snapshot import SnapshotController
from repro.core.store import DEFAULT_FLATTEN_THRESHOLD, SnapshotStore
from repro.resilience import ResilienceStats
from repro.targets.base import HardwareTarget
from repro.vm.detectors import Bug, model_to_test_case
from repro.vm.executor import SymbolicExecutor
from repro.vm.forwarding import MmioBridge
from repro.vm.searchers import Searcher
from repro.vm.state import (STATUS_HALTED, ExecState)


# ---------------------------------------------------------------------------
# Consistency strategies
# ---------------------------------------------------------------------------

class ConsistencyStrategy:
    """Hooks invoked by the engine around scheduling and forking."""

    name = "abstract"

    def bind(self, controller: SnapshotController,
             bridge: MmioBridge) -> None:
        self.controller = controller
        self.bridge = bridge

    def on_start(self, initial: ExecState) -> None:
        self.controller.reset()

    def on_switch(self, previous: Optional[ExecState],
                  current: ExecState) -> None:
        raise NotImplementedError

    def on_fork(self, state: ExecState, forks: List[ExecState]) -> None:
        raise NotImplementedError

    def on_access(self, state: ExecState, op: str, addr: int,
                  value: int) -> None:
        """Called for every MMIO access of the scheduled state."""


class SnapshotStrategy(ConsistencyStrategy):
    """HardSnap: per-state hardware snapshots (Algorithm 1)."""

    name = "hardsnap"

    def on_switch(self, previous: Optional[ExecState],
                  current: ExecState) -> None:
        if previous is not None and previous.is_active:
            self.controller.update_state(previous)
        self.controller.restore_state(current)

    def on_fork(self, state: ExecState, forks: List[ExecState]) -> None:
        # "Resulting state flows with a unique and non-shared hardware
        # snapshot" (§IV-B): refresh the parent's snapshot from the live
        # hardware and hand clones to the children.
        snapshot = self.controller.save()
        state.hw_snapshot = snapshot
        for fork in forks:
            fork.hw_snapshot = snapshot.clone()


class RebootReplayStrategy(ConsistencyStrategy):
    """Naive-and-consistent: reboot + replay the MMIO history per switch."""

    name = "naive-consistent"

    def __init__(self, reboot_time_s: float = 0.25,
                 cycles_per_instruction: int = 1):
        self.reboot_time_s = reboot_time_s
        self.cpi = cycles_per_instruction
        #: state id -> [(op, addr, value, instruction_count)]
        self.traces: Dict[int, List[Tuple[str, int, int, int]]] = {}
        self.replayed_accesses = 0
        self.replay_divergences = 0
        self.reboots = 0

    def on_start(self, initial: ExecState) -> None:
        self.controller.reset()
        self.traces[initial.state_id] = []

    def on_switch(self, previous: Optional[ExecState],
                  current: ExecState) -> None:
        self._reboot()
        self._replay(current)

    def on_fork(self, state: ExecState, forks: List[ExecState]) -> None:
        trace = self.traces.get(state.state_id, [])
        for fork in forks:
            self.traces[fork.state_id] = list(trace)

    def on_access(self, state: ExecState, op: str, addr: int,
                  value: int) -> None:
        self.traces.setdefault(state.state_id, []).append(
            (op, addr, value, state.steps))

    def _reboot(self) -> None:
        self.controller.reset()
        # A device reboot is wall-clock expensive (Muench et al. report
        # multi-second resets for real boards; we default to 250 ms).
        self.controller.target.timer.add_fixed(self.reboot_time_s)
        self.reboots += 1

    def _replay(self, state: ExecState) -> None:
        """Re-execute the state's MMIO history against fresh hardware."""
        trace = self.traces.get(state.state_id, [])
        last_step = 0
        for op, addr, value, at_step in trace:
            gap = max(0, at_step - last_step) * self.cpi
            if gap:
                self.bridge.step_hardware(gap)
            last_step = at_step
            self.replayed_accesses += 1
            if op == "w":
                self.bridge.write(addr, value)
            else:
                got = self.bridge.read(addr)
                if got != value:
                    self.replay_divergences += 1
        tail = max(0, state.steps - last_step) * self.cpi
        if tail:
            self.bridge.step_hardware(tail)


class SharedHardwareStrategy(ConsistencyStrategy):
    """Naive-and-inconsistent: no isolation whatsoever."""

    name = "naive-inconsistent"

    def on_switch(self, previous: Optional[ExecState],
                  current: ExecState) -> None:
        pass  # hardware carries over: this is the bug the paper shows

    def on_fork(self, state: ExecState, forks: List[ExecState]) -> None:
        pass


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass
class CompletedPath:
    state_id: int
    status: str
    halt_code: Optional[int]
    steps: int
    depth: int
    test_case: Dict[str, int] = field(default_factory=dict)
    trace_marks: List[int] = field(default_factory=list)
    error: Optional[str] = None
    #: Fork-tree address of the finished state (see
    #: :attr:`~repro.vm.state.ExecState.lineage`); schedule-independent,
    #: the merge key for parallel runs.
    lineage: Tuple[int, ...] = ()


@dataclass
class AnalysisReport:
    strategy: str
    paths: List[CompletedPath] = field(default_factory=list)
    bugs: List[Bug] = field(default_factory=list)
    instructions: int = 0
    forks: int = 0
    max_live_states: int = 0
    coverage: int = 0
    modelled_time_s: float = 0.0
    host_time_s: float = 0.0
    snapshot_saves: int = 0
    snapshot_restores: int = 0
    #: Sum of full-image sizes over all saves (the naive storage cost).
    snapshot_logical_bits: int = 0
    #: Bits actually written to the content-addressed store.
    snapshot_stored_bits: int = 0
    #: Fraction of chunk lookups served by an already-stored chunk.
    snapshot_dedup_hit_rate: float = 0.0
    #: Deepest delta chain a restore had to walk.
    snapshot_chain_depth: int = 0
    reboots: int = 0
    replayed_accesses: int = 0
    mmio_accesses: int = 0
    stop_reason: str = "exhausted"
    #: Recovery events over the run (link retries, worker respawns, …).
    #: Deliberately absent from :meth:`verdict_summary` — recovery cost
    #: is schedule-dependent; verdicts are not.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)

    @property
    def halted_paths(self) -> List[CompletedPath]:
        return [p for p in self.paths if p.status == STATUS_HALTED]

    def halt_codes(self) -> Dict[int, int]:
        """Histogram of halt codes over completed paths (ground-truth
        comparison axis for the consistency experiment)."""
        out: Dict[int, int] = {}
        for p in self.halted_paths:
            if p.halt_code is not None:
                out[p.halt_code] = out.get(p.halt_code, 0) + 1
        return out

    def summary(self) -> str:
        return (f"[{self.strategy}] paths={len(self.paths)} "
                f"(halted={len(self.halted_paths)}) bugs={len(self.bugs)} "
                f"instr={self.instructions} forks={self.forks} "
                f"saves={self.snapshot_saves} restores={self.snapshot_restores} "
                f"dedup={self.snapshot_dedup_hit_rate:.0%} "
                f"reboots={self.reboots} "
                f"modelled={self.modelled_time_s:.4f}s "
                f"host={self.host_time_s:.3f}s stop={self.stop_reason}")

    def verdict_summary(self) -> str:
        """The schedule-independent verdicts of a run, as one canonical
        string: per-path outcomes keyed by fork lineage, bug sites,
        instruction/fork/coverage totals.

        Excludes everything legitimately schedule- or host-dependent —
        wall-clock time, snapshot traffic, raw state ids, solver-model
        test-case values. A parallel run merged from any worker count
        must produce this string byte-identical to the serial engine's
        (asserted by ``tests/test_parallel.py``).
        """
        paths = sorted(self.paths, key=lambda p: p.lineage)

        def _path(p: CompletedPath) -> str:
            where = ".".join(map(str, p.lineage)) if p.lineage else "root"
            out = f"{where}:{p.status}"
            if p.halt_code is not None:
                out += f":0x{p.halt_code:x}"
            return out

        bugs = ",".join(f"{b.kind}@0x{b.pc:x}" for b in
                        sorted(self.bugs, key=lambda b: (b.kind, b.pc)))
        return (f"[{self.strategy}] paths={len(self.paths)} "
                f"halted={len(self.halted_paths)} "
                f"instr={self.instructions} forks={self.forks} "
                f"coverage={self.coverage} stop={self.stop_reason} "
                f"verdicts=<{','.join(_path(p) for p in paths)}> "
                f"bugs=<{bugs}>")


@dataclass
class LeaseOutcome:
    """Result of :meth:`AnalysisEngine.run_lease`: one state executed
    until completion, its first fork event, or budget exhaustion."""

    state: ExecState
    executed: int = 0
    #: Children created by the fork event that ended the lease (empty
    #: when the state completed or paused).
    forks: List[ExecState] = field(default_factory=list)
    #: Set when the state finished (halted / errored / terminated).
    completed: Optional[CompletedPath] = None
    #: True when the lease stopped on the instruction budget with the
    #: state still active (its snapshot has been refreshed for re-lease).
    paused: bool = False


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class AnalysisEngine:
    """Algorithm 1: the main execution loop."""

    def __init__(self, executor: SymbolicExecutor, searcher: Searcher,
                 strategy: ConsistencyStrategy, target: HardwareTarget,
                 bridge: MmioBridge,
                 cycles_per_instruction: int = 1,
                 irq_poll_interval: int = 1,
                 store: Optional[SnapshotStore] = None,
                 flatten_threshold: int = DEFAULT_FLATTEN_THRESHOLD):
        self.executor = executor
        self.searcher = searcher
        self.strategy = strategy
        self.target = target
        self.bridge = bridge
        self.controller = SnapshotController(
            target, store=store, flatten_threshold=flatten_threshold)
        self.cpi = cycles_per_instruction
        self.irq_poll_interval = max(1, irq_poll_interval)
        strategy.bind(self.controller, bridge)
        self._wire_access_recording()

    def _wire_access_recording(self) -> None:
        """Route every MMIO access through the strategy's on_access hook
        (record-and-replay needs the trace)."""
        engine = self
        bridge = self.bridge
        original_read, original_write = bridge.read, bridge.write

        def read(addr: int) -> int:
            value = original_read(addr)
            if engine._scheduled is not None and not engine._replaying:
                engine.strategy.on_access(engine._scheduled, "r", addr, value)
            return value

        def write(addr: int, value: int) -> None:
            original_write(addr, value)
            if engine._scheduled is not None and not engine._replaying:
                engine.strategy.on_access(engine._scheduled, "w", addr, value)

        bridge.read = read  # type: ignore[method-assign]
        bridge.write = write  # type: ignore[method-assign]
        self._scheduled: Optional[ExecState] = None
        self._replaying = False
        # Batched-lane bookkeeping: the interrupt-poll phase accumulator
        # and the last lane the hardware was switched to.
        self._since_poll = 0
        self._lane_previous: Optional[ExecState] = None

    # -- batched lane execution --------------------------------------------------

    def _burst(self, state: ExecState, max_steps: int,
               finish_irq: bool = False):
        """Up to *max_steps* instructions on the scheduled state with the
        same per-instruction sequence as one :meth:`run` iteration
        (ServePendingInterrupt → StepInstruction → clock the hardware),
        executed inside the VM's tight block loop."""
        executor = self.executor
        bridge = self.bridge
        cpi = self.cpi
        interval = self.irq_poll_interval

        def pre_step(s: ExecState) -> None:
            self._since_poll += 1
            if self._since_poll >= interval:
                self._since_poll = 0
                executor.maybe_interrupt(s, any(bridge.irq_lines().values()))

        def post_step() -> None:
            bridge.step_hardware(cpi)

        self._scheduled = state
        try:
            return executor.step_block(state, max_steps, pre_step=pre_step,
                                       post_step=post_step,
                                       finish_irq=finish_irq)
        finally:
            self._scheduled = None

    def run_batch(self, states: List[ExecState], n: int):
        """One batched scheduling pass: evaluate up to *n* instructions
        on each of K forked snapshot lanes sharing this engine's program
        (predecode table, handler table, hardware bridge).

        Hardware consistency is per lane — the strategy context-switches
        between lanes exactly as the serial loop does between scheduled
        states, so every lane runs against its own snapshot. Returns the
        per-lane :class:`~repro.vm.executor.StepOutcome`s (forks and
        completions are the caller's to merge)."""
        outcomes = []
        previous = self._lane_previous
        for state in states:
            if not state.is_active:
                outcomes.append(None)
                continue
            if state is not previous:
                self._replaying = True
                try:
                    self.strategy.on_switch(previous, state)
                finally:
                    self._replaying = False
            previous = state
            outcomes.append(self._burst(state, n, finish_irq=len(states) > 1))
        self._lane_previous = previous
        return outcomes

    # -- main loop ---------------------------------------------------------------

    def run(self, initial: ExecState, max_instructions: int = 1_000_000,
            max_states: int = 4096, stop_after_bugs: int = 0,
            host_time_limit_s: float = 0.0,
            lane_width: int = 1, lane_steps: int = 1) -> AnalysisReport:
        """Algorithm 1. With the default ``lane_width=1, lane_steps=1``
        every scheduling pass runs one instruction on one state (the
        paper's loop). ``lane_steps=n`` amortizes scheduling overhead by
        letting the selected state run an n-instruction burst;
        ``lane_width=K`` additionally evaluates up to K live states per
        pass through :meth:`run_batch`. Verdicts of exhausted runs are
        identical across lane settings (every path still executes every
        one of its instructions against its own hardware snapshot);
        budget-limited runs may stop at different frontiers, exactly as
        different searchers do."""
        report = AnalysisReport(strategy=self.strategy.name)
        start = time.perf_counter()
        modelled_start = self.target.timer.total_s
        resilience0 = (self.target.resilience.as_dict()
                       if getattr(self.target, "resilience", None) else None)
        self.strategy.on_start(initial)
        self.searcher.add(initial)
        lane_width = max(1, lane_width)
        lane_steps = max(1, lane_steps)
        executed = 0
        self._since_poll = 0
        self._lane_previous = None
        while len(self.searcher):
            if shutdown_requested():
                report.stop_reason = "interrupted"
                break
            if executed >= max_instructions:
                report.stop_reason = "instruction-budget"
                break
            if stop_after_bugs and len(self.executor.bugs) >= stop_after_bugs:
                report.stop_reason = "bug-budget"
                break
            if host_time_limit_s and \
                    time.perf_counter() - start > host_time_limit_s:
                report.stop_reason = "host-timeout"
                break
            lanes = self.searcher.select_lanes(self._lane_previous,
                                               lane_width)
            burst = min(lane_steps, max_instructions - executed)
            for outcome, state in zip(self.run_batch(lanes, burst), lanes):
                if outcome is None:
                    continue
                executed += outcome.executed
                if outcome.forks:
                    self.strategy.on_fork(state, outcome.forks)
                    report.forks += len(outcome.forks)
                    for fork in outcome.forks:
                        if len(self.searcher) < max_states:
                            self.searcher.add(fork)
                report.max_live_states = max(report.max_live_states,
                                             len(self.searcher))
                if not state.is_active:
                    self.searcher.remove(state)
                    report.paths.append(self._finish_path(state))
        else:
            report.stop_reason = "exhausted"
        report.instructions = executed
        report.bugs = list(self.executor.bugs)
        report.coverage = len(self.executor.coverage)
        report.host_time_s = time.perf_counter() - start
        report.modelled_time_s = self.target.timer.total_s - modelled_start
        report.snapshot_saves = self.controller.stats.saves
        report.snapshot_restores = self.controller.stats.restores
        store_stats = self.controller.store.stats
        report.snapshot_logical_bits = store_stats.logical_bits
        report.snapshot_stored_bits = store_stats.stored_bits
        report.snapshot_dedup_hit_rate = store_stats.dedup_hit_rate
        report.snapshot_chain_depth = store_stats.max_chain_depth
        report.mmio_accesses = self.bridge.accesses
        if resilience0 is not None:
            report.resilience.merge(
                self.target.resilience.delta(resilience0))
        if isinstance(self.strategy, RebootReplayStrategy):
            report.reboots = self.strategy.reboots
            report.replayed_accesses = self.strategy.replayed_accesses
        return report

    # -- lease execution (the parallel runtime's unit of work) -------------

    def run_lease(self, state: ExecState,
                  max_instructions: int = 0) -> LeaseOutcome:
        """Execute ONE state until it completes, forks, or exhausts
        *max_instructions* (0 = unbounded).

        This is the engine's unit of work for the parallel coordinator:
        the same restore → poll-IRQ → step → fork/finish sequence as one
        :meth:`run` iteration, restricted to a single state. Fork events
        end the lease so the coordinator's searcher decides what runs
        next; a paused state has its snapshot refreshed so it can be
        re-leased anywhere.
        """
        outcome = LeaseOutcome(state)
        self._replaying = True
        try:
            self.strategy.on_switch(None, state)
        finally:
            self._replaying = False
        self._since_poll = 0
        while state.is_active:
            if max_instructions and outcome.executed >= max_instructions:
                self.controller.update_state(state)
                outcome.paused = True
                return outcome
            burst = (max_instructions - outcome.executed) \
                if max_instructions else 1_000_000
            step_outcome = self._burst(state, burst)
            outcome.executed += step_outcome.executed
            if step_outcome.forks:
                self.strategy.on_fork(state, step_outcome.forks)
                outcome.forks = step_outcome.forks
                return outcome
        outcome.completed = self._finish_path(state)
        return outcome

    def _finish_path(self, state: ExecState) -> CompletedPath:
        test_case: Dict[str, int] = {}
        if state.status == STATUS_HALTED and state.constraints:
            result = self.executor.solver.check(state.constraints)
            if result.is_sat:
                test_case = model_to_test_case(result.model)
        return CompletedPath(
            state_id=state.state_id,
            status=state.status,
            halt_code=state.halt_code,
            steps=state.steps,
            depth=state.depth,
            test_case=test_case,
            trace_marks=list(state.trace_marks),
            error=state.error,
            lineage=state.lineage,
        )
