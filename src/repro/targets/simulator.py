"""The simulator target (paper §III-A "Simulator Target", §III-C).

Hosts peripherals on the tree-walking :class:`Interpreter` backend — the
Verilator-process analogue — reached through a shared-memory remote
interface. Properties:

* **full visibility**: every internal net is inspectable at any time and
  VCD tracing can be attached (the reason multi-target orchestration
  transfers states *to* this target),
* **snapshot method**: CRIU-style process checkpoint. The controller
  flushes pending bus operations, freezes the process, and stores the
  image; we capture the canonical state (behaviourally identical) and
  charge a CRIU cost model — fixed freeze/dump overhead plus image size
  over storage bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.bus.transport import SHARED_MEMORY, Transport
from repro.errors import SnapshotError
from repro.hdl.ir import Design
from repro.sim.interpreter import Interpreter
from repro.sim.vcd import VcdWriter
from repro.targets.base import HardwareTarget, HwSnapshot

#: Effective simulation speed of the interpreted backend, cycles/second.
#: (Verilator on the paper's testbed reaches a few MHz on small designs;
#: our interpreter plays that role at its own scale.)
DEFAULT_SIM_CLOCK_HZ = 1e6


@dataclass(frozen=True)
class CriuModel:
    """Cost model for checkpoint/restore of the simulator process."""

    #: Freeze + dump fixed overhead (page-map walking, descriptors).
    checkpoint_base_s: float = 28e-3
    restore_base_s: float = 18e-3
    #: Resident image of the simulator process beyond design state.
    process_image_bytes: int = 6 * 1024 * 1024
    #: Persistent-storage streaming bandwidth.
    storage_bytes_per_s: float = 1.2e9

    def image_bytes(self, state_bits: int) -> int:
        return self.process_image_bytes + state_bits // 8

    def checkpoint_s(self, state_bits: int) -> float:
        return (self.checkpoint_base_s
                + self.image_bytes(state_bits) / self.storage_bytes_per_s)

    def restore_s(self, state_bits: int) -> float:
        return (self.restore_base_s
                + self.image_bytes(state_bits) / self.storage_bytes_per_s)


class SimulatorTarget(HardwareTarget):
    """Interpreter-backed target with full visibility and CRIU snapshots."""

    visibility = "full"

    def __init__(self, name: str = "simulator",
                 clock_hz: float = DEFAULT_SIM_CLOCK_HZ,
                 transport: Transport = SHARED_MEMORY,
                 criu: Optional[CriuModel] = None):
        super().__init__(name, clock_hz, transport)
        self.criu = criu or CriuModel()
        self.snapshots_taken = 0
        self.snapshots_restored = 0

    def _make_sim(self, design: Design) -> Interpreter:
        return Interpreter(design)

    # -- full-visibility extras ----------------------------------------------

    def attach_vcd(self, instance_name: str,
                   writer: Optional[VcdWriter] = None) -> VcdWriter:
        """Attach a VCD trace to one peripheral (simulator-only feature)."""
        instance = self._instance(instance_name)
        if writer is None:
            writer = VcdWriter()
        instance.sim.attach_vcd(writer)
        return writer

    def peek_memory(self, instance_name: str, memory: str, index: int) -> int:
        return self._instance(instance_name).sim.peek_memory(memory, index)

    # -- snapshotting -------------------------------------------------------------

    def save_snapshot(self) -> HwSnapshot:
        """Flush, freeze and checkpoint the whole simulator process."""
        states: Dict[str, dict] = {}
        bits = 0
        for name, instance in self.instances.items():
            # "Flush pending read/write operations": the BFM is idle
            # between transactions by construction; settle to be safe.
            instance.sim.settle()
            states[name] = instance.sim.save_state()
            bits += instance.state_bits
        cost = self.criu.checkpoint_s(bits)
        self.timer.add_fixed(cost)
        self.snapshots_taken += 1
        return HwSnapshot(states, method="criu", bits=bits,
                          modelled_cost_s=cost)

    def restore_snapshot(self, snapshot: HwSnapshot) -> None:
        missing = set(snapshot.states) - set(self.instances)
        if missing:
            raise SnapshotError(
                f"snapshot references unknown instances {sorted(missing)}")
        bits = 0
        for name, state in snapshot.states.items():
            instance = self.instances[name]
            instance.sim.load_state(state)
            bits += instance.state_bits
        cost = self.criu.restore_s(bits)
        self.timer.add_fixed(cost)
        self.snapshots_restored += 1
