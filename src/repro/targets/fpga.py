"""The FPGA emulation target (paper §III-A "FPGA Target").

Hosts peripherals on the compiled backend — fast, like fabric — with the
FPGA's honest limitations and HardSnap's two remedies:

* **visibility = pins**: only port nets can be peeked; internal state is
  reachable exclusively through the scan chain or the readback feature,
* **scan-chain snapshots**: every hosted design is instrumented by
  :func:`~repro.instrument.scan_chain.insert_scan_chain` at add time; the
  on-board :class:`~repro.targets.snapshot_ip.SnapshotIp` drives the
  chain and caches snapshot streams in SRAM (paper §III-C),
* **readback**: capture-only vendor path, priced by
  :class:`~repro.instrument.readback.ReadbackModel` (§V compares it
  against the scan chain).

The target is reached through the USB3 debugger transport (the modified
Inception debugger that translates USB commands to AXI transactions).

``scan_mode`` selects how the scan shift is *executed*:

* ``"shift"`` (default) models the chain rotation in bulk: the stream is
  packed/unpacked directly from the chain map while the scan ports are
  toggled once and the sim clock advances by the full chain length —
  O(chain elements) host work instead of one full design evaluation per
  chain bit, with the identical modelled shift cost,
* ``"shift-perbit"`` really shifts the chain bit by bit through the
  instrumented RTL — the reference mechanism, kept as the equivalence
  oracle for the bulk path (``tests/test_scan_bulk.py``),
* ``"functional"`` moves the state directly while charging identical
  modelled costs; benchmarks with thousands of context switches use it.
  ``tests/test_targets.py`` asserts the modes produce identical states
  and identical modelled costs.
"""

from __future__ import annotations

import json
import zlib
from typing import Callable, Dict, Optional, Tuple

from repro.bus.transport import USB3, Transport
from repro.errors import ScanShiftError, SnapshotError, TargetError
from repro.hdl.ir import Design
from repro.instrument.readback import ReadbackModel
from repro.instrument.scan_chain import ScanChainResult, insert_scan_chain
from repro.peripherals.catalog import PeripheralSpec
from repro.sim.compiler import CompiledSimulation
from repro.targets.base import HardwareTarget, HwSnapshot, PeripheralInstance
from repro.targets.snapshot_ip import SnapshotIp

DEFAULT_FPGA_CLOCK_HZ = 100e6

#: Whether newly built FPGA targets run hosted designs through the
#: :mod:`repro.opt` netlist optimizer before compiling — the synthesis
#: step of the flow.  Scan state, ports and observable behaviour are
#: preserved (enforced by the differential gate in
#: ``tests/test_opt_differential.py``), so this is on by default.
DEFAULT_OPT = True


class FpgaTarget(HardwareTarget):
    """Compiled-backend target with scan-chain snapshotting."""

    visibility = "pins"

    def __init__(self, name: str = "fpga",
                 clock_hz: float = DEFAULT_FPGA_CLOCK_HZ,
                 transport: Transport = USB3,
                 scan_mode: str = "shift",
                 sram_bits: Optional[int] = None,
                 readback: Optional[ReadbackModel] = None,
                 has_readback: bool = True,
                 scan_include: Optional[Tuple[str, ...]] = None,
                 sram_dedup: bool = False,
                 opt: bool = DEFAULT_OPT):
        super().__init__(name, clock_hz, transport)
        if scan_mode not in ("shift", "shift-perbit", "functional"):
            raise TargetError(f"unknown scan_mode {scan_mode!r}")
        self.scan_mode = scan_mode
        #: Run the dataflow optimizer over each hosted (instrumented)
        #: design before code generation.
        self.opt = opt
        #: When enabled, the snapshot IP stores delta-compressed streams:
        #: SRAM occupancy per snapshot is the chain footprint of the
        #: instances that changed since the previous capture (the shift
        #: itself still traverses — and is priced at — the full chain).
        self.sram_dedup = sram_dedup
        #: Optional sub-component scoping for the scan chain (paper
        #: §IV-A): only state under these hierarchical prefixes is
        #: snapshottable; None instruments the whole design.
        self.scan_include = scan_include
        self.ip = SnapshotIp(clock_hz, transport,
                             **({"sram_bits": sram_bits} if sram_bits else {}))
        self.readback_model = readback or ReadbackModel()
        self.has_readback = has_readback
        self.snapshots_taken = 0
        self.snapshots_restored = 0
        #: Per-instance canonical body (no cycle counter) at the last
        #: save/restore — the baseline the IP's delta streams diff
        #: against when ``sram_dedup`` is enabled.
        self._sram_baseline: Dict[str, dict] = {}

    # -- construction -------------------------------------------------------

    def _prepare_design(self, spec: PeripheralSpec) -> Tuple[Design, dict]:
        design = spec.elaborate()
        scan = insert_scan_chain(design, include=self.scan_include)
        return scan.design, {"scan": scan, "original": design}

    def _make_sim(self, design: Design) -> CompiledSimulation:
        return CompiledSimulation(design, opt=self.opt)

    # -- scan plumbing -----------------------------------------------------------

    def _chain(self, instance: PeripheralInstance) -> ScanChainResult:
        return instance.extra["scan"]

    # -- CRC-verified link (fault injection + bounded retransmit) -----------

    def _link_fault(self, instance: PeripheralInstance, operation: str,
                    state: dict) -> Optional[str]:
        """Model the scan stream crossing the CRC-framed debugger link.

        The canonical state is serialised into a frame, the injector may
        flip one bit of the *transmitted copy*, and the receiver's CRC32
        is checked against the sender's — a real end-to-end check, not a
        coin toss. Returns a fault description (CRC mismatch, dropped
        frame, stall) or None when the frame verified.
        """
        inj = self._injector
        site = f"scan_{operation}:{instance.name}"
        frame = json.dumps(state, sort_keys=True,
                           separators=(",", ":")).encode("ascii")
        sent_crc = zlib.crc32(frame)
        received = frame
        if inj.roll(f"{site}:corrupt", inj.plan.scan_corrupt_rate):
            flipped = bytearray(frame)
            bit = inj.draw(f"{site}:bit", len(flipped) * 8)
            flipped[bit // 8] ^= 1 << (bit % 8)
            received = bytes(flipped)
        if zlib.crc32(received) != sent_crc:
            return "CRC mismatch on received stream"
        if inj.roll(f"{site}:drop", inj.plan.scan_drop_rate):
            return "frame dropped by the link"
        if inj.roll(f"{site}:stall", inj.plan.scan_stall_rate):
            self.resilience.stalls += 1
            return "link stalled past the operation deadline"
        return None

    def _shift_verified(self, instance: PeripheralInstance, operation: str,
                        fn: Callable[[], Optional[dict]],
                        payload: Optional[dict] = None) -> Optional[dict]:
        """Run one scan operation with CRC verification and bounded
        retransmit + exponential backoff. Each retransmit re-runs the
        physical shift (a circular rotation preserves the state, so a
        re-shift is safe) and charges the full chain shift plus backoff
        to the modelled timer. Exhaustion raises
        :class:`~repro.errors.ScanShiftError` with context.
        """
        if self._injector is None:
            return fn()
        policy = self._retry_policy
        chain_bits = self._chain(instance).chain_length
        attempts = 0
        while True:
            attempts += 1
            result = fn()
            fault = self._link_fault(
                instance, operation,
                payload if payload is not None else (result or {}))
            if fault is None:
                return result
            if attempts > policy.max_link_retries:
                raise ScanShiftError(fault, instance=instance.name,
                                     operation=operation, attempts=attempts)
            backoff = policy.backoff_s(attempts - 1)
            self.timer.add_fixed(self.ip.shift_cost_s(chain_bits) + backoff)
            self.resilience.link_retries += 1
            self.resilience.backoff_s += backoff

    def _capture_instance(self, instance: PeripheralInstance) -> dict:
        return self._shift_verified(
            instance, "capture",
            lambda: self._capture_instance_raw(instance))

    def _capture_instance_raw(self, instance: PeripheralInstance) -> dict:
        """Scan the instance's state out (circular, state-preserving) and
        return the canonical state dict."""
        scan = self._chain(instance)
        sim = instance.sim
        if self.scan_mode == "functional":
            state = self._strip_scan_artifacts(instance, sim.save_state())
            if self.scan_include is not None:
                # Scoped chain: only chain-covered elements (plus pins)
                # are snapshottable, exactly as in shift mode.
                chain_nets = {e.name for e in scan.elements
                              if e.kind == "net"}
                chain_mems = {e.name for e in scan.elements
                              if e.kind == "mem"}
                pin_names = {n.name for n in
                             instance.extra["original"].inputs}
                state = {
                    "cycle": state["cycle"],
                    "nets": {k: v for k, v in state["nets"].items()
                             if k in chain_nets or k in pin_names},
                    "memories": {k: v for k, v in state["memories"].items()
                                 if k in chain_mems},
                }
        elif self.scan_mode == "shift-perbit":
            length = scan.chain_length
            stream = 0
            sim.poke("scan_enable", 1)
            for k in range(length):
                bit = sim.peek("scan_out")
                stream |= bit << k
                sim.poke("scan_in", bit)  # circular: preserve the state
                sim.step()
            sim.poke("scan_enable", 0)
            nets, mems = scan.unpack(stream)
            state = self._canonical_from_chain(instance, nets, mems)
        else:  # "shift": bulk rotation fast path
            nets, mems = self._read_chain(instance)
            # A circular rotation returns every chain element to its
            # original value; what remains visible is the port traffic
            # and the elapsed time. Reproduce exactly that: toggle the
            # scan ports once, leave the last rotated bit (the stream
            # MSB = the first element's MSB) on scan_in, and advance the
            # clock by the full chain length.
            sim.poke("scan_enable", 1)
            sim.poke("scan_in", self._stream_msb(scan, nets, mems))
            sim.cycle += scan.chain_length
            sim.state_version += 1
            sim.poke("scan_enable", 0)
            state = self._canonical_from_chain(instance, nets, mems)
        return state

    @staticmethod
    def _read_chain(instance: PeripheralInstance) -> Tuple[dict, dict]:
        """Chain element values straight off the live simulation, in the
        same ``(nets, mems)`` shape :meth:`ScanChainResult.unpack` yields."""
        scan: ScanChainResult = instance.extra["scan"]
        sim = instance.sim
        nets: Dict[str, int] = {}
        mems: Dict[str, dict] = {}
        for element in scan.elements:
            if element.kind == "net":
                nets[element.name] = sim.values[element.name]
            else:
                mems.setdefault(element.name, {})[element.word] = \
                    sim.memories[element.name][element.word]
        return nets, mems

    @staticmethod
    def _stream_msb(scan: ScanChainResult, nets: dict, mems: dict) -> int:
        """Bit ``chain_length - 1`` of the packed stream — the last bit a
        per-bit shift drives onto ``scan_in``. Per the pack convention
        (bit 0 = LSB of the last element) this is the first element's MSB."""
        first = scan.elements[0]
        value = (nets[first.name] if first.kind == "net"
                 else mems[first.name][first.word])
        return (value >> (first.width - 1)) & 1

    def _strip_scan_artifacts(self, instance: PeripheralInstance,
                              state: dict) -> dict:
        """Drop instrumentation-only elements so the canonical state is
        expressed purely in terms of the original design — the form every
        target understands (needed for cross-target transfer)."""
        original: Design = instance.extra["original"]
        return {
            "cycle": state["cycle"],
            "nets": {k: v for k, v in state["nets"].items()
                     if k in original.nets},
            "memories": {k: v for k, v in state["memories"].items()
                         if k in original.memories},
        }

    def _load_instance(self, instance: PeripheralInstance, state: dict) -> None:
        self._shift_verified(
            instance, "load",
            lambda: self._load_instance_raw(instance, state),
            payload=state)

    def _load_instance_raw(self, instance: PeripheralInstance,
                           state: dict) -> None:
        scan = self._chain(instance)
        sim = instance.sim
        if self.scan_mode == "functional":
            sim.load_state(state)
            return
        if self.scan_mode == "shift-perbit":
            nets = {e.name: state["nets"][e.name]
                    for e in scan.elements if e.kind == "net"}
            mems = {name: state["memories"][name] for name in
                    {e.name for e in scan.elements if e.kind == "mem"}}
            stream = scan.pack(nets, mems)
            length = scan.chain_length
            sim.poke("scan_enable", 1)
            for k in range(length):
                sim.poke("scan_in", (stream >> k) & 1)
                sim.step()
            sim.poke("scan_enable", 0)
        else:  # "shift": bulk load fast path
            sim.poke("scan_enable", 1)
            for element in scan.elements:
                if element.kind == "net":
                    mask = sim.design.nets[element.name].mask
                    sim.values[element.name] = \
                        state["nets"][element.name] & mask
                else:
                    mem = sim.design.memories[element.name]
                    sim.memories[element.name][element.word] = \
                        state["memories"][element.name][element.word] \
                        & mem.mask
            sim.state_version += 1
            # The per-bit shift ends with the stream's final bit on
            # scan_in: the first element's (target-value) MSB.
            first = scan.elements[0]
            target_nets = {first.name: state["nets"].get(first.name, 0)}
            target_mems = ({first.name:
                            {first.word:
                             state["memories"][first.name][first.word]}}
                           if first.kind == "mem" else {})
            sim.poke("scan_in",
                     self._stream_msb(scan, target_nets, target_mems))
            sim.poke("scan_enable", 0)
        # Input pins are environment, not chain state: re-drive them.
        for net in instance.design.inputs:
            if net.name in state["nets"] and net.name not in (
                    "scan_enable", "scan_in"):
                sim.poke(net.name, state["nets"][net.name])
        sim.cycle = int(state.get("cycle", sim.cycle))

    def _canonical_from_chain(self, instance: PeripheralInstance,
                              nets: dict, mems: dict) -> dict:
        """Build a :meth:`BaseSimulation.save_state`-shaped dict from
        unpacked chain values plus pin levels, expressed purely in terms
        of the original (uninstrumented) design."""
        sim = instance.sim
        original: Design = instance.extra["original"]
        state_nets = dict(nets)
        for net in original.inputs:
            state_nets[net.name] = sim.peek(net.name)  # pins are visible
        memories = {}
        for name, words in mems.items():
            depth = original.memories[name].depth
            memories[name] = [words.get(i, 0) for i in range(depth)]
        return {"cycle": sim.cycle, "nets": state_nets, "memories": memories}

    # -- snapshotting -------------------------------------------------------------------

    def save_snapshot(self) -> HwSnapshot:
        """Scan all hosted chains into the snapshot SRAM (daisy-chained:
        costs are summed).

        The modelled cost always covers a full-chain rotation — a scan
        shift traverses every flip-flop no matter how few changed. In
        shift mode the capture mechanism also physically re-runs per
        save; functional mode reuses cached canonical states for
        instances whose sim state is untouched (identical content, same
        modelled cost).
        """
        self._check_link("save")
        states, dirty = self.capture_states(
            force_capture=self.scan_mode in ("shift", "shift-perbit"))
        total_bits = sum(self._chain(inst).chain_length
                         for inst in self.instances.values())
        stored_bits = None
        if self.sram_dedup:
            # Content-based delta: lockstep time moves every cycle
            # counter, so version-dirty overstates what actually needs
            # storing — diff the register content itself.
            changed = self._sram_changed(states)
            stored_bits = sum(self._chain(self.instances[name]).chain_length
                              for name in changed)
        slot, cost = self.ip.save(total_bits, stored_bits=stored_bits)
        self.timer.add_fixed(cost)
        self.snapshots_taken += 1
        snapshot = HwSnapshot(states, method="scan", bits=total_bits,
                              modelled_cost_s=cost, snapshot_id=slot,
                              dirty=dirty)
        if self._injector is not None:
            snapshot.seal()
        self._mark_verified(snapshot)
        return snapshot

    def restore_snapshot(self, snapshot: HwSnapshot) -> None:
        missing = set(snapshot.states) - set(self.instances)
        if missing:
            raise SnapshotError(
                f"snapshot references unknown instances {sorted(missing)}")
        self._check_link("restore")
        self._verify_integrity(snapshot)
        total_bits = 0
        for name, state in snapshot.states.items():
            instance = self.instances[name]
            self._load_instance(instance, state)
            total_bits += self._chain(instance).chain_length
        cost = self.ip.restore(snapshot.snapshot_id, total_bits)
        self.timer.add_fixed(cost)
        self.snapshots_restored += 1
        self._note_restored(snapshot)
        self._mark_verified(snapshot)
        if self.sram_dedup:
            self._sram_changed(snapshot.states)  # re-baseline

    def _sram_changed(self, states: Dict[str, dict]) -> list:
        """Instances whose canonical body differs from the SRAM delta
        baseline; updates the baseline to *states*."""
        changed = []
        for name, state in states.items():
            body = {k: v for k, v in state.items() if k != "cycle"}
            if self._sram_baseline.get(name) != body:
                changed.append(name)
                self._sram_baseline[name] = body
        return changed

    # -- readback -------------------------------------------------------------------------

    def readback_snapshot(self) -> HwSnapshot:
        """Capture-only snapshot through the vendor readback feature.

        Only available when the modelled device has readback
        (``has_readback``). The values are read directly — modelling the
        hardware feature, which bypasses the RTL — and the cost comes from
        the frame/bandwidth model.
        """
        if not self.has_readback:
            raise TargetError(
                f"{self.name}: device has no readback capability")
        states: Dict[str, dict] = {}
        bits = 0
        for name, instance in self.instances.items():
            # Canonical (instrumentation-free) form, like the scan paths:
            # readback snapshots are transferable and store-dedupable.
            states[name] = self._strip_scan_artifacts(
                instance, instance.sim.save_state())
            bits += instance.state_bits
        cost = self.readback_model.capture_latency_s(bits)
        self.timer.add_fixed(cost)
        return HwSnapshot(states, method="readback", bits=bits,
                          modelled_cost_s=cost)
