"""Shared static analyses over an elaborated design.

All lint rules work from one :class:`LintContext`: per-process read/write
sets, bit-precise write masks, definite-assignment masks (for latch
inference), gate signatures (for mutual-exclusion reasoning such as
``scan_enable`` gating), reader counts and reset coverage. Computing these
once keeps each rule a few lines and the whole lint pass O(design).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.hdl import ir
from repro.lint.framework import Diagnostic, LintConfig

#: Local (unqualified) names treated as reset signals.
_RESET_NAMES = frozenset({
    "rst", "reset", "arst", "areset", "nrst", "nreset",
    "rst_n", "rstn", "reset_n", "resetn", "arst_n", "arstn",
})


def _is_reset_name(name: str) -> bool:
    return name.split(".")[-1].lower() in _RESET_NAMES


def _merge_or(into: Dict[str, int], frm: Dict[str, int]) -> None:
    for name, mask in frm.items():
        into[name] = into.get(name, 0) | mask


def _merge_and(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    return {name: a[name] & b[name] for name in a.keys() & b.keys()
            if a[name] & b[name]}


def _case_is_full(stmt: ir.SCase) -> bool:
    """Decide (exactly) whether a case covers every subject value.

    Labels are ``(match, care)`` cubes: a subject value hits a label when
    ``value & care == match``. Coverage is checked by recursive care-bit
    elimination — split on one cared bit, keep only the labels consistent
    with each polarity, and require both halves to be covered. Labels
    with an empty care mask match everything, which both terminates the
    recursion and prunes aggressively, so wide subjects (the old
    implementation gave up above 12 bits) are decided exactly.
    """
    labels = [lab for item in stmt.items for lab in item.labels]
    mask = (1 << stmt.subject.width) - 1
    return _labels_cover([(match & mask, care & mask)
                          for match, care in labels])


def _labels_cover(labels: List[Tuple[int, int]]) -> bool:
    if not labels:
        return False
    cared = 0
    for match, care in labels:
        if care == 0:
            return True  # wildcard cube matches every value
        cared |= care
    # Split on the lowest bit any remaining label cares about.
    bit = cared & -cared
    for polarity in (0, bit):
        subset = [(match & ~bit, care & ~bit)
                  for match, care in labels
                  if not (care & bit) or (match & bit) == polarity]
        if not _labels_cover(subset):
            return False
    return True


def _assign_masks(stmts) -> Tuple[Dict[str, int], Dict[str, int], Set[str]]:
    """(definite, maybe) per-net write masks and written-memory names.

    *definite* holds bits written on every path through *stmts*; *maybe*
    holds bits written on at least one path. A dynamically indexed bit
    write contributes its net's full mask to *maybe* only.
    """
    definite: Dict[str, int] = {}
    maybe: Dict[str, int] = {}
    mems: Set[str] = set()
    for stmt in stmts:
        if isinstance(stmt, ir.SAssign):
            for lv in ir._leaf_lvalues(stmt.target):
                if isinstance(lv, ir.LNet):
                    if lv.hi is None:
                        mask = lv.net.mask
                    else:
                        mask = ((1 << (lv.hi - lv.lo + 1)) - 1) << lv.lo
                    definite[lv.net.name] = definite.get(lv.net.name, 0) | mask
                    maybe[lv.net.name] = maybe.get(lv.net.name, 0) | mask
                elif isinstance(lv, ir.LNetDyn):
                    maybe[lv.net.name] = maybe.get(lv.net.name, 0) | lv.net.mask
                elif isinstance(lv, ir.LMem):
                    mems.add(lv.memory.name)
        elif isinstance(stmt, ir.SIf):
            d1, m1, mm1 = _assign_masks(stmt.then)
            d2, m2, mm2 = _assign_masks(stmt.other)
            _merge_or(definite, _merge_and(d1, d2))
            _merge_or(maybe, m1)
            _merge_or(maybe, m2)
            mems |= mm1 | mm2
        elif isinstance(stmt, ir.SCase):
            branches = [item.body for item in stmt.items]
            if stmt.default or _case_is_full(stmt):
                if stmt.default:
                    # A full case without a default has no reachable
                    # default branch — folding the empty list in would
                    # wipe every definite assignment.
                    branches.append(stmt.default)
                branch_defs = None
                for body in branches:
                    d, m, mm = _assign_masks(body)
                    branch_defs = d if branch_defs is None else _merge_and(
                        branch_defs, d)
                    _merge_or(maybe, m)
                    mems |= mm
                if branch_defs:
                    _merge_or(definite, branch_defs)
            else:
                for body in branches + [stmt.default]:
                    _, m, mm = _assign_masks(body)
                    _merge_or(maybe, m)
                    mems |= mm
    return definite, maybe, mems


def _gate_signature(stmts) -> Optional[Tuple[str, bool]]:
    """Recognise a process of the form ``if (en) ...`` / ``if (!en) ...``.

    Returns ``(net_name, polarity)`` when the whole body is guarded by a
    single 1-bit net, else None. Used to prove two writers of the same net
    are mutually exclusive (e.g. scan-shift vs. functional logic).
    """
    if len(stmts) != 1 or not isinstance(stmts[0], ir.SIf):
        return None
    guard = stmts[0]
    if guard.other:
        return None
    cond = guard.cond
    if isinstance(cond, ir.Ref) and cond.net.width == 1:
        return cond.net.name, True
    if (isinstance(cond, ir.Unary) and cond.op == "!"
            and isinstance(cond.operand, ir.Ref)):
        return cond.operand.net.name, False
    return None


def _collect_assigns(stmts, into: List[ir.SAssign]) -> None:
    for stmt in ir._walk_stmts(stmts):
        if isinstance(stmt, ir.SAssign):
            into.append(stmt)


@dataclass
class BlockInfo:
    """Pre-digested view of one process for the rules."""

    kind: str                    # "comb" | "seq" | "init"
    index: int
    name: str
    line: int
    stmts: list
    reads: frozenset
    writes: frozenset            # net and memory names
    write_masks: Dict[str, int]  # net -> bits possibly written
    definite_masks: Dict[str, int]
    mem_writes: frozenset
    assigns: List[ir.SAssign]
    gate: Optional[Tuple[str, bool]] = None
    clock: Optional[str] = None
    areset: Optional[str] = None

    @property
    def label(self) -> str:
        return self.name or f"{self.kind}#{self.index}"


def _block_info(kind: str, index: int, name: str, line: int, stmts,
                clock: Optional[str] = None,
                areset: Optional[str] = None) -> BlockInfo:
    reads, writes = ir.stmt_reads_writes(stmts)
    definite, maybe, mems = _assign_masks(stmts)
    assigns: List[ir.SAssign] = []
    _collect_assigns(stmts, assigns)
    return BlockInfo(kind, index, name, line, stmts,
                     frozenset(reads), frozenset(writes),
                     maybe, definite, frozenset(mems), assigns,
                     gate=_gate_signature(stmts), clock=clock, areset=areset)


@dataclass
class LintContext:
    """Everything a rule needs: the design, the config, and the analyses."""

    design: ir.Design
    config: LintConfig
    comb: List[BlockInfo] = field(default_factory=list)
    seq: List[BlockInfo] = field(default_factory=list)
    init: List[BlockInfo] = field(default_factory=list)
    #: name -> number of reading processes (clock/reset edges count).
    readers: Dict[str, int] = field(default_factory=dict)
    #: Names of nets treated as resets (async reset nets + rst-like inputs).
    reset_nets: Set[str] = field(default_factory=set)
    #: State nets assigned under a reset condition somewhere.
    reset_covered: Set[str] = field(default_factory=set)
    #: Nets written by any init block.
    init_written: Set[str] = field(default_factory=set)
    #: Lazy caches for the dataflow-backed rules (repro.opt analyses).
    _const_env: Optional[dict] = field(default=None, repr=False)
    _live_cache: Dict[bool, object] = field(default_factory=dict, repr=False)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(cls, design: ir.Design, config: LintConfig) -> "LintContext":
        ctx = cls(design, config)
        for i, block in enumerate(design.comb_blocks):
            ctx.comb.append(_block_info(
                "comb", i, block.name, getattr(block, "line", 0), block.stmts))
        for i, block in enumerate(design.seq_blocks):
            ctx.seq.append(_block_info(
                "seq", i, block.name, getattr(block, "line", 0), block.stmts,
                clock=block.clock.name,
                areset=block.areset.name if block.areset else None))
        for i, block in enumerate(design.init_blocks):
            info = _block_info("init", i, f"initial#{i}", 0, block.stmts)
            ctx.init.append(info)
            ctx.init_written |= set(info.write_masks) | set(info.mem_writes)
        ctx._index_readers()
        ctx._find_resets()
        return ctx

    def _index_readers(self) -> None:
        for info in self.comb + self.seq + self.init:
            for name in info.reads:
                self.readers[name] = self.readers.get(name, 0) + 1
        for info in self.seq:
            for name in (info.clock, info.areset):
                if name:
                    self.readers[name] = self.readers.get(name, 0) + 1

    def _find_resets(self) -> None:
        for info in self.seq:
            if info.areset:
                self.reset_nets.add(info.areset)
        for net in self.design.inputs:
            if _is_reset_name(net.name):
                self.reset_nets.add(net.name)
        if not self.reset_nets:
            return
        for info in self.seq:
            self._walk_reset(info.stmts, under_reset=False)

    def _walk_reset(self, stmts, under_reset: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ir.SAssign):
                if under_reset:
                    for lv in ir._leaf_lvalues(stmt.target):
                        if isinstance(lv, (ir.LNet, ir.LNetDyn)):
                            self.reset_covered.add(lv.net.name)
                        elif isinstance(lv, ir.LMem):
                            self.reset_covered.add(lv.memory.name)
            elif isinstance(stmt, ir.SIf):
                guarded = under_reset or bool(
                    ir.expr_reads(stmt.cond, set()) & self.reset_nets)
                self._walk_reset(stmt.then, guarded)
                self._walk_reset(stmt.other, guarded)
            elif isinstance(stmt, ir.SCase):
                for item in stmt.items:
                    self._walk_reset(item.body, under_reset)
                self._walk_reset(stmt.default, under_reset)

    # -- dataflow analyses (shared by the df-* rules) ---------------------------

    def constants(self) -> dict:
        """Forward constant propagation result (net -> BitsVal), cached."""
        if self._const_env is None:
            from repro.opt.dataflow import constant_map
            self._const_env = constant_map(self.design)
        return self._const_env

    def liveness(self, include_state_sinks: bool = True):
        """Backward bit-liveness result (:class:`repro.opt.liveness.LiveSets`),
        cached per sink configuration."""
        if include_state_sinks not in self._live_cache:
            from repro.opt.liveness import live_masks
            self._live_cache[include_state_sinks] = live_masks(
                self.design, include_state_sinks=include_state_sinks)
        return self._live_cache[include_state_sinks]

    # -- lookups ---------------------------------------------------------------

    def net_line(self, name: str) -> Optional[int]:
        net = self.design.nets.get(name)
        if net is not None and net.line:
            return net.line
        mem = self.design.memories.get(name)
        if mem is not None and mem.line:
            return mem.line
        return None

    def diag(self, rule_id: str, severity: str, message: str,
             subject: str = "", line: Optional[int] = None) -> Diagnostic:
        if line is None and subject:
            line = self.net_line(subject)
        return Diagnostic(rule=rule_id, severity=severity, message=message,
                          subject=subject, design=self.design.name,
                          source_file=self.design.source_file,
                          line=line or None)


# ---------------------------------------------------------------------------
# Expression width estimation (for the truncation rule)
# ---------------------------------------------------------------------------

#: Operators whose result keeps the left operand's significant width.
_LEFT_WIDTH_OPS = frozenset({"/", ">>", ">>>", "<<"})
_BOOL_OPS = frozenset({"==", "!=", "<", "<=", ">", ">=", "&&", "||"})


def significant_width(expr: ir.Expr) -> int:
    """Bits the value of *expr* can actually occupy.

    Verilog's context rules widen unsized literals to 32 bits, which makes
    the *declared* width of almost every RHS 32; warning on that would be
    pure noise. This computes the semantically meaningful width instead:
    constants contribute their magnitude, wrap-around arithmetic keeps its
    operand width (``count + 1`` is idiomatic, not a truncation), ``&``
    narrows, concats and comparisons are exact.
    """
    if isinstance(expr, ir.Const):
        return max(1, expr.value.bit_length())
    if isinstance(expr, ir.Ref):
        return expr.net.width
    if isinstance(expr, ir.MemRead):
        return expr.memory.width
    if isinstance(expr, ir.Slice):
        return expr.hi - expr.lo + 1
    if isinstance(expr, ir.DynBit):
        return 1
    if isinstance(expr, ir.Unary):
        if expr.op in ("~", "-", "+"):
            return significant_width(expr.operand)
        return 1  # reductions and !
    if isinstance(expr, ir.Binary):
        if expr.op in _BOOL_OPS:
            return 1
        left = significant_width(expr.left)
        if expr.op in _LEFT_WIDTH_OPS:
            return left
        right = significant_width(expr.right)
        if expr.op == "&":
            return min(left, right)
        return max(left, right)
    if isinstance(expr, ir.Ternary):
        return max(significant_width(expr.then),
                   significant_width(expr.other))
    if isinstance(expr, ir.Concat):
        return sum(p.width for p in expr.parts)
    return expr.width


def lvalue_width(lv: ir.LValue) -> int:
    return lv.width


def strongly_connected_components(
        succ: Dict[int, Set[int]], count: int) -> List[List[int]]:
    """Iterative Tarjan SCC over nodes ``0..count-1``."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in range(count):
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(succ.get(node, ()))
            for k in range(child_i, len(children)):
                child = children[k]
                if child not in index_of:
                    work[-1] = (node, k + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if advanced:
                continue
            if low[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
