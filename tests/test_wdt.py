"""Watchdog timer peripheral tests + the starvation vulnerability."""

import pytest

from repro import HardSnapSession
from repro.bus import Axi4LiteMaster
from repro.firmware import WDT_BASE, vuln_wdt_starvation
from repro.peripherals import catalog, wdt
from repro.sim import CompiledSimulation


def _boot():
    sim = CompiledSimulation(catalog.WDT.elaborate())
    sim.poke("rst", 1); sim.step(2); sim.poke("rst", 0); sim.step()
    return sim, Axi4LiteMaster(sim)


class TestWatchdogRtl:
    def test_counts_down_and_barks(self):
        sim, bus = _boot()
        bus.write(wdt.REGISTERS["LOAD"], 10)
        bus.write(wdt.REGISTERS["CTRL"], wdt.CTRL_EN)
        assert sim.peek("wdt_reset") == 0
        sim.step(12)
        assert sim.peek("wdt_reset") == 1
        st, _ = bus.read(wdt.REGISTERS["STATUS"])
        assert st & wdt.STATUS_BARKED

    def test_feed_reloads(self):
        sim, bus = _boot()
        bus.write(wdt.REGISTERS["LOAD"], 30)
        bus.write(wdt.REGISTERS["CTRL"], wdt.CTRL_EN)
        for _ in range(5):
            sim.step(15)
            bus.write(wdt.REGISTERS["FEED"], wdt.FEED_MAGIC)
        assert sim.peek("wdt_reset") == 0  # kept alive across 75+ cycles

    def test_bad_feed_counted_and_ignored(self):
        sim, bus = _boot()
        bus.write(wdt.REGISTERS["LOAD"], 100)
        bus.write(wdt.REGISTERS["CTRL"], wdt.CTRL_EN)
        v1, _ = bus.read(wdt.REGISTERS["VALUE"])
        bus.write(wdt.REGISTERS["FEED"], 0x12)   # wrong magic
        v2, _ = bus.read(wdt.REGISTERS["VALUE"])
        assert v2 < v1  # no reload happened
        st, _ = bus.read(wdt.REGISTERS["STATUS"])
        assert (st >> 8) & 0xFF == 1

    def test_lock_is_write_once(self):
        sim, bus = _boot()
        bus.write(wdt.REGISTERS["LOAD"], 50)
        bus.write(wdt.REGISTERS["CTRL"], wdt.CTRL_EN | wdt.CTRL_LOCK)
        # Attempts to disable or retune after LOCK are ignored.
        bus.write(wdt.REGISTERS["CTRL"], 0)
        bus.write(wdt.REGISTERS["LOAD"], 0xFFFF)
        ctrl, _ = bus.read(wdt.REGISTERS["CTRL"])
        load, _ = bus.read(wdt.REGISTERS["LOAD"])
        assert ctrl & wdt.CTRL_EN
        assert load == 50

    def test_bark_clears_write_one(self):
        sim, bus = _boot()
        bus.write(wdt.REGISTERS["LOAD"], 3)
        bus.write(wdt.REGISTERS["CTRL"], wdt.CTRL_EN)
        sim.step(6)
        assert sim.peek("wdt_reset") == 1
        bus.write(wdt.REGISTERS["STATUS"], 1)
        assert sim.peek("wdt_reset") == 0


class TestWdtStarvation:
    def test_engine_finds_the_threshold(self):
        session = HardSnapSession(vuln_wdt_starvation(),
                                  [(catalog.WDT, WDT_BASE)],
                                  scan_mode="functional")
        report = session.run(max_instructions=500_000)
        assert report.bugs and report.halted_paths
        bad = {list(b.test_case.values())[0] & 0x1F for b in report.bugs}
        good = {list(p.test_case.values())[0] & 0x1F
                for p in report.halted_paths}
        # A clean threshold: every starving length exceeds every safe one.
        assert min(bad) > max(good)
        # The witness carries the hardware's view: the dog barked.
        hw = report.bugs[0].hw_snapshot.states["wdt"]["nets"]
        assert hw["barked"] == 1
        assert hw["locked"] == 1  # and it could not have been disabled
