"""E8 — whole-design vs subsystem snapshotting on a composed SoC.

Paper §I: "HardSnap can be either used for testing the whole design or
only a subsystem. We believe this would facilitate its integration in a
product development flow where components and firmware are built
concurrently."

We compose a 4-peripheral SoC behind one AXI interconnect (generated
RTL), then compare the scan chain over the whole design against chains
scoped (``include=``) to each subsystem: chain length, modelled snapshot
latency, and the guarantee that a subsystem chain equals the standalone
peripheral's state size (nothing leaks in, nothing is missed).
"""

from benchmarks.conftest import emit
from repro.analysis import format_si_time, format_table
from repro.instrument import insert_scan_chain
from repro.peripherals import catalog
from repro.peripherals.soc import SocSpec
from repro.targets.snapshot_ip import SnapshotIp
from repro.bus.transport import USB3

SLAVES = [catalog.TIMER, catalog.GPIO, catalog.UART, catalog.AES128]


def test_soc_subsystem_snapshotting(benchmark):
    def run():
        soc = SocSpec(SLAVES, name="soc4")
        design = soc.elaborate()
        ip = SnapshotIp(100e6, USB3)
        rows = []
        whole = insert_scan_chain(design)
        rows.append(("whole design", whole.chain_length,
                     ip.shift_cost_s(whole.chain_length)))
        scoped = {}
        for i, spec in enumerate(SLAVES):
            sub = insert_scan_chain(design, include=[f"p{i}"])
            scoped[spec.name] = sub
            rows.append((f"subsystem p{i} ({spec.name})", sub.chain_length,
                         ip.shift_cost_s(sub.chain_length)))
        return design, whole, scoped, rows

    design, whole, scoped, rows = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    emit("soc_subsystem", format_table(
        ["scope", "chain bits", "snapshot shift (modelled)"],
        [[name, bits, format_si_time(cost)] for name, bits, cost in rows],
        title="E8: whole-SoC vs subsystem scan chains"))

    # The whole chain covers at least the sum of the subsystems (plus
    # interconnect state like the latched selects).
    subsystem_sum = sum(s.chain_length for s in scoped.values())
    assert whole.chain_length >= subsystem_sum
    assert whole.chain_length <= subsystem_sum + 64  # interconnect is small

    # Each subsystem chain matches the standalone peripheral exactly.
    for spec in SLAVES:
        standalone = spec.elaborate().state_bit_count
        assert scoped[spec.name].chain_length == standalone, spec.name

    # Subsystem snapshots are proportionally cheaper.
    timer_chain = scoped["timer"].chain_length
    assert timer_chain < whole.chain_length / 5
