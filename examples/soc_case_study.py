#!/usr/bin/env python3
"""Whole-SoC case study: co-testing firmware against a composed system.

A 4-peripheral SoC (timer, GPIO, UART, AES-128) behind one generated
AXI4-Lite interconnect — the paper's "synthetic design composed of
open-source hardware peripherals" — runs a boot-style firmware:

1. configure GPIO and UART,
2. arm a periodic timer,
3. kick the AES engine to encrypt a block,
4. (BUG) wait a guessed delay instead of polling DONE, then consume.

HardSnap explores the symbolic delay, isolates the premature-consume
paths, and the snapshot diff shows exactly which hardware registers
separate the failing state from the clean post-boot state.

Run:  python examples/soc_case_study.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro import HardSnapSession
from repro.analysis import diff_snapshots, format_diff
from repro.peripherals import catalog
from repro.peripherals.soc import SocSpec

BASE = 0x4000_0000
TIMER_W, GPIO_W, UART_W, AES_W = 0x00000, 0x10000, 0x20000, 0x30000

FIRMWARE = f"""
.equ TIMER, 0x{BASE + TIMER_W:x}
.equ GPIO, 0x{BASE + GPIO_W:x}
.equ UART, 0x{BASE + UART_W:x}
.equ AES, 0x{BASE + AES_W:x}
start:
    movi r1, TIMER
    movi r10, GPIO
    movi r11, UART
    movi r12, AES
    ; ---- boot: configure GPIO + UART ----
    movi r2, 0xFF
    sw   r2, 0(r10)         ; GPIO.DIR
    movi r2, 0x01
    sw   r2, 4(r10)         ; GPIO.OUT = boot LED
    movi r2, 4
    sw   r2, 16(r11)        ; UART.BAUDDIV
    ; ---- arm a periodic house-keeping timer ----
    movi r2, 50
    sw   r2, 4(r1)          ; TIMER.LOAD
    movi r2, 0b101
    sw   r2, 0(r1)          ; EN | AUTO_RELOAD
    ; ---- load AES key + block ----
    movi r2, 0x00010203
    sw   r2, 16(r12)
    movi r2, 0x04050607
    sw   r2, 20(r12)
    movi r2, 0x08090a0b
    sw   r2, 24(r12)
    movi r2, 0x0c0d0e0f
    sw   r2, 28(r12)
    movi r2, 0xdeadbeef
    sw   r2, 32(r12)
    movi r2, 1
    sw   r2, 0(r12)         ; AES.START
    ; ---- BUG: guessed delay instead of polling DONE ----
    sym  r4
    andi r4, r4, 0x1f
delay:
    beq  r4, r0, consume
    dec  r4
    j    delay
consume:
    lw   r5, 4(r12)         ; AES.STATUS
    andi r5, r5, 2          ; DONE
    movi r8, 1
    bne  r5, r0, fine
    movi r8, 0
fine:
    lw   r6, 48(r12)        ; consume RESULT[0]
    assert r8
    ; ---- signal completion on the LED ----
    movi r2, 0x03
    sw   r2, 4(r10)
    halt r6
"""


def main() -> None:
    soc = SocSpec([catalog.TIMER, catalog.GPIO, catalog.UART,
                   catalog.AES128], name="socboot")
    design = soc.elaborate()
    print(f"SoC: 4 peripherals behind one AXI port, "
          f"{design.state_bit_count} state bits, one scan chain\n")

    session = HardSnapSession(FIRMWARE, [(soc, BASE)],
                              scan_mode="functional")
    # Take the clean post-boot hardware state for later diffing.
    session.target.reset()
    boot_snapshot = session.target.save_snapshot()

    report = session.run(max_instructions=500_000)
    print(report.summary())
    bad = [b for b in report.bugs if b.kind == "assertion-failure"]
    good = report.halted_paths
    print(f"\npremature-consume delays: "
          f"{sorted(list(b.test_case.values())[0] & 0x1F for b in bad)}")
    print(f"safe delays: "
          f"{sorted(list(p.test_case.values())[0] & 0x1F for p in good)}")

    bug = bad[0]
    diff = diff_snapshots(boot_snapshot, bug.hw_snapshot)
    aes_changes = [d for d in diff.nets
                   if d.net.startswith("p3.") and
                   d.net.split(".")[-1] in ("busy", "done", "round")]
    print("\nhardware state at the failure vs clean boot (AES engine):")
    for d in aes_changes:
        print(f"  {d.net}: 0x{d.before:x} -> 0x{d.after:x}")
    print("\n-> the engine was still mid-encryption (busy=1, done=0) when")
    print("   the driver read RESULT: the root cause, straight from the")
    print("   hardware half of the combined HW/SW state.")
    assert bad and good


if __name__ == "__main__":
    main()
