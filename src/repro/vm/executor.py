"""The selective symbolic executor for HS32 firmware.

Executes firmware symbolically (KLEE-style: fork on feasible symbolic
branches, path conditions checked by the bitvector solver) while
*concretely* forwarding every access that crosses the VM boundary into
the hardware domain — HardSnap's selective symbolic execution (§III-B).

Forking discipline at the hardware boundary: when a state must fork
because a symbolic address/value reaches MMIO under the completeness
policy, the siblings are forked *before* the access executes — they
re-execute the access against their own hardware snapshot when
scheduled. Only the currently scheduled state ever touches live
hardware, which is what keeps Algorithm 1's per-state hardware ownership
sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from repro.errors import VmError
from repro.isa import encoding as enc
from repro.isa.assembler import Program
from repro.solver import Solver
from repro.solver import expr as E
from repro.vm import detectors as D
from repro.vm.forwarding import MmioBridge
from repro.vm.memory import SymbolicMemory, Value
from repro.vm.state import (STATUS_ERROR, STATUS_HALTED, STATUS_TERMINATED,
                            ExecState)

MASK32 = 0xFFFFFFFF


@dataclass
class StepOutcome:
    """Result of executing one instruction on one state."""

    forks: List[ExecState] = field(default_factory=list)
    bug: Optional[D.Bug] = None


class SymbolicExecutor:
    """Instruction-level symbolic execution engine."""

    def __init__(self, program: Program, bridge: Optional[MmioBridge],
                 solver: Optional[Solver] = None,
                 ram_size: int = 64 * 1024,
                 mmio_base: int = 0x4000_0000,
                 max_forks_per_branch: int = 2):
        self.program = program
        self.bridge = bridge
        self.solver = solver or (bridge.solver if bridge else Solver())
        self.ram_size = ram_size
        self.mmio_base = mmio_base
        self.bugs: List[D.Bug] = []
        self.coverage: Set[int] = set()
        self._sym_counter = 0
        self.instructions_executed = 0
        self.sat_forks = 0

    # -- state construction ---------------------------------------------------

    def make_initial_state(self) -> ExecState:
        memory = SymbolicMemory(self.ram_size)
        memory.load_image(self.program.as_bytes())
        state = ExecState(memory=memory, pc=self.program.entry)
        state.set_reg(enc.REG_SP, self.ram_size - 16)
        return state

    # -- interrupts (called by the engine loop) -----------------------------------

    def maybe_interrupt(self, state: ExecState, pending: bool) -> bool:
        """Vector into the handler if an IRQ is pending and deliverable.

        Interrupt service is atomic at the engine level (Inception's
        timing-violation avoidance): the engine keeps scheduling this
        state until ``in_irq`` drops.
        """
        if not (pending and state.irq_enabled and not state.in_irq
                and state.irq_handler is not None):
            return False
        state.irq_return_pc = state.pc
        state.in_irq = True
        state.pc = state.irq_handler
        return True

    # -- stepping -------------------------------------------------------------------

    def step(self, state: ExecState) -> StepOutcome:
        """Execute one instruction; may fork, halt, or record a bug."""
        outcome = StepOutcome()
        word = self._fetch(state, outcome)
        if word is None:
            return outcome
        instr = enc.decode(word)
        if not enc.is_valid_opcode(instr.opcode):
            self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                      f"opcode 0x{instr.opcode:02x}")
            return outcome
        self.coverage.add(state.pc)
        state.recent_pcs.append(state.pc)
        state.steps += 1
        self.instructions_executed += 1
        self._execute(state, instr, outcome)
        return outcome

    def _fetch(self, state: ExecState, outcome: StepOutcome) -> Optional[int]:
        if state.pc % 4 or state.pc + 4 > self.ram_size or state.pc < 0:
            self._bug(state, outcome, D.KIND_OOB_READ,
                      f"instruction fetch at 0x{state.pc:x}")
            return None
        word = state.memory.read(state.pc, 4)
        if not isinstance(word, int):
            self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                      "symbolic instruction word (self-modifying code?)")
            return None
        return word

    # -- dispatch ----------------------------------------------------------------------

    def _execute(self, state: ExecState, instr: enc.Instruction,
                 outcome: StepOutcome) -> None:
        op = instr.opcode
        next_pc = state.pc + 4
        if op in enc.R_TYPE:
            state.set_reg(instr.rd, self._alu_r(state, op, instr.rs1,
                                                instr.rs2))
        elif op in enc.I_ALU:
            state.set_reg(instr.rd, self._alu_i(state, op, instr.rs1,
                                                instr.imm))
        elif op in enc.LOADS:
            if not self._load(state, instr, outcome):
                return
        elif op in enc.STORES:
            if not self._store(state, instr, outcome):
                return
        elif op in enc.BRANCHES:
            taken_pc = (state.pc + instr.imm) & MASK32
            self._branch(state, instr, taken_pc, next_pc, outcome)
            return
        elif op == enc.JAL:
            if instr.rd:
                state.set_reg(instr.rd, next_pc)
            state.pc = (state.pc + instr.imm) & MASK32
            return
        elif op == enc.JALR:
            target = self._jalr_target(state, instr, outcome)
            if target is None:
                return
            if instr.rd:
                state.set_reg(instr.rd, next_pc)
            state.pc = target
            return
        elif op == enc.HALT:
            code = state.reg(instr.rs1)
            if not isinstance(code, int):
                code = self.solver.eval_one(code, state.constraints) or 0
            state.status = STATUS_HALTED
            state.halt_code = code
            return
        elif op == enc.IRET:
            if not state.in_irq:
                self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                          "iret outside interrupt")
                return
            state.in_irq = False
            state.pc = state.irq_return_pc
            return
        elif op == enc.HS:
            if not self._intrinsic(state, instr, outcome):
                return
        else:  # pragma: no cover - guarded by is_valid_opcode
            raise VmError(f"unhandled opcode {op:#x}")
        state.pc = next_pc

    # -- ALU -------------------------------------------------------------------------------

    def _alu_r(self, state: ExecState, op: int, rs1: int, rs2: int) -> Value:
        a, b = state.reg(rs1), state.reg(rs2)
        if isinstance(a, int) and isinstance(b, int):
            return _concrete_alu_r(op, a, b)
        ea, eb = state.reg_expr(rs1), state.reg_expr(rs2)
        return _symbolic_alu_r(op, ea, eb)

    def _alu_i(self, state: ExecState, op: int, rs1: int, imm: int) -> Value:
        a = state.reg(rs1)
        if isinstance(a, int):
            return _concrete_alu_i(op, a, imm)
        return _symbolic_alu_i(op, state.reg_expr(rs1), imm)

    # -- branches ------------------------------------------------------------------------------

    def _branch(self, state: ExecState, instr: enc.Instruction,
                taken_pc: int, fall_pc: int, outcome: StepOutcome) -> None:
        a, b = state.reg(instr.rd), state.reg(instr.rs1)
        if isinstance(a, int) and isinstance(b, int):
            state.pc = taken_pc if _concrete_branch(instr.opcode, a, b) \
                else fall_pc
            return
        cond = _symbolic_branch(instr.opcode, state.reg_expr(instr.rd),
                                state.reg_expr(instr.rs1))
        can_take = self.solver.may_be_true(cond, state.constraints)
        can_fall = self.solver.may_be_true(E.not_(cond), state.constraints)
        if can_take and can_fall:
            # Fork: the scheduled state takes the branch, the fork falls
            # through. Per Algorithm 1, the fork owns a cloned snapshot.
            fork = state.fork()
            fork.add_constraint(E.not_(cond))
            fork.pc = fall_pc
            state.add_constraint(cond)
            state.pc = taken_pc
            outcome.forks.append(fork)
            self.sat_forks += 1
        elif can_take:
            state.add_constraint(cond)
            state.pc = taken_pc
        elif can_fall:
            state.add_constraint(E.not_(cond))
            state.pc = fall_pc
        else:
            state.status = STATUS_TERMINATED
            state.error = "infeasible path condition"

    def _jalr_target(self, state: ExecState, instr: enc.Instruction,
                     outcome: StepOutcome) -> Optional[int]:
        base = state.reg(instr.rs1)
        if isinstance(base, int):
            return (base + instr.imm) & MASK32
        expr = E.add(state.reg_expr(instr.rs1), E.const(instr.imm, 32))
        pairs = self.bridge.concretize(state, expr, "jump target") \
            if self.bridge else [(state, self.solver.eval_one(
                expr, state.constraints) or 0)]
        # Siblings (completeness mode) re-execute the jalr when scheduled.
        outcome.forks.extend(s for s, _ in pairs[1:])
        return pairs[0][1]

    # -- memory ----------------------------------------------------------------------------------

    def _resolve_addr(self, state: ExecState, instr: enc.Instruction,
                      outcome: StepOutcome) -> Optional[int]:
        base = state.reg(instr.rs1)
        if isinstance(base, int):
            return (base + instr.imm) & MASK32
        expr = E.add(state.reg_expr(instr.rs1), E.const(instr.imm, 32))
        if self.bridge is not None:
            pairs = self.bridge.concretize(state, expr, "memory address")
        else:
            got = self.solver.eval_one(expr, state.constraints)
            if got is None:
                state.status = STATUS_TERMINATED
                return None
            state.add_constraint(E.eq(expr, E.const(got, 32)))
            pairs = [(state, got)]
        outcome.forks.extend(s for s, _ in pairs[1:])
        return pairs[0][1]

    def _load(self, state: ExecState, instr: enc.Instruction,
              outcome: StepOutcome) -> bool:
        addr = self._resolve_addr(state, instr, outcome)
        if addr is None:
            return False
        size = 4 if instr.opcode == enc.LW else 1
        if addr >= self.mmio_base:
            if self.bridge is None:
                self._bug(state, outcome, D.KIND_UNMAPPED_MMIO,
                          f"MMIO load at 0x{addr:x} without hardware")
                return False
            word = self.bridge.read(addr & ~3)
            if size == 1:
                word = (word >> ((addr & 3) * 8)) & 0xFF
            value: Value = word
        else:
            if addr + size > self.ram_size:
                self._bug(state, outcome, D.KIND_OOB_READ,
                          f"load at 0x{addr:x}")
                return False
            value = state.memory.read(addr, size)
        if instr.opcode == enc.LB:
            value = _sign_extend_byte(value)
        elif instr.opcode == enc.LBU and isinstance(value, E.BitVec):
            value = E.zext(value, 32)
        state.set_reg(instr.rd, value)
        return True

    def _store(self, state: ExecState, instr: enc.Instruction,
               outcome: StepOutcome) -> bool:
        addr = self._resolve_addr(state, instr, outcome)
        if addr is None:
            return False
        size = 4 if instr.opcode == enc.SW else 1
        value = state.reg(instr.rd)
        if addr >= self.mmio_base:
            if self.bridge is None:
                self._bug(state, outcome, D.KIND_UNMAPPED_MMIO,
                          f"MMIO store at 0x{addr:x} without hardware")
                return False
            pairs = self.bridge.concretize(state, value, "MMIO store value")
            outcome.forks.extend(s for s, _ in pairs[1:])
            state, concrete = pairs[0]
            if size == 1:
                # Read-modify-write for byte stores into 32-bit registers.
                word = self.bridge.read(addr & ~3)
                shift = (addr & 3) * 8
                word = (word & ~(0xFF << shift)) | ((concrete & 0xFF) << shift)
                self.bridge.write(addr & ~3, word)
            else:
                self.bridge.write(addr & ~3, concrete)
            return True
        if addr + size > self.ram_size:
            self._bug(state, outcome, D.KIND_OOB_WRITE,
                      f"store at 0x{addr:x}")
            return False
        state.memory.write(addr, value, size)
        return True

    # -- intrinsics ----------------------------------------------------------------------------------

    def _intrinsic(self, state: ExecState, instr: enc.Instruction,
                   outcome: StepOutcome) -> bool:
        func = instr.imm & 0xFF
        if func == enc.HS_SYMBOLIC:
            self._sym_counter += 1
            state.set_reg(instr.rd,
                          E.var(f"sym_{self._sym_counter}", 32))
            return True
        if func == enc.HS_SYMBOLIC_BYTES:
            # symbuf rptr(rs1), rlen(rd): make the buffer symbolic.
            ptr = state.reg(instr.rs1)
            length = state.reg(instr.rd)
            if not isinstance(ptr, int) or not isinstance(length, int):
                self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                          "symbuf needs concrete pointer and length")
                return False
            if ptr + length > self.ram_size:
                self._bug(state, outcome, D.KIND_OOB_WRITE,
                          f"symbuf range 0x{ptr:x}+{length}")
                return False
            self._sym_counter += 1
            base = self._sym_counter
            for i in range(length):
                state.memory.write_byte(
                    ptr + i, E.var(f"buf_{base}_{i}", 8))
            return True
        if func == enc.HS_ASSUME:
            cond = _truthy(state, instr.rs1)
            if isinstance(cond, bool):
                if not cond:
                    state.status = STATUS_TERMINATED
                    state.error = "assume failed (concrete)"
                    return False
                return True
            if not self.solver.may_be_true(cond, state.constraints):
                state.status = STATUS_TERMINATED
                state.error = "assume infeasible"
                return False
            state.add_constraint(cond)
            return True
        if func == enc.HS_ASSERT:
            cond = _truthy(state, instr.rs1)
            if isinstance(cond, bool):
                if not cond:
                    self._bug(state, outcome, D.KIND_ASSERTION,
                              "concrete assertion failed")
                    return False
                return True
            neg = E.not_(cond)
            counterexample = self.solver.check(
                list(state.constraints) + [neg])
            if counterexample.is_sat:
                self._bug(state, outcome, D.KIND_ASSERTION,
                          "assertion can fail",
                          model=counterexample.model)
                return False
            state.add_constraint(cond)
            return True
        if func == enc.HS_SET_IVT:
            handler = state.reg(instr.rs1)
            if not isinstance(handler, int):
                handler = self.solver.eval_one(handler, state.constraints) or 0
            state.irq_handler = handler
            return True
        if func == enc.HS_EI:
            state.irq_enabled = True
            return True
        if func == enc.HS_DI:
            state.irq_enabled = False
            return True
        if func == enc.HS_TRACE:
            mark = state.reg(instr.rs1)
            if not isinstance(mark, int):
                mark = self.solver.eval_one(mark, state.constraints) or 0
            state.trace_marks.append(mark)
            return True
        self._bug(state, outcome, D.KIND_ILLEGAL_INSTR,
                  f"unknown intrinsic {func}")
        return False

    # -- bug reporting ------------------------------------------------------------------------------------

    def _bug(self, state: ExecState, outcome: StepOutcome, kind: str,
             detail: str, model=None) -> None:
        if model is None:
            result = self.solver.check(state.constraints)
            model = result.model if result.is_sat else {}
        bug = D.Bug(
            kind=kind,
            pc=state.pc,
            state_id=state.state_id,
            detail=detail,
            test_case=D.model_to_test_case(model),
            hw_snapshot=state.hw_snapshot,
            backtrace=list(state.recent_pcs),
            steps=state.steps,
        )
        self.bugs.append(bug)
        outcome.bug = bug
        state.status = STATUS_ERROR
        state.error = f"{kind}: {detail}"


# ---------------------------------------------------------------------------
# ALU helpers
# ---------------------------------------------------------------------------

def _concrete_alu_r(op: int, a: int, b: int) -> int:
    from repro.isa.cpu import _alu_r
    return _alu_r(op, a, b, 0)


def _concrete_alu_i(op: int, a: int, imm: int) -> int:
    from repro.isa.cpu import _alu_i
    return _alu_i(op, a, imm, 0)


def _concrete_branch(op: int, a: int, b: int) -> bool:
    from repro.isa.cpu import _branch_taken
    return _branch_taken(op, a, b)


def _symbolic_alu_r(op: int, a: E.BitVec, b: E.BitVec) -> E.BitVec:
    amount = E.and_(b, E.const(31, 32))
    if op == enc.ADD:
        return E.add(a, b)
    if op == enc.SUB:
        return E.sub(a, b)
    if op == enc.AND:
        return E.and_(a, b)
    if op == enc.OR:
        return E.or_(a, b)
    if op == enc.XOR:
        return E.xor(a, b)
    if op == enc.SLL:
        return E.shl(a, amount)
    if op == enc.SRL:
        return E.lshr(a, amount)
    if op == enc.SRA:
        return E.ashr(a, amount)
    if op == enc.MUL:
        return E.mul(a, b)
    if op == enc.DIVU:
        return E.ite(E.eq(b, E.const(0, 32)), E.const(MASK32, 32),
                     E.udiv(a, b))
    if op == enc.REMU:
        return E.ite(E.eq(b, E.const(0, 32)), a, E.urem(a, b))
    if op == enc.SLT:
        return E.zext(E.slt(a, b), 32)
    if op == enc.SLTU:
        return E.zext(E.ult(a, b), 32)
    raise VmError(f"not an R-type op {op:#x}")


def _symbolic_alu_i(op: int, a: E.BitVec, imm: int) -> E.BitVec:
    c = E.const(imm, 32)
    if op == enc.ADDI:
        return E.add(a, c)
    if op == enc.ANDI:
        return E.and_(a, c)
    if op == enc.ORI:
        return E.or_(a, c)
    if op == enc.XORI:
        return E.xor(a, c)
    if op == enc.SLLI:
        return E.shl(a, E.const(imm & 31, 32))
    if op == enc.SRLI:
        return E.lshr(a, E.const(imm & 31, 32))
    if op == enc.SRAI:
        return E.ashr(a, E.const(imm & 31, 32))
    if op == enc.LUI:
        return E.const((imm & 0xFFFF) << 16, 32)
    raise VmError(f"not an I-type op {op:#x}")


def _symbolic_branch(op: int, a: E.BitVec, b: E.BitVec) -> E.BitVec:
    if op == enc.BEQ:
        return E.eq(a, b)
    if op == enc.BNE:
        return E.ne(a, b)
    if op == enc.BLT:
        return E.slt(a, b)
    if op == enc.BGE:
        return E.sge(a, b)
    if op == enc.BLTU:
        return E.ult(a, b)
    if op == enc.BGEU:
        return E.uge(a, b)
    raise VmError(f"not a branch op {op:#x}")


def _sign_extend_byte(value: Value) -> Value:
    if isinstance(value, int):
        return (value - 256 if value & 0x80 else value) & MASK32
    if value.width > 8:
        value = E.extract(value, 7, 0)
    return E.sext(value, 32)


def _truthy(state: ExecState, reg: int):
    """Register as a boolean: Python bool if concrete, else a 1-bit expr."""
    value = state.reg(reg)
    if isinstance(value, int):
        return value != 0
    return E.ne(value, E.const(0, 32))
