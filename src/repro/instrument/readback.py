"""FPGA configuration-readback model.

High-end FPGAs can dump the values of all configuration memory cells —
including flip-flop contents — through a dedicated readback port (paper
§III-A: "Some manufacturers offer logic readback capability... this
feature is only present on a few high-end FPGAs"). HardSnap's evaluation
compares the latency of this vendor feature against its own scan chain.

The model follows the Xilinx SelectMAP/ICAP readback architecture:

* state bits live in fixed-size *frames* (FRAME_BITS configuration bits
  each); capturing one flip-flop requires reading back its entire frame,
* a readback session pays a fixed setup cost (GCAPTURE + command
  sequence), then streams frames at the configuration-port bandwidth,
* readback is *capture-only*: restoring state still requires the scan
  chain (or full partial reconfiguration), which is why HardSnap inserts
  a chain even on devices with readback.

Frame geometry and bandwidth default to 7-series-like numbers; both are
configurable so the benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hdl.ir import Design

#: Bits per configuration frame (Xilinx 7-series: 101 words x 32 bits).
DEFAULT_FRAME_BITS = 3232
#: Configuration port bandwidth in bits/second (ICAP: 32 bit @ 100 MHz).
DEFAULT_PORT_BITS_PER_S = 3.2e9
#: Fixed command/capture overhead per readback session, seconds.
DEFAULT_SETUP_S = 250e-6
#: Average fraction of a frame's bits that are *state* bits; the rest is
#: routing/LUT configuration that is read back but discarded.
DEFAULT_STATE_DENSITY = 0.04


@dataclass
class ReadbackModel:
    """Latency model for configuration readback of a design's state."""

    frame_bits: int = DEFAULT_FRAME_BITS
    port_bits_per_s: float = DEFAULT_PORT_BITS_PER_S
    setup_s: float = DEFAULT_SETUP_S
    state_density: float = DEFAULT_STATE_DENSITY

    def frames_for(self, state_bits: int) -> int:
        """Number of frames that must be read to capture *state_bits*.

        State bits are sparse in configuration frames: each frame holds
        only ``frame_bits * state_density`` useful bits.
        """
        useful_per_frame = max(1, int(self.frame_bits * self.state_density))
        return max(1, -(-state_bits // useful_per_frame))

    def capture_latency_s(self, state_bits: int) -> float:
        """Modelled time to read back the frames covering *state_bits*."""
        frames = self.frames_for(state_bits)
        return self.setup_s + frames * self.frame_bits / self.port_bits_per_s

    def capture_design(self, design: Design) -> Dict[str, float]:
        bits = design.state_bit_count
        return {
            "state_bits": bits,
            "frames": self.frames_for(bits),
            "latency_s": self.capture_latency_s(bits),
        }
