"""Wishbone (classic, single-beat) master bus functional model.

HardSnap's memory-bus abstraction is modular (paper §IV-A: "a simulated
memory bus (i.e., AXI, Wishbone)"); this BFM drives peripherals exposing a
Wishbone slave port. Signal naming convention::

    wb_cyc  wb_stb  wb_we  wb_adr  wb_dat_w   (master -> slave)
    wb_ack  wb_dat_r                          (slave -> master)
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import BusError
from repro.bus.axi4lite import BusStats
from repro.sim.base import BaseSimulation

DEFAULT_TIMEOUT_CYCLES = 64


class WishboneMaster:
    """Cycle-accurate Wishbone classic master."""

    def __init__(self, sim: BaseSimulation, prefix: str = "wb_",
                 timeout: int = DEFAULT_TIMEOUT_CYCLES):
        self.sim = sim
        self.prefix = prefix
        self.timeout = timeout
        self.stats = BusStats()
        self._idle()

    def _sig(self, name: str) -> str:
        return self.prefix + name

    def _idle(self) -> None:
        self.sim.poke_many({
            self._sig("cyc"): 0,
            self._sig("stb"): 0,
            self._sig("we"): 0,
        })

    def write(self, addr: int, data: int) -> int:
        sim = self.sim
        start = sim.cycle
        sim.poke_many({
            self._sig("cyc"): 1,
            self._sig("stb"): 1,
            self._sig("we"): 1,
            self._sig("adr"): addr,
            self._sig("dat_w"): data,
        })
        for _ in range(self.timeout):
            ack = sim.peek(self._sig("ack"))
            sim.step()
            if ack:
                self._idle()
                cycles = sim.cycle - start
                self.stats.writes += 1
                self.stats.write_cycles += cycles
                return cycles
        self._idle()
        raise BusError(f"wishbone write to 0x{addr:x}: no ack")

    def read(self, addr: int) -> Tuple[int, int]:
        sim = self.sim
        start = sim.cycle
        sim.poke_many({
            self._sig("cyc"): 1,
            self._sig("stb"): 1,
            self._sig("we"): 0,
            self._sig("adr"): addr,
        })
        for _ in range(self.timeout):
            ack = sim.peek(self._sig("ack"))
            data = sim.peek(self._sig("dat_r"))
            sim.step()
            if ack:
                self._idle()
                cycles = sim.cycle - start
                self.stats.reads += 1
                self.stats.read_cycles += cycles
                return data, cycles
        self._idle()
        raise BusError(f"wishbone read of 0x{addr:x}: no ack")
