"""Structural RTL lint rules.

These catch the classic defects that make a design un-simulatable or
un-snapshottable before it ever reaches a backend: combinational loops,
multiple drivers, inferred latches, silent width truncation, dead logic,
clockless processes and unresettable state.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set, Tuple

from repro.hdl import ir
from repro.lint.analysis import (BlockInfo, LintContext, lvalue_width,
                                 significant_width,
                                 strongly_connected_components)
from repro.lint.framework import ERROR, WARNING, Diagnostic, rule

COMB_LOOP = "comb-loop"
MULTI_DRIVER = "multi-driver"
LATCH = "latch"
WIDTH_TRUNC = "width-trunc"
DEAD_NET = "dead-net"
UNREACHABLE_SEQ = "unreachable-seq"
NO_RESET = "no-reset"


@rule(COMB_LOOP, ERROR, "Combinational loop",
      "A cycle through combinational processes has no stable evaluation "
      "order; the cycle-based simulators reject it and synthesis would "
      "oscillate.")
def check_comb_loop(ctx: LintContext) -> Iterable[Diagnostic]:
    blocks = ctx.comb
    writers: Dict[str, List[int]] = {}
    for i, info in enumerate(blocks):
        for name in info.writes:
            writers.setdefault(name, []).append(i)
    succ: Dict[int, Set[int]] = {}
    for j, info in enumerate(blocks):
        for name in info.reads:
            for i in writers.get(name, ()):
                if i != j:
                    succ.setdefault(i, set()).add(j)
    for component in strongly_connected_components(succ, len(blocks)):
        if len(component) < 2:
            continue
        names = ", ".join(blocks[i].label for i in component[:6])
        if len(component) > 6:
            names += ", ..."
        first = blocks[component[0]]
        yield ctx.diag(
            COMB_LOOP, ERROR,
            f"combinational loop through {len(component)} processes: {names}",
            subject=first.label, line=first.line)


def _exclusive(a: BlockInfo, b: BlockInfo) -> bool:
    """True when two processes provably never execute together."""
    return (a.gate is not None and b.gate is not None
            and a.gate[0] == b.gate[0] and a.gate[1] != b.gate[1])


@rule(MULTI_DRIVER, ERROR, "Multiple drivers",
      "A net driven by more than one process (with overlapping bits, and "
      "no mutually exclusive gating) has no defined value; on silicon the "
      "drivers would short.")
def check_multi_driver(ctx: LintContext) -> Iterable[Diagnostic]:
    comb_w: Dict[str, List[BlockInfo]] = {}
    seq_w: Dict[str, List[BlockInfo]] = {}
    for info in ctx.comb:
        for name in info.write_masks:
            comb_w.setdefault(name, []).append(info)
    for info in ctx.seq:
        for name in info.write_masks:
            seq_w.setdefault(name, []).append(info)

    def overlapping(infos: List[BlockInfo], name: str) -> List[BlockInfo]:
        culprits: List[BlockInfo] = []
        for i, a in enumerate(infos):
            for b in infos[i + 1:]:
                if (a.write_masks[name] & b.write_masks[name]
                        and not _exclusive(a, b)):
                    culprits.extend(x for x in (a, b) if x not in culprits)
        return culprits

    for name in sorted(set(comb_w) | set(seq_w)):
        comb_blocks = comb_w.get(name, [])
        seq_blocks = seq_w.get(name, [])
        if comb_blocks and seq_blocks:
            yield ctx.diag(
                MULTI_DRIVER, ERROR,
                f"net {name!r} is driven by both combinational "
                f"({comb_blocks[0].label}) and sequential "
                f"({seq_blocks[0].label}) processes",
                subject=name)
            continue
        for group in (comb_blocks, seq_blocks):
            culprits = overlapping(group, name)
            if culprits:
                labels = ", ".join(c.label for c in culprits[:4])
                yield ctx.diag(
                    MULTI_DRIVER, ERROR,
                    f"net {name!r} has overlapping drivers: {labels}",
                    subject=name)
                break


@rule(LATCH, WARNING, "Inferred latch",
      "A combinational process that does not assign a net on every path "
      "must remember the old value — a latch. Latched bits are invisible "
      "to the flip-flop-based state inference, so snapshots would miss "
      "them.")
def check_latch(ctx: LintContext) -> Iterable[Diagnostic]:
    for info in ctx.comb:
        for name, maybe in sorted(info.write_masks.items()):
            held = maybe & ~info.definite_masks.get(name, 0)
            if held:
                yield ctx.diag(
                    LATCH, WARNING,
                    f"net {name!r} is not assigned on every path through "
                    f"{info.label} (bits {held:#x} would latch); add a "
                    f"default assignment",
                    subject=name, line=info.line or None)


@rule(WIDTH_TRUNC, WARNING, "Width truncation",
      "The right-hand side can carry more significant bits than the "
      "target holds; the extra bits are silently dropped.")
def check_width_trunc(ctx: LintContext) -> Iterable[Diagnostic]:
    for info in ctx.comb + ctx.seq + ctx.init:
        for stmt in info.assigns:
            target_w = lvalue_width(stmt.target)
            sig = significant_width(stmt.value)
            if sig > target_w:
                leaves = list(ir._leaf_lvalues(stmt.target))
                subject = ""
                if leaves and isinstance(leaves[0], (ir.LNet, ir.LNetDyn)):
                    subject = leaves[0].net.name
                elif leaves and isinstance(leaves[0], ir.LMem):
                    subject = leaves[0].memory.name
                yield ctx.diag(
                    WIDTH_TRUNC, WARNING,
                    f"assignment truncates a {sig}-bit value to "
                    f"{target_w} bits in {info.label}",
                    subject=subject, line=stmt.line or info.line or None)


@rule(DEAD_NET, WARNING, "Dead net",
      "A net or memory no process ever reads (and that is not an output "
      "port) is dead logic — often a typo'd name or a leftover.")
def check_dead_net(ctx: LintContext) -> Iterable[Diagnostic]:
    for name, net in sorted(ctx.design.nets.items()):
        if net.kind in ("input", "output"):
            continue
        if ctx.readers.get(name, 0) == 0:
            yield ctx.diag(
                DEAD_NET, WARNING,
                f"net {name!r} is never read",
                subject=name)
    for name in sorted(ctx.design.memories):
        if ctx.readers.get(name, 0) == 0:
            yield ctx.diag(
                DEAD_NET, WARNING,
                f"memory {name!r} is never read",
                subject=name)


@rule(UNREACHABLE_SEQ, ERROR, "Unreachable sequential process",
      "A sequential process whose clock is not an input and is never "
      "driven can never trigger; its state is permanently stuck.")
def check_unreachable_seq(ctx: LintContext) -> Iterable[Diagnostic]:
    driven: Set[str] = set()
    for info in ctx.comb + ctx.seq + ctx.init:
        driven |= set(info.write_masks) | set(info.mem_writes)
    for info in ctx.seq:
        clock = ctx.design.nets.get(info.clock or "")
        if clock is None:
            continue
        if clock.kind == "input" or clock.name in driven:
            continue
        yield ctx.diag(
            UNREACHABLE_SEQ, ERROR,
            f"clock {clock.name!r} of process {info.label} is never "
            f"driven and is not an input; the process can never execute",
            subject=info.label, line=info.line or None)


_SCAN_INTERNAL = re.compile(r"^(scan_p|scan_tap|scan_t\d+)$")


@rule(NO_RESET, WARNING, "Unresettable state",
      "State that is neither covered by a reset nor explicitly "
      "initialised powers up undefined; after a snapshot restore it is "
      "the only state the testbench cannot force to a known value "
      "through a reboot.")
def check_no_reset(ctx: LintContext) -> Iterable[Diagnostic]:
    if not ctx.reset_nets:
        return  # design-wide style choice: nothing to compare against
    for net in ctx.design.state_nets:
        if _SCAN_INTERNAL.match(net.name.split(".")[-1]):
            continue  # chain internals are loaded before use, by design
        if net.name in ctx.reset_covered:
            continue
        if net.name in ctx.init_written or net.explicit_init:
            continue
        yield ctx.diag(
            NO_RESET, WARNING,
            f"state register {net.name!r} is neither reset nor "
            f"initialised",
            subject=net.name)
