#!/usr/bin/env python3
"""Multi-target orchestration: fast-forward on the FPGA target, then
transfer the live hardware state onto the simulator target and capture a
full VCD waveform of the window of interest.

Writes the trace to ``timer_window.vcd`` in the current directory.

Run:  python examples/multitarget_trace.py
"""

import _bootstrap  # noqa: F401  — src/ fallback for fresh checkouts
from repro.peripherals import catalog, timer
from repro.targets import FpgaTarget, SimulatorTarget, TargetOrchestrator

BASE = 0x4000_0000
WARMUP_CYCLES = 200_000
WINDOW_CYCLES = 100


def main() -> None:
    fpga = FpgaTarget(scan_mode="functional")
    sim = SimulatorTarget()
    for target in (fpga, sim):
        target.add_peripheral(catalog.TIMER, BASE)
        target.reset()

    orch = TargetOrchestrator()
    orch.register(fpga, active=True)
    orch.register(sim)

    # Long warm-up at FPGA speed: a slow periodic timer ticks away.
    fpga.write(BASE + timer.REGISTERS["PRESCALE"], 0xFF)
    fpga.write(BASE + timer.REGISTERS["LOAD"], 700)
    fpga.write(BASE + timer.REGISTERS["CTRL"],
               timer.CTRL_EN | timer.CTRL_AUTO_RELOAD)
    fpga.step(WARMUP_CYCLES)
    print(f"warmed up {WARMUP_CYCLES} cycles on the FPGA target "
          f"({fpga.timer.total_s * 1e3:.2f} ms modelled)")

    # No waveforms on fabric: internal nets are not visible there.
    try:
        fpga.peek("timer", "value")
    except Exception as exc:
        print(f"FPGA visibility check: {exc}")

    # Move the live hardware state to the simulator.
    snapshot = orch.transfer("fpga", "simulator")
    record = orch.transfers[-1]
    print(f"transferred {record.bits} state bits in "
          f"{record.modelled_cost_s * 1e6:.1f} us (modelled)")

    # Full visibility now: attach a VCD writer and trace the window.
    writer = sim.attach_vcd("timer")
    print(f"timer.value right after transfer: {sim.peek('timer', 'value')}")
    sim.step(WINDOW_CYCLES)
    with open("timer_window.vcd", "w") as f:
        f.write(writer.getvalue())
    print(f"traced {WINDOW_CYCLES} cycles, {writer.changes} value changes "
          f"-> timer_window.vcd")

    total = orch.modelled_time_s()
    sim_only = WARMUP_CYCLES / sim.clock_hz
    print(f"hybrid modelled cost: {total * 1e3:.2f} ms "
          f"(simulator-only warm-up alone would be {sim_only * 1e3:.0f} ms)")


if __name__ == "__main__":
    main()
