"""Reporting: coverage, table rendering, Table-I regeneration."""

from repro.analysis.diff import (MemoryDelta, NetDelta, SnapshotDiff,
                                 diff_snapshots, format_diff)
from repro.analysis.coverage import (CoverageReport, coverage_report,
                                     source_line_coverage, uncovered_listing)
from repro.analysis.tables import (format_si_time, format_snapshot_stats,
                                   format_table)

__all__ = ["format_table", "format_si_time", "format_snapshot_stats",
           "CoverageReport",
           "coverage_report", "uncovered_listing", "source_line_coverage",
           "diff_snapshots", "format_diff", "SnapshotDiff", "NetDelta",
           "MemoryDelta"]
