"""Elaboration: parsed AST -> flat, width-resolved RTL IR.

Responsibilities:

* parameter resolution (header parameters, body ``parameter``/``localparam``,
  instance overrides),
* hierarchical flattening — child instances are inlined with dotted name
  prefixes (``uart0.tx_busy``), port connections become combinational glue,
* ``for``-loop unrolling with constant bounds,
* symbol resolution and width computation following Verilog's
  context-determined width rules (see :mod:`repro.hdl.ir`),
* state inference (flip-flops and state memories) via :meth:`Design.finalize`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ElaborationError
from repro.hdl import ast_nodes as A
from repro.hdl import ir
from repro.hdl.parser import parse

_MAX_UNROLL = 65536

Symbol = Union[ir.Net, ir.Memory, int]  # int for parameters / loop constants


def elaborate(source: Union[str, A.SourceFile], top: str,
              params: Optional[Dict[str, int]] = None,
              source_file: Optional[str] = None) -> ir.Design:
    """Elaborate module *top* of *source* (text or parsed AST) to IR.

    *source_file* is recorded on the design for diagnostics (lint reports
    point at ``file:line`` instead of bare IR names when it is given).
    """
    if isinstance(source, str):
        source = parse(source)
    design = ir.Design(name=top, source_file=source_file)
    Elaborator(source, design).instantiate(top, params or {}, prefix="",
                                           port_map=None)
    design.finalize()
    return design


class Elaborator:
    def __init__(self, source: A.SourceFile, design: ir.Design):
        self.source = source
        self.design = design

    # -- module instantiation ------------------------------------------------

    def instantiate(self, module_name: str, param_overrides: Dict[str, int],
                    prefix: str,
                    port_map: Optional[Dict[str, ir.Net]]) -> None:
        """Inline one instance of *module_name* into the design.

        *port_map* maps port names to pre-created boundary nets (used for
        child instances); None marks the top module, whose ports become the
        design's inputs/outputs.
        """
        try:
            module = self.source.module(module_name)
        except KeyError:
            raise ElaborationError(f"unknown module {module_name!r}") from None
        ctx = _ModuleCtx(self, module, param_overrides, prefix)
        ctx.declare_ports(port_map, top=port_map is None)
        ctx.declare_items()
        ctx.lower_items()

    def find_module(self, name: str) -> A.Module:
        try:
            return self.source.module(name)
        except KeyError:
            raise ElaborationError(f"unknown module {name!r}") from None


class _ModuleCtx:
    """Per-instance elaboration context."""

    def __init__(self, elab: Elaborator, module: A.Module,
                 param_overrides: Dict[str, int], prefix: str):
        self.elab = elab
        self.design = elab.design
        self.module = module
        self.prefix = prefix
        self.symbols: Dict[str, Symbol] = {}
        self.params: Dict[str, int] = {}
        self._port_names = {p.name for p in module.ports}
        self._resolve_params(param_overrides)

    # -- naming ----------------------------------------------------------------

    def qualify(self, name: str) -> str:
        return self.prefix + name

    def _new_net(self, name: str, width: int, kind: str,
                 line: int = 0) -> ir.Net:
        qname = self.qualify(name)
        if qname in self.design.nets or qname in self.design.memories:
            raise ElaborationError(f"duplicate declaration of {qname!r}",
                                   self.module.line)
        net = ir.Net(qname, width, kind, line=line)
        self.design.nets[qname] = net
        self.symbols[name] = net
        return net

    # -- parameters ---------------------------------------------------------------

    def _resolve_params(self, overrides: Dict[str, int]) -> None:
        for decl in self.module.params:
            value = overrides.get(decl.name)
            if value is None:
                value = self.const_eval(decl.value)
            self.params[decl.name] = value
            self.symbols[decl.name] = value
        # Body parameters are resolved in declaration order during
        # declare_items; overrides may name them too.
        self._body_param_overrides = dict(overrides)

    # -- declarations ---------------------------------------------------------------

    def declare_ports(self, port_map: Optional[Dict[str, ir.Net]],
                      top: bool) -> None:
        for port in self.module.ports:
            width = self.range_width(port.range)
            if port_map is not None and port.name in port_map:
                # The boundary net was created by the parent; adopt it.
                net = port_map[port.name]
                if net.width != width:
                    raise ElaborationError(
                        f"port {port.name!r} width mismatch: "
                        f"{net.width} vs {width}", port.line)
                self.symbols[port.name] = net
                continue
            kind = port.kind
            if top:
                kind = "input" if port.direction == "input" else "output"
            net = self._new_net(port.name, width, kind, line=port.line)
            if top:
                if port.direction == "input":
                    self.design.inputs.append(net)
                else:
                    self.design.outputs.append(net)

    def declare_items(self) -> None:
        for item in self.module.items:
            if isinstance(item, A.ParamDecl):
                value = self._body_param_overrides.get(item.name)
                if value is None or item.local:
                    value = self.const_eval(item.value)
                self.params[item.name] = value
                self.symbols[item.name] = value
            elif isinstance(item, A.NetDecl):
                self._declare_net(item)

    def _declare_net(self, decl: A.NetDecl) -> None:
        if decl.name in self.symbols:
            sym = self.symbols[decl.name]
            # Port redeclaration (`output reg [7:0] x` + body `reg [7:0] x`)
            # is legal; duplicating an ordinary net is not.
            if isinstance(sym, ir.Net) and decl.name in self._port_names:
                if decl.init is not None:
                    sym.initial = self.const_eval(decl.init) & sym.mask
                    sym.explicit_init = True
                return
            raise ElaborationError(f"{decl.name!r} already declared", decl.line)
        if decl.kind == "integer":
            width = 32
        else:
            width = self.range_width(decl.range)
        if decl.array is not None:
            msb = self.const_eval(decl.array.msb)
            lsb = self.const_eval(decl.array.lsb)
            depth = abs(msb - lsb) + 1
            qname = self.qualify(decl.name)
            mem = ir.Memory(qname, width, depth, line=decl.line)
            self.design.memories[qname] = mem
            self.symbols[decl.name] = mem
            return
        net = self._new_net(decl.name, width,
                            "reg" if decl.kind in ("reg", "integer") else "wire",
                            line=decl.line)
        if decl.init is not None:
            net.initial = self.const_eval(decl.init) & net.mask
            net.explicit_init = True

    def range_width(self, rng: Optional[A.Range]) -> int:
        if rng is None:
            return 1
        msb = self.const_eval(rng.msb)
        lsb = self.const_eval(rng.lsb)
        if lsb != 0:
            raise ElaborationError(
                f"only [msb:0] ranges are supported, got [{msb}:{lsb}]")
        return msb - lsb + 1

    # -- item lowering ---------------------------------------------------------------

    def lower_items(self) -> None:
        for item in self.module.items:
            if isinstance(item, (A.ParamDecl, A.NetDecl)):
                continue
            if isinstance(item, A.ContinuousAssign):
                self._lower_continuous(item)
            elif isinstance(item, A.AlwaysBlock):
                self._lower_always(item)
            elif isinstance(item, A.InitialBlock):
                stmts = self.lower_stmts(item.body, {})
                self.design.init_blocks.append(ir.InitBlock(stmts))
            elif isinstance(item, A.Instance):
                self._lower_instance(item)
            else:
                raise ElaborationError(f"unsupported item {item!r}")

    def _lower_continuous(self, item: A.ContinuousAssign) -> None:
        target = self.lower_lvalue(item.target, {})
        value = self.lower_expr(item.value, {})
        value = _widen(value, max(value.width, target.width))
        stmt = ir.SAssign(target, value, blocking=True, line=item.line)
        reads, writes = ir.stmt_reads_writes([stmt])
        self.design.comb_blocks.append(ir.CombBlock(
            [stmt], frozenset(reads), frozenset(writes),
            name=f"{self.prefix}assign@{item.line}", line=item.line))

    def _lower_always(self, item: A.AlwaysBlock) -> None:
        if item.is_combinational:
            stmts = self.lower_stmts(item.body, {})
            reads, writes = ir.stmt_reads_writes(stmts)
            self.design.comb_blocks.append(ir.CombBlock(
                stmts, frozenset(reads), frozenset(writes),
                name=f"{self.prefix}always@{item.line}", line=item.line))
            return
        edges = [e for e in item.sensitivity if e.edge is not None]
        if len(edges) != len(item.sensitivity):
            raise ElaborationError(
                "mixed edge/level sensitivity is not supported", item.line)
        clock = self._edge_net(edges[0])
        areset = None
        areset_edge = "posedge"
        if len(edges) > 1:
            if len(edges) > 2:
                raise ElaborationError(
                    "at most one async reset per always block", item.line)
            areset = self._edge_net(edges[1])
            areset_edge = edges[1].edge or "posedge"
        stmts = self.lower_stmts(item.body, {})
        self.design.seq_blocks.append(ir.SeqBlock(
            clock, edges[0].edge or "posedge", stmts, areset, areset_edge,
            name=f"{self.prefix}always@{item.line}", line=item.line))

    def _edge_net(self, event: A.EdgeEvent) -> ir.Net:
        sym = self.symbols.get(event.signal)
        if not isinstance(sym, ir.Net):
            raise ElaborationError(f"unknown clock/reset signal {event.signal!r}")
        return sym

    def _lower_instance(self, inst: A.Instance) -> None:
        child = self.elab.find_module(inst.module)
        # Parameter bindings.
        overrides: Dict[str, int] = {}
        header_names = [p.name for p in child.params]
        for i, (pname, pexpr) in enumerate(inst.params):
            value = self.const_eval(pexpr)
            if pname is None:
                if i >= len(header_names):
                    raise ElaborationError(
                        f"too many positional parameters for {inst.module!r}",
                        inst.line)
                overrides[header_names[i]] = value
            else:
                overrides[pname] = value
        # Pre-create boundary nets for the child's ports.
        child_prefix = self.qualify(inst.name) + "."
        child_ctx = _ModuleCtx(self.elab, child, overrides, child_prefix)
        port_map: Dict[str, ir.Net] = {}
        for port in child.ports:
            width = child_ctx.range_width(port.range)
            qname = child_prefix + port.name
            net = ir.Net(qname, width, port.kind, line=inst.line)
            self.design.nets[qname] = net
            port_map[port.name] = net
        # Glue logic for connections.
        port_names = [p.name for p in child.ports]
        directions = {p.name: p.direction for p in child.ports}
        for i, (cname, cexpr) in enumerate(inst.connections):
            if cname is None:
                if i >= len(port_names):
                    raise ElaborationError(
                        f"too many positional connections for {inst.name!r}",
                        inst.line)
                cname = port_names[i]
            if cname not in port_map:
                raise ElaborationError(
                    f"module {inst.module!r} has no port {cname!r}", inst.line)
            if cexpr is None:
                continue  # explicitly unconnected
            boundary = port_map[cname]
            if directions[cname] == "input":
                value = self.lower_expr(cexpr, {})
                value = _widen(value, max(value.width, boundary.width))
                stmt = ir.SAssign(ir.LNet(boundary), value, line=inst.line)
                reads, writes = ir.stmt_reads_writes([stmt])
                self.design.comb_blocks.append(ir.CombBlock(
                    [stmt], frozenset(reads), frozenset(writes),
                    name=f"{child_prefix}{cname}.in", line=inst.line))
            else:
                target = self.lower_lvalue(cexpr, {})
                stmt = ir.SAssign(target, ir.Ref(boundary, width=boundary.width),
                                  line=inst.line)
                reads, writes = ir.stmt_reads_writes([stmt])
                self.design.comb_blocks.append(ir.CombBlock(
                    [stmt], frozenset(reads), frozenset(writes),
                    name=f"{child_prefix}{cname}.out", line=inst.line))
        # Recurse into the child body, adopting the boundary nets.
        child_ctx.declare_ports(port_map, top=False)
        child_ctx.declare_items()
        child_ctx.lower_items()

    # -- statements ---------------------------------------------------------------

    def lower_stmts(self, stmts: List[A.Stmt],
                    env: Dict[str, int]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        for stmt in stmts:
            out.extend(self.lower_stmt(stmt, env))
        return out

    def lower_stmt(self, stmt: A.Stmt, env: Dict[str, int]) -> List[ir.Stmt]:
        if isinstance(stmt, A.Assign):
            target = self.lower_lvalue(stmt.target, env)
            value = self.lower_expr(stmt.value, env)
            value = _widen(value, max(value.width, target.width))
            return [ir.SAssign(target, value, stmt.blocking, line=stmt.line)]
        if isinstance(stmt, A.If):
            cond = self.lower_expr(stmt.cond, env)
            if isinstance(cond, ir.Const):
                branch = stmt.then if cond.value else stmt.other
                return self.lower_stmts(branch, env)
            return [ir.SIf(cond, self.lower_stmts(stmt.then, env),
                           self.lower_stmts(stmt.other, env))]
        if isinstance(stmt, A.Case):
            return [self._lower_case(stmt, env)]
        if isinstance(stmt, A.For):
            return self._unroll_for(stmt, env)
        raise ElaborationError(f"unsupported statement {stmt!r}")

    def _lower_case(self, stmt: A.Case, env: Dict[str, int]) -> ir.Stmt:
        subject = self.lower_expr(stmt.subject, env)
        items: List[ir.SCaseItem] = []
        default: List[ir.Stmt] = []
        wildcard_ok = stmt.kind in ("casez", "casex")
        for item in stmt.items:
            body = self.lower_stmts(item.body, env)
            if not item.labels:
                default = body
                continue
            labels: List[Tuple[int, int]] = []
            for label in item.labels:
                value, xmask = self._const_eval_with_xmask(label, env)
                care = ((1 << subject.width) - 1)
                if wildcard_ok:
                    care &= ~xmask
                labels.append((value & care, care))
            items.append(ir.SCaseItem(labels, body))
        return ir.SCase(subject, items, default)

    def _unroll_for(self, stmt: A.For, env: Dict[str, int]) -> List[ir.Stmt]:
        out: List[ir.Stmt] = []
        value = self.const_eval(stmt.init, env)
        count = 0
        while True:
            loop_env = dict(env)
            loop_env[stmt.var] = value
            cond = self.const_eval(stmt.cond, loop_env)
            if not cond:
                break
            out.extend(self.lower_stmts(stmt.body, loop_env))
            value = self.const_eval(stmt.step, loop_env)
            count += 1
            if count > _MAX_UNROLL:
                raise ElaborationError(
                    f"for-loop exceeds {_MAX_UNROLL} iterations", stmt.line)
        return out

    # -- lvalues ---------------------------------------------------------------

    def lower_lvalue(self, expr: A.Expr, env: Dict[str, int]) -> ir.LValue:
        if isinstance(expr, A.Identifier):
            sym = self._lookup(expr.name, env)
            if isinstance(sym, ir.Net):
                return ir.LNet(sym)
            raise ElaborationError(
                f"cannot assign to {expr.name!r}", expr.line)
        if isinstance(expr, A.PartSelect):
            base = self._lvalue_net(expr.base, env)
            hi = self.const_eval(expr.msb, env)
            lo = self.const_eval(expr.lsb, env)
            if not (0 <= lo <= hi < base.width):
                raise ElaborationError(
                    f"part select [{hi}:{lo}] out of range for "
                    f"{base.name!r}:{base.width}", expr.line)
            return ir.LNet(base, hi, lo)
        if isinstance(expr, A.BitSelect):
            sym = self._resolve_base(expr.base, env)
            index = self.lower_expr(expr.index, env)
            if isinstance(sym, ir.Memory):
                return ir.LMem(sym, index)
            if isinstance(index, ir.Const):
                bit = index.value
                if not (0 <= bit < sym.width):
                    raise ElaborationError(
                        f"bit select [{bit}] out of range for "
                        f"{sym.name!r}:{sym.width}", expr.line)
                return ir.LNet(sym, bit, bit)
            return ir.LNetDyn(sym, index)
        if isinstance(expr, A.Concat):
            return ir.LConcat([self.lower_lvalue(p, env) for p in expr.parts])
        raise ElaborationError(f"invalid assignment target {expr!r}")

    def _lvalue_net(self, expr: A.Expr, env: Dict[str, int]) -> ir.Net:
        if not isinstance(expr, A.Identifier):
            raise ElaborationError("part select target must be a simple net")
        sym = self._lookup(expr.name, env)
        if not isinstance(sym, ir.Net):
            raise ElaborationError(f"{expr.name!r} is not a net", expr.line)
        return sym

    def _resolve_base(self, expr: A.Expr, env: Dict[str, int]):
        if not isinstance(expr, A.Identifier):
            raise ElaborationError("select base must be a simple name")
        sym = self._lookup(expr.name, env)
        if isinstance(sym, (ir.Net, ir.Memory)):
            return sym
        raise ElaborationError(f"{expr.name!r} is not selectable", expr.line)

    # -- expressions ---------------------------------------------------------------

    def _lookup(self, name: str, env: Dict[str, int]) -> Symbol:
        if name in env:
            return env[name]
        sym = self.symbols.get(name)
        if sym is None:
            raise ElaborationError(f"undeclared identifier {name!r}")
        return sym

    def lower_expr(self, expr: A.Expr, env: Dict[str, int]) -> ir.Expr:
        if isinstance(expr, A.Number):
            width = expr.width if expr.width is not None else 32
            return ir.const(expr.value, width)
        if isinstance(expr, A.Identifier):
            sym = self._lookup(expr.name, env)
            if isinstance(sym, int):
                return ir.const(sym & 0xFFFFFFFF, 32)
            if isinstance(sym, ir.Net):
                return ir.Ref(sym, width=sym.width)
            raise ElaborationError(
                f"memory {expr.name!r} used without an index", expr.line)
        if isinstance(expr, A.BitSelect):
            sym = self._resolve_base(expr.base, env)
            index = self.lower_expr(expr.index, env)
            if isinstance(sym, ir.Memory):
                return ir.MemRead(sym, index, width=sym.width)
            base = ir.Ref(sym, width=sym.width)
            if isinstance(index, ir.Const):
                bit = index.value
                if not (0 <= bit < sym.width):
                    raise ElaborationError(
                        f"bit select [{bit}] out of range for "
                        f"{sym.name!r}:{sym.width}", expr.line)
                return ir.Slice(base, bit, bit, width=1)
            return ir.DynBit(base, index, width=1)
        if isinstance(expr, A.PartSelect):
            base = self.lower_expr(expr.base, env)
            hi = self.const_eval(expr.msb, env)
            lo = self.const_eval(expr.lsb, env)
            if not (0 <= lo <= hi < base.width):
                raise ElaborationError(
                    f"part select [{hi}:{lo}] out of range (width {base.width})",
                    expr.line)
            return ir.Slice(base, hi, lo, width=hi - lo + 1)
        if isinstance(expr, A.Unary):
            operand = self.lower_expr(expr.operand, env)
            if expr.op in ("&", "|", "^", "~&", "~|", "~^", "!"):
                width = 1
            else:
                width = operand.width
            node = ir.Unary(expr.op, operand, width=width)
            return _fold_unary(node)
        if isinstance(expr, A.Binary):
            left = self.lower_expr(expr.left, env)
            right = self.lower_expr(expr.right, env)
            op = expr.op
            if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                if op not in ("&&", "||"):
                    cw = max(left.width, right.width)
                    left = _widen(left, cw)
                    right = _widen(right, cw)
                width = 1
            elif op in ("<<", ">>", ">>>"):
                width = left.width
            else:
                width = max(left.width, right.width)
                left = _widen(left, width)
                right = _widen(right, width)
            node = ir.Binary(op, left, right, width=width)
            return _fold_binary(node)
        if isinstance(expr, A.Ternary):
            cond = self.lower_expr(expr.cond, env)
            then = self.lower_expr(expr.then, env)
            other = self.lower_expr(expr.other, env)
            width = max(then.width, other.width)
            if isinstance(cond, ir.Const):
                chosen = then if cond.value else other
                return _widen(chosen, width)
            return ir.Ternary(cond, _widen(then, width), _widen(other, width),
                              width=width)
        if isinstance(expr, A.Concat):
            parts = [self.lower_expr(p, env) for p in expr.parts]
            return ir.Concat(parts, width=sum(p.width for p in parts))
        if isinstance(expr, A.Repeat):
            count = self.const_eval(expr.count, env)
            value = self.lower_expr(expr.value, env)
            if count <= 0:
                raise ElaborationError(f"bad replication count {count}",
                                       expr.line)
            parts = [value] * count
            return ir.Concat(parts, width=value.width * count)
        raise ElaborationError(f"unsupported expression {expr!r}")

    # -- constant evaluation ---------------------------------------------------------

    def const_eval(self, expr: A.Expr, env: Optional[Dict[str, int]] = None) -> int:
        value, _ = self._const_eval_with_xmask(expr, env or {})
        return value

    def _const_eval_with_xmask(self, expr: A.Expr,
                               env: Dict[str, int]) -> Tuple[int, int]:
        lowered = self.lower_expr(expr, env)
        if isinstance(lowered, ir.Const):
            xmask = expr.xmask if isinstance(expr, A.Number) else 0
            return lowered.value, xmask
        raise ElaborationError(
            f"expression at line {getattr(expr, 'line', '?')} is not constant")


# ---------------------------------------------------------------------------
# Width widening + constant folding
# ---------------------------------------------------------------------------

_CONTEXT_OPS = frozenset({"+", "-", "*", "/", "%", "&", "|", "^"})


def _widen(expr: ir.Expr, width: int) -> ir.Expr:
    """Push a context width into *expr* per Verilog's width rules.

    Nodes whose result genuinely depends on operand width (``~``, unary
    ``-``, subtraction wrap-around) are re-masked at the wider width with
    the widening pushed into their operands. Self-determined contexts
    (concat parts, comparisons, shift amounts) are never widened by callers.
    """
    if width <= expr.width:
        return expr
    if isinstance(expr, ir.Const):
        return ir.const(expr.value, width)
    if isinstance(expr, ir.Binary):
        if expr.op in _CONTEXT_OPS:
            return ir.Binary(expr.op, _widen(expr.left, width),
                             _widen(expr.right, width), width=width)
        if expr.op in ("<<", ">>", ">>>"):
            return ir.Binary(expr.op, _widen(expr.left, width), expr.right,
                             width=width)
    if isinstance(expr, ir.Unary) and expr.op in ("~", "-"):
        return ir.Unary(expr.op, _widen(expr.operand, width), width=width)
    if isinstance(expr, ir.Ternary):
        return ir.Ternary(expr.cond, _widen(expr.then, width),
                          _widen(expr.other, width), width=width)
    # Refs, slices, concats, comparisons: implicit zero extension.
    return expr


def _fold_unary(node: ir.Unary) -> ir.Expr:
    if not isinstance(node.operand, ir.Const):
        return node
    value = node.operand.value
    w = node.operand.width
    mask = (1 << w) - 1
    op = node.op
    if op == "~":
        return ir.const(~value & ((1 << node.width) - 1), node.width)
    if op == "-":
        return ir.const(-value & ((1 << node.width) - 1), node.width)
    if op == "!":
        return ir.const(int(value == 0), 1)
    if op == "&":
        return ir.const(int(value == mask), 1)
    if op == "|":
        return ir.const(int(value != 0), 1)
    if op == "^":
        return ir.const(bin(value).count("1") & 1, 1)
    if op == "~&":
        return ir.const(int(value != mask), 1)
    if op == "~|":
        return ir.const(int(value == 0), 1)
    if op == "~^":
        return ir.const((bin(value).count("1") + 1) & 1, 1)
    return node


def _fold_binary(node: ir.Binary) -> ir.Expr:
    if not (isinstance(node.left, ir.Const) and isinstance(node.right, ir.Const)):
        return node
    a, b = node.left.value, node.right.value
    mask = (1 << node.width) - 1
    op = node.op
    if op == "+":
        return ir.const((a + b) & mask, node.width)
    if op == "-":
        return ir.const((a - b) & mask, node.width)
    if op == "*":
        return ir.const((a * b) & mask, node.width)
    if op == "/":
        return ir.const((a // b) & mask if b else mask, node.width)
    if op == "%":
        return ir.const((a % b) & mask if b else a & mask, node.width)
    if op == "&":
        return ir.const(a & b, node.width)
    if op == "|":
        return ir.const(a | b, node.width)
    if op == "^":
        return ir.const(a ^ b, node.width)
    if op == "<<":
        return ir.const((a << b) & mask if b < 64 else 0, node.width)
    if op == ">>":
        return ir.const(a >> b if b < 64 else 0, node.width)
    if op == ">>>":
        return ir.const(a >> b if b < 64 else 0, node.width)
    if op == "==":
        return ir.const(int(a == b), 1)
    if op == "!=":
        return ir.const(int(a != b), 1)
    if op == "<":
        return ir.const(int(a < b), 1)
    if op == "<=":
        return ir.const(int(a <= b), 1)
    if op == ">":
        return ir.const(int(a > b), 1)
    if op == ">=":
        return ir.const(int(a >= b), 1)
    if op == "&&":
        return ir.const(int(bool(a) and bool(b)), 1)
    if op == "||":
        return ir.const(int(bool(a) or bool(b)), 1)
    return node
