"""Tests for the zero-copy transport layer (repro.parallel.shm /
transport / envelope) and its pool integration: arena lifecycle and
reclamation, packed batch envelopes, queue fallback with identical
verdicts, chunk-pool LRU bounds, and the no-leaked-segments invariant
under fault injection."""

import glob
import os
import pickle
import signal

import pytest

from repro.core import HardSnapSession, SnapshotController, SnapshotFuzzer
from repro.core.persistence import snapshot_to_wire
from repro.firmware import TIMER_BASE, dispatcher, fuzz_packet_parser
from repro.isa import assemble
from repro.parallel import (ArenaReader, ChunkArena, ChunkChannel,
                            ParallelAnalysisEngine, ParallelFuzzer,
                            QueueTransport, SessionRecipe, ShmRef,
                            ShmSegmentGone, ShmTransport, ShmUnavailable,
                            WireStats, WorkerPool, make_transport,
                            shm_available, unlink_stale)
from repro.parallel.envelope import (pack_fuzz_batch, pack_fuzz_results,
                                     pack_lease_batch, pack_lease_results,
                                     stamp_encode_time, unpack_fuzz_batch,
                                     unpack_fuzz_results, unpack_lease_batch,
                                     unpack_lease_results)
from repro.peripherals import catalog
from repro.resilience import FaultPlan
from repro.targets import FpgaTarget

TIMER = [(catalog.TIMER, TIMER_BASE)]
FIRMWARE = dispatcher(4, work_cycles=8)
SEEDS = [bytes([1, 4, 0x41, 0x42, 0x43, 0x44]), bytes([2, 7])]

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="host has no POSIX shared memory")


def _shm_segments(prefix: str = "rpr-"):
    """Names of live shm segments with *prefix* (Linux: /dev/shm files)."""
    if not os.path.isdir("/dev/shm"):
        return []
    return [os.path.basename(p)
            for p in glob.glob(f"/dev/shm/{prefix}*")]


def _fuzz_target():
    target = FpgaTarget(scan_mode="functional")
    target.add_peripheral(catalog.TIMER, TIMER_BASE)
    target.reset()
    return target


def _timer_wire():
    target = _fuzz_target()
    target.step(5)
    return snapshot_to_wire(SnapshotController(target).save())


@needs_shm
class TestChunkArena:
    def test_place_fetch_roundtrip(self):
        arena = ChunkArena("t-rt")
        reader = ArenaReader()
        try:
            payload = os.urandom(1000)
            ref = arena.place(payload, peer="w0", digest="d0", bits=8)
            assert isinstance(ref, ShmRef)
            assert ref.length == 1000 and ref.digest == "d0"
            assert reader.fetch(ref, peer="c") == payload
        finally:
            reader.close()
            arena.close()

    def test_ack_reclaims_sealed_slab(self):
        arena = ChunkArena("t-ack", slab_bytes=1024)
        reader = ArenaReader()
        try:
            refs = [arena.place(os.urandom(600), "w0") for _ in range(3)]
            # 600 > 1024//2: each place rolls the slab, sealing the
            # previous one; the open slab never reclaims.
            assert arena.live_slabs >= 2
            for ref in refs:
                reader.fetch(ref, "c")
            arena.seal()
            arena.ack("w0", reader.take_acks("c"))
            assert arena.live_slabs == 0
            assert arena.stats.slabs_reclaimed == arena.stats.slabs_created
        finally:
            reader.close()
            arena.close()

    def test_oversized_payload_gets_dedicated_slab(self):
        arena = ChunkArena("t-big", slab_bytes=512)
        reader = ArenaReader()
        try:
            big = os.urandom(4096)
            ref = arena.place(big, "w0")
            assert reader.fetch(ref, "c") == big
            arena.ack("w0", reader.take_acks("c"))
            assert ref.segment not in _shm_segments()  # reclaimed
        finally:
            reader.close()
            arena.close()

    def test_forget_peer_cancels_outstanding_refs(self):
        arena = ChunkArena("t-fp", slab_bytes=256)
        try:
            arena.place(os.urandom(200), "w0")
            arena.place(os.urandom(200), "w1")
            arena.seal()
            assert arena.live_slabs == 2  # both awaiting acks
            arena.forget_peer("w0")  # w0 died: nothing will ack
            assert arena.live_slabs == 1
            arena.forget_peer("w1")
            assert arena.live_slabs == 0
        finally:
            arena.close()

    def test_stale_acks_after_forget_are_inert(self):
        arena = ChunkArena("t-stale", slab_bytes=256)
        reader = ArenaReader()
        try:
            ref = arena.place(os.urandom(200), "w0")
            reader.fetch(ref, "c")
            stale = reader.take_acks("c")
            arena.forget_peer("w0")
            arena.ack("w0", stale)  # must not raise or double-reclaim
            arena.ack("w0", {"rpr-no-such-slab": 3})  # unknown: ignored
        finally:
            reader.close()
            arena.close()

    def test_stale_acks_cannot_reclaim_reissued_refs(self):
        """Epoch guard: after forget_peer (a respawn), re-placements
        for the same peer start a fresh slab and are issued under a new
        epoch — so the dead incarnation's late acks can neither drain
        slabs other peers still hold nor credit the successor's
        references out from under it."""
        arena = ChunkArena("t-epoch", slab_bytes=1024)
        dead = ArenaReader()
        live = ArenaReader()
        try:
            ref0 = arena.place(os.urandom(100), "w0")
            ref_w1 = arena.place(os.urandom(100), "w1")
            assert ref_w1.segment == ref0.segment  # share one slab
            dead.fetch(ref0, "c")
            stale = dead.take_acks("c")  # w0 dies before sending these
            arena.forget_peer("w0")      # respawn: cancel + epoch bump
            ref1 = arena.place(os.urandom(100), "w0")  # re-issued payload
            assert ref1.segment != ref0.segment  # fresh slab post-forget
            arena.seal()
            arena.ack("w0", stale)       # late delivery: must be inert
            assert arena.live_slabs == 2  # nothing reclaimed early
            assert len(live.fetch(ref1, "c")) == 100  # still readable
            arena.ack("w0", live.take_acks("c"))
            arena.ack("w1", {ref_w1.segment: 1})
            assert arena.live_slabs == 0  # genuine acks still drain
        finally:
            dead.close()
            live.close()
            arena.close()

    def test_close_unlinks_everything(self):
        arena = ChunkArena("t-close")
        arena.place(os.urandom(100), "w0")
        names = set(arena._slabs)
        assert names and all(n in _shm_segments() for n in names)
        arena.close()
        arena.close()  # idempotent
        assert all(n not in _shm_segments() for n in names)

    def test_fetch_unknown_segment_raises_gone(self):
        reader = ArenaReader()
        ref = ShmRef(segment="rpr-never-created", offset=0, length=4)
        with pytest.raises(ShmSegmentGone):
            reader.fetch(ref, "c")

    def test_unlink_stale_sweeps_by_prefix(self):
        arena = ChunkArena("t-sweep")
        arena.place(os.urandom(100), "w0")
        # Simulate a killed owner: drop the handle without unlinking.
        for slab in arena._slabs.values():
            slab.shm.close()
        arena._slabs.clear()
        arena._closed = True
        assert _shm_segments("rpr-t-sweep-")
        assert unlink_stale("rpr-t-sweep-") >= 1
        assert not _shm_segments("rpr-t-sweep-")


class TestEnvelope:
    def _lease(self, wire):
        state = pickle.dumps({"fake": "state"})
        return {"budget": 7, "sym_base": 2_000_000,
                "state": state, "wire": wire}

    def test_lease_batch_roundtrip_queue(self):
        t = QueueTransport()
        wire = _timer_wire()
        leases = [self._lease(wire),
                  {"budget": 0, "sym_base": 1_000_000,
                   "state": None, "wire": None}]
        buf = pack_lease_batch(leases, t, "w0", acks={"seg-a": 2},
                               evictions=["dead-digest"],
                               state_evictions=["page-digest"])
        acks, evictions, state_ev, back = unpack_lease_batch(buf, t, "c")
        assert acks == {"seg-a": 2}
        assert evictions == ["dead-digest"]
        assert state_ev == ["page-digest"]
        assert len(back) == 2
        assert back[0]["budget"] == 7
        assert back[0]["sym_base"] == 2_000_000
        assert back[0]["state"] == leases[0]["state"]
        assert back[0]["state_kind"] == 1  # pre-pickled bytes = KIND_FULL
        assert back[0]["wire"].refs == wire.refs
        assert back[0]["wire"].chunks == wire.chunks
        assert back[0]["wire"].method == wire.method
        assert back[1]["state"] is None and back[1]["wire"] is None

    def test_lease_results_roundtrip_and_stamp(self):
        t = QueueTransport()
        wire = _timer_wire()
        res = {"executed": 42, "paused": False,
               "continuation": (1, b"contblob", {}, wire),
               "children": [(1, b"childblob", {}, wire)],
               "completed": None, "bugs": [], "coverage": [1, 2, 3],
               "stats": {"saves": 1}, "modelled_dt": 0.5,
               "wire_stats": WireStats(snapshots_sent=3),
               "resilience": {}}
        buf = bytearray(pack_lease_results(
            [res], t, "c", acks={}, evictions=[], decode_s=0.25))
        stamp_encode_time(buf, 1.5)
        _acks, _ev, _sev, enc, dec, back = unpack_lease_results(
            buf, t, "w0")
        assert enc == 1.5 and dec == 0.25
        assert back[0]["executed"] == 42
        assert back[0]["coverage"] == [1, 2, 3]
        assert back[0]["wire_stats"].snapshots_sent == 3
        kind, blob, bodies, cwire = back[0]["continuation"]
        assert kind == 1 and blob == b"contblob" and bodies == {}
        assert cwire.refs == wire.refs
        assert len(back[0]["children"]) == 1

    def test_fuzz_batch_and_results_roundtrip(self):
        items = [(0, b"\x01\x02"), (1, b""), (5, b"\xff" * 40)]
        buf = pack_fuzz_batch(items, acks={"s": 1})
        acks, _ev, back = unpack_fuzz_batch(buf)
        assert acks == {"s": 1} and back == items

        res = {"modelled_dt": 0.75, "resets": 3, "resilience": {},
               "results": [(0, b"ab", b"edges", None, -1),
                           (1, b"cd", b"", "mem-oob", 0x40)]}
        buf2 = bytearray(pack_fuzz_results(res, acks={}, decode_s=0.1))
        stamp_encode_time(buf2, 0.2)
        _a, _e, enc, dec, rback = unpack_fuzz_results(buf2)
        assert enc == 0.2 and dec == 0.1
        assert rback["resets"] == 3
        assert rback["results"] == res["results"]

    @needs_shm
    def test_wire_chunks_travel_through_shm(self):
        sender = ShmTransport("t-env-s", chunk_floor=0)
        receiver = ShmTransport("t-env-r")
        try:
            wire = _timer_wire()
            assert wire.chunks  # payloads present
            buf = pack_lease_batch([self._lease(wire)], sender, "w0",
                                   acks={})
            assert sender.stats.shm_chunks_out == len(wire.chunks)
            _a, _e, _sev, leases = unpack_lease_batch(buf, receiver, "c")
            assert leases[0]["wire"].chunks == wire.chunks
            # The fetch was recorded: acks ride the next reverse message.
            assert receiver.reader._pending.get("c")
        finally:
            sender.close()
            receiver.close()


class TestTransportSelection:
    def test_auto_falls_back_to_queue(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.transport.shm_available",
                            lambda: False)
        assert make_transport("auto").kind == "queue"

    def test_explicit_shm_raises_when_unavailable(self, monkeypatch):
        monkeypatch.setattr("repro.parallel.transport.shm_available",
                            lambda: False)
        with pytest.raises(ShmUnavailable):
            make_transport("shm")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_transport("carrier-pigeon")

    @needs_shm
    def test_small_payloads_stay_inline(self):
        t = ShmTransport("t-floor")
        try:
            assert t.place_blob(b"tiny", "w0") == b"tiny"
            mode, payload = t.place_chunks(
                {"d": ({"nets": {"v": 1}}, 8)}, "w0")
            assert mode == "shm"
            digest, entry = payload[0]
            assert digest == "d" and not isinstance(entry, ShmRef)
            assert t.fetch_blob(b"tiny", "w0") == b"tiny"
        finally:
            t.close()


class TestChunkChannelBounds:
    """Satellite: LRU pool cap + JSON-safe delta_ratio."""

    def test_delta_ratio_finite_when_reference_only(self):
        stats = WireStats(logical_bits_sent=4096, payload_bits_sent=0)
        assert stats.delta_ratio == 4096.0  # finite, JSON-safe
        assert WireStats().delta_ratio == 1.0
        import json
        json.dumps(stats.delta_ratio)  # must not raise / produce inf

    def test_pool_cap_evicts_lru_and_counts(self):
        ch = ChunkChannel(pool_cap=2)
        for i in range(4):
            ch._admit(f"d{i}", {"nets": {"v": i}}, 8)
        assert len(ch.pool) == 2
        assert ch.stats.chunk_evictions == 2
        assert "d0" not in ch.pool and "d3" in ch.pool

    def test_pinned_digests_survive_eviction(self):
        ch = ChunkChannel(pool_cap=2)
        ch._admit("keep", {"nets": {"v": 0}}, 8)
        ch.pin(["keep"])
        for i in range(4):
            ch._admit(f"d{i}", {"nets": {"v": i}}, 8)
        assert "keep" in ch.pool
        ch.unpin(["keep"])
        ch._admit("d9", {"nets": {"v": 9}}, 8)
        assert len(ch.pool) <= 2

    def test_eviction_notices_reach_every_peer(self):
        ch = ChunkChannel(pool_cap=1)
        ch._peer("w0")
        ch._peer("w1")
        ch._admit("a", {"nets": {"v": 0}}, 8)
        ch._admit("b", {"nets": {"v": 1}}, 8)  # evicts "a"
        assert ch.take_evictions("w0") == ["a"]
        assert ch.take_evictions("w1") == ["a"]
        assert ch.take_evictions("w0") == []  # drained

    def test_forget_remote_clears_known(self):
        ch = ChunkChannel()
        ch._peer("w0").update({"a", "b"})
        ch.forget_remote("w0", ["a"])
        assert ch.known["w0"] == {"b"}


class TestPoolIntegration:
    def _recipe(self, **config):
        return SessionRecipe.create(FIRMWARE, TIMER, searcher="bfs",
                                    **config)

    def test_respawn_clears_channel_known(self):
        """Satellite regression: a respawned worker starts with an empty
        chunk pool, so the coordinator must forget what the dead
        incarnation held — otherwise the fresh worker receives
        reference-only wires it cannot resolve."""
        channel = ChunkChannel()
        channel._peer(0).add("stale-digest")
        channel._peer(1).add("other-digest")
        with WorkerPool(self._recipe(), workers=2,
                        channel=channel) as pool:
            pool.warm("engine")
            os.kill(pool._procs[0].pid, signal.SIGKILL)
            pool._procs[0].join(5)
            pool.respawn(0)
            assert 0 not in channel.known  # cleared
            assert channel.known[1] == {"other-digest"}  # untouched

    @pytest.mark.parametrize("transport", ["queue", "auto"])
    def test_pool_stats_report_transport(self, transport):
        with WorkerPool(self._recipe(), workers=1,
                        transport=transport) as pool:
            assert pool.stats.transport in ("queue", "shm")
            if transport == "queue":
                assert pool.stats.transport == "queue"
            assert pool.stats.transport in pool.stats.summary()

    @needs_shm
    def test_pool_close_leaves_no_segments(self):
        pool = WorkerPool(self._recipe(), workers=2, transport="shm")
        tag = pool.run_tag
        pool.warm("engine")
        pool.submit(0, "lease", {"state": None, "wire": None,
                                 "sym_base": 0, "budget": 0})
        pool.next_result(timeout=120)
        pool.close()
        assert not _shm_segments(f"rpr-{tag}-")

    @needs_shm
    def test_fuzzer_acks_drain_coordinator_arena(self):
        """Regression: the fuzzer must absorb the shm acks piggybacked
        on result envelopes — dropping them leaves every fuzz-batch
        blob slab issued-but-never-acked, so /dev/shm usage grows with
        each batch for the whole campaign."""
        big_seeds = [os.urandom(3000), os.urandom(3000)]
        with ParallelFuzzer(fuzz_packet_parser(), TIMER, seeds=big_seeds,
                            seed=3, workers=2, batch_size=8,
                            transport="shm") as fuzzer:
            fuzzer.run(executions=32)
            arena = fuzzer.pool.transport.arena
            assert arena.stats.payloads_placed > 0  # blobs took shm
            arena.seal()
            assert arena.live_slabs == 0  # every placed blob was acked


class TestVerdictIdentityAcrossTransports:
    """The tentpole's correctness gate: queue and shm transports produce
    byte-identical verdicts (and match serial)."""

    @pytest.fixture(scope="class")
    def engine_serial(self):
        return HardSnapSession(FIRMWARE, TIMER,
                               scan_mode="functional").run(
            max_instructions=100_000).verdict_summary()

    @pytest.mark.parametrize("transport", ["queue", "auto"])
    def test_engine_verdicts(self, transport, engine_serial):
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    transport=transport,
                                    scan_mode="functional") as engine:
            report = engine.run(max_instructions=100_000)
            assert engine.pool.stats.transport == (
                "queue" if transport == "queue"
                else ("shm" if shm_available() else "queue"))
        assert report.verdict_summary() == engine_serial

    @pytest.mark.parametrize("transport", ["queue", "auto"])
    def test_fuzzer_verdicts(self, transport):
        serial = SnapshotFuzzer(
            assemble(fuzz_packet_parser()), _fuzz_target(),
            seeds=SEEDS, seed=3).run(
            executions=48, batch_size=16).verdict_summary()
        with ParallelFuzzer(fuzz_packet_parser(), TIMER,
                            seeds=SEEDS, seed=3, workers=2,
                            batch_size=16,
                            transport=transport) as fuzzer:
            report = fuzzer.run(executions=48)
        assert report.verdict_summary() == serial


@needs_shm
class TestChaosLeavesNoSegments:
    """Satellite: worker kills, result loss and duplication must not
    leak (or wedge on) shared-memory segments — respawn unlinks the dead
    incarnation's orphans, close sweeps the run tag."""

    def test_engine_chaos_no_leaked_segments(self):
        plan = FaultPlan.parse(
            "seed=7,kill=1@0,result_loss=0.1,result_dup=0.1")
        serial = HardSnapSession(FIRMWARE, TIMER,
                                 scan_mode="functional").run(
            max_instructions=100_000).verdict_summary()
        with ParallelAnalysisEngine(FIRMWARE, TIMER, workers=2,
                                    transport="shm",
                                    scan_mode="functional",
                                    fault_plan=plan) as engine:
            report = engine.run(max_instructions=100_000)
            tag = engine.pool.run_tag
            assert engine.pool.stats.resilience.worker_respawns >= 1
        assert report.verdict_summary() == serial
        assert not _shm_segments(f"rpr-{tag}-")

    def test_fuzzer_chaos_no_leaked_segments(self):
        plan = FaultPlan.parse("seed=2,kill=0@0,result_dup=0.2")
        with ParallelFuzzer(fuzz_packet_parser(), TIMER,
                            seeds=SEEDS, seed=3, workers=2,
                            batch_size=16, transport="shm",
                            fault_plan=plan) as fuzzer:
            fuzzer.run(executions=32)
            tag = fuzzer.pool.run_tag
        assert not _shm_segments(f"rpr-{tag}-")
