"""Tests for elaboration: parameters, widths, flattening, state inference."""

import pytest

from repro.errors import ElaborationError
from repro.hdl import elaborate, ir
from repro.sim import Interpreter


def _sim(src: str, top: str, **params) -> Interpreter:
    return Interpreter(elaborate(src, top, params or None))


class TestParameters:
    def test_default_and_override(self):
        src = """
        module m #(parameter W = 4) (input wire clk, output wire [W-1:0] o);
            assign o = {W{1'b1}};
        endmodule
        """
        d1 = elaborate(src, "m")
        assert d1.nets["o"].width == 4
        d2 = elaborate(src, "m", {"W": 9})
        assert d2.nets["o"].width == 9

    def test_localparam_not_overridable(self):
        src = """
        module m (input wire clk, output wire [7:0] o);
            localparam V = 42;
            assign o = V;
        endmodule
        """
        d = elaborate(src, "m", {"V": 1})
        sim = Interpreter(d)
        assert sim.peek("o") == 42

    def test_body_parameter_override(self):
        src = """
        module m (input wire clk, output wire [7:0] o);
            parameter V = 7;
            assign o = V;
        endmodule
        """
        sim = Interpreter(elaborate(src, "m", {"V": 99}))
        assert sim.peek("o") == 99

    def test_param_expression(self):
        src = """
        module m #(parameter A = 3, parameter B = A * 2 + 1)
                  (input wire clk, output wire [7:0] o);
            assign o = B;
        endmodule
        """
        sim = Interpreter(elaborate(src, "m"))
        assert sim.peek("o") == 7

    def test_instance_param_propagation(self):
        src = """
        module leaf #(parameter N = 1) (input wire clk, output wire [7:0] o);
            assign o = N;
        endmodule
        module top (input wire clk, output wire [7:0] a, output wire [7:0] b);
            leaf #(.N(10)) l1 (.clk(clk), .o(a));
            leaf #(20) l2 (.clk(clk), .o(b));
        endmodule
        """
        sim = Interpreter(elaborate(src, "top"))
        assert sim.peek("a") == 10
        assert sim.peek("b") == 20


class TestWidths:
    def test_carry_out_idiom(self):
        src = """
        module m (input wire clk, input wire [7:0] a, input wire [7:0] b,
                  output wire [7:0] s, output wire c);
            assign {c, s} = a + b;
        endmodule
        """
        sim = _sim(src, "m")
        sim.poke_many({"a": 0xFF, "b": 0x02})
        assert sim.peek("s") == 0x01
        assert sim.peek("c") == 1

    def test_invert_extends_to_context(self):
        src = """
        module m (input wire clk, input wire [3:0] a, output wire [7:0] o);
            assign o = ~a;
        endmodule
        """
        sim = _sim(src, "m")
        sim.poke("a", 0b0101)
        # Verilog: a is widened to 8 bits THEN inverted -> high bits set.
        assert sim.peek("o") == 0b11111010

    def test_comparison_is_self_determined(self):
        src = """
        module m (input wire clk, input wire [3:0] a, output wire [7:0] o);
            assign o = (a == 4'd3);
        endmodule
        """
        sim = _sim(src, "m")
        sim.poke("a", 3)
        assert sim.peek("o") == 1

    def test_range_must_end_at_zero(self):
        with pytest.raises(ElaborationError):
            elaborate("module m (input wire clk); wire [7:4] x; endmodule",
                      "m")

    def test_out_of_range_select_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("""
            module m (input wire clk, input wire [3:0] a, output wire o);
                assign o = a[4];
            endmodule
            """, "m")


class TestHierarchy:
    def test_flattened_names(self):
        src = """
        module leaf (input wire clk, output reg q);
            always @(posedge clk) q <= ~q;
        endmodule
        module top (input wire clk);
            wire w;
            leaf inner (.clk(clk), .q(w));
        endmodule
        """
        d = elaborate(src, "top")
        assert "inner.q" in d.nets

    def test_positional_connections(self):
        src = """
        module leaf (input wire clk, input wire [3:0] d, output wire [3:0] q);
            assign q = d + 1;
        endmodule
        module top (input wire clk, input wire [3:0] x, output wire [3:0] y);
            leaf u (clk, x, y);
        endmodule
        """
        sim = _sim(src, "top")
        sim.poke("x", 5)
        assert sim.peek("y") == 6

    def test_output_to_part_select(self):
        src = """
        module leaf (input wire clk, output wire [3:0] q);
            assign q = 4'hA;
        endmodule
        module top (input wire clk, output wire [7:0] o);
            leaf u (.clk(clk), .q(o[7:4]));
            assign o[3:0] = 4'h5;
        endmodule
        """
        sim = _sim(src, "top")
        assert sim.peek("o") == 0xA5

    def test_unknown_module_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("module top (input wire clk); ghost u (.clk(clk)); "
                      "endmodule", "top")

    def test_unknown_port_rejected(self):
        src = """
        module leaf (input wire clk); endmodule
        module top (input wire clk); leaf u (.nope(clk)); endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(src, "top")

    def test_two_level_nesting(self):
        src = """
        module l0 (input wire clk, output wire o);
            assign o = 1'b1;
        endmodule
        module l1 (input wire clk, output wire o);
            l0 inner (.clk(clk), .o(o));
        endmodule
        module top (input wire clk, output wire o);
            l1 mid (.clk(clk), .o(o));
        endmodule
        """
        d = elaborate(src, "top")
        assert "mid.inner.o" in d.nets
        assert Interpreter(d).peek("o") == 1


class TestLoops:
    def test_for_unrolled(self):
        src = """
        module m (input wire clk, input wire [7:0] a, output wire [7:0] o);
            integer i;
            reg [7:0] acc;
            always @(*) begin
                acc = 0;
                for (i = 0; i < 8; i = i + 1)
                    acc = acc + a[i];
            end
            assign o = acc;
        endmodule
        """
        sim = _sim(src, "m")
        sim.poke("a", 0b1011_0110)
        assert sim.peek("o") == 5  # popcount

    def test_for_bound_must_be_constant(self):
        src = """
        module m (input wire clk, input wire [3:0] n);
            integer i;
            reg [7:0] acc;
            always @(*) begin
                acc = 0;
                for (i = 0; i < n; i = i + 1) acc = acc + 1;
            end
        endmodule
        """
        with pytest.raises(ElaborationError):
            elaborate(src, "m")


class TestStateInference:
    def test_seq_written_nets_are_state(self, rich_design):
        names = {n.name for n in rich_design.state_nets}
        assert {"acc", "wide", "wptr", "flags", "c0.q"} <= names
        # comb-only signals are not state
        assert "folded" not in names
        assert "y" not in names

    def test_memories_written_seq_are_state(self, rich_design):
        assert [m.name for m in rich_design.state_memories] == ["mem"]

    def test_state_bit_count(self):
        src = """
        module m (input wire clk);
            reg [6:0] a;
            reg b;
            reg [3:0] ram [0:9];
            always @(posedge clk) begin
                a <= a + 1; b <= ~b; ram[a[3:0]] <= a[3:0];
            end
        endmodule
        """
        d = elaborate(src, "m")
        assert d.state_bit_count == 7 + 1 + 40

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("module m (input wire clk); wire x; wire x; endmodule",
                      "m")

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate("module m (input wire clk, output wire o); "
                      "assign o = ghost; endmodule", "m")


class TestCasez:
    def test_casez_wildcard_matching(self):
        src = """
        module m (input wire clk, input wire [3:0] s, output reg [7:0] o);
            always @(*) begin
                casez (s)
                    4'b1???: o = 8'd1;
                    4'b01??: o = 8'd2;
                    default: o = 8'd0;
                endcase
            end
        endmodule
        """
        sim = _sim(src, "m")
        for value, expected in [(0b1000, 1), (0b1111, 1), (0b0100, 2),
                                (0b0111, 2), (0b0011, 0)]:
            sim.poke("s", value)
            assert sim.peek("o") == expected, value
