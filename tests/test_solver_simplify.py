"""Tests for substitution and the rewrite simplifier."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.solver import expr as E
from repro.solver.simplify import concretize, simplify, substitute

U8 = st.integers(min_value=0, max_value=255)


class TestSubstitute:
    def test_full_substitution_folds_to_const(self):
        x, y = E.var("ss_x", 8), E.var("ss_y", 8)
        node = E.add(E.mul(x, y), E.const(1, 8))
        got = substitute(node, {x: E.const(3, 8), y: E.const(4, 8)})
        assert got.is_const and got.value == 13

    def test_partial_substitution(self):
        x, y = E.var("sp_x", 8), E.var("sp_y", 8)
        node = E.add(x, y)
        got = substitute(node, {x: E.const(0, 8)})
        assert got is y  # add identity kicks in

    def test_substitute_expression_for_var(self):
        x, y = E.var("se_x", 8), E.var("se_y", 8)
        node = E.not_(x)
        got = substitute(node, {x: E.not_(y)})
        assert got is y  # double negation folds

    def test_width_mismatch_rejected(self):
        x = E.var("sw_x", 8)
        with pytest.raises(SolverError):
            substitute(x, {x: E.const(1, 16)})

    @given(a=U8, b=U8)
    def test_concretize_equals_evaluate(self, a, b):
        x, y = E.var("sc_x", 8), E.var("sc_y", 8)
        node = E.xor(E.add(x, y), E.lshr(x, E.const(2, 8)))
        folded = concretize(node, {x: a, y: b})
        assert folded.is_const
        assert folded.value == node.evaluate({x: a, y: b})


class TestSimplifyRules:
    def test_not_comparison_canonicalised(self):
        x, y = E.var("sr_x", 8), E.var("sr_y", 8)
        node = E.not_(E.ult(x, y))
        got = simplify(node)
        assert got.op == "ule"
        assert got.args == (y, x)

    def test_eq_ite_const_arms(self):
        c = E.var("sr_c", 1)
        node = E.eq(E.ite(c, E.const(5, 8), E.const(9, 8)), E.const(5, 8))
        assert simplify(node) is c

    def test_eq_ite_neither_arm(self):
        c = E.var("sr_c2", 1)
        node = E.eq(E.ite(c, E.const(5, 8), E.const(9, 8)), E.const(7, 8))
        got = simplify(node)
        assert got.is_const and got.value == 0

    def test_eq_concat_splits(self):
        hi, lo = E.var("sr_h", 8), E.var("sr_l", 8)
        node = E.eq(E.concat(hi, lo), E.const(0xAB12, 16))
        got = simplify(node)
        # Becomes a conjunction of two byte equalities.
        assert got.op == "and"
        assert got.evaluate({hi: 0xAB, lo: 0x12}) == 1
        assert got.evaluate({hi: 0xAB, lo: 0x13}) == 0

    def test_eq_zext_high_bits_impossible(self):
        x = E.var("sr_z", 8)
        node = E.eq(E.zext(x, 16), E.const(0x0100, 16))
        got = simplify(node)
        assert got.is_const and got.value == 0

    def test_eq_zext_reduces_width(self):
        x = E.var("sr_z2", 8)
        node = E.eq(E.zext(x, 16), E.const(0x0042, 16))
        got = simplify(node)
        assert got.evaluate({x: 0x42}) == 1
        assert got.evaluate({x: 0x43}) == 0

    @given(a=U8, b=U8)
    def test_simplify_preserves_semantics(self, a, b):
        x, y = E.var("sr_p1", 8), E.var("sr_p2", 8)
        node = E.not_(E.ule(E.add(x, y), E.const(100, 8)))
        env = {x: a, y: b}
        assert simplify(node).evaluate(env) == node.evaluate(env)
