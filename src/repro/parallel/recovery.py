"""Coordinator-side recovery: respawn, re-issue, degrade to serial.

Both pool coordinators (:class:`~repro.parallel.engine.ParallelAnalysisEngine`
and :class:`~repro.parallel.fuzzer.ParallelFuzzer`) wait on worker
results the same way, so they share this mixin. The recovery ladder for
one wait:

1. a **dead worker** (:class:`~repro.parallel.pool.WorkerDeath` from the
   liveness poll) is respawned under a fresh incarnation and its
   in-flight jobs re-issued — until the
   :attr:`~repro.resilience.RetryPolicy.respawn_cap` is spent, after
   which the run **degrades to serial** (an in-process
   :class:`~repro.parallel.pool.InlinePool` finishes the remaining work,
   fault-free) or, with degradation disabled, the death propagates;
2. a **missed deadline** (:class:`~repro.parallel.pool.PoolTimeout` —
   every in-flight worker still alive, so a result message was lost)
   re-issues the stalled jobs, each at most
   :attr:`~repro.resilience.RetryPolicy.max_reissues` times.

Workers serve re-issued jobs from their completed-envelope cache, never
re-executing them, so recovery cannot perturb verdicts; see
``docs/RESILIENCE.md``.

Hosts provide ``pool``/``_pool``, ``recipe``, ``config``,
``retry_policy`` and ``_degraded``; coordinators that ship delta-encoded
snapshots override the :meth:`_forget_peer` / :meth:`_readdress` hooks
to keep chunk-channel bookkeeping consistent across respawns.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable, Optional, Tuple

from repro.parallel.pool import (InlinePool, PoolTimeout, WorkerDeath,
                                 WorkerError)


class PoolRecoveryMixin:
    """Fault-tolerant result waiting for worker-pool coordinators."""

    def _await_result(self, timeout: Optional[float] = None
                      ) -> Tuple[str, int, Any]:
        """``pool.next_result`` with the recovery ladder applied.

        With an active fault plan a finite deadline
        (:attr:`~repro.resilience.RetryPolicy.result_deadline_s`) is
        always armed, so lost result messages cannot hang the run; with
        no plan the wait is free (liveness polling still catches real
        worker deaths)."""
        while True:
            armed = timeout
            if armed is None and not self._degraded:
                plan = self.config.fault_plan
                if plan is not None and not plan.is_empty:
                    armed = self.retry_policy.result_deadline_s
            try:
                return self.pool.next_result(timeout=armed)
            except WorkerDeath as death:
                self._recover_death(death)
            except PoolTimeout as stalled:
                self._reissue(stalled.jobs)

    def _recover_death(self, death: WorkerDeath) -> None:
        pool = self.pool
        policy = self.retry_policy
        if pool.stats.resilience.worker_respawns < policy.respawn_cap:
            jobs = pool.respawn(death.worker_id)
            # The dead incarnation's chunk pool died with it: forget what
            # we believed it held and ship full payloads on re-issue.
            self._forget_peer(death.worker_id)
            for job_id in jobs:
                self._readdress(pool.in_flight(job_id).payload,
                                death.worker_id)
                pool.resubmit(job_id)
            return
        if policy.degrade_to_serial:
            self._degrade()
            return
        raise death

    def _reissue(self, jobs: Iterable[int]) -> None:
        """Re-queue stalled jobs on their (live) workers. The original
        payload is already addressed to that worker and its chunk pool
        is intact, so no re-encoding is needed; if the worker already
        executed the job it answers from its completed cache."""
        pool = self.pool
        policy = self.retry_policy
        for job_id in jobs:
            try:
                info = pool.in_flight(job_id)
            except KeyError:
                continue  # answered while the timeout was raised
            if info.reissues >= policy.max_reissues:
                raise WorkerError(
                    f"job {job_id} ({info.kind}) produced no result after "
                    f"{info.reissues} re-issues on worker {info.worker_id}",
                    worker_id=info.worker_id, jobs=(job_id,))
            pool.resubmit(job_id)

    def _degrade(self) -> None:
        """Respawn cap exhausted: finish the run serially in-process.

        The real pool's in-flight jobs transfer to an
        :class:`InlinePool` built from a fault-free copy of the recipe
        (there is no worker process left to kill) that shares the pool's
        stats object, so accounting — including the ``degraded`` flag —
        survives the swap."""
        pool = self.pool
        stats = pool.stats
        stats.resilience.degraded = True
        pending = pool.take_in_flight()
        pool.close()
        # delta_state off: the in-process harness exchanges live state
        # objects and full pickles — there is no per-peer registry to
        # keep in lock-step once the wire is gone.
        inline = InlinePool(
            replace(self.recipe.with_config(fault_plan=None),
                    delta_state=False),
            stats=stats)
        self._pool = inline
        self._degraded = True
        for _job_id, info in pending:
            self._readdress(info.payload, "degraded")
            inline.submit(info.worker_id, info.kind, info.payload)
            stats.resilience.lease_reissues += 1

    # -- hooks ---------------------------------------------------------------

    def _forget_peer(self, worker_id: object) -> None:
        """A peer's process (and with it, its chunk pool) is gone."""

    def _readdress(self, payload: Any, peer: object) -> None:
        """Re-encode *payload* in place for delivery to *peer* (only
        coordinators shipping delta wires need to do anything)."""
