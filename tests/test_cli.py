"""CLI smoke tests."""

import pytest

from repro.cli import main
from repro.firmware import dispatcher, fuzz_packet_parser
from repro.peripherals import gpio


@pytest.fixture
def firmware_file(tmp_path):
    path = tmp_path / "fw.s"
    path.write_text(dispatcher(3, work_cycles=6))
    return str(path)


class TestCli:
    def test_corpus_listing(self, capsys):
        assert main(["corpus"]) == 0
        out = capsys.readouterr().out
        assert "aes128" in out and "wishbone" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "HardSnap" in capsys.readouterr().out

    def test_disasm(self, firmware_file, capsys):
        assert main(["disasm", firmware_file]) == 0
        assert "lui" in capsys.readouterr().out

    def test_run_session(self, firmware_file, capsys):
        code = main(["run", firmware_file,
                     "--peripheral", "timer@0x40000000",
                     "--max-instructions", "100000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paths=3" in out

    def test_run_reports_bugs_nonzero_exit(self, tmp_path, capsys):
        from repro.firmware import vuln_buffer_overflow
        path = tmp_path / "vuln.s"
        path.write_text(vuln_buffer_overflow())
        code = main(["run", str(path),
                     "--peripheral", "uart@0x40010000",
                     "--max-instructions", "300000",
                     "--stop-after-bugs", "1"])
        assert code == 1
        assert "BUG" in capsys.readouterr().out

    def test_instrument_writes_verilog(self, tmp_path, capsys):
        design_path = tmp_path / "gpio.v"
        design_path.write_text(gpio.verilog())
        out_path = tmp_path / "gpio_scan.v"
        code = main(["instrument", str(design_path), "--top", "gpio",
                     "-o", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        assert "scan_enable" in text and "module gpio_scan" in text

    def test_fuzz_finds_crash(self, tmp_path, capsys):
        path = tmp_path / "fuzz.s"
        path.write_text(fuzz_packet_parser())
        code = main(["fuzz", str(path),
                     "--peripheral", "timer@0x40000000",
                     "-n", "300", "--seed", "010441424344",
                     "--seed", "0207"])
        assert code == 1  # crashes found
        out = capsys.readouterr().out
        assert "crash" in out
